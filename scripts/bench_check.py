#!/usr/bin/env python3
"""Baseline-drift report for the BENCH_*.json exports.

Flattens a benchmark JSON export and its checked-in baseline to dotted
numeric leaves and reports per-metric drift.  Metric classes get their
own tolerance: counter-like leaves (event/packet/line counts) must match
exactly -- the simulator is deterministic, so any delta there is a
behavior change, not noise -- while timing-like leaves (wall seconds,
ns-per-X, rates, speedups) are host-noise-tolerant and only flagged
beyond a generous relative band.

CI runs with --strict-exact: drift in the exact (counter) class is
fatal -- the simulator is deterministic, so a counter delta is a real
behavior change -- while timing-class drift stays report-only, so a
noisy shared runner cannot fail the build.  Pass --strict to make ALL
drift fatal for local use.

Usage:
  bench_check.py --baseline tests/golden/BENCH_perf_smoke.json \
                 --current BENCH_perf_smoke.json [--strict]
  bench_check.py --baseline ... --current ... --refresh
      rewrite the baseline from the current export and print the diff.
"""

import argparse
import json
import sys

# Leaves whose key path matches one of these substrings vary with the
# host and are never compared.
SKIP_SUBSTRINGS = (
    "host.",
    "hardware_concurrency",
    "jobs",
    "git_sha",
)

# Timing-like leaves: compared with a relative tolerance.
TIMING_SUBSTRINGS = (
    "wall_sec",
    "_ns",
    "ns_per_event",
    "per_sec",
    "speedup",
    "spread",
    "_us",
    "cost_ratio",
    "ratio",
    "mtps",
    "ipc",
)


def flatten(node, prefix=""):
    """Yield (dotted_path, leaf) for every scalar leaf."""
    if isinstance(node, dict):
        for k, v in node.items():
            yield from flatten(v, f"{prefix}{k}." if prefix or k else k)
    elif isinstance(node, list):
        for i, v in enumerate(node):
            # Prefer a stable name over a positional index when the
            # element carries one (the benches' points arrays all do).
            tag = v.get("name") if isinstance(v, dict) else None
            tag = tag if isinstance(tag, str) else str(i)
            yield from flatten(v, f"{prefix}{tag}.")
    else:
        yield prefix.rstrip("."), node


def classify(path):
    if any(s in path for s in SKIP_SUBSTRINGS):
        return "skip"
    if any(s in path for s in TIMING_SUBSTRINGS):
        return "timing"
    return "exact"


def drift(a, b):
    if a == b:
        return 0.0
    denom = max(abs(a), abs(b), 1e-12)
    return abs(a - b) / denom


def compare(baseline, current, timing_tol):
    base = dict(flatten(baseline))
    cur = dict(flatten(current))
    rows = []  # (status, path, baseline, current, drift, class)
    for path in sorted(set(base) | set(cur)):
        cls = classify(path)
        if cls == "skip":
            continue
        if path not in base:
            rows.append(("new", path, None, cur[path], None, cls))
            continue
        if path not in cur:
            rows.append(("missing", path, base[path], None, None, cls))
            continue
        a, b = base[path], cur[path]
        if isinstance(a, bool) or isinstance(a, str) or a is None:
            rows.append(("ok" if a == b else "DRIFT", path, a, b, None,
                         cls))
            continue
        if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
            continue
        d = drift(float(a), float(b))
        tol = timing_tol if cls == "timing" else 0.0
        rows.append(("ok" if d <= tol else "DRIFT", path, a, b, d, cls))
    return rows


def fmt(v):
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--timing-tolerance", type=float, default=0.5,
                    help="relative band for timing-like metrics "
                         "(default 0.5 = 50%%)")
    ap.add_argument("--strict", action="store_true",
                    help="exit 1 on any drift (default: report only)")
    ap.add_argument("--strict-exact", action="store_true",
                    help="exit 1 only on exact-class (counter) drift or "
                         "a vanished exact metric; timing drift stays "
                         "report-only")
    ap.add_argument("--refresh", action="store_true",
                    help="rewrite the baseline from the current export "
                         "after printing the diff")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        print(f"bench_check: no baseline at {args.baseline}", end="")
        if args.refresh:
            with open(args.current) as f:
                cur_text = f.read()
            with open(args.baseline, "w") as f:
                f.write(cur_text)
            print(" -- seeded from current export")
            return 0
        print(" (run with --refresh to seed one)")
        return 0
    with open(args.current) as f:
        current = json.load(f)

    rows = compare(baseline, current, args.timing_tolerance)
    drifted = [r for r in rows if r[0] != "ok"]
    # Fatal under --strict-exact: a deterministic (exact-class) metric
    # moved, or one the baseline promises vanished.  Brand-new metrics
    # are ordinary growth and stay non-fatal until the next --refresh.
    exact_fatal = [r for r in drifted
                   if r[5] == "exact" and r[0] in ("DRIFT", "missing")]

    print(f"bench_check: {args.current} vs baseline {args.baseline}")
    print(f"  {len(rows)} metrics compared, {len(drifted)} flagged "
          f"(timing tolerance {args.timing_tolerance:.0%})")
    for status, path, a, b, d, cls in drifted:
        extra = f"  ({d:.1%} drift)" if d is not None else ""
        print(f"  {status:>7}  {path} [{cls}]: {fmt(a)} -> {fmt(b)}"
              f"{extra}")
    if not drifted:
        print("  all metrics within tolerance")

    if args.refresh:
        with open(args.current) as f:
            cur_text = f.read()
        with open(args.baseline, "w") as f:
            f.write(cur_text)
        print(f"  baseline refreshed from {args.current}")

    if args.strict and drifted:
        return 1
    if args.strict_exact and exact_fatal:
        print(f"  FATAL: {len(exact_fatal)} exact-class metric(s) "
              "drifted -- deterministic counters moved")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
