/**
 * @file
 * Example: a storage-node data plane on the HyperPlane API.
 *
 * Client queues carry 4 KiB write requests.  The data-plane thread
 * QWAITs across them and, per request, erasure-codes the block with
 * RS(6,3) over a Cauchy matrix and computes RAID-6 P+Q parity for the
 * local stripe — the paper's two storage workloads, end to end on real
 * bytes, including a verification pass that drops two shards and two
 * stripe blocks and reconstructs them.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "codes/raid.hh"
#include "codes/reed_solomon.hh"
#include "emu/emu_hyperplane.hh"
#include "queueing/spsc_ring.hh"
#include "sim/rng.hh"

using namespace hyperplane;

namespace {

constexpr unsigned numClients = 4;
constexpr std::uint64_t requestsPerClient = 100;
constexpr std::size_t blockBytes = 4096;

using Request = std::vector<std::uint8_t>;

} // namespace

int
main()
{
    emu::EmuHyperPlane hp(numClients);
    codes::ReedSolomon rs(6, 3);
    codes::Raid6 raid(8);

    std::vector<std::unique_ptr<queueing::SpscRing<Request>>> rings;
    std::vector<QueueId> qids;
    for (unsigned c = 0; c < numClients; ++c) {
        rings.push_back(
            std::make_unique<queueing::SpscRing<Request>>(256));
        qids.push_back(*hp.addQueue());
    }

    std::vector<std::thread> clients;
    for (unsigned c = 0; c < numClients; ++c) {
        clients.emplace_back([&, c] {
            Rng rng(1000 + c);
            for (std::uint64_t s = 0; s < requestsPerClient; ++s) {
                Request block(blockBytes);
                for (auto &b : block)
                    b = static_cast<std::uint8_t>(rng.next());
                while (!rings[c]->tryPush(std::move(block)))
                    std::this_thread::yield();
                hp.ring(qids[c]);
            }
        });
    }

    std::uint64_t encoded = 0, verified = 0, total = 0;
    while (total < numClients * requestsPerClient) {
        const auto qid = hp.qwait(std::chrono::seconds(5));
        if (!qid) {
            std::fprintf(stderr, "storage node stalled\n");
            return 1;
        }
        const std::uint64_t n = hp.take(*qid, 4);
        for (std::uint64_t i = 0; i < n; ++i) {
            auto block = rings[*qid]->tryPop();
            if (!block)
                return 1;

            // Erasure-code the block into 6 data + 3 parity shards.
            const std::size_t shardLen = blockBytes / 6;
            std::vector<codes::Shard> data(6);
            for (unsigned s = 0; s < 6; ++s)
                data[s].assign(block->begin() + s * shardLen,
                               block->begin() + (s + 1) * shardLen);
            const auto parity = rs.encode(data);
            ++encoded;

            // RAID-6 P+Q over the local stripe (block split 8 ways).
            const std::size_t strip = blockBytes / 8;
            std::vector<codes::Block> stripe(8);
            for (unsigned s = 0; s < 8; ++s)
                stripe[s].assign(block->begin() + s * strip,
                                 block->begin() + (s + 1) * strip);
            const auto [p, q] = raid.computePQ(stripe);

            // Periodic scrub: lose shards/blocks and reconstruct.
            if (encoded % 50 == 0) {
                std::vector<codes::Shard> shards = data;
                shards.insert(shards.end(), parity.begin(),
                              parity.end());
                shards[1].clear();
                shards[7].clear();
                const auto dec = rs.decode(shards);
                auto damaged = stripe;
                damaged[0].clear();
                damaged[5].clear();
                const auto [r0, r5] =
                    raid.recoverTwoData(damaged, p, q, 0, 5);
                if (!dec || *dec != data || r0 != stripe[0] ||
                    r5 != stripe[5]) {
                    std::fprintf(stderr, "reconstruction mismatch!\n");
                    return 1;
                }
                ++verified;
            }
        }
        total += n;
    }
    for (auto &c : clients)
        c.join();

    std::printf("storage node processed %llu blocks (%llu scrub "
                "reconstructions verified)\n",
                static_cast<unsigned long long>(encoded),
                static_cast<unsigned long long>(verified));
    std::printf("per block: RS(6,3) Cauchy encode + RAID-6 P+Q over "
                "%zu bytes\n", blockBytes);
    return 0;
}
