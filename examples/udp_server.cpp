/**
 * @file
 * Standalone UDP data-plane server.
 *
 * Binds the real server (RX shards -> per-flow queues -> EmuHyperPlane
 * doorbells -> QWAIT workers -> TX) on a UDP port and serves the wire
 * protocol until SIGINT.  Pair it with examples/udp_loadgen from
 * another terminal:
 *
 *   ./udp_server --port 9000 --workers 4 &
 *   ./udp_loadgen --port 9000 --rate 100000 --duration 2
 *
 * Flags:
 *   --ip A          bind address        (default 127.0.0.1)
 *   --port P        bind port, 0 = ephemeral (printed at startup)
 *   --rx N          RX threads / SO_REUSEPORT shards (default 2)
 *   --tx N          TX threads                       (default 1)
 *   --workers N     QWAIT worker threads             (default 2)
 *   --queues N      task queues                      (default 16)
 *   --drop-rings R  inject doorbell-ring drops with probability R
 *   --stats-sec S   print the counter registry every S seconds
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "harness/export.hh"
#include "server/server.hh"
#include "stats/registry.hh"

using namespace hyperplane;

namespace {

std::atomic<bool> interrupted{false};

void
onSignal(int)
{
    interrupted.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerConfig cfg;
    if (const char *v = harness::argValue(argc, argv, "--ip"))
        cfg.bindIp = v;
    if (const char *v = harness::argValue(argc, argv, "--port"))
        cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--rx"))
        cfg.rxThreads = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--tx"))
        cfg.txThreads = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--workers"))
        cfg.workers = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--queues"))
        cfg.numQueues = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--drop-rings"))
        cfg.fault.dropRingProbability = std::atof(v);
    double statsSec = 0.0;
    if (const char *v = harness::argValue(argc, argv, "--stats-sec"))
        statsSec = std::atof(v);

    server::UdpServer srv(cfg);
    if (!srv.start()) {
        std::fprintf(stderr,
                     "error: could not bind %s:%u (sockets denied?)\n",
                     cfg.bindIp.c_str(), cfg.port);
        return 1;
    }
    std::printf("udp_server listening on %s:%u  "
                "(rx=%u tx=%u workers=%u queues=%u)\n",
                cfg.bindIp.c_str(), srv.port(), cfg.rxThreads,
                cfg.txThreads, cfg.workers, cfg.numQueues);
    std::fflush(stdout);

    stats::Registry reg;
    srv.registerStats(reg);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    auto lastStats = std::chrono::steady_clock::now();
    while (!interrupted.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (statsSec > 0.0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - lastStats).count() >=
                statsSec) {
                lastStats = now;
                std::printf(
                    "rx=%llu served=%llu tx=%llu drops=%llu "
                    "recoveries=%llu\n",
                    static_cast<unsigned long long>(
                        srv.counters().rxPackets.load()),
                    static_cast<unsigned long long>(
                        srv.counters().served.load()),
                    static_cast<unsigned long long>(
                        srv.counters().txPackets.load()),
                    static_cast<unsigned long long>(
                        srv.counters().queueDrops.load()),
                    static_cast<unsigned long long>(
                        srv.counters().watchdogRecoveries.load()));
                std::fflush(stdout);
            }
        }
    }

    std::puts("draining...");
    const bool drained = srv.stop();
    std::printf("served %llu requests (%s)\n",
                static_cast<unsigned long long>(
                    srv.counters().served.load()),
                drained ? "drained clean" : "drain deadline expired");
    return drained ? 0 : 1;
}
