/**
 * @file
 * Standalone UDP data-plane server.
 *
 * Binds the real server (RX shards -> per-flow queues -> EmuHyperPlane
 * doorbells -> QWAIT workers -> TX) on a UDP port and serves the wire
 * protocol until SIGINT.  Pair it with examples/udp_loadgen from
 * another terminal:
 *
 *   ./udp_server --port 9000 --workers 4 --metrics-port 9100 &
 *   ./udp_loadgen --port 9000 --rate 100000 --duration 2
 *   curl -s localhost:9100/metrics          # Prometheus text
 *   curl -s localhost:9100/stats.json       # full registry
 *   kill -USR1 %1                           # flight-recorder dump
 *
 * Flags:
 *   --ip A            bind address        (default 127.0.0.1)
 *   --port P          bind port, 0 = ephemeral (printed at startup)
 *   --rx N            RX threads / SO_REUSEPORT shards (default 2)
 *   --tx N            TX threads                       (default 1)
 *   --workers N       QWAIT worker threads             (default 2)
 *   --queues N        task queues                      (default 16)
 *   --drop-rings R    inject doorbell-ring drops with probability R
 *   --stats-sec S     print the counter registry every S seconds
 *   --metrics-port P  HTTP+UDP metrics endpoint (0 = ephemeral;
 *                     omitted = no endpoint)
 *   --metrics-ip A    metrics bind address (default 127.0.0.1)
 *   --sample-every N  flight-recorder sampling period (default 64)
 *   --stage-sample-every N  stage-histogram decimation (power of two,
 *                     default 8; 1 = sample every request)
 *   --flight-prefix S automatic flight dump path prefix
 *   --no-telemetry    disable histograms + flight recorder
 *   --dump-metrics    print the Prometheus page to stdout on exit
 *
 * SIGUSR1 dumps the flight recorder to "<flight-prefix>_usr1.json" —
 * a Perfetto-loadable trace of the most recent sampled requests.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "harness/export.hh"
#include "server/server.hh"
#include "stats/registry.hh"

using namespace hyperplane;

namespace {

std::atomic<bool> interrupted{false};
std::atomic<bool> dumpFlight{false};

void
onSignal(int)
{
    interrupted.store(true);
}

void
onUsr1(int)
{
    dumpFlight.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServerConfig cfg;
    if (const char *v = harness::argValue(argc, argv, "--ip"))
        cfg.bindIp = v;
    if (const char *v = harness::argValue(argc, argv, "--port"))
        cfg.port = static_cast<std::uint16_t>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--rx"))
        cfg.rxThreads = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--tx"))
        cfg.txThreads = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--workers"))
        cfg.workers = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--queues"))
        cfg.numQueues = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--drop-rings"))
        cfg.fault.dropRingProbability = std::atof(v);
    if (const char *v = harness::argValue(argc, argv, "--metrics-port"))
        cfg.telemetry.metricsPort = std::atoi(v);
    if (const char *v = harness::argValue(argc, argv, "--metrics-ip"))
        cfg.telemetry.metricsIp = v;
    if (const char *v = harness::argValue(argc, argv, "--sample-every"))
        cfg.telemetry.sampleEvery =
            static_cast<std::uint64_t>(std::atoll(v));
    if (const char *v =
            harness::argValue(argc, argv, "--stage-sample-every"))
        cfg.telemetry.stageSampleEvery =
            static_cast<std::uint64_t>(std::atoll(v));
    if (const char *v =
            harness::argValue(argc, argv, "--flight-prefix"))
        cfg.telemetry.flightDumpPrefix = v;
    if (harness::argPresent(argc, argv, "--no-telemetry"))
        cfg.telemetry.enabled = false;
    const bool dumpMetricsAtExit =
        harness::argPresent(argc, argv, "--dump-metrics");
    double statsSec = 0.0;
    if (const char *v = harness::argValue(argc, argv, "--stats-sec"))
        statsSec = std::atof(v);

    server::UdpServer srv(cfg);
    if (!srv.start()) {
        std::fprintf(stderr,
                     "error: could not bind %s:%u (sockets denied?)\n",
                     cfg.bindIp.c_str(), cfg.port);
        return 1;
    }
    std::printf("udp_server listening on %s:%u  "
                "(rx=%u tx=%u workers=%u queues=%u)\n",
                cfg.bindIp.c_str(), srv.port(), cfg.rxThreads,
                cfg.txThreads, cfg.workers, cfg.numQueues);
    if (srv.metricsPort() >= 0) {
        std::printf("metrics endpoint on %s:%d  "
                    "(/metrics /stats.json /events.json /flight.json)\n",
                    cfg.telemetry.metricsIp.c_str(), srv.metricsPort());
    }
    std::fflush(stdout);

    stats::Registry reg;
    srv.registerStats(reg);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGUSR1, onUsr1);
    auto lastStats = std::chrono::steady_clock::now();
    while (!interrupted.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (dumpFlight.exchange(false)) {
            const std::string path =
                cfg.telemetry.flightDumpPrefix + "_usr1.json";
            const bool ok = srv.dumpFlightTrace(path);
            std::printf("flight dump -> %s (%s)\n", path.c_str(),
                        ok ? "ok" : "FAILED");
            std::fflush(stdout);
        }
        if (statsSec > 0.0) {
            const auto now = std::chrono::steady_clock::now();
            if (std::chrono::duration<double>(now - lastStats).count() >=
                statsSec) {
                lastStats = now;
                const server::ServerCounterSnapshot s =
                    srv.counterSnapshot();
                std::printf(
                    "rx=%llu served=%llu tx=%llu drops=%llu "
                    "recoveries=%llu\n",
                    static_cast<unsigned long long>(s.rxPackets),
                    static_cast<unsigned long long>(s.served),
                    static_cast<unsigned long long>(s.txPackets),
                    static_cast<unsigned long long>(s.queueDrops),
                    static_cast<unsigned long long>(
                        s.watchdogRecoveries));
                std::fflush(stdout);
            }
        }
    }

    std::puts("draining...");
    if (dumpMetricsAtExit)
        std::fputs(srv.prometheusPage().c_str(), stdout);
    const bool drained = srv.stop();
    std::printf("served %llu requests (%s)\n",
                static_cast<unsigned long long>(
                    srv.counterSnapshot().served),
                drained ? "drained clean" : "drain deadline expired");
    return drained ? 0 : 1;
}
