/**
 * @file
 * Standalone open-loop load generator for the UDP data-plane server.
 *
 * Offers a Poisson request stream to any address speaking the server's
 * wire protocol and prints achieved throughput, completion ratio, and
 * end-to-end latency percentiles.  Open-loop by default — an overloaded
 * server shows up as tail latency, not as a quietly reduced rate.
 *
 *   ./udp_loadgen --port 9000 --rate 100000 --duration 2
 *
 * Flags:
 *   --ip A        server address              (default 127.0.0.1)
 *   --port P      server port                 (required)
 *   --rate R      offered requests per second (default 50000)
 *   --duration S  send-phase seconds          (default 1)
 *   --closed W    closed-loop mode with window W instead
 *   --flows N     inner flow labels           (default 64)
 *   --payload B   payload bytes               (default 64)
 *   --mix E,C,S   opcode weights echo,encap,steer (default 1,0,0)
 *   --seed X      RNG seed                    (default 1)
 *   --json FILE   write the report as JSON
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/export.hh"
#include "server/loadgen.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    server::LoadGenConfig cfg;
    if (const char *v = harness::argValue(argc, argv, "--ip"))
        cfg.serverIp = v;
    if (const char *v = harness::argValue(argc, argv, "--port"))
        cfg.serverPort = static_cast<std::uint16_t>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--rate"))
        cfg.ratePerSec = std::atof(v);
    if (const char *v = harness::argValue(argc, argv, "--duration"))
        cfg.durationSec = std::atof(v);
    if (const char *v = harness::argValue(argc, argv, "--closed")) {
        cfg.openLoop = false;
        cfg.window = static_cast<unsigned>(std::atoi(v));
    }
    if (const char *v = harness::argValue(argc, argv, "--flows"))
        cfg.numFlows = static_cast<unsigned>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--payload"))
        cfg.payloadBytes = static_cast<std::uint32_t>(std::atoi(v));
    if (const char *v = harness::argValue(argc, argv, "--seed"))
        cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    if (const char *v = harness::argValue(argc, argv, "--mix")) {
        double e = 1.0, c = 0.0, s = 0.0;
        if (std::sscanf(v, "%lf,%lf,%lf", &e, &c, &s) == 3)
            cfg.opcodeWeights = {e, c, s};
        else
            std::fprintf(stderr, "warning: bad --mix '%s' ignored\n", v);
    }
    const char *jsonPath = harness::argValue(argc, argv, "--json");

    if (cfg.serverPort == 0) {
        std::fprintf(stderr, "usage: udp_loadgen --port P [--rate R] "
                             "[--duration S] [--closed W] ...\n");
        return 2;
    }

    std::printf("offering %.0f req/s (%s) to %s:%u for %.1fs...\n",
                cfg.ratePerSec, cfg.openLoop ? "open loop" : "closed loop",
                cfg.serverIp.c_str(), cfg.serverPort, cfg.durationSec);
    std::fflush(stdout);

    auto report = server::UdpLoadGen(cfg).run();
    if (!report) {
        std::fprintf(stderr, "error: could not open a UDP socket\n");
        return 1;
    }

    std::printf("sent      %llu\n",
                static_cast<unsigned long long>(report->sent));
    std::printf("received  %llu  (%.2f%%)\n",
                static_cast<unsigned long long>(report->received),
                report->completionRatio * 100.0);
    std::printf("achieved  %.0f req/s\n", report->achievedPerSec);
    std::printf("latency   p50 %.1f us  p90 %.1f us  p99 %.1f us  "
                "p99.9 %.1f us  max %.1f us\n",
                report->p50Us, report->p90Us, report->p99Us,
                report->p999Us, report->maxUs);
    if (report->badStatus || report->parseErrors || report->sendFailures)
        std::printf("errors    badStatus=%llu parseErrors=%llu "
                    "sendFailures=%llu\n",
                    static_cast<unsigned long long>(report->badStatus),
                    static_cast<unsigned long long>(report->parseErrors),
                    static_cast<unsigned long long>(
                        report->sendFailures));

    if (jsonPath != nullptr)
        harness::writeTextFile(jsonPath, report->json() + "\n");

    // Nonzero exit when the server answered too little of the load.
    return report->completionRatio >= 0.99 ? 0 : 1;
}
