/**
 * @file
 * Minimal "top" for a running udp_server: polls the metrics endpoint
 * and prints the key rates and stage tails as a refreshing one-liner
 * table.
 *
 * Scrapes over the endpoint's UDP one-shot op by default (works in
 * socket-restricted sandboxes that still allow loopback datagrams and
 * needs no HTTP client); pass --http to use a plain HTTP/1.0 GET
 * instead.
 *
 *   ./udp_server --port 9000 --metrics-port 9100 &
 *   ./hyperplane_top --port 9100            # refresh every second
 *   ./hyperplane_top --port 9100 --once     # single scrape, for CI
 *
 * Flags:
 *   --host A       endpoint address (default 127.0.0.1)
 *   --port P       endpoint port (required)
 *   --interval S   refresh period, seconds (default 1.0)
 *   --once         scrape once, print, exit (exit 1 if unreachable)
 *   --http         scrape over TCP/HTTP instead of the UDP op
 *   --raw          dump the raw Prometheus page instead of the table
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "harness/export.hh"

namespace {

std::string
udpScrape(const std::string &host, std::uint16_t port,
          const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0)
        return {};
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return {};
    }
    if (::sendto(fd, path.data(), path.size(), 0,
                 reinterpret_cast<sockaddr *>(&addr),
                 sizeof(addr)) < 0) {
        ::close(fd);
        return {};
    }
    std::string body;
    char buf[2048];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            ::close(fd);
            return {}; // timeout: endpoint unreachable
        }
        if (n == 0)
            break; // empty datagram terminates the response
        body.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return body;
}

std::string
httpScrape(const std::string &host, std::uint16_t port,
           const std::string &path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req = "GET " + path +
                            " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
    if (::send(fd, req.data(), req.size(), 0) < 0) {
        ::close(fd);
        return {};
    }
    std::string resp;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        resp.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    const auto split = resp.find("\r\n\r\n");
    return split == std::string::npos ? std::string()
                                      : resp.substr(split + 4);
}

/** Parse "name value" exposition lines (labels and comments skipped). */
std::map<std::string, double>
parsePage(const std::string &page)
{
    std::map<std::string, double> out;
    std::size_t start = 0;
    while (start < page.size()) {
        std::size_t end = page.find('\n', start);
        if (end == std::string::npos)
            end = page.size();
        const std::string line = page.substr(start, end - start);
        start = end + 1;
        if (line.empty() || line[0] == '#' ||
            line.find('{') != std::string::npos)
            continue;
        const auto sp = line.find(' ');
        if (sp == std::string::npos)
            continue;
        out[line.substr(0, sp)] =
            std::atof(line.c_str() + sp + 1);
    }
    return out;
}

double
get(const std::map<std::string, double> &m, const char *k)
{
    const auto it = m.find(k);
    return it == m.end() ? 0.0 : it->second;
}

/** Kernel variant name from the numeric level metric (0/1/2). */
const char *
variantName(double level, bool crc)
{
    const int l = static_cast<int>(level);
    if (l <= 0)
        return "scalar";
    if (l == 1)
        return crc ? "sse4.2" : "sse2";
    return "avx2";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hyperplane;
    std::string host = "127.0.0.1";
    if (const char *v = harness::argValue(argc, argv, "--host"))
        host = v;
    const char *portArg = harness::argValue(argc, argv, "--port");
    if (portArg == nullptr) {
        std::fputs("usage: hyperplane_top --port P [--host A] "
                   "[--interval S] [--once] [--http] [--raw]\n",
                   stderr);
        return 2;
    }
    const auto port = static_cast<std::uint16_t>(std::atoi(portArg));
    double interval = 1.0;
    if (const char *v = harness::argValue(argc, argv, "--interval"))
        interval = std::atof(v);
    const bool once = harness::argPresent(argc, argv, "--once");
    const bool http = harness::argPresent(argc, argv, "--http");
    const bool raw = harness::argPresent(argc, argv, "--raw");

    const auto scrape = [&] {
        return http ? httpScrape(host, port, "/metrics")
                    : udpScrape(host, port, "/metrics");
    };

    double prevServed = 0.0, prevTx = 0.0;
    bool first = true;
    for (;;) {
        const std::string page = scrape();
        if (page.empty()) {
            std::fprintf(stderr,
                         "hyperplane_top: no response from %s:%u\n",
                         host.c_str(), port);
            if (once)
                return 1;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
            continue;
        }
        if (raw) {
            std::fputs(page.c_str(), stdout);
            if (once)
                return 0;
            std::this_thread::sleep_for(
                std::chrono::duration<double>(interval));
            continue;
        }
        const auto m = parsePage(page);
        const double served = get(m, "hyperplane_server_requests_served");
        const double tx = get(m, "hyperplane_server_tx_packets");
        if (first) {
            // One-time provenance line: which SIMD kernels the server
            // dispatched and how big its zero-copy frame pool is.
            std::printf(
                "kernels: checksum=%s crc32c=%s header=%s%s | "
                "pool: %.0f frames (%.0f free) | payload copies: %.0f\n",
                variantName(
                    get(m, "hyperplane_server_simd_checksum_level"),
                    false),
                variantName(
                    get(m, "hyperplane_server_simd_crc32c_level"),
                    true),
                variantName(
                    get(m, "hyperplane_server_simd_header_level"),
                    false),
                get(m, "hyperplane_server_simd_force_scalar") != 0.0
                    ? " (forced scalar)"
                    : "",
                get(m, "hyperplane_server_pool_frames_total"),
                get(m, "hyperplane_server_pool_frames_free"),
                get(m, "hyperplane_server_payload_copies"));
            std::printf("%10s %10s %8s %9s %9s %9s %7s %7s\n",
                        "served/s", "tx/s", "backlog", "e2e p50",
                        "e2e p99", "e2e p999", "shed", "demote");
            first = false;
        } else {
            std::printf(
                "%10.0f %10.0f %8.0f %8.1fu %8.1fu %8.1fu %7.0f "
                "%7.0f\n",
                (served - prevServed) / interval,
                (tx - prevTx) / interval,
                get(m, "hyperplane_server_backlog"),
                get(m, "hyperplane_server_stage_e2e_p50_ns") / 1e3,
                get(m, "hyperplane_server_stage_e2e_p99_ns") / 1e3,
                get(m, "hyperplane_server_stage_e2e_p999_ns") / 1e3,
                get(m, "hyperplane_server_shed_watermark") +
                    get(m, "hyperplane_server_shed_rate_limited") +
                    get(m, "hyperplane_server_shed_queue_full"),
                get(m, "hyperplane_server_demotions"));
            std::fflush(stdout);
        }
        if (once) {
            // --once prints totals, not rates (there is no delta yet).
            std::printf("%10.0f %10.0f %8.0f %8.1fu %8.1fu %8.1fu "
                        "%7.0f %7.0f\n",
                        served, tx,
                        get(m, "hyperplane_server_backlog"),
                        get(m, "hyperplane_server_stage_e2e_p50_ns") /
                            1e3,
                        get(m, "hyperplane_server_stage_e2e_p99_ns") /
                            1e3,
                        get(m,
                            "hyperplane_server_stage_e2e_p999_ns") /
                            1e3,
                        get(m, "hyperplane_server_shed_watermark"),
                        get(m, "hyperplane_server_demotions"));
            return 0;
        }
        prevServed = served;
        prevTx = tx;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(interval));
    }
}
