/**
 * @file
 * Example: rate limiting a noisy tenant with QWAIT-ENABLE/DISABLE.
 *
 * Section III-A: "An example use case of these primitives is to limit
 * the processing rate of a queue for a period for, e.g., congestion
 * control in networking applications."
 *
 * Two tenants share a data plane.  Tenant 0 is well-behaved; tenant 1
 * floods.  A token bucket governs tenant 1: when its budget for the
 * current interval is exhausted the data plane issues QWAIT-DISABLE,
 * and a timer thread re-enables it each refill period.  The flood is
 * clamped to the configured rate while tenant 0's service is
 * unaffected.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "emu/emu_hyperplane.hh"

using namespace hyperplane;
using namespace std::chrono_literals;

int
main()
{
    emu::EmuHyperPlane hp(2);
    const QueueId good = *hp.addQueue();
    const QueueId noisy = *hp.addQueue();

    constexpr std::uint64_t goodItems = 2000;
    constexpr auto runFor = 400ms;
    constexpr auto refillPeriod = 20ms;
    constexpr std::uint64_t tokensPerPeriod = 50; // = 2500 items/s cap

    std::atomic<bool> stop{false};

    // Tenant 0: steady trickle.
    std::thread goodTenant([&] {
        for (std::uint64_t i = 0; i < goodItems && !stop; ++i) {
            hp.ring(good);
            std::this_thread::sleep_for(100us);
        }
    });
    // Tenant 1: floods as fast as it can.
    std::thread noisyTenant([&] {
        while (!stop)
            hp.ring(noisy);
    });
    // The congestion-control timer: re-enable the noisy queue and
    // refresh its budget every refill period (QWAIT-ENABLE by timer,
    // as the paper sketches).
    std::atomic<std::uint64_t> budget{tokensPerPeriod};
    std::thread limiter([&] {
        while (!stop) {
            std::this_thread::sleep_for(refillPeriod);
            budget = tokensPerPeriod;
            hp.enable(noisy);
        }
    });

    std::uint64_t servedGood = 0, servedNoisy = 0, throttles = 0;
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < runFor) {
        const auto qid = hp.qwait(50ms);
        if (!qid)
            continue;
        const std::uint64_t n = hp.take(*qid, 16);
        if (*qid == good) {
            servedGood += n;
        } else {
            servedNoisy += n;
            if (budget <= n) {
                // Budget exhausted: QWAIT-DISABLE until the timer
                // re-enables (items keep queueing, none are granted).
                budget = 0;
                hp.disable(noisy);
                ++throttles;
            } else {
                budget -= n;
            }
        }
    }
    stop = true;
    hp.enable(noisy); // release the limiter's subject before joining
    goodTenant.join();
    noisyTenant.join();
    limiter.join();

    const double secs =
        std::chrono::duration<double>(runFor).count();
    std::printf("well-behaved tenant: %llu items served\n",
                static_cast<unsigned long long>(servedGood));
    std::printf("noisy tenant: %llu items served (%.0f/s against a "
                "%.0f/s cap), throttled %llu times\n",
                static_cast<unsigned long long>(servedNoisy),
                servedNoisy / secs,
                tokensPerPeriod /
                    std::chrono::duration<double>(refillPeriod).count(),
                static_cast<unsigned long long>(throttles));
    const double cap = tokensPerPeriod /
        std::chrono::duration<double>(refillPeriod).count();
    if (servedNoisy / secs > cap * 2.0) {
        std::fprintf(stderr, "rate limit failed to hold!\n");
        return 1;
    }
    std::puts("rate limit held; the flood never starved tenant 0.");
    return 0;
}
