/**
 * @file
 * Example: drive the full simulated software data plane.
 *
 * Runs the same packet-encapsulation scenario twice — once on the
 * spin-polling baseline and once on HyperPlane — and prints the
 * head-to-head comparison (throughput, latency, IPC, power) that the
 * paper's evaluation is built from.
 *
 * Usage: simulate_sdp [numQueues] [numCores] [--stats]
 *   --stats  dump the gem5-style per-component statistics report of
 *            the final (HyperPlane) run
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "dp/sdp_system.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace hyperplane;

int
main(int argc, char **argv)
{
    bool dumpStats = false;
    unsigned positional[2] = {400, 1};
    unsigned nPos = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--stats") == 0)
            dumpStats = true;
        else if (nPos < 2)
            positional[nPos++] = static_cast<unsigned>(std::atoi(argv[i]));
    }
    const unsigned numQueues = positional[0];
    const unsigned numCores = positional[1];

    harness::printTableI();
    std::printf("Scenario: packet encapsulation, %u queues, %u core(s), "
                "PC traffic\n\n",
                numQueues, numCores);

    stats::Table table("spin-polling vs HyperPlane");
    table.header({"plane", "peak Mtps", "avg us", "p99 us", "IPC",
                  "useless IPC", "power W"});

    for (const auto plane :
         {dp::PlaneKind::Spinning, dp::PlaneKind::HyperPlane}) {
        dp::SdpConfig cfg;
        cfg.plane = plane;
        cfg.numQueues = numQueues;
        cfg.numCores = numCores;
        cfg.workload = workloads::Kind::PacketEncapsulation;
        cfg.shape = traffic::Shape::PC;
        cfg.seed = 42;

        const auto peak = harness::measureAtSaturation(cfg);

        auto zero = harness::zeroLoadConfig(cfg, 800);
        dp::SdpSystem lightSys(zero);
        const auto light = lightSys.run();
        if (dumpStats && plane == dp::PlaneKind::HyperPlane) {
            std::puts("--- component statistics (HyperPlane light-load "
                      "run) ---");
            lightSys.dumpStats(std::cout);
            std::puts("");
        }

        table.row({dp::toString(plane), stats::fmt(peak.throughputMtps),
                   stats::fmt(light.avgLatencyUs, 2),
                   stats::fmt(light.p99LatencyUs, 2),
                   stats::fmt(light.ipc, 2),
                   stats::fmt(light.uselessIpc, 2),
                   stats::fmt(light.avgCorePowerW, 2)});
    }
    table.print();
    return 0;
}
