/**
 * @file
 * Example: a miniature NFV data plane on the HyperPlane API.
 *
 * Three tenants send IPv4 packets.  A data-plane thread uses QWAIT to
 * pick the next ready tenant queue (weighted round-robin — tenant 0 is
 * a premium tenant with weight 4), then runs a two-stage network
 * function on each packet: GRE IPv4-in-IPv6 encapsulation followed by
 * AES-CBC-256 encryption of the tunneled packet — the packet
 * encapsulation and crypto forwarding workloads of the paper chained
 * into one pipeline, on real packet bytes.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "crypto/aes.hh"
#include "crypto/cbc.hh"
#include "emu/emu_hyperplane.hh"
#include "net/headers.hh"
#include "queueing/spsc_ring.hh"

using namespace hyperplane;

namespace {

constexpr unsigned numTenants = 3;
constexpr std::uint64_t packetsPerTenant = 400;

net::PacketBuffer
makeTenantPacket(unsigned tenant, std::uint64_t seq)
{
    const std::size_t payload = 200 + 32 * tenant;
    net::PacketBuffer pkt(net::Ipv4Header::wireSize + payload);
    net::Ipv4Header hdr;
    hdr.totalLength =
        static_cast<std::uint16_t>(net::Ipv4Header::wireSize + payload);
    hdr.identification = static_cast<std::uint16_t>(seq);
    hdr.protocol = net::protoUdp;
    hdr.src = 0x0a000000u + tenant;
    hdr.dst = 0xc0a80001u;
    hdr.write(pkt.data());
    for (std::size_t i = 0; i < payload; ++i)
        pkt[net::Ipv4Header::wireSize + i] =
            static_cast<std::uint8_t>(seq + i);
    return pkt;
}

} // namespace

int
main()
{
    emu::EmuHyperPlane hp(numTenants,
                          core::ServicePolicy::WeightedRoundRobin);

    // Per-tenant packet rings + registered queues.
    std::vector<std::unique_ptr<queueing::SpscRing<net::PacketBuffer>>>
        rings;
    std::vector<QueueId> qids;
    for (unsigned t = 0; t < numTenants; ++t) {
        rings.push_back(
            std::make_unique<queueing::SpscRing<net::PacketBuffer>>(
                1024));
        qids.push_back(*hp.addQueue());
    }
    hp.setWeight(qids[0], 4); // premium tenant

    // Tenant producers.
    std::vector<std::thread> producers;
    for (unsigned t = 0; t < numTenants; ++t) {
        producers.emplace_back([&, t] {
            for (std::uint64_t s = 0; s < packetsPerTenant; ++s) {
                while (!rings[t]->tryPush(makeTenantPacket(t, s)))
                    std::this_thread::yield();
                hp.ring(qids[t]);
            }
        });
    }

    // The network functions.
    net::Ipv6Header tunnel;
    tunnel.src[15] = 1;
    tunnel.dst[15] = 2;
    const std::uint8_t key[32] = {0x42};
    const crypto::Aes aes(key, sizeof(key));

    std::vector<std::uint64_t> processed(numTenants, 0);
    std::vector<std::size_t> bytesOut(numTenants, 0);
    std::uint64_t total = 0;

    while (total < numTenants * packetsPerTenant) {
        const auto qid = hp.qwait(std::chrono::seconds(5));
        if (!qid) {
            std::fprintf(stderr, "pipeline stalled\n");
            return 1;
        }
        const std::uint64_t n = hp.take(*qid, 8);
        for (std::uint64_t i = 0; i < n; ++i) {
            auto pkt = rings[*qid]->tryPop();
            if (!pkt) {
                std::fprintf(stderr, "ring/doorbell mismatch\n");
                return 1;
            }
            // Stage 1: GRE tunnel into IPv6.
            if (!net::greEncapsulate(*pkt, tunnel, *qid)) {
                std::fprintf(stderr, "encapsulation failed\n");
                return 1;
            }
            // Stage 2: encrypt the tunneled packet for the wire.
            crypto::Iv iv{};
            iv[0] = static_cast<std::uint8_t>(processed[*qid]);
            const auto cipher =
                crypto::cbcEncrypt(aes, iv, pkt->data(), pkt->size());
            ++processed[*qid];
            bytesOut[*qid] += cipher.size();
        }
        total += n;
    }
    for (auto &p : producers)
        p.join();

    std::puts("NFV pipeline complete (GRE encap + AES-CBC-256):");
    for (unsigned t = 0; t < numTenants; ++t) {
        std::printf(
            "  tenant %u (%s): %llu packets, %zu encrypted bytes\n", t,
            t == 0 ? "premium, weight 4" : "standard",
            static_cast<unsigned long long>(processed[t]),
            bytesOut[t]);
    }
    return 0;
}
