/**
 * @file
 * Quickstart: the HyperPlane programming model in 60 lines.
 *
 * A producer thread feeds work into eight queues; a data-plane thread
 * runs the Algorithm 1 loop against the software emulation front-end
 * (emu::EmuHyperPlane), which has the same semantics as the accelerated
 * QWAIT instructions:
 *
 *   loop:
 *     qid = QWAIT()                 // blocks while all queues idle
 *     n = take(qid)                 // VERIFY + dequeue + RECONSIDER
 *     process the n items
 */

#include <cstdio>
#include <thread>

#include "emu/emu_hyperplane.hh"

using namespace hyperplane;

int
main()
{
    constexpr unsigned numQueues = 8;
    constexpr std::uint64_t itemsPerQueue = 1000;

    emu::EmuHyperPlane hp(numQueues);

    // Control plane: register the tenants' queues (QWAIT-ADD).
    std::vector<QueueId> qids;
    for (unsigned i = 0; i < numQueues; ++i)
        qids.push_back(*hp.addQueue());

    // Tenant/producer side: ring doorbells as work arrives.
    std::thread producer([&] {
        for (std::uint64_t round = 0; round < itemsPerQueue; ++round)
            for (QueueId q : qids)
                hp.ring(q);
    });

    // Data plane: the QWAIT service loop.
    std::vector<std::uint64_t> served(numQueues, 0);
    std::uint64_t total = 0;
    while (total < itemsPerQueue * numQueues) {
        const auto qid = hp.qwait(std::chrono::seconds(5));
        if (!qid) {
            std::fprintf(stderr, "timed out waiting for work\n");
            return 1;
        }
        const std::uint64_t n = hp.take(*qid, /*maxItems=*/16);
        served[*qid] += n; // "process" the items
        total += n;
    }
    producer.join();

    std::printf("served %llu items across %u queues "
                "(%llu QWAIT grants):\n",
                static_cast<unsigned long long>(total), numQueues,
                static_cast<unsigned long long>(hp.grants()));
    for (unsigned i = 0; i < numQueues; ++i)
        std::printf("  queue %u: %llu\n", i,
                    static_cast<unsigned long long>(served[i]));
    return 0;
}
