file(REMOVE_RECURSE
  "CMakeFiles/ext_work_stealing.dir/ext_work_stealing.cpp.o"
  "CMakeFiles/ext_work_stealing.dir/ext_work_stealing.cpp.o.d"
  "ext_work_stealing"
  "ext_work_stealing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_work_stealing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
