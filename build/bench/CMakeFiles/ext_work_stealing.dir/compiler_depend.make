# Empty compiler generated dependencies file for ext_work_stealing.
# This may be replaced when dependencies are built.
