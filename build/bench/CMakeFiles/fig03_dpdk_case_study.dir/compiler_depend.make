# Empty compiler generated dependencies file for fig03_dpdk_case_study.
# This may be replaced when dependencies are built.
