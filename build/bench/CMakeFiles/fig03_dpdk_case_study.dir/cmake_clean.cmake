file(REMOVE_RECURSE
  "CMakeFiles/fig03_dpdk_case_study.dir/fig03_dpdk_case_study.cpp.o"
  "CMakeFiles/fig03_dpdk_case_study.dir/fig03_dpdk_case_study.cpp.o.d"
  "fig03_dpdk_case_study"
  "fig03_dpdk_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dpdk_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
