# Empty compiler generated dependencies file for ext_notification_mechanisms.
# This may be replaced when dependencies are built.
