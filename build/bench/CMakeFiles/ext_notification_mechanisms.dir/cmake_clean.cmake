file(REMOVE_RECURSE
  "CMakeFiles/ext_notification_mechanisms.dir/ext_notification_mechanisms.cpp.o"
  "CMakeFiles/ext_notification_mechanisms.dir/ext_notification_mechanisms.cpp.o.d"
  "ext_notification_mechanisms"
  "ext_notification_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_notification_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
