file(REMOVE_RECURSE
  "CMakeFiles/abl_qwait_latency.dir/abl_qwait_latency.cpp.o"
  "CMakeFiles/abl_qwait_latency.dir/abl_qwait_latency.cpp.o.d"
  "abl_qwait_latency"
  "abl_qwait_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_qwait_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
