# Empty compiler generated dependencies file for abl_qwait_latency.
# This may be replaced when dependencies are built.
