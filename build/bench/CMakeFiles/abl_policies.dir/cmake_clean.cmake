file(REMOVE_RECURSE
  "CMakeFiles/abl_policies.dir/abl_policies.cpp.o"
  "CMakeFiles/abl_policies.dir/abl_policies.cpp.o.d"
  "abl_policies"
  "abl_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
