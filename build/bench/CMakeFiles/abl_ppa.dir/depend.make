# Empty dependencies file for abl_ppa.
# This may be replaced when dependencies are built.
