file(REMOVE_RECURSE
  "CMakeFiles/abl_ppa.dir/abl_ppa.cpp.o"
  "CMakeFiles/abl_ppa.dir/abl_ppa.cpp.o.d"
  "abl_ppa"
  "abl_ppa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ppa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
