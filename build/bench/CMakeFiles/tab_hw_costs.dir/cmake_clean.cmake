file(REMOVE_RECURSE
  "CMakeFiles/tab_hw_costs.dir/tab_hw_costs.cpp.o"
  "CMakeFiles/tab_hw_costs.dir/tab_hw_costs.cpp.o.d"
  "tab_hw_costs"
  "tab_hw_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_hw_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
