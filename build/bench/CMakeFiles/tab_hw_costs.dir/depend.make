# Empty dependencies file for tab_hw_costs.
# This may be replaced when dependencies are built.
