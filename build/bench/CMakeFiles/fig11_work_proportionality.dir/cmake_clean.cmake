file(REMOVE_RECURSE
  "CMakeFiles/fig11_work_proportionality.dir/fig11_work_proportionality.cpp.o"
  "CMakeFiles/fig11_work_proportionality.dir/fig11_work_proportionality.cpp.o.d"
  "fig11_work_proportionality"
  "fig11_work_proportionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_work_proportionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
