# Empty dependencies file for fig11_work_proportionality.
# This may be replaced when dependencies are built.
