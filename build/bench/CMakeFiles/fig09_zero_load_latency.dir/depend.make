# Empty dependencies file for fig09_zero_load_latency.
# This may be replaced when dependencies are built.
