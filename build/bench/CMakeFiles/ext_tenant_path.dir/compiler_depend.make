# Empty compiler generated dependencies file for ext_tenant_path.
# This may be replaced when dependencies are built.
