file(REMOVE_RECURSE
  "CMakeFiles/ext_tenant_path.dir/ext_tenant_path.cpp.o"
  "CMakeFiles/ext_tenant_path.dir/ext_tenant_path.cpp.o.d"
  "ext_tenant_path"
  "ext_tenant_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tenant_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
