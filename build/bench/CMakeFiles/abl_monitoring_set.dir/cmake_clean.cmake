file(REMOVE_RECURSE
  "CMakeFiles/abl_monitoring_set.dir/abl_monitoring_set.cpp.o"
  "CMakeFiles/abl_monitoring_set.dir/abl_monitoring_set.cpp.o.d"
  "abl_monitoring_set"
  "abl_monitoring_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_monitoring_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
