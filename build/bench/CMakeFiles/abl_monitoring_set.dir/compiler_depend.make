# Empty compiler generated dependencies file for abl_monitoring_set.
# This may be replaced when dependencies are built.
