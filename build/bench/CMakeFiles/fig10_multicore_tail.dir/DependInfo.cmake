
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_multicore_tail.cpp" "bench/CMakeFiles/fig10_multicore_tail.dir/fig10_multicore_tail.cpp.o" "gcc" "bench/CMakeFiles/fig10_multicore_tail.dir/fig10_multicore_tail.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
