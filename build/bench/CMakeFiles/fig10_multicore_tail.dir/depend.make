# Empty dependencies file for fig10_multicore_tail.
# This may be replaced when dependencies are built.
