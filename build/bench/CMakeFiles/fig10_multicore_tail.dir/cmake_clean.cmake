file(REMOVE_RECURSE
  "CMakeFiles/fig10_multicore_tail.dir/fig10_multicore_tail.cpp.o"
  "CMakeFiles/fig10_multicore_tail.dir/fig10_multicore_tail.cpp.o.d"
  "fig10_multicore_tail"
  "fig10_multicore_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_multicore_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
