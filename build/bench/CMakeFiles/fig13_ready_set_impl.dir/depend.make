# Empty dependencies file for fig13_ready_set_impl.
# This may be replaced when dependencies are built.
