file(REMOVE_RECURSE
  "CMakeFiles/fig13_ready_set_impl.dir/fig13_ready_set_impl.cpp.o"
  "CMakeFiles/fig13_ready_set_impl.dir/fig13_ready_set_impl.cpp.o.d"
  "fig13_ready_set_impl"
  "fig13_ready_set_impl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ready_set_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
