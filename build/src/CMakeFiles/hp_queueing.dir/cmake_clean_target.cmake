file(REMOVE_RECURSE
  "libhp_queueing.a"
)
