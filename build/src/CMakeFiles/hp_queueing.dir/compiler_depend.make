# Empty compiler generated dependencies file for hp_queueing.
# This may be replaced when dependencies are built.
