file(REMOVE_RECURSE
  "CMakeFiles/hp_queueing.dir/queueing/doorbell.cc.o"
  "CMakeFiles/hp_queueing.dir/queueing/doorbell.cc.o.d"
  "CMakeFiles/hp_queueing.dir/queueing/task_queue.cc.o"
  "CMakeFiles/hp_queueing.dir/queueing/task_queue.cc.o.d"
  "libhp_queueing.a"
  "libhp_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
