# Empty dependencies file for hp_workloads.
# This may be replaced when dependencies are built.
