file(REMOVE_RECURSE
  "CMakeFiles/hp_workloads.dir/workloads/crypto_forwarding.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/crypto_forwarding.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/erasure_coding.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/erasure_coding.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/packet_encapsulation.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/packet_encapsulation.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/packet_steering.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/packet_steering.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/raid_protection.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/raid_protection.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/request_dispatching.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/request_dispatching.cc.o.d"
  "CMakeFiles/hp_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/hp_workloads.dir/workloads/workload.cc.o.d"
  "libhp_workloads.a"
  "libhp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
