file(REMOVE_RECURSE
  "libhp_workloads.a"
)
