
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/crypto_forwarding.cc" "src/CMakeFiles/hp_workloads.dir/workloads/crypto_forwarding.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/crypto_forwarding.cc.o.d"
  "/root/repo/src/workloads/erasure_coding.cc" "src/CMakeFiles/hp_workloads.dir/workloads/erasure_coding.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/erasure_coding.cc.o.d"
  "/root/repo/src/workloads/packet_encapsulation.cc" "src/CMakeFiles/hp_workloads.dir/workloads/packet_encapsulation.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/packet_encapsulation.cc.o.d"
  "/root/repo/src/workloads/packet_steering.cc" "src/CMakeFiles/hp_workloads.dir/workloads/packet_steering.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/packet_steering.cc.o.d"
  "/root/repo/src/workloads/raid_protection.cc" "src/CMakeFiles/hp_workloads.dir/workloads/raid_protection.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/raid_protection.cc.o.d"
  "/root/repo/src/workloads/request_dispatching.cc" "src/CMakeFiles/hp_workloads.dir/workloads/request_dispatching.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/request_dispatching.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/hp_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/hp_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
