file(REMOVE_RECURSE
  "libhp_net.a"
)
