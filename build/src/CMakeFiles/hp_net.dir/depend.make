# Empty dependencies file for hp_net.
# This may be replaced when dependencies are built.
