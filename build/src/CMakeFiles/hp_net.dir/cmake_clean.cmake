file(REMOVE_RECURSE
  "CMakeFiles/hp_net.dir/net/checksum.cc.o"
  "CMakeFiles/hp_net.dir/net/checksum.cc.o.d"
  "CMakeFiles/hp_net.dir/net/headers.cc.o"
  "CMakeFiles/hp_net.dir/net/headers.cc.o.d"
  "CMakeFiles/hp_net.dir/net/packet.cc.o"
  "CMakeFiles/hp_net.dir/net/packet.cc.o.d"
  "libhp_net.a"
  "libhp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
