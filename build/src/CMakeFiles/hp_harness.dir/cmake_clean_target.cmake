file(REMOVE_RECURSE
  "libhp_harness.a"
)
