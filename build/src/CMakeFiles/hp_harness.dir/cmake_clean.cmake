file(REMOVE_RECURSE
  "CMakeFiles/hp_harness.dir/harness/experiment.cc.o"
  "CMakeFiles/hp_harness.dir/harness/experiment.cc.o.d"
  "CMakeFiles/hp_harness.dir/harness/runner.cc.o"
  "CMakeFiles/hp_harness.dir/harness/runner.cc.o.d"
  "libhp_harness.a"
  "libhp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
