# Empty compiler generated dependencies file for hp_harness.
# This may be replaced when dependencies are built.
