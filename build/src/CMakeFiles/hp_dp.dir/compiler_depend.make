# Empty compiler generated dependencies file for hp_dp.
# This may be replaced when dependencies are built.
