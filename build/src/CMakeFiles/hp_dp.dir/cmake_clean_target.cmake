file(REMOVE_RECURSE
  "libhp_dp.a"
)
