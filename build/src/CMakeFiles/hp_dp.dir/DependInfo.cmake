
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/dp_core.cc" "src/CMakeFiles/hp_dp.dir/dp/dp_core.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/dp_core.cc.o.d"
  "/root/repo/src/dp/hyperplane_core.cc" "src/CMakeFiles/hp_dp.dir/dp/hyperplane_core.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/hyperplane_core.cc.o.d"
  "/root/repo/src/dp/interrupt_core.cc" "src/CMakeFiles/hp_dp.dir/dp/interrupt_core.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/interrupt_core.cc.o.d"
  "/root/repo/src/dp/sdp_system.cc" "src/CMakeFiles/hp_dp.dir/dp/sdp_system.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/sdp_system.cc.o.d"
  "/root/repo/src/dp/smt_corunner.cc" "src/CMakeFiles/hp_dp.dir/dp/smt_corunner.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/smt_corunner.cc.o.d"
  "/root/repo/src/dp/spinning_core.cc" "src/CMakeFiles/hp_dp.dir/dp/spinning_core.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/spinning_core.cc.o.d"
  "/root/repo/src/dp/sw_ready_set_core.cc" "src/CMakeFiles/hp_dp.dir/dp/sw_ready_set_core.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/sw_ready_set_core.cc.o.d"
  "/root/repo/src/dp/tenant_model.cc" "src/CMakeFiles/hp_dp.dir/dp/tenant_model.cc.o" "gcc" "src/CMakeFiles/hp_dp.dir/dp/tenant_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
