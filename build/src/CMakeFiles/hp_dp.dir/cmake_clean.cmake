file(REMOVE_RECURSE
  "CMakeFiles/hp_dp.dir/dp/dp_core.cc.o"
  "CMakeFiles/hp_dp.dir/dp/dp_core.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/hyperplane_core.cc.o"
  "CMakeFiles/hp_dp.dir/dp/hyperplane_core.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/interrupt_core.cc.o"
  "CMakeFiles/hp_dp.dir/dp/interrupt_core.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/sdp_system.cc.o"
  "CMakeFiles/hp_dp.dir/dp/sdp_system.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/smt_corunner.cc.o"
  "CMakeFiles/hp_dp.dir/dp/smt_corunner.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/spinning_core.cc.o"
  "CMakeFiles/hp_dp.dir/dp/spinning_core.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/sw_ready_set_core.cc.o"
  "CMakeFiles/hp_dp.dir/dp/sw_ready_set_core.cc.o.d"
  "CMakeFiles/hp_dp.dir/dp/tenant_model.cc.o"
  "CMakeFiles/hp_dp.dir/dp/tenant_model.cc.o.d"
  "libhp_dp.a"
  "libhp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
