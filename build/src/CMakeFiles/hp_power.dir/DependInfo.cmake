
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/core_power.cc" "src/CMakeFiles/hp_power.dir/power/core_power.cc.o" "gcc" "src/CMakeFiles/hp_power.dir/power/core_power.cc.o.d"
  "/root/repo/src/power/cstate.cc" "src/CMakeFiles/hp_power.dir/power/cstate.cc.o" "gcc" "src/CMakeFiles/hp_power.dir/power/cstate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
