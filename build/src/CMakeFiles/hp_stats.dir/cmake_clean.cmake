file(REMOVE_RECURSE
  "CMakeFiles/hp_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/hp_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/hp_stats.dir/stats/registry.cc.o"
  "CMakeFiles/hp_stats.dir/stats/registry.cc.o.d"
  "CMakeFiles/hp_stats.dir/stats/sampler.cc.o"
  "CMakeFiles/hp_stats.dir/stats/sampler.cc.o.d"
  "CMakeFiles/hp_stats.dir/stats/table.cc.o"
  "CMakeFiles/hp_stats.dir/stats/table.cc.o.d"
  "libhp_stats.a"
  "libhp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
