file(REMOVE_RECURSE
  "CMakeFiles/hp_mem.dir/mem/cache.cc.o"
  "CMakeFiles/hp_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/hp_mem.dir/mem/memory_system.cc.o"
  "CMakeFiles/hp_mem.dir/mem/memory_system.cc.o.d"
  "libhp_mem.a"
  "libhp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
