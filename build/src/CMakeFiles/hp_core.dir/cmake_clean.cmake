file(REMOVE_RECURSE
  "CMakeFiles/hp_core.dir/core/bitvec.cc.o"
  "CMakeFiles/hp_core.dir/core/bitvec.cc.o.d"
  "CMakeFiles/hp_core.dir/core/driver.cc.o"
  "CMakeFiles/hp_core.dir/core/driver.cc.o.d"
  "CMakeFiles/hp_core.dir/core/hw_cost.cc.o"
  "CMakeFiles/hp_core.dir/core/hw_cost.cc.o.d"
  "CMakeFiles/hp_core.dir/core/monitoring_set.cc.o"
  "CMakeFiles/hp_core.dir/core/monitoring_set.cc.o.d"
  "CMakeFiles/hp_core.dir/core/ppa.cc.o"
  "CMakeFiles/hp_core.dir/core/ppa.cc.o.d"
  "CMakeFiles/hp_core.dir/core/qwait_unit.cc.o"
  "CMakeFiles/hp_core.dir/core/qwait_unit.cc.o.d"
  "CMakeFiles/hp_core.dir/core/ready_set.cc.o"
  "CMakeFiles/hp_core.dir/core/ready_set.cc.o.d"
  "libhp_core.a"
  "libhp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
