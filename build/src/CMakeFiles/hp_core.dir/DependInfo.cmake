
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitvec.cc" "src/CMakeFiles/hp_core.dir/core/bitvec.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/bitvec.cc.o.d"
  "/root/repo/src/core/driver.cc" "src/CMakeFiles/hp_core.dir/core/driver.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/driver.cc.o.d"
  "/root/repo/src/core/hw_cost.cc" "src/CMakeFiles/hp_core.dir/core/hw_cost.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/hw_cost.cc.o.d"
  "/root/repo/src/core/monitoring_set.cc" "src/CMakeFiles/hp_core.dir/core/monitoring_set.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/monitoring_set.cc.o.d"
  "/root/repo/src/core/ppa.cc" "src/CMakeFiles/hp_core.dir/core/ppa.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/ppa.cc.o.d"
  "/root/repo/src/core/qwait_unit.cc" "src/CMakeFiles/hp_core.dir/core/qwait_unit.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/qwait_unit.cc.o.d"
  "/root/repo/src/core/ready_set.cc" "src/CMakeFiles/hp_core.dir/core/ready_set.cc.o" "gcc" "src/CMakeFiles/hp_core.dir/core/ready_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
