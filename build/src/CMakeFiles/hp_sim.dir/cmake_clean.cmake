file(REMOVE_RECURSE
  "CMakeFiles/hp_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/hp_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/hp_sim.dir/sim/logging.cc.o"
  "CMakeFiles/hp_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/hp_sim.dir/sim/rng.cc.o"
  "CMakeFiles/hp_sim.dir/sim/rng.cc.o.d"
  "libhp_sim.a"
  "libhp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
