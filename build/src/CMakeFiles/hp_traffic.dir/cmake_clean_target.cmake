file(REMOVE_RECURSE
  "libhp_traffic.a"
)
