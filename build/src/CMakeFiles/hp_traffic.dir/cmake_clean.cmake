file(REMOVE_RECURSE
  "CMakeFiles/hp_traffic.dir/traffic/load_controller.cc.o"
  "CMakeFiles/hp_traffic.dir/traffic/load_controller.cc.o.d"
  "CMakeFiles/hp_traffic.dir/traffic/poisson_source.cc.o"
  "CMakeFiles/hp_traffic.dir/traffic/poisson_source.cc.o.d"
  "CMakeFiles/hp_traffic.dir/traffic/shapes.cc.o"
  "CMakeFiles/hp_traffic.dir/traffic/shapes.cc.o.d"
  "libhp_traffic.a"
  "libhp_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
