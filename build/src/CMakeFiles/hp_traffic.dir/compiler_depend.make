# Empty compiler generated dependencies file for hp_traffic.
# This may be replaced when dependencies are built.
