# Empty compiler generated dependencies file for hp_emu.
# This may be replaced when dependencies are built.
