file(REMOVE_RECURSE
  "libhp_emu.a"
)
