file(REMOVE_RECURSE
  "CMakeFiles/hp_emu.dir/emu/data_plane_pool.cc.o"
  "CMakeFiles/hp_emu.dir/emu/data_plane_pool.cc.o.d"
  "CMakeFiles/hp_emu.dir/emu/emu_hyperplane.cc.o"
  "CMakeFiles/hp_emu.dir/emu/emu_hyperplane.cc.o.d"
  "libhp_emu.a"
  "libhp_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
