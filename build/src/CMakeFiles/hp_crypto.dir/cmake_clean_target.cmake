file(REMOVE_RECURSE
  "libhp_crypto.a"
)
