file(REMOVE_RECURSE
  "CMakeFiles/hp_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/hp_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/hp_crypto.dir/crypto/cbc.cc.o"
  "CMakeFiles/hp_crypto.dir/crypto/cbc.cc.o.d"
  "libhp_crypto.a"
  "libhp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
