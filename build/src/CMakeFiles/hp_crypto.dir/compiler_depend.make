# Empty compiler generated dependencies file for hp_crypto.
# This may be replaced when dependencies are built.
