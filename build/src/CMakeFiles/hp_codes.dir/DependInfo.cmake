
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codes/gf256.cc" "src/CMakeFiles/hp_codes.dir/codes/gf256.cc.o" "gcc" "src/CMakeFiles/hp_codes.dir/codes/gf256.cc.o.d"
  "/root/repo/src/codes/matrix.cc" "src/CMakeFiles/hp_codes.dir/codes/matrix.cc.o" "gcc" "src/CMakeFiles/hp_codes.dir/codes/matrix.cc.o.d"
  "/root/repo/src/codes/raid.cc" "src/CMakeFiles/hp_codes.dir/codes/raid.cc.o" "gcc" "src/CMakeFiles/hp_codes.dir/codes/raid.cc.o.d"
  "/root/repo/src/codes/reed_solomon.cc" "src/CMakeFiles/hp_codes.dir/codes/reed_solomon.cc.o" "gcc" "src/CMakeFiles/hp_codes.dir/codes/reed_solomon.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
