file(REMOVE_RECURSE
  "CMakeFiles/hp_codes.dir/codes/gf256.cc.o"
  "CMakeFiles/hp_codes.dir/codes/gf256.cc.o.d"
  "CMakeFiles/hp_codes.dir/codes/matrix.cc.o"
  "CMakeFiles/hp_codes.dir/codes/matrix.cc.o.d"
  "CMakeFiles/hp_codes.dir/codes/raid.cc.o"
  "CMakeFiles/hp_codes.dir/codes/raid.cc.o.d"
  "CMakeFiles/hp_codes.dir/codes/reed_solomon.cc.o"
  "CMakeFiles/hp_codes.dir/codes/reed_solomon.cc.o.d"
  "libhp_codes.a"
  "libhp_codes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hp_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
