file(REMOVE_RECURSE
  "libhp_codes.a"
)
