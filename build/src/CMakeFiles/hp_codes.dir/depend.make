# Empty dependencies file for hp_codes.
# This may be replaced when dependencies are built.
