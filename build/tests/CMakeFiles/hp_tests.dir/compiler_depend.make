# Empty compiler generated dependencies file for hp_tests.
# This may be replaced when dependencies are built.
