
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aes_test.cc" "tests/CMakeFiles/hp_tests.dir/aes_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/aes_test.cc.o.d"
  "/root/repo/tests/bitvec_test.cc" "tests/CMakeFiles/hp_tests.dir/bitvec_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/bitvec_test.cc.o.d"
  "/root/repo/tests/cache_test.cc" "tests/CMakeFiles/hp_tests.dir/cache_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/cache_test.cc.o.d"
  "/root/repo/tests/calibration_test.cc" "tests/CMakeFiles/hp_tests.dir/calibration_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/calibration_test.cc.o.d"
  "/root/repo/tests/checksum_test.cc" "tests/CMakeFiles/hp_tests.dir/checksum_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/checksum_test.cc.o.d"
  "/root/repo/tests/data_plane_pool_test.cc" "tests/CMakeFiles/hp_tests.dir/data_plane_pool_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/data_plane_pool_test.cc.o.d"
  "/root/repo/tests/dp_cores_test.cc" "tests/CMakeFiles/hp_tests.dir/dp_cores_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/dp_cores_test.cc.o.d"
  "/root/repo/tests/driver_test.cc" "tests/CMakeFiles/hp_tests.dir/driver_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/driver_test.cc.o.d"
  "/root/repo/tests/emu_test.cc" "tests/CMakeFiles/hp_tests.dir/emu_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/emu_test.cc.o.d"
  "/root/repo/tests/event_queue_test.cc" "tests/CMakeFiles/hp_tests.dir/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/event_queue_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/hp_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/fuzz_config_test.cc" "tests/CMakeFiles/hp_tests.dir/fuzz_config_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/fuzz_config_test.cc.o.d"
  "/root/repo/tests/gf256_test.cc" "tests/CMakeFiles/hp_tests.dir/gf256_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/gf256_test.cc.o.d"
  "/root/repo/tests/harness_test.cc" "tests/CMakeFiles/hp_tests.dir/harness_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/harness_test.cc.o.d"
  "/root/repo/tests/headers_test.cc" "tests/CMakeFiles/hp_tests.dir/headers_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/headers_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/hp_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/hw_cost_test.cc" "tests/CMakeFiles/hp_tests.dir/hw_cost_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/hw_cost_test.cc.o.d"
  "/root/repo/tests/logging_test.cc" "tests/CMakeFiles/hp_tests.dir/logging_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/logging_test.cc.o.d"
  "/root/repo/tests/matrix_test.cc" "tests/CMakeFiles/hp_tests.dir/matrix_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/matrix_test.cc.o.d"
  "/root/repo/tests/memory_system_test.cc" "tests/CMakeFiles/hp_tests.dir/memory_system_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/memory_system_test.cc.o.d"
  "/root/repo/tests/monitoring_set_test.cc" "tests/CMakeFiles/hp_tests.dir/monitoring_set_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/monitoring_set_test.cc.o.d"
  "/root/repo/tests/packet_test.cc" "tests/CMakeFiles/hp_tests.dir/packet_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/packet_test.cc.o.d"
  "/root/repo/tests/poisson_source_test.cc" "tests/CMakeFiles/hp_tests.dir/poisson_source_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/poisson_source_test.cc.o.d"
  "/root/repo/tests/power_test.cc" "tests/CMakeFiles/hp_tests.dir/power_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/power_test.cc.o.d"
  "/root/repo/tests/ppa_test.cc" "tests/CMakeFiles/hp_tests.dir/ppa_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/ppa_test.cc.o.d"
  "/root/repo/tests/qwait_model_test.cc" "tests/CMakeFiles/hp_tests.dir/qwait_model_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/qwait_model_test.cc.o.d"
  "/root/repo/tests/qwait_unit_test.cc" "tests/CMakeFiles/hp_tests.dir/qwait_unit_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/qwait_unit_test.cc.o.d"
  "/root/repo/tests/raid_test.cc" "tests/CMakeFiles/hp_tests.dir/raid_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/raid_test.cc.o.d"
  "/root/repo/tests/ready_set_test.cc" "tests/CMakeFiles/hp_tests.dir/ready_set_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/ready_set_test.cc.o.d"
  "/root/repo/tests/reed_solomon_test.cc" "tests/CMakeFiles/hp_tests.dir/reed_solomon_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/reed_solomon_test.cc.o.d"
  "/root/repo/tests/registry_test.cc" "tests/CMakeFiles/hp_tests.dir/registry_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/registry_test.cc.o.d"
  "/root/repo/tests/rng_test.cc" "tests/CMakeFiles/hp_tests.dir/rng_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/rng_test.cc.o.d"
  "/root/repo/tests/sampler_test.cc" "tests/CMakeFiles/hp_tests.dir/sampler_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/sampler_test.cc.o.d"
  "/root/repo/tests/sdp_system_test.cc" "tests/CMakeFiles/hp_tests.dir/sdp_system_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/sdp_system_test.cc.o.d"
  "/root/repo/tests/shapes_test.cc" "tests/CMakeFiles/hp_tests.dir/shapes_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/shapes_test.cc.o.d"
  "/root/repo/tests/smt_corunner_test.cc" "tests/CMakeFiles/hp_tests.dir/smt_corunner_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/smt_corunner_test.cc.o.d"
  "/root/repo/tests/spsc_ring_test.cc" "tests/CMakeFiles/hp_tests.dir/spsc_ring_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/spsc_ring_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/hp_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/task_queue_test.cc" "tests/CMakeFiles/hp_tests.dir/task_queue_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/task_queue_test.cc.o.d"
  "/root/repo/tests/tenant_model_test.cc" "tests/CMakeFiles/hp_tests.dir/tenant_model_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/tenant_model_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/hp_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/hp_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_power.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_codes.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
