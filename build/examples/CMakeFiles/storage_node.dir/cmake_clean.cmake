file(REMOVE_RECURSE
  "CMakeFiles/storage_node.dir/storage_node.cpp.o"
  "CMakeFiles/storage_node.dir/storage_node.cpp.o.d"
  "storage_node"
  "storage_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
