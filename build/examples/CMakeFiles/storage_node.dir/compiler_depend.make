# Empty compiler generated dependencies file for storage_node.
# This may be replaced when dependencies are built.
