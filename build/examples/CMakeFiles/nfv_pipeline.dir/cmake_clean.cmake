file(REMOVE_RECURSE
  "CMakeFiles/nfv_pipeline.dir/nfv_pipeline.cpp.o"
  "CMakeFiles/nfv_pipeline.dir/nfv_pipeline.cpp.o.d"
  "nfv_pipeline"
  "nfv_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfv_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
