# Empty compiler generated dependencies file for nfv_pipeline.
# This may be replaced when dependencies are built.
