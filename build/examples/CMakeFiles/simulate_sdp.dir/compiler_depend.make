# Empty compiler generated dependencies file for simulate_sdp.
# This may be replaced when dependencies are built.
