file(REMOVE_RECURSE
  "CMakeFiles/simulate_sdp.dir/simulate_sdp.cpp.o"
  "CMakeFiles/simulate_sdp.dir/simulate_sdp.cpp.o.d"
  "simulate_sdp"
  "simulate_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulate_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
