#include "harness/export.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "stats/json.hh"
#include "telemetry/build_info.hh"

namespace hyperplane {
namespace harness {

std::string
resultsJson(const dp::SdpResults &r)
{
    std::ostringstream os;
    bool first = true;
    auto field = [&os, &first](const char *name, double v) {
        if (!first)
            os << ',';
        first = false;
        os << stats::jsonString(name) << ':' << stats::jsonNumber(v);
    };
    auto ufield = [&field](const char *name, std::uint64_t v) {
        field(name, static_cast<double>(v));
    };

    os << '{';
    field("throughput_mtps", r.throughputMtps);
    ufield("completions", r.completions);
    ufield("generated", r.generated);
    ufield("dropped", r.dropped);
    field("avg_latency_us", r.avgLatencyUs);
    field("p50_latency_us", r.p50LatencyUs);
    field("p99_latency_us", r.p99LatencyUs);
    field("p999_latency_us", r.p999LatencyUs);
    field("max_latency_us", r.maxLatencyUs);
    field("ipc", r.ipc);
    field("useful_ipc", r.usefulIpc);
    field("useless_ipc", r.uselessIpc);
    field("active_fraction", r.activeFraction);
    field("active_ipc", r.activeIpc);
    field("avg_core_power_w", r.avgCorePowerW);
    field("co_runner_ipc", r.coRunnerIpc);
    field("avg_polls_per_task", r.avgPollsPerTask);
    ufield("spurious_wakeups", r.spuriousWakeups);
    ufield("stolen_grants", r.stolenGrants);
    ufield("interrupts", r.interrupts);
    field("background_ipc", r.backgroundIpc);
    field("e2e_avg_latency_us", r.e2eAvgLatencyUs);
    field("e2e_p99_latency_us", r.e2eP99LatencyUs);
    ufield("snoops_dropped", r.snoopsDropped);
    ufield("snoops_delayed", r.snoopsDelayed);
    ufield("lost_injected", r.lostInjected);
    ufield("watchdog_recoveries", r.watchdogRecoveries);
    ufield("self_recoveries", r.selfRecoveries);
    ufield("lost_outstanding", r.lostOutstanding);
    ufield("wakes_suppressed", r.wakesSuppressed);
    ufield("wake_refires", r.wakeRefires);
    ufield("spurious_injected", r.spuriousInjected);
    ufield("storm_writes", r.stormWrites);
    ufield("watchdog_sweeps", r.watchdogSweeps);
    ufield("demotions", r.demotions);
    ufield("promotions", r.promotions);
    ufield("fallback_tasks", r.fallbackTasks);
    ufield("stuck_queues", r.stuckQueues);
    ufield("breakdown_samples", r.breakdownSamples);
    ufield("breakdown_incomplete", r.breakdownIncomplete);
    field("avg_doorbell_to_snoop_us", r.avgDoorbellToSnoopUs);
    field("avg_snoop_to_ready_us", r.avgSnoopToReadyUs);
    field("avg_ready_to_grant_us", r.avgReadyToGrantUs);
    field("avg_grant_to_completion_us", r.avgGrantToCompletionUs);
    field("breakdown_e2e_avg_us", r.breakdownE2eAvgUs);
    field("breakdown_e2e_p99_us", r.breakdownE2eP99Us);
    ufield("trace_events", r.traceEvents);
    ufield("trace_dropped", r.traceDropped);
    os << '}';
    return os.str();
}

std::string
hostJson(unsigned jobs, unsigned simThreads)
{
    const telemetry::BuildInfo &bi = telemetry::buildInfo();
    std::ostringstream os;
    os << "{\"hardware_concurrency\":"
       << std::thread::hardware_concurrency()
       << ",\"git_sha\":" << stats::jsonString(bi.gitSha)
       << ",\"build_type\":" << stats::jsonString(bi.buildType)
       << ",\"compiler\":" << stats::jsonString(bi.compiler)
       << ",\"cpu_features\":" << stats::jsonString(bi.cpuFeatures)
       << ",\"simd\":{\"checksum\":" << stats::jsonString(bi.simdChecksum)
       << ",\"crc32c\":" << stats::jsonString(bi.simdCrc32c)
       << ",\"header_check\":" << stats::jsonString(bi.simdHeaderCheck)
       << ",\"force_scalar\":" << (bi.forcedScalar ? "true" : "false")
       << '}';
    if (jobs)
        os << ",\"jobs\":" << jobs;
    if (simThreads)
        os << ",\"sim_threads\":" << simThreads;
    os << '}';
    return os.str();
}

std::string
loadSweepJson(const std::vector<NamedSweep> &sweeps)
{
    std::ostringstream os;
    os << "{\"sweeps\":[";
    for (std::size_t i = 0; i < sweeps.size(); ++i) {
        if (i != 0)
            os << ',';
        os << "\n{\"name\":" << stats::jsonString(sweeps[i].name)
           << ",\"points\":[";
        const auto &pts = sweeps[i].points;
        for (std::size_t j = 0; j < pts.size(); ++j) {
            if (j != 0)
                os << ',';
            os << "\n{\"load\":" << stats::jsonNumber(pts[j].loadFraction)
               << ",\"results\":" << resultsJson(pts[j].results) << '}';
        }
        os << "]}";
    }
    os << "\n]}\n";
    return os.str();
}

const char *
argValue(int argc, char **argv, const char *flag)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return argv[i + 1];
    }
    return nullptr;
}

bool
argPresent(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream f(path);
    if (!f) {
        hp_warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    f << text;
    f.close();
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace harness
} // namespace hyperplane
