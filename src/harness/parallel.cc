#include "harness/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "harness/export.hh"

namespace hyperplane {
namespace harness {

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
jobsFromArgs(int argc, char **argv)
{
    if (const char *v = argValue(argc, argv, "--jobs")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n >= 1)
            return static_cast<unsigned>(n);
    }
    return defaultJobs();
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    std::atomic<bool> failed{false};

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    const std::size_t nThreads =
        std::min<std::size_t>(jobs, n);
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (std::size_t t = 0; t < nThreads; ++t)
        threads.emplace_back(worker);
    for (auto &th : threads)
        th.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace harness
} // namespace hyperplane
