/**
 * @file
 * Experiment-harness utilities shared by the figure-reproduction
 * benchmark binaries: the Table I configuration banner, analytic
 * saturating rates, and name helpers.
 */

#ifndef HYPERPLANE_HARNESS_EXPERIMENT_HH
#define HYPERPLANE_HARNESS_EXPERIMENT_HH

#include <string>

#include "dp/sdp_system.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace harness {

/** Print the simulated-machine configuration (Table I of the paper). */
void printTableI();

/** Print a one-line banner naming the experiment being reproduced. */
void printExperimentBanner(const std::string &id,
                           const std::string &what);

/**
 * Rough per-item service cycles for a workload at a payload size
 * (workload model + fixed data-plane overhead), used to seed saturating
 * offered rates before calibration.
 */
double roughCyclesPerItem(workloads::Kind kind,
                          std::uint32_t payloadBytes = 0);

/**
 * An offered rate that saturates the configured plane (a small multiple
 * of the analytic capacity).
 */
double saturatingRate(const dp::SdpConfig &cfg);

/** Short label like "spinning/FB" for table rows. */
std::string rowLabel(const dp::SdpConfig &cfg);

} // namespace harness
} // namespace hyperplane

#endif // HYPERPLANE_HARNESS_EXPERIMENT_HH
