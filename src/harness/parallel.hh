/**
 * @file
 * Work-queue thread pool for independent sweep points.
 *
 * Every experiment in the suite is a grid of independent simulations:
 * each point builds its own SdpSystem (private EventQueue, seeded RNG,
 * stats Registry), so points can run on any thread in any order and the
 * merged output — written in deterministic grid order — is bit-identical
 * to a sequential run.  parallelFor() is the only primitive; the sweep
 * helpers in runner.hh build on it.
 *
 * All benches accept `--jobs N` (default: hardware concurrency);
 * `--jobs 1` takes the inline path and reproduces the historical
 * sequential behaviour exactly.
 */

#ifndef HYPERPLANE_HARNESS_PARALLEL_HH
#define HYPERPLANE_HARNESS_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace hyperplane {
namespace harness {

/** Hardware concurrency, clamped to at least 1. */
unsigned defaultJobs();

/**
 * Parse `--jobs N` from the command line.
 *
 * @return N if present and >= 1, otherwise defaultJobs().
 */
unsigned jobsFromArgs(int argc, char **argv);

/**
 * Invoke @p body(i) for every i in [0, n), distributing indices across
 * @p jobs worker threads via a shared atomic counter.
 *
 * @p jobs <= 1 runs inline on the calling thread in index order (no
 * threads are created).  The first exception thrown by any @p body call
 * is rethrown on the calling thread after all workers join; remaining
 * indices may be skipped once an exception is pending.
 *
 * @p body must make each index self-contained: no shared mutable state
 * except what it owns for index i.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &body);

} // namespace harness
} // namespace hyperplane

#endif // HYPERPLANE_HARNESS_PARALLEL_HH
