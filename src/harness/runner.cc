#include "harness/runner.hh"

#include <algorithm>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace harness {

dp::SdpResults
measureAtSaturation(dp::SdpConfig cfg)
{
    cfg.offeredRatePerSec = saturatingRate(cfg);
    // Bound backlogs so saturated queues do not consume host memory.
    cfg.maxQueueDepth = std::min<std::size_t>(cfg.maxQueueDepth, 128);
    return runSdp(cfg);
}

double
calibrateCapacity(dp::SdpConfig cfg)
{
    // A shorter window is enough for a capacity estimate.
    cfg.warmupUs = std::min(cfg.warmupUs, 1000.0);
    cfg.measureUs = std::min(cfg.measureUs, 10000.0);
    const dp::SdpResults r = measureAtSaturation(cfg);
    hp_assert(r.completions > 0, "calibration run completed no tasks");
    return r.throughputMtps * 1e6;
}

dp::SdpResults
runAtLoad(dp::SdpConfig cfg, double capacityPerSec, double loadFraction)
{
    hp_assert(capacityPerSec > 0.0, "capacity must be positive");
    const double f = std::max(loadFraction, 0.005);
    cfg.offeredRatePerSec = capacityPerSec * f;
    return runSdp(cfg);
}

std::vector<LoadPoint>
runLoadSweep(const dp::SdpConfig &cfg, double capacityPerSec,
             const std::vector<double> &loads, unsigned jobs)
{
    std::vector<LoadPoint> out(loads.size());
    parallelFor(loads.size(), jobs, [&](std::size_t i) {
        out[i] = {loads[i], runAtLoad(cfg, capacityPerSec, loads[i])};
    });
    return out;
}

std::vector<SeriesSweep>
runLoadSweeps(const std::vector<SweepSeries> &series,
              const std::vector<double> &loads, unsigned jobs)
{
    const std::size_t nSeries = series.size();
    std::vector<SeriesSweep> out(nSeries);
    for (std::size_t s = 0; s < nSeries; ++s) {
        out[s].name = series[s].name;
        out[s].points.resize(loads.size());
    }

    // Phase 1: calibrate every independent series concurrently.
    parallelFor(nSeries, jobs, [&](std::size_t s) {
        if (series[s].capacityFrom < 0)
            out[s].capacityPerSec = calibrateCapacity(series[s].cfg);
    });
    for (std::size_t s = 0; s < nSeries; ++s) {
        const int from = series[s].capacityFrom;
        if (from >= 0) {
            hp_assert(static_cast<std::size_t>(from) < nSeries &&
                          series[from].capacityFrom < 0,
                      "capacityFrom must name an earlier calibrated "
                      "series");
            out[s].capacityPerSec = out[from].capacityPerSec;
        }
    }

    // Phase 2: every (series, load) point is independent.
    parallelFor(nSeries * loads.size(), jobs, [&](std::size_t i) {
        const std::size_t s = i / loads.size();
        const std::size_t l = i % loads.size();
        out[s].points[l] = {loads[l],
                            runAtLoad(series[s].cfg,
                                      out[s].capacityPerSec, loads[l])};
    });
    return out;
}

std::vector<dp::SdpResults>
runConfigs(const std::vector<dp::SdpConfig> &cfgs, unsigned jobs)
{
    std::vector<dp::SdpResults> out(cfgs.size());
    parallelFor(cfgs.size(), jobs,
                [&](std::size_t i) { out[i] = runSdp(cfgs[i]); });
    return out;
}

std::vector<dp::SdpResults>
runSaturations(const std::vector<dp::SdpConfig> &cfgs, unsigned jobs)
{
    std::vector<dp::SdpResults> out(cfgs.size());
    parallelFor(cfgs.size(), jobs, [&](std::size_t i) {
        out[i] = measureAtSaturation(cfgs[i]);
    });
    return out;
}

dp::SdpConfig
zeroLoadConfig(dp::SdpConfig cfg, std::uint64_t targetCompletions)
{
    // Light traffic (paper: <1% load / ~0.01 MPPS): the inter-arrival
    // gap must dwarf not just the service time but also the *polling
    // sweep* of a spinning plane at the largest queue counts, or the
    // probe measures queueing delay instead of notification latency.
    const double perItem = roughCyclesPerItem(cfg.workload,
                                              cfg.payloadBytes);
    const double rate =
        std::min(clockGHz * 1e9 / perItem / 20.0, 5000.0);
    cfg.offeredRatePerSec = rate;
    const double windowSec =
        static_cast<double>(targetCompletions) / rate;
    cfg.measureUs = windowSec * 1e6;
    cfg.warmupUs = std::min(cfg.warmupUs, cfg.measureUs / 20.0);
    return cfg;
}

std::vector<FaultPoint>
runFaultSweep(dp::SdpConfig cfg, const std::vector<double> &dropRates,
              bool withRecovery, unsigned jobs)
{
    cfg.recovery.watchdog = withRecovery;
    cfg.recovery.gracefulDegradation = withRecovery;
    std::vector<FaultPoint> out(dropRates.size());
    parallelFor(dropRates.size(), jobs, [&](std::size_t i) {
        dp::SdpConfig pointCfg = cfg;
        pointCfg.fault.dropSnoopRate = dropRates[i];
        out[i] = {dropRates[i], runSdp(pointCfg)};
    });
    return out;
}

} // namespace harness
} // namespace hyperplane
