#include "harness/runner.hh"

#include <algorithm>

#include "harness/experiment.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace harness {

dp::SdpResults
measureAtSaturation(dp::SdpConfig cfg)
{
    cfg.offeredRatePerSec = saturatingRate(cfg);
    // Bound backlogs so saturated queues do not consume host memory.
    cfg.maxQueueDepth = std::min<std::size_t>(cfg.maxQueueDepth, 128);
    return runSdp(cfg);
}

double
calibrateCapacity(dp::SdpConfig cfg)
{
    // A shorter window is enough for a capacity estimate.
    cfg.warmupUs = std::min(cfg.warmupUs, 1000.0);
    cfg.measureUs = std::min(cfg.measureUs, 10000.0);
    const dp::SdpResults r = measureAtSaturation(cfg);
    hp_assert(r.completions > 0, "calibration run completed no tasks");
    return r.throughputMtps * 1e6;
}

dp::SdpResults
runAtLoad(dp::SdpConfig cfg, double capacityPerSec, double loadFraction)
{
    hp_assert(capacityPerSec > 0.0, "capacity must be positive");
    const double f = std::max(loadFraction, 0.005);
    cfg.offeredRatePerSec = capacityPerSec * f;
    return runSdp(cfg);
}

std::vector<LoadPoint>
runLoadSweep(const dp::SdpConfig &cfg, double capacityPerSec,
             const std::vector<double> &loads)
{
    std::vector<LoadPoint> out;
    out.reserve(loads.size());
    for (double load : loads)
        out.push_back({load, runAtLoad(cfg, capacityPerSec, load)});
    return out;
}

dp::SdpConfig
zeroLoadConfig(dp::SdpConfig cfg, std::uint64_t targetCompletions)
{
    // Light traffic (paper: <1% load / ~0.01 MPPS): the inter-arrival
    // gap must dwarf not just the service time but also the *polling
    // sweep* of a spinning plane at the largest queue counts, or the
    // probe measures queueing delay instead of notification latency.
    const double perItem = roughCyclesPerItem(cfg.workload,
                                              cfg.payloadBytes);
    const double rate =
        std::min(clockGHz * 1e9 / perItem / 20.0, 5000.0);
    cfg.offeredRatePerSec = rate;
    const double windowSec =
        static_cast<double>(targetCompletions) / rate;
    cfg.measureUs = windowSec * 1e6;
    cfg.warmupUs = std::min(cfg.warmupUs, cfg.measureUs / 20.0);
    return cfg;
}

std::vector<FaultPoint>
runFaultSweep(dp::SdpConfig cfg, const std::vector<double> &dropRates,
              bool withRecovery)
{
    cfg.recovery.watchdog = withRecovery;
    cfg.recovery.gracefulDegradation = withRecovery;
    std::vector<FaultPoint> out;
    out.reserve(dropRates.size());
    for (double rate : dropRates) {
        cfg.fault.dropSnoopRate = rate;
        out.push_back({rate, runSdp(cfg)});
    }
    return out;
}

} // namespace harness
} // namespace hyperplane
