#include "harness/experiment.hh"

#include <cstdio>
#include <memory>

#include "queueing/task_queue.hh"

namespace hyperplane {
namespace harness {

void
printTableI()
{
    std::puts("Simulated machine (Table I)");
    std::puts("  Core        abstract timing @ 3 GHz (8-wide OoO class)");
    std::puts("  L1 I/D      private, 32 KB, 64 B lines, 4-way, 4 cyc");
    std::puts("  LLC         16 MB shared (1 MB/core x 16), 16-way, "
              "40 cyc");
    std::puts("  Memory      200 cyc");
    std::puts("  Coherence   directory MESI (GetM snooped by HyperPlane)");
    std::puts("  HyperPlane  1024-entry monitoring + ready set, QWAIT = "
              "50 cyc");
    std::puts("");
}

void
printExperimentBanner(const std::string &id, const std::string &what)
{
    std::printf("=== %s: %s ===\n\n", id.c_str(), what.c_str());
    std::fflush(stdout);
}

double
roughCyclesPerItem(workloads::Kind kind, std::uint32_t payloadBytes)
{
    const auto wl = workloads::makeWorkload(kind);
    queueing::WorkItem item;
    item.payloadBytes =
        payloadBytes != 0 ? payloadBytes : wl->defaultPayloadBytes();
    // Service + dequeue/notify/buffer overhead (~15% in practice).
    return static_cast<double>(wl->serviceCycles(item)) * 1.15 + 300.0;
}

double
saturatingRate(const dp::SdpConfig &cfg)
{
    const double perItem = roughCyclesPerItem(cfg.workload,
                                              cfg.payloadBytes);
    const double capacity =
        cfg.numCores * clockGHz * 1e9 / perItem;
    return 3.0 * capacity;
}

std::string
rowLabel(const dp::SdpConfig &cfg)
{
    std::string s = dp::toString(cfg.plane);
    s += "/";
    s += traffic::toString(cfg.shape);
    return s;
}

} // namespace harness
} // namespace hyperplane
