/**
 * @file
 * Experiment runners: saturation measurement, capacity calibration, and
 * load sweeps — the common patterns behind Figures 8-13.
 */

#ifndef HYPERPLANE_HARNESS_RUNNER_HH
#define HYPERPLANE_HARNESS_RUNNER_HH

#include <vector>

#include "dp/sdp_system.hh"

namespace hyperplane {
namespace harness {

/**
 * Measure the plane at saturation: offered rate is set to a saturating
 * multiple of the analytic capacity so the measured completion rate is
 * the peak throughput.
 */
dp::SdpResults measureAtSaturation(dp::SdpConfig cfg);

/**
 * Calibrate capacity (tasks/second at saturation) with a short run.
 * Used to convert "x% load" sweeps into offered rates.
 */
double calibrateCapacity(dp::SdpConfig cfg);

/**
 * Run one point of a load sweep.
 *
 * @param cfg            Base configuration (offered rate overwritten).
 * @param capacityPerSec Saturation throughput from calibrateCapacity().
 * @param loadFraction   Offered load as a fraction of capacity.
 */
dp::SdpResults runAtLoad(dp::SdpConfig cfg, double capacityPerSec,
                         double loadFraction);

/** One (load, results) sample of a sweep. */
struct LoadPoint
{
    double loadFraction;
    dp::SdpResults results;
};

/** Sweep offered load across the given fractions. */
std::vector<LoadPoint> runLoadSweep(const dp::SdpConfig &cfg,
                                    double capacityPerSec,
                                    const std::vector<double> &loads);

/**
 * Configure a zero-load (latency-probe) run: a light arrival trickle
 * and a window long enough to gather @p targetCompletions samples.
 */
dp::SdpConfig zeroLoadConfig(dp::SdpConfig cfg,
                             std::uint64_t targetCompletions = 1500);

/** One (fault-rate, results) sample of a fault campaign sweep. */
struct FaultPoint
{
    double dropRate;
    dp::SdpResults results;
};

/**
 * Sweep the lost-doorbell rate across @p dropRates, holding offered
 * load fixed.  @p withRecovery arms the watchdog + graceful
 * degradation; without it the sweep shows the stranding baseline.
 */
std::vector<FaultPoint> runFaultSweep(dp::SdpConfig cfg,
                                      const std::vector<double> &dropRates,
                                      bool withRecovery);

} // namespace harness
} // namespace hyperplane

#endif // HYPERPLANE_HARNESS_RUNNER_HH
