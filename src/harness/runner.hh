/**
 * @file
 * Experiment runners: saturation measurement, capacity calibration, and
 * load sweeps — the common patterns behind Figures 8-13.
 */

#ifndef HYPERPLANE_HARNESS_RUNNER_HH
#define HYPERPLANE_HARNESS_RUNNER_HH

#include <string>
#include <vector>

#include "dp/sdp_system.hh"

namespace hyperplane {
namespace harness {

/**
 * Measure the plane at saturation: offered rate is set to a saturating
 * multiple of the analytic capacity so the measured completion rate is
 * the peak throughput.
 */
dp::SdpResults measureAtSaturation(dp::SdpConfig cfg);

/**
 * Calibrate capacity (tasks/second at saturation) with a short run.
 * Used to convert "x% load" sweeps into offered rates.
 */
double calibrateCapacity(dp::SdpConfig cfg);

/**
 * Run one point of a load sweep.
 *
 * @param cfg            Base configuration (offered rate overwritten).
 * @param capacityPerSec Saturation throughput from calibrateCapacity().
 * @param loadFraction   Offered load as a fraction of capacity.
 */
dp::SdpResults runAtLoad(dp::SdpConfig cfg, double capacityPerSec,
                         double loadFraction);

/** One (load, results) sample of a sweep. */
struct LoadPoint
{
    double loadFraction;
    dp::SdpResults results;
};

/**
 * Sweep offered load across the given fractions.  Points are
 * independent simulations, so with @p jobs > 1 they run concurrently;
 * results come back in load order regardless of jobs.
 */
std::vector<LoadPoint> runLoadSweep(const dp::SdpConfig &cfg,
                                    double capacityPerSec,
                                    const std::vector<double> &loads,
                                    unsigned jobs = 1);

/** One named configuration of a multi-series load sweep. */
struct SweepSeries
{
    std::string name;
    dp::SdpConfig cfg;
    /**
     * Index of another series whose calibrated capacity this series
     * reuses (e.g. fig12's power-optimized plane is driven at the
     * baseline plane's load points); -1 = calibrate independently.
     */
    int capacityFrom = -1;
};

/** Calibrated capacity + sweep results of one SweepSeries. */
struct SeriesSweep
{
    std::string name;
    double capacityPerSec = 0.0;
    std::vector<LoadPoint> points;
};

/**
 * The standard figure shape: for each series, calibrate capacity (or
 * borrow it via capacityFrom), then sweep the load fractions.  All
 * calibrations run concurrently, then all (series x load) points run
 * concurrently across @p jobs workers; output order is (series, load)
 * and bit-identical for every jobs value.
 */
std::vector<SeriesSweep> runLoadSweeps(const std::vector<SweepSeries> &series,
                                       const std::vector<double> &loads,
                                       unsigned jobs = 1);

/** Run each fully-specified config; results in input order. */
std::vector<dp::SdpResults> runConfigs(const std::vector<dp::SdpConfig> &cfgs,
                                       unsigned jobs = 1);

/** measureAtSaturation() over each config; results in input order. */
std::vector<dp::SdpResults>
runSaturations(const std::vector<dp::SdpConfig> &cfgs, unsigned jobs = 1);

/**
 * Configure a zero-load (latency-probe) run: a light arrival trickle
 * and a window long enough to gather @p targetCompletions samples.
 */
dp::SdpConfig zeroLoadConfig(dp::SdpConfig cfg,
                             std::uint64_t targetCompletions = 1500);

/** One (fault-rate, results) sample of a fault campaign sweep. */
struct FaultPoint
{
    double dropRate;
    dp::SdpResults results;
};

/**
 * Sweep the lost-doorbell rate across @p dropRates, holding offered
 * load fixed.  @p withRecovery arms the watchdog + graceful
 * degradation; without it the sweep shows the stranding baseline.
 */
std::vector<FaultPoint> runFaultSweep(dp::SdpConfig cfg,
                                      const std::vector<double> &dropRates,
                                      bool withRecovery,
                                      unsigned jobs = 1);

} // namespace harness
} // namespace hyperplane

#endif // HYPERPLANE_HARNESS_RUNNER_HH
