/**
 * @file
 * Machine-readable run exports for the fig/bench binaries.
 *
 * Every experiment binary prints human tables; these helpers add a
 * parallel JSON surface (--json <file>) so plots and regressions can
 * consume the same numbers without screen-scraping: SdpResults as one
 * JSON object, load sweeps as named point arrays, and tiny argv
 * helpers shared by the binaries.
 */

#ifndef HYPERPLANE_HARNESS_EXPORT_HH
#define HYPERPLANE_HARNESS_EXPORT_HH

#include <string>
#include <vector>

#include "harness/runner.hh"

namespace hyperplane {
namespace harness {

/** Every SdpResults field as one JSON object (keys snake_case). */
std::string resultsJson(const dp::SdpResults &r);

/**
 * Canonical host/build provenance block shared by every BENCH_*.json
 * writer: {"hardware_concurrency":N,"git_sha":...,"build_type":...,
 * "compiler":...,"cpu_features":...,"simd":{...}} plus "jobs" and
 * "sim_threads" when nonzero.  One emitter keeps the schema identical
 * across benches so scripts/bench_check.py can key on it.
 */
std::string hostJson(unsigned jobs = 0, unsigned simThreads = 0);

/** One named load sweep (a line of a figure). */
struct NamedSweep
{
    std::string name;
    std::vector<LoadPoint> points;
};

/**
 * A whole figure's sweeps as one JSON document:
 * {"sweeps":[{"name":...,"points":[{"load":...,"results":{...}}]}]}
 */
std::string loadSweepJson(const std::vector<NamedSweep> &sweeps);

/** Value following @p flag in argv, or null if absent/valueless. */
const char *argValue(int argc, char **argv, const char *flag);

/** True if @p flag appears in argv. */
bool argPresent(int argc, char **argv, const char *flag);

/**
 * Write @p text to @p path (overwrites).  Prints a confirmation or a
 * warning; @return true on success.
 */
bool writeTextFile(const std::string &path, const std::string &text);

} // namespace harness
} // namespace hyperplane

#endif // HYPERPLANE_HARNESS_EXPORT_HH
