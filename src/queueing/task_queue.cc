#include "queueing/task_queue.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace queueing {

TaskQueue::TaskQueue(QueueId qid, Addr doorbellAddr, Addr descriptorAddr)
    : qid_(qid), doorbell_(doorbellAddr), descriptorAddr_(descriptorAddr)
{
}

void
TaskQueue::enqueue(const WorkItem &item)
{
    items_.push_back(item);
    doorbell_.increment();
    ++enqueued_;
    if (items_.size() > maxDepth_)
        maxDepth_ = items_.size();
}

std::optional<WorkItem>
TaskQueue::dequeue()
{
    if (items_.empty())
        return std::nullopt;
    WorkItem item = items_.front();
    items_.pop_front();
    doorbell_.decrement();
    ++dequeued_;
    return item;
}

const WorkItem *
TaskQueue::peek() const
{
    return items_.empty() ? nullptr : &items_.front();
}

QueueSet::QueueSet(unsigned numQueues)
{
    hp_assert(numQueues > 0, "QueueSet needs at least one queue");
    queues_.reserve(numQueues);
    for (unsigned q = 0; q < numQueues; ++q) {
        queues_.emplace_back(q, AddressMap::doorbellAddr(q),
                             AddressMap::descriptorAddr(q));
    }
}

TaskQueue &
QueueSet::operator[](QueueId qid)
{
    hp_assert(qid < queues_.size(), "queue id out of range");
    return queues_[qid];
}

const TaskQueue &
QueueSet::operator[](QueueId qid) const
{
    hp_assert(qid < queues_.size(), "queue id out of range");
    return queues_[qid];
}

std::uint64_t
QueueSet::totalBacklog() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q.depth();
    return n;
}

std::uint64_t
QueueSet::totalEnqueued() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues_)
        n += q.totalEnqueued();
    return n;
}

} // namespace queueing
} // namespace hyperplane
