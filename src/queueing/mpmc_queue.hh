/**
 * @file
 * A real (not simulated) bounded multi-producer multi-consumer queue.
 *
 * The UDP server's RX threads (many producers) hand parsed requests to
 * the QWAIT worker pool (many consumers) through one of these per flow
 * queue; the notification that work exists travels separately, through
 * the EmuHyperPlane doorbell.  Throughput needs are modest (the doorbell
 * device is the bottleneck by design), so this is the boring correct
 * structure: mutex + deque, with monotonic push/pop counters readable
 * without the lock so the server watchdog can audit depth-vs-doorbell
 * deficits race-free.
 */

#ifndef HYPERPLANE_QUEUEING_MPMC_QUEUE_HH
#define HYPERPLANE_QUEUEING_MPMC_QUEUE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace hyperplane {
namespace queueing {

/**
 * Bounded mutex-based MPMC queue.
 *
 * @tparam T Element type; moved in and out.
 */
template <typename T>
class MpmcQueue
{
  public:
    /** @param capacity Maximum queued elements (> 0). */
    explicit MpmcQueue(std::size_t capacity) : capacity_(capacity) {}

    MpmcQueue(const MpmcQueue &) = delete;
    MpmcQueue &operator=(const MpmcQueue &) = delete;

    /**
     * Enqueue one element.
     * @return false if the queue is full (element not consumed).
     */
    bool
    tryPush(T &&value)
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            if (items_.size() >= capacity_) {
                pushFailed_.fetch_add(1, std::memory_order_release);
                return false;
            }
            items_.push_back(std::move(value));
        }
        pushed_.fetch_add(1, std::memory_order_release);
        return true;
    }

    /** Dequeue one element, or std::nullopt if empty. */
    std::optional<T>
    tryPop()
    {
        std::optional<T> out;
        {
            std::lock_guard<std::mutex> lock(m_);
            if (items_.empty())
                return std::nullopt;
            out.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        popped_.fetch_add(1, std::memory_order_release);
        return out;
    }

    /**
     * Dequeue up to @p max elements into @p out (appended).
     * @return Number dequeued.
     */
    std::size_t
    popBatch(std::vector<T> &out, std::size_t max)
    {
        std::size_t n = 0;
        {
            std::lock_guard<std::mutex> lock(m_);
            while (n < max && !items_.empty()) {
                out.push_back(std::move(items_.front()));
                items_.pop_front();
                ++n;
            }
        }
        if (n)
            popped_.fetch_add(n, std::memory_order_release);
        return n;
    }

    /** Lock-free approximate occupancy (exact when quiescent). */
    std::size_t
    size() const
    {
        const std::uint64_t pushed =
            pushed_.load(std::memory_order_acquire);
        const std::uint64_t popped =
            popped_.load(std::memory_order_acquire);
        return pushed >= popped
                   ? static_cast<std::size_t>(pushed - popped)
                   : 0;
    }

    bool empty() const { return size() == 0; }
    std::size_t capacity() const { return capacity_; }

    /** Monotonic counters for deficit audits (lock-free reads). */
    std::uint64_t
    totalPushed() const
    {
        return pushed_.load(std::memory_order_acquire);
    }
    std::uint64_t
    totalPopped() const
    {
        return popped_.load(std::memory_order_acquire);
    }
    /** Rejected pushes (queue full); elements were never enqueued. */
    std::uint64_t
    totalPushFailed() const
    {
        return pushFailed_.load(std::memory_order_acquire);
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex m_;
    std::deque<T> items_;
    std::atomic<std::uint64_t> pushed_{0};
    std::atomic<std::uint64_t> popped_{0};
    std::atomic<std::uint64_t> pushFailed_{0};
};

} // namespace queueing
} // namespace hyperplane

#endif // HYPERPLANE_QUEUEING_MPMC_QUEUE_HH
