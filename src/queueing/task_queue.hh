/**
 * @file
 * Simulated task queues and work items.
 *
 * A TaskQueue is one device-side memory-mapped queue from Figure 2 of the
 * paper: a descriptor ring (modelled as a deque of WorkItems) plus a
 * doorbell counter at a pinned address.  QueueSet owns all the queues of
 * one experiment and allocates their doorbell/descriptor addresses from
 * the reserved ranges.
 */

#ifndef HYPERPLANE_QUEUEING_TASK_QUEUE_HH
#define HYPERPLANE_QUEUEING_TASK_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "queueing/doorbell.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace queueing {

/** One unit of data-plane work (a packet batch / storage request). */
struct WorkItem
{
    std::uint64_t seq = 0;       ///< global arrival sequence number
    QueueId qid = invalidQueueId;
    Tick arrivalTick = 0;        ///< when the producer enqueued it
    std::uint32_t payloadBytes = 0;
    std::uint32_t flowId = 0;    ///< used by steering/dispatch workloads
};

/** A device-side queue: descriptor ring + doorbell. */
class TaskQueue
{
  public:
    TaskQueue(QueueId qid, Addr doorbellAddr, Addr descriptorAddr);

    QueueId qid() const { return qid_; }
    Addr doorbellAddr() const { return doorbell_.addr(); }
    Addr descriptorAddr() const { return descriptorAddr_; }

    const Doorbell &doorbell() const { return doorbell_; }
    Doorbell &doorbell() { return doorbell_; }

    bool empty() const { return items_.empty(); }
    std::size_t depth() const { return items_.size(); }

    /**
     * Producer: append a work item and bump the doorbell.
     * The caller is responsible for modelling the producer's memory
     * traffic (MemorySystem::deviceWrite on the doorbell address).
     */
    void enqueue(const WorkItem &item);

    /**
     * Consumer: remove the head item and decrement the doorbell.
     * @return std::nullopt if the queue is empty.
     */
    std::optional<WorkItem> dequeue();

    /** Peek at the head without dequeuing. */
    const WorkItem *peek() const;

    std::uint64_t totalEnqueued() const { return enqueued_; }
    std::uint64_t totalDequeued() const { return dequeued_; }

    /** Largest depth ever observed. */
    std::size_t maxDepth() const { return maxDepth_; }

  private:
    QueueId qid_;
    Doorbell doorbell_;
    Addr descriptorAddr_;
    std::deque<WorkItem> items_;
    std::uint64_t enqueued_ = 0;
    std::uint64_t dequeued_ = 0;
    std::size_t maxDepth_ = 0;
};

/** All the queues of one experiment, with address allocation. */
class QueueSet
{
  public:
    /** @param numQueues Number of device-side queues to create. */
    explicit QueueSet(unsigned numQueues);

    unsigned size() const { return static_cast<unsigned>(queues_.size()); }

    TaskQueue &operator[](QueueId qid);
    const TaskQueue &operator[](QueueId qid) const;

    /** Doorbell range covering every queue (for snooping / QWAIT_init). */
    Addr doorbellRangeLo() const { return AddressMap::doorbellBase; }
    Addr doorbellRangeHi() const
    {
        return AddressMap::doorbellRangeEnd(size());
    }

    /** Sum of depths across all queues. */
    std::uint64_t totalBacklog() const;

    /** Total items ever enqueued across all queues. */
    std::uint64_t totalEnqueued() const;

  private:
    std::vector<TaskQueue> queues_;
};

} // namespace queueing
} // namespace hyperplane

#endif // HYPERPLANE_QUEUEING_TASK_QUEUE_HH
