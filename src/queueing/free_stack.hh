/**
 * @file
 * Lock-free free-list of small integer indices (a Treiber stack).
 *
 * The zero-copy frame pool keeps its free frames here: push and pop
 * are one CAS each, with no mutex on the per-packet path.  The head
 * packs a 32-bit version tag next to the 32-bit top index so a pop
 * that races with a pop+push of the same index (the classic ABA) fails
 * its CAS and retries.  Next-pointers live in a caller-owned array
 * indexed by element, so the stack itself allocates once.
 */

#ifndef HYPERPLANE_QUEUEING_FREE_STACK_HH
#define HYPERPLANE_QUEUEING_FREE_STACK_HH

#include <atomic>
#include <cstdint>
#include <memory>

namespace hyperplane {
namespace queueing {

/** MPMC stack of indices in [0, capacity). */
class FreeIndexStack
{
  public:
    /** Created full: holds every index in [0, capacity). */
    explicit FreeIndexStack(std::uint32_t capacity)
        : capacity_(capacity),
          next_(std::make_unique<std::atomic<std::uint32_t>[]>(
              capacity ? capacity : 1))
    {
        for (std::uint32_t i = 0; i < capacity; ++i)
            next_[i].store(i + 1 < capacity ? i + 1 : kNil,
                           std::memory_order_relaxed);
        head_.store(pack(capacity ? 0 : kNil, 0),
                    std::memory_order_relaxed);
    }

    FreeIndexStack(const FreeIndexStack &) = delete;
    FreeIndexStack &operator=(const FreeIndexStack &) = delete;

    std::uint32_t capacity() const { return capacity_; }

    /** Pop an index. @return false when empty. */
    bool tryPop(std::uint32_t &out)
    {
        std::uint64_t head = head_.load(std::memory_order_acquire);
        for (;;) {
            const std::uint32_t top = unpackIndex(head);
            if (top == kNil)
                return false;
            const std::uint64_t next =
                pack(next_[top].load(std::memory_order_relaxed),
                     unpackTag(head) + 1);
            if (head_.compare_exchange_weak(head, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
                out = top;
                return true;
            }
        }
    }

    /** Push @p idx. @pre idx < capacity() and not currently in the stack. */
    void push(std::uint32_t idx)
    {
        std::uint64_t head = head_.load(std::memory_order_relaxed);
        for (;;) {
            next_[idx].store(unpackIndex(head),
                             std::memory_order_relaxed);
            const std::uint64_t next = pack(idx, unpackTag(head) + 1);
            if (head_.compare_exchange_weak(head, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
                return;
            }
        }
    }

    /** Free entries right now (racy; for telemetry, not decisions). */
    std::uint32_t approxSize() const
    {
        std::uint32_t n = 0;
        std::uint32_t i =
            unpackIndex(head_.load(std::memory_order_acquire));
        while (i != kNil && n <= capacity_) {
            ++n;
            i = next_[i].load(std::memory_order_relaxed);
        }
        return n;
    }

  private:
    static constexpr std::uint32_t kNil = 0xffffffffu;

    static std::uint64_t pack(std::uint32_t index, std::uint32_t tag)
    {
        return (static_cast<std::uint64_t>(tag) << 32) | index;
    }
    static std::uint32_t unpackIndex(std::uint64_t head)
    {
        return static_cast<std::uint32_t>(head);
    }
    static std::uint32_t unpackTag(std::uint64_t head)
    {
        return static_cast<std::uint32_t>(head >> 32);
    }

    const std::uint32_t capacity_;
    std::unique_ptr<std::atomic<std::uint32_t>[]> next_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
};

} // namespace queueing
} // namespace hyperplane

#endif // HYPERPLANE_QUEUEING_FREE_STACK_HH
