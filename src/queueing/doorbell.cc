// Doorbell and AddressMap are header-only; this file exists so the
// queueing library has a translation unit and to host the static
// definitions below if they ever grow out-of-line logic.

#include "queueing/doorbell.hh"

namespace hyperplane {
namespace queueing {

// AddressMap constants are constexpr; nothing further to define.

} // namespace queueing
} // namespace hyperplane
