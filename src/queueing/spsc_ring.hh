/**
 * @file
 * A real (not simulated) lock-free single-producer single-consumer ring.
 *
 * Used by the emulation front-end (emu/) where tenants and data-plane
 * threads are actual OS threads.  The design is the classic bounded ring
 * with cache-line-separated head and tail indices; producers and
 * consumers synchronize only through acquire/release pairs on those
 * indices, the standard structure of DPDK rte_ring in SP/SC mode.
 */

#ifndef HYPERPLANE_QUEUEING_SPSC_RING_HH
#define HYPERPLANE_QUEUEING_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <new>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace hyperplane {
namespace queueing {

/**
 * Bounded lock-free SPSC queue.
 *
 * @tparam T Element type; moved in and out.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity Maximum elements; rounded up to a power of two. */
    explicit SpscRing(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        slots_.resize(cap + 0);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /**
     * Producer: enqueue one element.
     * @return false if the ring is full.
     */
    bool
    tryPush(T value)
    {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        const std::size_t head = head_.load(std::memory_order_acquire);
        if (tail - head > mask_)
            return false; // full
        slots_[tail & mask_] = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer: dequeue one element.
     * @return std::nullopt if the ring is empty.
     */
    std::optional<T>
    tryPop()
    {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        if (head == tail)
            return std::nullopt;
        T value = std::move(slots_[head & mask_]);
        head_.store(head + 1, std::memory_order_release);
        return value;
    }

    /** Approximate occupancy (exact when called by either endpoint). */
    std::size_t
    size() const
    {
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        const std::size_t head = head_.load(std::memory_order_acquire);
        return tail - head;
    }

    bool empty() const { return size() == 0; }

    std::size_t capacity() const { return mask_ + 1; }

  private:
    static constexpr std::size_t lineSize = 64;

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(lineSize) std::atomic<std::size_t> head_{0};
    alignas(lineSize) std::atomic<std::size_t> tail_{0};
};

} // namespace queueing
} // namespace hyperplane

#endif // HYPERPLANE_QUEUEING_SPSC_RING_HH
