/**
 * @file
 * Doorbell words and the simulated-machine address map.
 *
 * Per Section III-A of the paper, each I/O queue has a doorbell word in
 * memory whose field is an atomic counter of queued elements (semaphore
 * semantics): producers increment after enqueuing, consumers decrement
 * before dequeuing.  Producer writes are the coherence transactions the
 * monitoring set snoops.
 *
 * The simulator is single-threaded, so Doorbell is a plain counter; the
 * real-thread equivalent for the emulation front-end lives in emu/.
 */

#ifndef HYPERPLANE_QUEUEING_DOORBELL_HH
#define HYPERPLANE_QUEUEING_DOORBELL_HH

#include <cstdint>

#include "sim/types.hh"

namespace hyperplane {
namespace queueing {

/**
 * Simulated-machine address map.  Doorbells live in a dedicated pinned
 * range reserved by the (modelled) kernel driver, one per cache line so
 * false sharing between doorbells cannot occur; queue descriptors and
 * task-data buffers live in their own regions.
 */
struct AddressMap
{
    static constexpr Addr doorbellBase = 0x1000'0000;
    static constexpr Addr descriptorBase = 0x2000'0000;
    static constexpr Addr tenantDoorbellBase = 0x3000'0000;
    static constexpr Addr taskDataBase = 0x4000'0000;
    /** Per-queue dequeue synchronization (lock/CAS) lines. */
    static constexpr Addr syncBase = 0x9000'0000;

    static Addr doorbellAddr(QueueId qid)
    {
        return doorbellBase + static_cast<Addr>(qid) * cacheLineBytes;
    }

    static Addr descriptorAddr(QueueId qid)
    {
        return descriptorBase + static_cast<Addr>(qid) * cacheLineBytes;
    }

    static Addr tenantDoorbellAddr(QueueId qid)
    {
        return tenantDoorbellBase +
               static_cast<Addr>(qid) * cacheLineBytes;
    }

    static Addr syncAddr(QueueId qid)
    {
        return syncBase + static_cast<Addr>(qid) * cacheLineBytes;
    }

    /** End (exclusive) of the doorbell range for @p numQueues queues. */
    static Addr doorbellRangeEnd(unsigned numQueues)
    {
        return doorbellBase +
               static_cast<Addr>(numQueues) * cacheLineBytes;
    }
};

/** A queue-occupancy counter at a fixed simulated address. */
class Doorbell
{
  public:
    Doorbell() = default;
    explicit Doorbell(Addr addr) : addr_(addr) {}

    Addr addr() const { return addr_; }

    /** Number of elements currently advertised in the queue. */
    std::uint64_t count() const { return count_; }

    bool empty() const { return count_ == 0; }

    /** Producer side: advertise @p n new elements. */
    void increment(std::uint64_t n = 1) { count_ += n; }

    /**
     * Consumer side: claim up to @p n elements.
     * @return Elements actually claimed (may be less than @p n).
     */
    std::uint64_t
    decrement(std::uint64_t n = 1)
    {
        const std::uint64_t take = n < count_ ? n : count_;
        count_ -= take;
        return take;
    }

  private:
    Addr addr_ = 0;
    std::uint64_t count_ = 0;
};

} // namespace queueing
} // namespace hyperplane

#endif // HYPERPLANE_QUEUEING_DOORBELL_HH
