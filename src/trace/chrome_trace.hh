/**
 * @file
 * Chrome trace-event JSON exporter.
 *
 * Serializes a Tracer's buffer into the Trace Event Format understood
 * by chrome://tracing and ui.perfetto.dev: one JSON object with a
 * "traceEvents" array of instant ("i") and duration begin/end
 * ("B"/"E") events, timestamps in (fractional) microseconds, plus
 * thread_name metadata so tracks render as "core0", "hw0", "device",
 * "watchdog".
 */

#ifndef HYPERPLANE_TRACE_CHROME_TRACE_HH
#define HYPERPLANE_TRACE_CHROME_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace hyperplane {
namespace trace {

/** Write the events as a complete Chrome trace JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceEvent> &events);

/** Convenience: export a tracer's current buffer. */
void writeChromeTrace(std::ostream &os, const Tracer &tracer);

/** Same document as a string (tests, small traces). */
std::string chromeTraceJson(const std::vector<TraceEvent> &events);

} // namespace trace
} // namespace hyperplane

#endif // HYPERPLANE_TRACE_CHROME_TRACE_HH
