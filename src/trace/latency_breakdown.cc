#include "trace/latency_breakdown.hh"

namespace hyperplane {
namespace trace {

void
LatencyBreakdown::onDoorbell(QueueId qid, std::uint64_t seq, Tick t)
{
    // An open episode means the earlier head task is still in flight;
    // this arrival rides its activation and is not a fresh episode.
    pending_.try_emplace(qid, Pending{seq, t, 0, 0, 0, false, false});
}

void
LatencyBreakdown::onActivate(QueueId qid, Tick t,
                             Tick monitorLookupCycles)
{
    auto it = pending_.find(qid);
    if (it == pending_.end() || it->second.activated)
        return;
    Pending &p = it->second;
    p.tSnoop = t > p.tDoorbell + monitorLookupCycles
        ? t - monitorLookupCycles
        : p.tDoorbell;
    p.tReady = t;
    p.activated = true;
}

void
LatencyBreakdown::onGrant(QueueId qid, Tick t)
{
    auto it = pending_.find(qid);
    if (it == pending_.end() || !it->second.activated ||
        it->second.granted) {
        return;
    }
    it->second.tGrant = t < it->second.tReady ? it->second.tReady : t;
    it->second.granted = true;
}

void
LatencyBreakdown::onCompletion(QueueId qid, std::uint64_t seq, Tick t)
{
    auto it = pending_.find(qid);
    if (it == pending_.end() || it->second.seq != seq)
        return; // a later batch item, or an untracked episode
    const Pending p = it->second;
    pending_.erase(it);
    if (!p.activated || !p.granted || t < p.tGrant) {
        ++incomplete_; // e.g. served by the software-polled fallback
        return;
    }
    d2s_.record(ticksToUs(p.tSnoop - p.tDoorbell));
    s2r_.record(ticksToUs(p.tReady - p.tSnoop));
    r2g_.record(ticksToUs(p.tGrant - p.tReady));
    g2c_.record(ticksToUs(t - p.tGrant));
    e2e_.record(ticksToUs(t - p.tDoorbell));
    ++samples_;
}

void
LatencyBreakdown::clear()
{
    pending_.clear();
    samples_ = 0;
    incomplete_ = 0;
    d2s_.clear();
    s2r_.clear();
    r2g_.clear();
    g2c_.clear();
    e2e_.clear();
}

} // namespace trace
} // namespace hyperplane
