/**
 * @file
 * Runtime tracing configuration, embedded in dp::SdpConfig.
 *
 * The compile-time gate is HYPERPLANE_TRACE (see trace.hh); this struct
 * is the runtime gate.  With enable unset, no tracer or breakdown
 * tracker is constructed and every stamp site reduces to a null-pointer
 * test.  The time-series sampler is gated separately by its period so
 * counter trajectories can be captured without event tracing.
 */

#ifndef HYPERPLANE_TRACE_TRACE_CONFIG_HH
#define HYPERPLANE_TRACE_TRACE_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

namespace hyperplane {
namespace trace {

/** Per-run observability knobs. */
struct TraceConfig
{
    /** Record notification-path events + the latency breakdown. */
    bool enable = false;
    /** Ring-buffer capacity, events (overflow drops the oldest). */
    std::size_t bufferCapacity = 1 << 16;
    /** Snapshot registry counters every this many us; 0 disables. */
    double sampleEveryUs = 0.0;
    /** Registry paths to sample; empty = every registered entry. */
    std::vector<std::string> samplePaths;
};

} // namespace trace
} // namespace hyperplane

#endif // HYPERPLANE_TRACE_TRACE_CONFIG_HH
