#include "trace/trace.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace trace {

const char *
toString(Stage s)
{
    switch (s) {
      case Stage::DoorbellWrite:
        return "doorbell_write";
      case Stage::SnoopDeliver:
        return "snoop_deliver";
      case Stage::MonitorHit:
        return "monitor_hit";
      case Stage::MonitorConflict:
        return "monitor_conflict";
      case Stage::ReadyActivate:
        return "ready_activate";
      case Stage::ReadyGrant:
        return "ready_grant";
      case Stage::QwaitReturn:
        return "qwait_return";
      case Stage::Service:
        return "service";
      case Stage::Halt:
        return "halt";
      case Stage::Wake:
        return "wake";
      case Stage::SpuriousWake:
        return "spurious_wake";
      case Stage::SnoopDropped:
        return "snoop_dropped";
      case Stage::SnoopDelayed:
        return "snoop_delayed";
      case Stage::WatchdogSweep:
        return "watchdog_sweep";
      case Stage::WatchdogRecovery:
        return "watchdog_recovery";
      case Stage::WakeRefire:
        return "wake_refire";
      case Stage::Demotion:
        return "demotion";
      case Stage::Promotion:
        return "promotion";
      case Stage::FallbackServe:
        return "fallback_serve";
      case Stage::Completion:
        return "completion";
      case Stage::AdmissionShed:
        return "admission_shed";
    }
    return "?";
}

std::string
trackName(std::uint32_t track)
{
    if (track == trackDevice)
        return "device";
    if (track == trackWatchdog)
        return "watchdog";
    if (track >= trackHardwareBase)
        return "hw" + std::to_string(track - trackHardwareBase);
    return "core" + std::to_string(track);
}

Tracer::Tracer(std::size_t capacity)
    : buf_(std::max<std::size_t>(1, capacity))
{
}

void
Tracer::push(const TraceEvent &e)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(m_);
    ++recorded_;
    if (count_ < buf_.size()) {
        buf_[(head_ + count_) % buf_.size()] = e;
        ++count_;
        return;
    }
    // Drop-oldest: overwrite the head slot and advance it.
    buf_[head_] = e;
    head_ = (head_ + 1) % buf_.size();
    ++dropped_;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<TraceEvent> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(m_);
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    recorded_ = 0;
}

SpanCheck
checkSpanPairing(const std::vector<TraceEvent> &events)
{
    // Per-track stack of open Begin stages.
    std::vector<std::pair<std::uint32_t, std::vector<Stage>>> stacks;
    auto stackFor = [&stacks](std::uint32_t track) -> std::vector<Stage> & {
        for (auto &[t, s] : stacks) {
            if (t == track)
                return s;
        }
        stacks.emplace_back(track, std::vector<Stage>{});
        return stacks.back().second;
    };

    for (const auto &e : events) {
        if (e.phase == Phase::Begin) {
            stackFor(e.track).push_back(e.stage);
        } else if (e.phase == Phase::End) {
            auto &stack = stackFor(e.track);
            if (stack.empty()) {
                return {false,
                        std::string("unmatched End(") +
                            toString(e.stage) + ") on track " +
                            trackName(e.track)};
            }
            if (stack.back() != e.stage) {
                return {false, std::string("End(") + toString(e.stage) +
                                   ") closes Begin(" +
                                   toString(stack.back()) +
                                   ") on track " + trackName(e.track)};
            }
            stack.pop_back();
        }
    }
    for (const auto &[track, stack] : stacks) {
        if (!stack.empty()) {
            return {false, std::string("unclosed Begin(") +
                               toString(stack.back()) + ") on track " +
                               trackName(track)};
        }
    }
    return {};
}

} // namespace trace
} // namespace hyperplane
