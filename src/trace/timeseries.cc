#include "trace/timeseries.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace hyperplane {
namespace trace {

void
TimeSeries::setColumns(std::vector<std::string> columns)
{
    columns_ = std::move(columns);
    rows_.clear();
}

void
TimeSeries::appendRow(Tick t, std::vector<double> values)
{
    hp_assert(values.size() == columns_.size(),
              "time-series row width %zu != column count %zu",
              values.size(), columns_.size());
    rows_.push_back({t, std::move(values)});
}

void
TimeSeries::writeCsv(std::ostream &os) const
{
    os << "tick,time_us";
    for (const auto &c : columns_)
        os << ',' << c;
    os << '\n';
    for (const auto &row : rows_) {
        os << row.tick << ',' << stats::jsonNumber(ticksToUs(row.tick));
        for (double v : row.values)
            os << ',' << stats::jsonNumber(v);
        os << '\n';
    }
}

void
TimeSeries::writeJson(std::ostream &os) const
{
    os << "{\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (i != 0)
            os << ',';
        os << stats::jsonString(columns_[i]);
    }
    os << "],\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        if (i != 0)
            os << ',';
        os << "\n{\"tick\":" << rows_[i].tick << ",\"time_us\":"
           << stats::jsonNumber(ticksToUs(rows_[i].tick))
           << ",\"values\":[";
        for (std::size_t j = 0; j < rows_[i].values.size(); ++j) {
            if (j != 0)
                os << ',';
            os << stats::jsonNumber(rows_[i].values[j]);
        }
        os << "]}";
    }
    os << "\n]}\n";
}

RegistrySampler::RegistrySampler(EventQueue &eq,
                                 const stats::Registry &registry,
                                 std::vector<std::string> paths,
                                 Tick period)
    : eq_(eq), registry_(registry), paths_(std::move(paths)),
      period_(std::max<Tick>(1, period))
{
}

void
RegistrySampler::start()
{
    if (running_)
        return;
    if (paths_.empty()) {
        paths_ = registry_.paths();
    } else {
        // Unknown paths would sample as NaN forever; drop them loudly.
        std::erase_if(paths_, [this](const std::string &p) {
            if (registry_.has(p))
                return false;
            hp_warn("time-series sampler: unknown stat path '%s' "
                    "dropped",
                    p.c_str());
            return true;
        });
    }
    series_.setColumns(paths_);
    running_ = true;
    sampleOnce();
    scheduleNext();
}

void
RegistrySampler::stop()
{
    running_ = false;
}

void
RegistrySampler::sampleOnce()
{
    std::vector<double> values;
    values.reserve(paths_.size());
    for (const auto &p : paths_)
        values.push_back(registry_.value(p));
    series_.appendRow(eq_.now(), std::move(values));
}

void
RegistrySampler::scheduleNext()
{
    eq_.scheduleIn(period_, [this] {
        if (!running_)
            return;
        sampleOnce();
        scheduleNext();
    });
}

} // namespace trace
} // namespace hyperplane
