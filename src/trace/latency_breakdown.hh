/**
 * @file
 * Per-notification latency breakdown.
 *
 * Joins the lifecycle of one notification episode — the task whose
 * arrival turned a queue's doorbell from empty to non-empty — across
 * the stages of the HyperPlane notification path, and accumulates the
 * stage deltas into histograms:
 *
 *   doorbell -> snoop      producer write until the coherence snoop
 *                          reached the monitoring set (captures
 *                          injected snoop delays and watchdog-rescue
 *                          latency for lost notifications);
 *   snoop -> ready         monitoring-set lookup until the ready bit
 *                          was set (the tag-array lookup cost);
 *   ready -> grant         queueing inside the ready set until a core's
 *                          QWAIT returned this qid;
 *   grant -> completion    verify + dequeue + transport processing.
 *
 * The boundaries telescope, so per episode the four deltas sum exactly
 * to the end-to-end latency (also recorded, as endToEndUs()).  Only
 * empty->non-empty arrivals open an episode: arrivals into a backlogged
 * queue ride an existing activation and have no notification latency of
 * their own.
 */

#ifndef HYPERPLANE_TRACE_LATENCY_BREAKDOWN_HH
#define HYPERPLANE_TRACE_LATENCY_BREAKDOWN_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"
#include "stats/histogram.hh"

namespace hyperplane {
namespace trace {

/** Lifecycle joiner + per-stage histograms (values in microseconds). */
class LatencyBreakdown
{
  public:
    /**
     * A producer write made queue @p qid non-empty with the task
     * numbered @p seq; opens an episode (ignored while one is open).
     */
    void onDoorbell(QueueId qid, std::uint64_t seq, Tick t);

    /**
     * The queue was activated in the ready set at @p t.  The snoop
     * timestamp is back-dated by @p monitorLookupCycles (the
     * monitoring-set tag lookup the activation rode through), clamped
     * to the doorbell write.  Duplicate activations are ignored.
     */
    void onActivate(QueueId qid, Tick t, Tick monitorLookupCycles = 0);

    /** A core's QWAIT returned this queue at @p t (first grant wins). */
    void onGrant(QueueId qid, Tick t);

    /**
     * Task @p seq of @p qid completed at @p t.  Closes the episode and
     * records the stage histograms iff @p seq is the episode's task and
     * the full path was observed; episodes served without a grant
     * (e.g. via the software-polled fallback set) close unrecorded.
     */
    void onCompletion(QueueId qid, std::uint64_t seq, Tick t);

    /** Episodes fully recorded. */
    std::uint64_t samples() const { return samples_; }

    /** Episodes closed without a complete stage record. */
    std::uint64_t incomplete() const { return incomplete_; }

    /** Episodes currently open. */
    std::size_t open() const { return pending_.size(); }

    const stats::LogHistogram &doorbellToSnoopUs() const { return d2s_; }
    const stats::LogHistogram &snoopToReadyUs() const { return s2r_; }
    const stats::LogHistogram &readyToGrantUs() const { return r2g_; }
    const stats::LogHistogram &grantToCompletionUs() const
    {
        return g2c_;
    }
    const stats::LogHistogram &endToEndUs() const { return e2e_; }

    /** Drop open episodes and histograms (measurement boundary). */
    void clear();

  private:
    struct Pending
    {
        std::uint64_t seq = 0;
        Tick tDoorbell = 0;
        Tick tSnoop = 0;
        Tick tReady = 0;
        Tick tGrant = 0;
        bool activated = false;
        bool granted = false;
    };

    std::unordered_map<QueueId, Pending> pending_;
    std::uint64_t samples_ = 0;
    std::uint64_t incomplete_ = 0;
    // Base 1 ns; stage deltas at zero load live in the 0.001-10 us
    // range, end-to-end up to milliseconds under load.
    stats::LogHistogram d2s_{0.001, 1.02, 1024};
    stats::LogHistogram s2r_{0.001, 1.02, 1024};
    stats::LogHistogram r2g_{0.001, 1.02, 1024};
    stats::LogHistogram g2c_{0.001, 1.02, 1024};
    stats::LogHistogram e2e_{0.001, 1.02, 1024};
};

} // namespace trace
} // namespace hyperplane

#endif // HYPERPLANE_TRACE_LATENCY_BREAKDOWN_HH
