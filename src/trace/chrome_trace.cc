#include "trace/chrome_trace.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "stats/json.hh"

namespace hyperplane {
namespace trace {

namespace {

const char *
phaseCode(Phase p)
{
    switch (p) {
      case Phase::Instant:
        return "i";
      case Phase::Begin:
        return "B";
      case Phase::End:
        return "E";
    }
    return "i";
}

void
writeEvent(std::ostream &os, const TraceEvent &e)
{
    os << "{\"name\":" << stats::jsonString(toString(e.stage))
       << ",\"ph\":\"" << phaseCode(e.phase) << "\""
       << ",\"ts\":" << stats::jsonNumber(ticksToUs(e.ts))
       << ",\"pid\":0,\"tid\":" << e.track;
    if (e.phase == Phase::Instant)
        os << ",\"s\":\"t\"";
    os << ",\"args\":{\"tick\":" << e.ts;
    if (e.qid != invalidQueueId)
        os << ",\"qid\":" << e.qid;
    if (e.arg != 0)
        os << ",\"arg\":" << e.arg;
    os << "}}";
}

} // namespace

void
writeChromeTrace(std::ostream &os, const std::vector<TraceEvent> &events)
{
    // Tracks present, for thread_name metadata.
    std::vector<std::uint32_t> tracks;
    for (const auto &e : events) {
        if (std::find(tracks.begin(), tracks.end(), e.track) ==
            tracks.end()) {
            tracks.push_back(e.track);
        }
    }
    std::sort(tracks.begin(), tracks.end());

    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
          "\"args\":{\"name\":\"hyperplane-sim\"}}";
    first = false;
    for (std::uint32_t t : tracks) {
        os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << t << ",\"args\":{\"name\":"
           << stats::jsonString(trackName(t)) << "}}";
    }
    for (const auto &e : events) {
        if (!first)
            os << ",";
        else
            first = false;
        os << "\n";
        writeEvent(os, e);
    }
    os << "\n]}\n";
}

void
writeChromeTrace(std::ostream &os, const Tracer &tracer)
{
    writeChromeTrace(os, tracer.snapshot());
}

std::string
chromeTraceJson(const std::vector<TraceEvent> &events)
{
    std::ostringstream os;
    writeChromeTrace(os, events);
    return os.str();
}

} // namespace trace
} // namespace hyperplane
