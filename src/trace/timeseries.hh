/**
 * @file
 * Periodic registry snapshots as an exportable time series.
 *
 * TimeSeries is a plain (tick, values...) table with CSV and JSON
 * writers.  RegistrySampler drives one from the simulation event queue:
 * every period it reads the selected stats::Registry entries and
 * appends a row, so a run leaves behind the counters' trajectories
 * (not just their end-of-run values).
 */

#ifndef HYPERPLANE_TRACE_TIMESERIES_HH
#define HYPERPLANE_TRACE_TIMESERIES_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "stats/registry.hh"

namespace hyperplane {
namespace trace {

/** A sampled multi-column time series. */
class TimeSeries
{
  public:
    /** Set the column names (clears existing rows). */
    void setColumns(std::vector<std::string> columns);

    const std::vector<std::string> &columns() const { return columns_; }

    /** Append one row; @p values must match the column count. */
    void appendRow(Tick t, std::vector<double> values);

    std::size_t rows() const { return rows_.size(); }

    Tick rowTick(std::size_t i) const { return rows_[i].tick; }
    const std::vector<double> &rowValues(std::size_t i) const
    {
        return rows_[i].values;
    }

    /** CSV: header "tick,time_us,<columns...>", one line per row. */
    void writeCsv(std::ostream &os) const;

    /** JSON: {"columns":[...],"rows":[{"tick":..,"values":[..]},..]} */
    void writeJson(std::ostream &os) const;

    void clear() { rows_.clear(); }

  private:
    struct Row
    {
        Tick tick;
        std::vector<double> values;
    };

    std::vector<std::string> columns_;
    std::vector<Row> rows_;
};

/** Samples registry entries on a fixed simulated-time period. */
class RegistrySampler
{
  public:
    /**
     * @param eq       Event queue to schedule on.
     * @param registry Registry to snapshot (must outlive the sampler).
     * @param paths    Entries to sample; empty selects every entry at
     *                 start() time.  Unknown paths are warned about and
     *                 dropped.
     * @param period   Sampling period, ticks (>= 1).
     */
    RegistrySampler(EventQueue &eq, const stats::Registry &registry,
                    std::vector<std::string> paths, Tick period);

    /** Take the first sample and arm the periodic event. */
    void start();

    /** Stop rescheduling (pending events become no-ops). */
    void stop();

    const TimeSeries &series() const { return series_; }
    TimeSeries &series() { return series_; }

  private:
    void sampleOnce();
    void scheduleNext();

    EventQueue &eq_;
    const stats::Registry &registry_;
    std::vector<std::string> paths_;
    Tick period_;
    bool running_ = false;
    TimeSeries series_;
};

} // namespace trace
} // namespace hyperplane

#endif // HYPERPLANE_TRACE_TIMESERIES_HH
