/**
 * @file
 * Low-overhead notification-path event tracer.
 *
 * The tracer is a fixed-capacity ring buffer of compact TraceEvent
 * records stamped at each stage of the notification path (doorbell
 * write -> coherence snoop -> monitoring-set hit -> ready-set grant ->
 * QWAIT return -> service -> completion), plus fault/recovery events
 * (watchdog rescues, demotions, promotions).  Overflow drops the oldest
 * events and counts them, so a trace of a long run keeps its tail.
 *
 * Two gates keep the cost of *not* tracing at zero:
 *  - compile time: building with -DHYPERPLANE_TRACE=0 turns every stamp
 *    site into a constant-false branch the compiler removes
 *    (trace::kCompiledIn).  The Tracer class itself always exists so
 *    tooling and tests build in every configuration.
 *  - run time: components hold a Tracer pointer that is null unless
 *    SdpConfig::trace.enable is set, so a disabled run pays one
 *    pointer test per stamp site at most.
 *
 * Exporters (chrome_trace.hh) turn the buffer into Chrome/Perfetto
 * trace-event JSON loadable in ui.perfetto.dev or about:tracing.
 */

#ifndef HYPERPLANE_TRACE_TRACE_HH
#define HYPERPLANE_TRACE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/types.hh"

/** Compile-time gate; override with -DHYPERPLANE_TRACE=0. */
#ifndef HYPERPLANE_TRACE
#define HYPERPLANE_TRACE 1
#endif

namespace hyperplane {
namespace trace {

/** True when stamp sites are compiled in. */
inline constexpr bool kCompiledIn = HYPERPLANE_TRACE != 0;

/** Notification-path stages and fault/recovery event kinds. */
enum class Stage : std::uint8_t
{
    DoorbellWrite,    ///< producer rang a doorbell (arrival)
    SnoopDeliver,     ///< coherence write transaction hit a snooper
    MonitorHit,       ///< monitoring set matched an armed entry
    MonitorConflict,  ///< Cuckoo walk failed on QWAIT-ADD
    ReadyActivate,    ///< ready bit set for a queue
    ReadyGrant,       ///< arbiter granted a queue
    QwaitReturn,      ///< QWAIT returned a qid to a core
    Service,          ///< span: core processing dequeued items
    Halt,             ///< span: core blocked in QWAIT
    Wake,             ///< halted core woken
    SpuriousWake,     ///< QWAIT-VERIFY filtered an empty grant
    SnoopDropped,     ///< fault injection swallowed a snoop
    SnoopDelayed,     ///< fault injection delayed a snoop
    WatchdogSweep,    ///< periodic watchdog audit ran
    WatchdogRecovery, ///< watchdog replayed a lost activation
    WakeRefire,       ///< watchdog re-fired a suppressed wake
    Demotion,         ///< queue demoted to software polling
    Promotion,        ///< queue promoted back to hardware monitoring
    FallbackServe,    ///< task served via the software-polled path
    Completion,       ///< task finished (tenant notified)
    AdmissionShed,    ///< request refused at RX steering (typed reject)
};

const char *toString(Stage s);

/** Event flavour: point event or span boundary. */
enum class Phase : std::uint8_t
{
    Instant,
    Begin,
    End,
};

/** One compact trace record (32 bytes). */
struct TraceEvent
{
    Tick ts = 0;
    std::uint64_t arg = 0; ///< task seq, address, or aux value
    QueueId qid = invalidQueueId;
    std::uint32_t track = 0; ///< exported as the Perfetto thread id
    Stage stage = Stage::DoorbellWrite;
    Phase phase = Phase::Instant;
};

// Track ids above any plausible core id are pseudo-threads.
constexpr std::uint32_t trackHardwareBase = 0xFFFF0000u; ///< + cluster
constexpr std::uint32_t trackDevice = 0xFFFFFF00u;
constexpr std::uint32_t trackWatchdog = 0xFFFFFF01u;

/** Human-readable name of a track ("core3", "hw0", "device", ...). */
std::string trackName(std::uint32_t track);

/**
 * Ring-buffered event sink.  Records only while enabled; overflow
 * drops the oldest event (dropped() counts the casualties).
 *
 * Thread safety: stamp sites live on real server threads (RX shards,
 * QWAIT workers, TX, watchdog) as well as the single-threaded
 * simulator, so push/snapshot/clear serialize on an internal mutex.
 * The lock is uncontended in the simulator and held for a single
 * 32-byte copy on server threads; the *sampled* hot path belongs to
 * telemetry::FlightRecorder, which is lock-free.
 */
class Tracer
{
  public:
    explicit Tracer(std::size_t capacity = 1 << 16);

    /** Clock used when a stamp site has no tick of its own. */
    void setClock(std::function<Tick()> clock)
    {
        clock_ = std::move(clock);
    }

    /** Current tick per the installed clock (0 without one). */
    Tick now() const { return clock_ ? clock_() : 0; }

    void setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void instant(Stage stage, std::uint32_t track, Tick ts,
                 QueueId qid = invalidQueueId, std::uint64_t arg = 0)
    {
        push({ts, arg, qid, track, stage, Phase::Instant});
    }

    void begin(Stage stage, std::uint32_t track, Tick ts,
               QueueId qid = invalidQueueId, std::uint64_t arg = 0)
    {
        push({ts, arg, qid, track, stage, Phase::Begin});
    }

    void end(Stage stage, std::uint32_t track, Tick ts,
             QueueId qid = invalidQueueId, std::uint64_t arg = 0)
    {
        push({ts, arg, qid, track, stage, Phase::End});
    }

    /** Events currently buffered, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return count_;
    }
    std::size_t capacity() const { return buf_.size(); }

    /** Events evicted by ring overflow. */
    std::uint64_t dropped() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return dropped_;
    }

    /** Total events ever recorded (buffered + dropped). */
    std::uint64_t recorded() const
    {
        std::lock_guard<std::mutex> lock(m_);
        return recorded_;
    }

    void clear();

  private:
    void push(const TraceEvent &e);

    mutable std::mutex m_;
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0;  ///< index of the oldest event
    std::size_t count_ = 0; ///< live events in the buffer
    std::uint64_t dropped_ = 0;
    std::uint64_t recorded_ = 0;
    std::atomic<bool> enabled_{false};
    std::function<Tick()> clock_;
};

/** Result of a span-pairing audit. */
struct SpanCheck
{
    bool ok = true;
    std::string error;
};

/**
 * Verify Begin/End pairing per track: every End must match the stage
 * of the innermost open Begin on its track, and no Begin may remain
 * open.  (Only meaningful on buffers that did not overflow: eviction
 * can orphan the End of a dropped Begin.)
 */
SpanCheck checkSpanPairing(const std::vector<TraceEvent> &events);

} // namespace trace
} // namespace hyperplane

/**
 * True when the pointed-to tracer should receive a stamp.  With the
 * subsystem compiled out this folds to `false` and the stamp site
 * disappears entirely.
 */
#define HP_TRACE_ON(tracer)                                            \
    (::hyperplane::trace::kCompiledIn && (tracer) != nullptr &&        \
     (tracer)->enabled())

#endif // HYPERPLANE_TRACE_TRACE_HH
