/**
 * @file
 * Lost-notification watchdog: a periodic sim event that audits every
 * cluster's armed-but-nonempty queues.
 *
 * A dropped doorbell snoop leaves the monitoring entry armed while the
 * doorbell already advertises work — the one state Algorithm 1 cannot
 * reach on its own, and the one that strands a queue forever.  The sweep
 * runs the QWAIT-VERIFY predicate over every bound queue and replays the
 * missing activation when it finds that state.  It also (a) retries
 * QWAIT-ADD for queues demoted to the software-polled fallback set,
 * promoting them back once monitoring capacity frees, (b) optionally
 * demotes chronically lossy bindings after repeated recoveries, and
 * (c) re-fires the wake path when the ready set is nonempty but every
 * core slept through the (possibly suppressed) wake callback.
 */

#ifndef HYPERPLANE_FAULT_WATCHDOG_HH
#define HYPERPLANE_FAULT_WATCHDOG_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/qwait_unit.hh"
#include "fault/fallback_set.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "queueing/task_queue.hh"
#include "sim/event_queue.hh"
#include "stats/sampler.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace fault {

/** One queue cluster as the watchdog sees it. */
struct WatchdogCluster
{
    core::QwaitUnit *unit = nullptr;
    /** Demoted queues of this cluster; may be null (no degradation). */
    FallbackSet *fallback = nullptr;
    /** Queues bound to this cluster, ascending. */
    std::vector<QueueId> qids;
    /**
     * Deliver a wake to the cluster's cores, bypassing any injected
     * wake suppression.  Returns true if a halted core woke.
     */
    std::function<bool()> deliverWake;
};

class Watchdog
{
  public:
    /**
     * @param injector May be null (watchdog without fault injection);
     *                 used for the lost ledger and to keep promotion
     *                 retries subject to injected conflict pressure.
     */
    Watchdog(EventQueue &eq, queueing::QueueSet &queues,
             std::vector<WatchdogCluster> clusters,
             FaultInjector *injector, const RecoveryConfig &cfg);

    /** Arm the periodic sweep event. */
    void start();

    /** Stop rescheduling sweeps. */
    void stop();

    /** Run one sweep immediately (tests, end-of-run audits). */
    void sweepOnce();

    /** Attach a tracer; events stamp on the watchdog track. */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    stats::Counter sweeps{"watchdog_sweeps"};
    /** Lost-ledger queues rescued by a sweep. */
    stats::Counter recoveries{"watchdog_recoveries"};
    /** Sweep rescues of queues not in the lost ledger (a delayed snoop
     *  still in flight; the replayed activation wins the race). */
    stats::Counter earlyRecoveries{"watchdog_early_recoveries"};
    /** Ready-but-everyone-asleep wake re-fires. */
    stats::Counter wakeRefires{"watchdog_wake_refires"};
    stats::Counter promotions{"watchdog_promotions"};
    stats::Counter runtimeDemotions{"watchdog_runtime_demotions"};

  private:
    void scheduleNext();
    void sweepCluster(WatchdogCluster &c);

    EventQueue &eq_;
    queueing::QueueSet &queues_;
    std::vector<WatchdogCluster> clusters_;
    FaultInjector *injector_;
    RecoveryConfig cfg_;
    Tick periodTicks_;
    bool running_ = false;
    trace::Tracer *tracer_ = nullptr;
    /** Watchdog recoveries per queue (runtime-demotion threshold). */
    std::unordered_map<QueueId, unsigned> recoveryCount_;
};

} // namespace fault
} // namespace hyperplane

#endif // HYPERPLANE_FAULT_WATCHDOG_HH
