/**
 * @file
 * Seeded, deterministic fault injector.
 *
 * Each fault concern (snoop drops, snoop delays, forced conflicts, wake
 * suppression, spurious wakes, storms) draws from its own Rng stream, so
 * enabling one dimension does not perturb the draw sequence of another
 * and a fixed (plan, seed) pair reproduces a campaign bit-for-bit.
 *
 * The injector also keeps the lost-notification ledger: a queue enters
 * the lost set when a snoop that would have armed->activated it is
 * dropped, and leaves it when either the watchdog replays the
 * activation (recordWatchdogRecovery) or a later snoop for the same
 * doorbell happens to get through (recordSelfRecovery).  The ledger
 * invariant checked by the campaign tests is
 *
 *     lostInjected == watchdogRecovered + selfRecovered + outstanding
 */

#ifndef HYPERPLANE_FAULT_FAULT_INJECTOR_HH
#define HYPERPLANE_FAULT_FAULT_INJECTOR_HH

#include <optional>
#include <unordered_set>

#include "fault/fault_plan.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace fault {

class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    const FaultPlan &plan() const { return plan_; }

    // --- Per-opportunity rolls (each counts its own hits) ------------

    /** Should this doorbell snoop be dropped? */
    bool rollDropSnoop();

    /** Should this doorbell snoop be delayed?  Returns the delay. */
    std::optional<Tick> rollDelaySnoop();

    /** Should this QWAIT-ADD attempt be forced to conflict? */
    bool rollAddConflict();

    /** Should this wake callback be swallowed? */
    bool rollSuppressWake();

    // --- Free-running injector schedules -----------------------------

    /** Exponential gap to the next spurious activation, microseconds. */
    double nextSpuriousGapUs();

    /** Exponential gap to the next storm burst, microseconds. */
    double nextStormGapUs();

    /** Uniform victim pick for a spurious activation. */
    std::uint64_t pickSpuriousTarget(std::uint64_t bound);

    /** Uniform victim pick for a storm burst. */
    std::uint64_t pickStormTarget(std::uint64_t bound);

    // --- Lost-notification ledger ------------------------------------

    /**
     * A drop hit an armed monitoring entry for @p qid: the queue now
     * holds work the hardware will never hear about.
     * @return true if this opens a new lost episode (the queue was not
     *         already lost).
     */
    bool recordLost(QueueId qid);

    /** The watchdog sweep replayed the activation for @p qid.
     *  @return true if the queue was in the lost set. */
    bool recordWatchdogRecovery(QueueId qid);

    /** A delivered snoop reached a lost queue's armed entry.
     *  @return true if the queue was in the lost set. */
    bool recordSelfRecovery(QueueId qid);

    /** True while @p qid has an open lost episode. */
    bool isLost(QueueId qid) const { return lost_.count(qid) != 0; }

    /** Lost episodes not yet recovered. */
    std::size_t outstandingLost() const { return lost_.size(); }

    stats::Counter snoopsDropped{"snoops_dropped"};
    /** Drops that hit an unarmed/unmonitored line (no work lost). */
    stats::Counter harmlessDrops{"harmless_drops"};
    stats::Counter snoopsDelayed{"snoops_delayed"};
    stats::Counter forcedAddConflicts{"forced_add_conflicts"};
    stats::Counter wakesSuppressed{"wakes_suppressed"};
    stats::Counter spuriousInjected{"spurious_wakes_injected"};
    stats::Counter stormWrites{"storm_doorbell_writes"};
    stats::Counter lostInjected{"lost_notifications_injected"};
    stats::Counter watchdogRecovered{"lost_recovered_by_watchdog"};
    stats::Counter selfRecovered{"lost_recovered_by_later_snoop"};

  private:
    FaultPlan plan_;
    Rng dropRng_;
    Rng delayRng_;
    Rng conflictRng_;
    Rng suppressRng_;
    Rng spuriousRng_;
    Rng stormRng_;
    /** Queues with an open lost-notification episode. */
    std::unordered_set<QueueId> lost_;
};

} // namespace fault
} // namespace hyperplane

#endif // HYPERPLANE_FAULT_FAULT_INJECTOR_HH
