#include "fault/watchdog.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace fault {

Watchdog::Watchdog(EventQueue &eq, queueing::QueueSet &queues,
                   std::vector<WatchdogCluster> clusters,
                   FaultInjector *injector, const RecoveryConfig &cfg)
    : eq_(eq), queues_(queues), clusters_(std::move(clusters)),
      injector_(injector), cfg_(cfg),
      periodTicks_(std::max<Tick>(1, usToTicks(cfg.watchdogPeriodUs)))
{
}

void
Watchdog::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleNext();
}

void
Watchdog::stop()
{
    running_ = false;
}

void
Watchdog::scheduleNext()
{
    eq_.scheduleIn(periodTicks_, [this] {
        if (!running_)
            return;
        sweepOnce();
        scheduleNext();
    });
}

void
Watchdog::sweepOnce()
{
    sweeps.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::WatchdogSweep,
                         trace::trackWatchdog, tracer_->now());
    }
    for (auto &c : clusters_)
        sweepCluster(c);
}

void
Watchdog::sweepCluster(WatchdogCluster &c)
{
    hp_assert(c.unit != nullptr, "watchdog cluster without a unit");

    if (cfg_.watchdog) {
        // 1. Lost-notification scan: an armed entry whose doorbell
        //    already advertises work missed its snoop.  Replay the
        //    activation (QWAIT-VERIFY semantics).
        for (QueueId qid : c.qids) {
            if (c.fallback != nullptr && c.fallback->contains(qid))
                continue; // software-polled; cannot lose notifications
            if (!c.unit->watchdogVerify(qid, queues_[qid].doorbell()))
                continue;
            if (HP_TRACE_ON(tracer_)) {
                tracer_->instant(trace::Stage::WatchdogRecovery,
                                 trace::trackWatchdog, tracer_->now(),
                                 qid);
            }
            if (injector_ == nullptr ||
                injector_->recordWatchdogRecovery(qid)) {
                recoveries.inc();
            } else {
                // Not in the lost ledger: a delayed snoop is still in
                // flight and the sweep beat it to the activation.
                earlyRecoveries.inc();
            }
            if (cfg_.demoteAfterRecoveries > 0 && c.fallback != nullptr &&
                ++recoveryCount_[qid] >= cfg_.demoteAfterRecoveries) {
                // Chronically lossy binding: give up on the hardware
                // path and poll it in software instead.
                c.unit->qwaitRemove(qid);
                c.fallback->add(qid);
                runtimeDemotions.inc();
                recoveryCount_.erase(qid);
                if (HP_TRACE_ON(tracer_)) {
                    tracer_->instant(trace::Stage::Demotion,
                                     trace::trackWatchdog,
                                     tracer_->now(), qid);
                }
            }
        }
    }

    // 2. Promotion retries: capacity may have freed since demotion.
    if (c.fallback != nullptr && !c.fallback->empty()) {
        const std::vector<QueueId> demoted = c.fallback->queues();
        for (QueueId qid : demoted) {
            if (injector_ != nullptr && injector_->rollAddConflict())
                continue; // injected pressure still holds the slot
            if (c.unit->qwaitAdd(qid, queues_[qid].doorbellAddr()) !=
                core::AddResult::Ok) {
                continue;
            }
            c.fallback->remove(qid);
            promotions.inc();
            if (HP_TRACE_ON(tracer_)) {
                tracer_->instant(trace::Stage::Promotion,
                                 trace::trackWatchdog, tracer_->now(),
                                 qid);
            }
            // Items enqueued while demoted predate the fresh armed
            // entry; audit once so they are not orphaned.
            c.unit->watchdogVerify(qid, queues_[qid].doorbell());
        }
    }

    // 3. Wake re-fire: ready work but every core asleep means a wake
    //    callback was lost (e.g. injected suppression).  Runs in every
    //    sweep — it only acts when a wake has demonstrably gone
    //    missing, so it is pure recovery.
    if (c.unit->readySet().anyReady() && c.deliverWake &&
        c.deliverWake()) {
        wakeRefires.inc();
        if (HP_TRACE_ON(tracer_)) {
            tracer_->instant(trace::Stage::WakeRefire,
                             trace::trackWatchdog, tracer_->now());
        }
    }
}

} // namespace fault
} // namespace hyperplane
