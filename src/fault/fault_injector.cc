#include "fault/fault_injector.hh"

#include <algorithm>

namespace hyperplane {
namespace fault {

namespace {

/** Per-concern stream tweaks (decorrelate the Rng streams). */
constexpr std::uint64_t dropTweak = 0xd409d409d409d409ULL;
constexpr std::uint64_t delayTweak = 0xde1aede1aede1aedULL;
constexpr std::uint64_t conflictTweak = 0xc0f11c7c0f11c7c0ULL;
constexpr std::uint64_t suppressTweak = 0x5a99e555a99e555aULL;
constexpr std::uint64_t spuriousTweak = 0x59a210c559a210c5ULL;
constexpr std::uint64_t stormTweak = 0x57042b57042b5704ULL;

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), dropRng_(seed ^ dropTweak), delayRng_(seed ^ delayTweak),
      conflictRng_(seed ^ conflictTweak),
      suppressRng_(seed ^ suppressTweak),
      spuriousRng_(seed ^ spuriousTweak), stormRng_(seed ^ stormTweak)
{
}

bool
FaultInjector::rollDropSnoop()
{
    // Zero-rate dimensions consume no draws, so enabling one fault does
    // not perturb the streams of the others.
    if (plan_.dropSnoopRate <= 0.0)
        return false;
    if (!dropRng_.chance(plan_.dropSnoopRate))
        return false;
    snoopsDropped.inc();
    return true;
}

std::optional<Tick>
FaultInjector::rollDelaySnoop()
{
    if (plan_.delaySnoopRate <= 0.0)
        return std::nullopt;
    if (!delayRng_.chance(plan_.delaySnoopRate))
        return std::nullopt;
    snoopsDelayed.inc();
    const double us = delayRng_.exponential(plan_.delayMeanUs);
    return std::max<Tick>(1, usToTicks(us));
}

bool
FaultInjector::rollAddConflict()
{
    if (plan_.addConflictRate <= 0.0)
        return false;
    if (!conflictRng_.chance(plan_.addConflictRate))
        return false;
    forcedAddConflicts.inc();
    return true;
}

bool
FaultInjector::rollSuppressWake()
{
    if (plan_.suppressWakeRate <= 0.0)
        return false;
    if (!suppressRng_.chance(plan_.suppressWakeRate))
        return false;
    wakesSuppressed.inc();
    return true;
}

double
FaultInjector::nextSpuriousGapUs()
{
    return spuriousRng_.exponential(1e6 / plan_.spuriousWakesPerSec);
}

double
FaultInjector::nextStormGapUs()
{
    return stormRng_.exponential(1e6 / plan_.stormRatePerSec);
}

std::uint64_t
FaultInjector::pickSpuriousTarget(std::uint64_t bound)
{
    return spuriousRng_.uniformInt(bound);
}

std::uint64_t
FaultInjector::pickStormTarget(std::uint64_t bound)
{
    return stormRng_.uniformInt(bound);
}

bool
FaultInjector::recordLost(QueueId qid)
{
    if (!lost_.insert(qid).second)
        return false; // episode already open; one recovery covers both
    lostInjected.inc();
    return true;
}

bool
FaultInjector::recordWatchdogRecovery(QueueId qid)
{
    if (lost_.erase(qid) == 0)
        return false;
    watchdogRecovered.inc();
    return true;
}

bool
FaultInjector::recordSelfRecovery(QueueId qid)
{
    if (lost_.erase(qid) == 0)
        return false;
    selfRecovered.inc();
    return true;
}

} // namespace fault
} // namespace hyperplane
