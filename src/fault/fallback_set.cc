#include "fault/fallback_set.hh"

#include <algorithm>

namespace hyperplane {
namespace fault {

bool
FallbackSet::add(QueueId qid)
{
    if (contains(qid))
        return false;
    qids_.push_back(qid);
    demotions.inc();
    return true;
}

bool
FallbackSet::remove(QueueId qid)
{
    auto it = std::find(qids_.begin(), qids_.end(), qid);
    if (it == qids_.end())
        return false;
    qids_.erase(it);
    promotions.inc();
    return true;
}

bool
FallbackSet::contains(QueueId qid) const
{
    return std::find(qids_.begin(), qids_.end(), qid) != qids_.end();
}

} // namespace fault
} // namespace hyperplane
