/**
 * @file
 * The software-polled fallback set: queues the monitoring set could not
 * (or should not) hold.
 *
 * When QWAIT-ADD exhausts its reallocation budget — Cuckoo conflicts,
 * capacity exhaustion, or injected pressure — graceful degradation
 * demotes the queue here instead of failing.  HyperPlane cores sweep the
 * set with a bounded-period software poll (the DPDK-style tight loop),
 * so a demoted queue keeps making progress at polling latency instead
 * of stranding.  The watchdog retries QWAIT-ADD for demoted queues and
 * promotes them back once monitoring-set capacity frees.
 *
 * Membership is kept in an insertion-ordered vector: sweeps iterate it
 * deterministically and the sets stay small (demotion is the exception,
 * not the rule).
 */

#ifndef HYPERPLANE_FAULT_FALLBACK_SET_HH
#define HYPERPLANE_FAULT_FALLBACK_SET_HH

#include <vector>

#include "sim/types.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace fault {

/** Demoted-queue membership + accounting for one queue cluster. */
class FallbackSet
{
  public:
    /**
     * Demote @p qid into the fallback set.
     * @return false if it is already a member.
     */
    bool add(QueueId qid);

    /**
     * Promote @p qid out of the fallback set.
     * @return false if it was not a member.
     */
    bool remove(QueueId qid);

    bool contains(QueueId qid) const;

    bool empty() const { return qids_.empty(); }
    std::size_t size() const { return qids_.size(); }

    /** Members in demotion order (sweep iteration order). */
    const std::vector<QueueId> &queues() const { return qids_; }

    stats::Counter demotions{"demotions"};
    stats::Counter promotions{"promotions"};
    stats::Counter polls{"fallback_polls"};
    stats::Counter tasksServed{"fallback_tasks_served"};

  private:
    std::vector<QueueId> qids_;
};

} // namespace fault
} // namespace hyperplane

#endif // HYPERPLANE_FAULT_FALLBACK_SET_HH
