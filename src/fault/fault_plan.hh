/**
 * @file
 * Declarative fault-campaign description (FaultPlan) and the matching
 * recovery knobs (RecoveryConfig).
 *
 * A FaultPlan lists the failure modes a run injects — lost or delayed
 * doorbell snoops, forced monitoring-set conflicts, suppressed or
 * spurious wake-ups, and doorbell storms from a misbehaving tenant.
 * All rates are probabilities per opportunity (or events per second for
 * the free-running injectors) and all draws come from seeded per-concern
 * Rng streams inside FaultInjector, so a campaign is bit-reproducible.
 *
 * RecoveryConfig enables the two defence mechanisms: the periodic
 * watchdog sweep (QWAIT-VERIFY over armed-but-nonempty queues) and
 * graceful degradation of queues to a software-polled fallback set when
 * the monitoring set cannot hold them.
 */

#ifndef HYPERPLANE_FAULT_FAULT_PLAN_HH
#define HYPERPLANE_FAULT_FAULT_PLAN_HH

#include "sim/types.hh"

namespace hyperplane {
namespace fault {

/** What to break, and how often. */
struct FaultPlan
{
    /** Probability a doorbell write snoop is silently dropped. */
    double dropSnoopRate = 0.0;
    /** Probability a doorbell write snoop is delayed in flight. */
    double delaySnoopRate = 0.0;
    /** Mean of the exponential snoop-delay distribution, microseconds. */
    double delayMeanUs = 2.0;
    /** Probability a QWAIT-ADD attempt is forced to report a conflict
     *  (models monitoring-set pressure from other tenants). */
    double addConflictRate = 0.0;
    /** Probability a wake callback to the cores is swallowed. */
    double suppressWakeRate = 0.0;
    /** Rate of spurious ready-set activations, events per second. */
    double spuriousWakesPerSec = 0.0;
    /** Rate of doorbell-storm bursts from a misbehaving tenant,
     *  bursts per second (0 disables the storm tenant). */
    double stormRatePerSec = 0.0;
    /** Doorbell writes per storm burst. */
    unsigned stormBurst = 8;
    /** Fixed storm victim queue; invalidQueueId picks one at random
     *  per burst. */
    QueueId stormQueue = invalidQueueId;

    /** True if any fault dimension is active. */
    bool
    any() const
    {
        return dropSnoopRate > 0.0 || delaySnoopRate > 0.0 ||
               addConflictRate > 0.0 || suppressWakeRate > 0.0 ||
               spuriousWakesPerSec > 0.0 || stormRatePerSec > 0.0;
    }
};

/** How the system defends itself. */
struct RecoveryConfig
{
    /** Enable the periodic lost-notification watchdog sweep. */
    bool watchdog = false;
    /** Watchdog sweep period, microseconds. */
    double watchdogPeriodUs = 25.0;
    /**
     * Demote queues the monitoring set cannot hold to a software-polled
     * fallback set instead of failing QWAIT-ADD hard; the watchdog
     * retries promotion once capacity frees.
     */
    bool gracefulDegradation = false;
    /** QWAIT-ADD reallocation attempts before demotion. */
    unsigned addMaxTries = 8;
    /** Fallback-set software polling period, core cycles. */
    Tick fallbackPollPeriod = 3000;
    /**
     * Demote a queue after this many watchdog recoveries (a chronically
     * lossy binding); 0 = never demote at runtime.
     */
    unsigned demoteAfterRecoveries = 0;

    bool enabled() const { return watchdog || gracefulDegradation; }
};

} // namespace fault
} // namespace hyperplane

#endif // HYPERPLANE_FAULT_FAULT_PLAN_HH
