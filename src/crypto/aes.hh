/**
 * @file
 * AES block cipher (FIPS-197), supporting 128/192/256-bit keys.
 *
 * A straightforward byte-oriented implementation: S-box substitution,
 * ShiftRows, MixColumns via GF(2^8) xtime, and the standard key schedule.
 * It is the computational core of the crypto-forwarding workload
 * (AES-CBC-256 per Section V-A of the paper).  Not constant-time; this is
 * a simulation workload, not a production cipher.
 */

#ifndef HYPERPLANE_CRYPTO_AES_HH
#define HYPERPLANE_CRYPTO_AES_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace hyperplane {
namespace crypto {

/** AES block size, bytes. */
constexpr std::size_t aesBlockBytes = 16;

/** AES key/schedule holder for one key size. */
class Aes
{
  public:
    /**
     * Expand a key.
     * @param key      Key bytes.
     * @param keyBytes 16, 24, or 32.
     */
    Aes(const std::uint8_t *key, std::size_t keyBytes);

    /** Encrypt one 16-byte block (in place allowed: out may equal in). */
    void encryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /** Decrypt one 16-byte block. */
    void decryptBlock(const std::uint8_t *in, std::uint8_t *out) const;

    /** Number of rounds (10/12/14). */
    unsigned rounds() const { return rounds_; }

  private:
    unsigned rounds_;
    /** Round keys: (rounds+1) 16-byte blocks. */
    std::array<std::uint8_t, 16 * 15> roundKeys_{};
};

} // namespace crypto
} // namespace hyperplane

#endif // HYPERPLANE_CRYPTO_AES_HH
