#include "crypto/cbc.hh"

#include <cstring>

#include "sim/logging.hh"

namespace hyperplane {
namespace crypto {

namespace {

void
xorBlock(std::uint8_t *dst, const std::uint8_t *src)
{
    for (std::size_t i = 0; i < aesBlockBytes; ++i)
        dst[i] ^= src[i];
}

} // namespace

std::vector<std::uint8_t>
cbcEncrypt(const Aes &aes, const Iv &iv, const std::uint8_t *plain,
           std::size_t len)
{
    const std::size_t pad = aesBlockBytes - (len % aesBlockBytes);
    std::vector<std::uint8_t> out(len + pad);
    std::memcpy(out.data(), plain, len);
    std::memset(out.data() + len, static_cast<int>(pad), pad);

    const std::uint8_t *chain = iv.data();
    for (std::size_t off = 0; off < out.size(); off += aesBlockBytes) {
        xorBlock(out.data() + off, chain);
        aes.encryptBlock(out.data() + off, out.data() + off);
        chain = out.data() + off;
    }
    return out;
}

std::optional<std::vector<std::uint8_t>>
cbcDecrypt(const Aes &aes, const Iv &iv, const std::uint8_t *cipher,
           std::size_t len)
{
    if (len == 0 || len % aesBlockBytes != 0)
        return std::nullopt;
    std::vector<std::uint8_t> out(len);
    Iv chain = iv;
    for (std::size_t off = 0; off < len; off += aesBlockBytes) {
        aes.decryptBlock(cipher + off, out.data() + off);
        xorBlock(out.data() + off, chain.data());
        std::memcpy(chain.data(), cipher + off, aesBlockBytes);
    }
    const std::uint8_t pad = out.back();
    if (pad == 0 || pad > aesBlockBytes || pad > out.size())
        return std::nullopt;
    for (std::size_t i = out.size() - pad; i < out.size(); ++i) {
        if (out[i] != pad)
            return std::nullopt;
    }
    out.resize(out.size() - pad);
    return out;
}

void
cbcEncryptAligned(const Aes &aes, const Iv &iv, std::uint8_t *data,
                  std::size_t len)
{
    hp_assert(len % aesBlockBytes == 0, "CBC aligned path needs full blocks");
    const std::uint8_t *chain = iv.data();
    for (std::size_t off = 0; off < len; off += aesBlockBytes) {
        xorBlock(data + off, chain);
        aes.encryptBlock(data + off, data + off);
        chain = data + off;
    }
}

void
cbcDecryptAligned(const Aes &aes, const Iv &iv, std::uint8_t *data,
                  std::size_t len)
{
    hp_assert(len % aesBlockBytes == 0, "CBC aligned path needs full blocks");
    Iv chain = iv;
    std::uint8_t saved[aesBlockBytes];
    for (std::size_t off = 0; off < len; off += aesBlockBytes) {
        std::memcpy(saved, data + off, aesBlockBytes);
        aes.decryptBlock(data + off, data + off);
        xorBlock(data + off, chain.data());
        std::memcpy(chain.data(), saved, aesBlockBytes);
    }
}

} // namespace crypto
} // namespace hyperplane
