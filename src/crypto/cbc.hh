/**
 * @file
 * AES-CBC mode with PKCS#7 padding.
 *
 * CBC chains blocks through XOR with the previous ciphertext block (IV for
 * the first).  The crypto-forwarding workload encrypts whole packets
 * through this interface.
 */

#ifndef HYPERPLANE_CRYPTO_CBC_HH
#define HYPERPLANE_CRYPTO_CBC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/aes.hh"

namespace hyperplane {
namespace crypto {

/** 16-byte initialization vector. */
using Iv = std::array<std::uint8_t, aesBlockBytes>;

/**
 * Encrypt @p plain under AES-CBC with PKCS#7 padding.
 * Output length is the input length rounded up to the next multiple of 16
 * (a full pad block is added when the input is already aligned).
 */
std::vector<std::uint8_t> cbcEncrypt(const Aes &aes, const Iv &iv,
                                     const std::uint8_t *plain,
                                     std::size_t len);

/**
 * Decrypt and strip PKCS#7 padding.
 * @return std::nullopt if the ciphertext length is not block-aligned or
 *         the padding is malformed.
 */
std::optional<std::vector<std::uint8_t>> cbcDecrypt(
    const Aes &aes, const Iv &iv, const std::uint8_t *cipher,
    std::size_t len);

/**
 * In-place CBC encryption without padding, for block-aligned payloads
 * (fast path the data plane uses on packet bodies).
 * @pre len % aesBlockBytes == 0
 */
void cbcEncryptAligned(const Aes &aes, const Iv &iv, std::uint8_t *data,
                       std::size_t len);

/** In-place inverse of cbcEncryptAligned. @pre len % 16 == 0 */
void cbcDecryptAligned(const Aes &aes, const Iv &iv, std::uint8_t *data,
                       std::size_t len);

} // namespace crypto
} // namespace hyperplane

#endif // HYPERPLANE_CRYPTO_CBC_HH
