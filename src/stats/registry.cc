#include "stats/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "sim/logging.hh"
#include "stats/json.hh"

namespace hyperplane {
namespace stats {

namespace {

struct EntryPathLess
{
    bool operator()(const auto &e, const std::string &p) const
    {
        return e.path < p;
    }
};

} // namespace

void
Registry::insert(const std::string &path, std::function<double()> getter)
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), path,
                               EntryPathLess{});
    if (it != entries_.end() && it->path == path) {
        hp_warn("stats::Registry: duplicate path '%s' ignored "
                "(first registration wins)",
                path.c_str());
        return;
    }
    entries_.insert(it, {path, std::move(getter)});
}

void
Registry::add(const std::string &path, const Counter &counter)
{
    const Counter *c = &counter;
    insert(path, [c] { return static_cast<double>(c->value()); });
}

void
Registry::addScalar(const std::string &path,
                    std::function<double()> getter)
{
    insert(path, std::move(getter));
}

bool
Registry::has(const std::string &path) const
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), path,
                               EntryPathLess{});
    return it != entries_.end() && it->path == path;
}

std::vector<std::string>
Registry::paths() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.path);
    return out;
}

std::string
Registry::report() const
{
    // Entries are maintained sorted; render in place.
    std::ostringstream os;
    for (const auto &e : entries_) {
        const double v = e.getter();
        char buf[64];
        // Integers print without a fraction; other values with 6
        // significant digits.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%.0f", v);
        } else {
            std::snprintf(buf, sizeof(buf), "%.6g", v);
        }
        os << e.path << " = " << buf << '\n';
    }
    return os.str();
}

std::string
Registry::reportJson() const
{
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto &e : entries_) {
        if (!first)
            os << ',';
        first = false;
        os << '\n'
           << jsonString(e.path) << ':' << jsonNumber(e.getter());
    }
    os << "\n}\n";
    return os.str();
}

void
Registry::forEach(
    const std::function<void(const std::string &, double)> &fn) const
{
    for (const auto &e : entries_)
        fn(e.path, e.getter());
}

double
Registry::value(const std::string &path) const
{
    auto it = std::lower_bound(entries_.begin(), entries_.end(), path,
                               EntryPathLess{});
    if (it != entries_.end() && it->path == path)
        return it->getter();
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace stats
} // namespace hyperplane
