#include "stats/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace hyperplane {
namespace stats {

void
Registry::add(const std::string &path, const Counter &counter)
{
    const Counter *c = &counter;
    entries_.push_back(
        {path, [c] { return static_cast<double>(c->value()); }});
}

void
Registry::addScalar(const std::string &path,
                    std::function<double()> getter)
{
    entries_.push_back({path, std::move(getter)});
}

std::string
Registry::report() const
{
    std::vector<std::pair<std::string, double>> rows;
    rows.reserve(entries_.size());
    for (const auto &e : entries_)
        rows.emplace_back(e.path, e.getter());
    std::sort(rows.begin(), rows.end());

    std::ostringstream os;
    for (const auto &[path, v] : rows) {
        char buf[64];
        // Integers print without a fraction; other values with 6
        // significant digits.
        if (v == std::floor(v) && std::abs(v) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%.0f", v);
        } else {
            std::snprintf(buf, sizeof(buf), "%.6g", v);
        }
        os << path << " = " << buf << '\n';
    }
    return os.str();
}

double
Registry::value(const std::string &path) const
{
    for (const auto &e : entries_) {
        if (e.path == path)
            return e.getter();
    }
    return std::numeric_limits<double>::quiet_NaN();
}

} // namespace stats
} // namespace hyperplane
