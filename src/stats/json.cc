#include "stats/json.hh"

#include <cmath>
#include <cstdio>

namespace hyperplane {
namespace stats {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonString(std::string_view s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.12g", v);
    }
    return buf;
}

} // namespace stats
} // namespace hyperplane
