/**
 * @file
 * Minimal JSON emission helpers shared by the machine-readable
 * exporters (stats::Registry::reportJson, the Chrome-trace writer, the
 * time-series snapshots, and the harness run exports).  Emission only —
 * parsing stays out of the library.
 */

#ifndef HYPERPLANE_STATS_JSON_HH
#define HYPERPLANE_STATS_JSON_HH

#include <string>
#include <string_view>

namespace hyperplane {
namespace stats {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string jsonEscape(std::string_view s);

/** @p s as a quoted JSON string. */
std::string jsonString(std::string_view s);

/**
 * @p v as a JSON number: integers without a fraction, other finite
 * values with enough digits to round-trip; NaN/Inf (not representable
 * in JSON) become null.
 */
std::string jsonNumber(double v);

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_JSON_HH
