#include "stats/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hyperplane {
namespace stats {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> names)
{
    header_ = std::move(names);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::rowValues(const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (double v : values)
        cells.push_back(fmt(v, precision));
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    // Compute column widths across header and rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << title_ << '\n';
    os << std::string(title_.size(), '-') << '\n';
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(str().c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtRatio(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

} // namespace stats
} // namespace hyperplane
