/**
 * @file
 * Streaming scalar statistics.
 *
 * Sampler accumulates mean/variance/min/max with Welford's online
 * algorithm (numerically stable, O(1) memory).  Counter is a plain named
 * event counter.  RateMeter converts a counter over a simulated interval
 * into an events-per-second rate.
 */

#ifndef HYPERPLANE_STATS_SAMPLER_HH
#define HYPERPLANE_STATS_SAMPLER_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace hyperplane {
namespace stats {

/** Online mean / variance / extrema accumulator (Welford). */
class Sampler
{
  public:
    void record(double v);

    /** Merge another sampler into this one (parallel Welford update). */
    void merge(const Sampler &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }
    double sum() const { return mean_ * static_cast<double>(n_); }

    void clear();

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A named monotonic event counter. */
class Counter
{
  public:
    Counter() = default;
    explicit Counter(std::string name) : name_(std::move(name)) {}

    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    const std::string &name() const { return name_; }
    void clear() { value_ = 0; }

  private:
    std::string name_;
    std::uint64_t value_ = 0;
};

/** Converts an event count over a tick interval into a per-second rate. */
class RateMeter
{
  public:
    /** Mark the start of the measurement window. */
    void start(Tick now) { startTick_ = now; events_ = 0; }

    void record(std::uint64_t n = 1) { events_ += n; }

    /** Events per simulated second over [start, now]. */
    double ratePerSecond(Tick now) const;

    std::uint64_t events() const { return events_; }

  private:
    Tick startTick_ = 0;
    std::uint64_t events_ = 0;
};

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_SAMPLER_HH
