/**
 * @file
 * A gem5-style statistics registry: components register their counters
 * under hierarchical dotted paths, and the registry renders a sorted
 * "path = value" report.  Used by SdpSystem::dumpStats() and by tools
 * that want machine-readable run summaries.
 *
 * Entries are kept sorted by path, so value() lookups are binary
 * searches — the time-series sampler calls value() once per column per
 * sample, which makes the previous linear scan O(paths * samples).
 * Duplicate registrations are detected at add() time: the first
 * registration wins and a warning names the offending path (previously
 * both entries survived, making value() ambiguous).
 */

#ifndef HYPERPLANE_STATS_REGISTRY_HH
#define HYPERPLANE_STATS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "stats/sampler.hh"

namespace hyperplane {
namespace stats {

/** Hierarchical stat registry (snapshot semantics: values are read at
 *  report() time). */
class Registry
{
  public:
    /** Register a counter under @p path ("mem.l1_hits"). */
    void add(const std::string &path, const Counter &counter);

    /** Register a computed scalar. */
    void addScalar(const std::string &path,
                   std::function<double()> getter);

    /** Register every counter of a group with a shared prefix. */
    void
    addGroup(const std::string &prefix,
             std::initializer_list<
                 std::reference_wrapper<const Counter>> counters)
    {
        for (const Counter &c : counters)
            add(prefix + "." + c.name(), c);
    }

    /** Number of registered entries. */
    std::size_t size() const { return entries_.size(); }

    /** True if @p path is registered. */
    bool has(const std::string &path) const;

    /** All registered paths, ascending. */
    std::vector<std::string> paths() const;

    /**
     * Render the report: one "path = value" line per entry, sorted by
     * path.
     */
    std::string report() const;

    /**
     * Render the report as one JSON object: {"path": value, ...},
     * keys ascending.  Non-finite values serialize as null.
     */
    std::string reportJson() const;

    /** Current value of a registered entry. @return NaN if unknown. */
    double value(const std::string &path) const;

    /**
     * Visit every entry in path order with its current value — one
     * getter call per entry, for renderers (Prometheus text, JSON) that
     * would otherwise pay a binary search per path.
     */
    void forEach(
        const std::function<void(const std::string &, double)> &fn)
        const;

  private:
    struct Entry
    {
        std::string path;
        std::function<double()> getter;
    };

    /** Sorted-insert with duplicate rejection (first wins + warning). */
    void insert(const std::string &path, std::function<double()> getter);

    /** Entries sorted ascending by path. */
    std::vector<Entry> entries_;
};

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_REGISTRY_HH
