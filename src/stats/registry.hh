/**
 * @file
 * A gem5-style statistics registry: components register their counters
 * under hierarchical dotted paths, and the registry renders a sorted
 * "path = value" report.  Used by SdpSystem::dumpStats() and by tools
 * that want machine-readable run summaries.
 */

#ifndef HYPERPLANE_STATS_REGISTRY_HH
#define HYPERPLANE_STATS_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "stats/sampler.hh"

namespace hyperplane {
namespace stats {

/** Hierarchical stat registry (snapshot semantics: values are read at
 *  report() time). */
class Registry
{
  public:
    /** Register a counter under @p path ("mem.l1_hits"). */
    void add(const std::string &path, const Counter &counter);

    /** Register a computed scalar. */
    void addScalar(const std::string &path,
                   std::function<double()> getter);

    /** Register every counter of a group with a shared prefix. */
    void
    addGroup(const std::string &prefix,
             std::initializer_list<
                 std::reference_wrapper<const Counter>> counters)
    {
        for (const Counter &c : counters)
            add(prefix + "." + c.name(), c);
    }

    /** Number of registered entries. */
    std::size_t size() const { return entries_.size(); }

    /**
     * Render the report: one "path = value" line per entry, sorted by
     * path.
     */
    std::string report() const;

    /** Current value of a registered entry. @return NaN if unknown. */
    double value(const std::string &path) const;

  private:
    struct Entry
    {
        std::string path;
        std::function<double()> getter;
    };

    std::vector<Entry> entries_;
};

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_REGISTRY_HH
