#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hyperplane {
namespace stats {

Histogram::Histogram(double lo, double hi, unsigned bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / bins), bins_(bins, 0)
{
    hp_assert(hi > lo, "histogram range empty");
    hp_assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::record(double v)
{
    recordN(v, 1);
}

void
Histogram::recordN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
    if (v < lo_) {
        underflow_ += n;
    } else if (v >= hi_) {
        overflow_ += n;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= bins_.size())
            idx = bins_.size() - 1; // guard fp rounding at the top edge
        bins_[idx] += n;
    }
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    if (target < underflow_)
        return min_;
    seen = underflow_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (seen + bins_[i] > target) {
            // Interpolate within the bin assuming uniform density.
            const double frac = bins_[i] == 0
                ? 0.0
                : static_cast<double>(target - seen) /
                      static_cast<double>(bins_[i]);
            return binLow(i) + frac * width_;
        }
        seen += bins_[i];
    }
    return max_;
}

void
Histogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
    sum_ = min_ = max_ = 0.0;
}

std::vector<std::pair<double, double>>
Histogram::cdf() const
{
    std::vector<std::pair<double, double>> out;
    if (count_ == 0)
        return out;
    std::uint64_t cum = underflow_;
    const auto total = static_cast<double>(count_);
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        cum += bins_[i];
        out.emplace_back(binLow(static_cast<unsigned>(i)) + width_,
                         static_cast<double>(cum) / total);
    }
    if (overflow_ > 0)
        out.emplace_back(max_, 1.0);
    return out;
}

LogHistogram::LogHistogram(double base, double growth, unsigned bins)
    : base_(base), logGrowth_(std::log(growth)), growth_(growth),
      bins_(bins, 0)
{
    hp_assert(base > 0.0, "LogHistogram base must be positive");
    hp_assert(growth > 1.0, "LogHistogram growth must exceed 1");
    hp_assert(bins > 0, "LogHistogram needs at least one bin");
}

LogHistogram
LogHistogram::fromParts(double base, double growth,
                        std::vector<std::uint64_t> bins, double sum,
                        double min, double max)
{
    hp_assert(!bins.empty(), "fromParts needs at least one bin");
    LogHistogram h(base, growth,
                   static_cast<unsigned>(bins.size()));
    std::uint64_t count = 0;
    for (std::uint64_t b : bins)
        count += b;
    h.bins_ = std::move(bins);
    h.count_ = count;
    h.sum_ = sum;
    h.min_ = count ? min : 0.0;
    h.max_ = count ? max : 0.0;
    return h;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    hp_assert(base_ == other.base_ && growth_ == other.growth_ &&
                  bins_.size() == other.bins_.size(),
              "LogHistogram::merge requires identical geometry");
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins_[i] += other.bins_[i];
    count_ += other.count_;
    sum_ += other.sum_;
}

unsigned
LogHistogram::binFor(double v) const
{
    if (v <= base_)
        return 0;
    auto idx = static_cast<long>(std::log(v / base_) / logGrowth_);
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(bins_.size()))
        idx = static_cast<long>(bins_.size()) - 1;
    return static_cast<unsigned>(idx);
}

void
LogHistogram::record(double v)
{
    recordN(v, 1);
}

void
LogHistogram::recordN(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += n;
    sum_ += v * static_cast<double>(n);
    bins_[binFor(v)] += n;
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (seen + bins_[i] > target) {
            const double low = base_ * std::pow(growth_, i);
            const double frac = bins_[i] == 0
                ? 0.0
                : static_cast<double>(target - seen) /
                      static_cast<double>(bins_[i]);
            const double val = low * std::pow(growth_, frac);
            return std::clamp(val, min_, max_);
        }
        seen += bins_[i];
    }
    return max_;
}

std::vector<std::pair<double, double>>
LogHistogram::cdf() const
{
    std::vector<std::pair<double, double>> out;
    if (count_ == 0)
        return out;
    std::uint64_t cum = 0;
    const auto total = static_cast<double>(count_);
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i] == 0)
            continue;
        cum += bins_[i];
        const double upper = base_ * std::pow(growth_, i + 1);
        out.emplace_back(std::min(upper, max_),
                         static_cast<double>(cum) / total);
    }
    return out;
}

void
LogHistogram::clear()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

} // namespace stats
} // namespace hyperplane
