#include "stats/sampler.hh"

#include <algorithm>
#include <cmath>

namespace hyperplane {
namespace stats {

void
Sampler::record(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
}

void
Sampler::merge(const Sampler &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Sampler::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
Sampler::stddev() const
{
    return std::sqrt(variance());
}

void
Sampler::clear()
{
    n_ = 0;
    mean_ = m2_ = min_ = max_ = 0.0;
}

double
RateMeter::ratePerSecond(Tick now) const
{
    if (now <= startTick_)
        return 0.0;
    return static_cast<double>(events_) / ticksToSeconds(now - startTick_);
}

} // namespace stats
} // namespace hyperplane
