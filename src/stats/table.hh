/**
 * @file
 * Plain-text table formatting for benchmark output.
 *
 * Every figure/table-reproduction binary prints its series through Table
 * so output is uniform, diffable, and easy to plot (tab-separated when
 * piped, aligned columns on a terminal).
 */

#ifndef HYPERPLANE_STATS_TABLE_HH
#define HYPERPLANE_STATS_TABLE_HH

#include <string>
#include <vector>

namespace hyperplane {
namespace stats {

/** A simple column-aligned text table. */
class Table
{
  public:
    /** @param title Printed above the table, underlined. */
    explicit Table(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> names);

    /** Append a row of pre-formatted cells. */
    void row(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    void rowValues(const std::vector<double> &values, int precision = 3);

    /** Render the table to a string. */
    std::string str() const;

    /** Print to stdout. */
    void print() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision (helper for mixed-type rows). */
std::string fmt(double v, int precision = 3);

/** Format "speedup" ratios like "4.1x". */
std::string fmtRatio(double v, int precision = 1);

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_TABLE_HH
