/**
 * @file
 * Histograms for latency and value distributions.
 *
 * Two flavours:
 *  - Histogram: fixed-width linear bins over a configured range, with
 *    overflow/underflow buckets.
 *  - LogHistogram: geometrically spaced bins (HDR-style), suitable for
 *    tail-latency measurement across several orders of magnitude with
 *    bounded relative error.
 */

#ifndef HYPERPLANE_STATS_HISTOGRAM_HH
#define HYPERPLANE_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hyperplane {
namespace stats {

/** Linear-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo   Lower bound of the binned range.
     * @param hi   Upper bound of the binned range; must exceed @p lo.
     * @param bins Number of equal-width bins; must be > 0.
     */
    Histogram(double lo, double hi, unsigned bins);

    /** Record one sample. */
    void record(double v);

    /** Record @p n identical samples. */
    void recordN(double v, std::uint64_t n);

    /** Total number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** Mean of all recorded samples (exact, not binned). */
    double mean() const;

    /** Minimum / maximum recorded sample. Valid only if count() > 0. */
    double min() const { return min_; }
    double max() const { return max_; }

    /**
     * Value at quantile @p q in [0, 1], interpolated within the bin.
     * Samples in the overflow bucket report as max().
     */
    double quantile(double q) const;

    /** Reset to empty. */
    void clear();

    /** Number of samples below lo / at or above hi. */
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /** Per-bin counts (for CDF export). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    /** Lower edge of bin @p i. */
    double binLow(unsigned i) const { return lo_ + i * width_; }

    /**
     * Export a CDF as (value, cumulative-fraction) pairs, one point per
     * non-empty bin edge.
     */
    std::vector<std::pair<double, double>> cdf() const;

  private:
    double lo_, hi_, width_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Geometric-bin histogram: bin i covers [base * growth^i, base *
 * growth^(i+1)).  With growth 1.02 the worst-case relative quantile error
 * is ~2%, adequate for reproducing published tail-latency trends.
 */
class LogHistogram
{
  public:
    /**
     * @param base   Smallest binned value (samples below land in bin 0).
     * @param growth Geometric growth factor per bin; must be > 1.
     * @param bins   Number of bins.
     */
    explicit LogHistogram(double base = 1.0, double growth = 1.02,
                          unsigned bins = 2048);

    /**
     * Rebuild a histogram from raw parts — the inverse of the bin
     * accessors, used by shard aggregation (telemetry) to lift a set of
     * lock-free bin counts back into a quantile-capable histogram.
     * count() becomes the sum of @p bins; @p min / @p max / @p sum are
     * trusted as recorded by the single writer.
     */
    static LogHistogram fromParts(double base, double growth,
                                  std::vector<std::uint64_t> bins,
                                  double sum, double min, double max);

    void record(double v);
    void recordN(double v, std::uint64_t n);

    /**
     * Merge @p other into this histogram.  Both must share the exact
     * geometry (base, growth, bin count) — merging is bin-wise
     * addition, so quantiles after a merge are identical to quantiles
     * of one histogram that recorded both sample streams.
     */
    void merge(const LogHistogram &other);

    std::uint64_t count() const { return count_; }
    double mean() const;
    /** Exact (un-binned) sum of recorded samples. */
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }

    /** Geometry accessors (merge compatibility checks). */
    double base() const { return base_; }
    double growth() const { return growth_; }
    unsigned numBins() const
    {
        return static_cast<unsigned>(bins_.size());
    }

    /** Per-bin counts, bin i covering [base*growth^i, base*growth^(i+1)). */
    const std::vector<std::uint64_t> &bins() const { return bins_; }

    /** Quantile via bin lower-edge (conservative) with interpolation. */
    double quantile(double q) const;

    /**
     * Export a CDF as (value, cumulative-fraction) pairs, one point per
     * non-empty bin upper edge.
     */
    std::vector<std::pair<double, double>> cdf() const;

    void clear();

  private:
    unsigned binFor(double v) const;

    double base_;
    double logGrowth_;
    double growth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace stats
} // namespace hyperplane

#endif // HYPERPLANE_STATS_HISTOGRAM_HH
