/**
 * @file
 * Fundamental simulation types and unit conversions.
 *
 * The simulated machine runs at a fixed 3 GHz clock (Table I of the paper
 * uses an 8-wide OoO core; we model timing abstractly but keep the clock
 * explicit so all latencies are expressed in cycles).  One Tick equals one
 * core clock cycle.
 */

#ifndef HYPERPLANE_SIM_TYPES_HH
#define HYPERPLANE_SIM_TYPES_HH

#include <cstdint>

namespace hyperplane {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** A physical memory address in the simulated machine. */
using Addr = std::uint64_t;

/** Identifier of an I/O queue managed by the data plane. */
using QueueId = std::uint32_t;

/** Identifier of a simulated core. */
using CoreId = std::uint32_t;

/** Sentinel for "no queue". */
constexpr QueueId invalidQueueId = ~QueueId{0};

/** Core clock frequency of the simulated machine. */
constexpr double clockGHz = 3.0;

/** Cycles per microsecond at the simulated clock. */
constexpr double cyclesPerUs = clockGHz * 1000.0;

/** Cycles per nanosecond at the simulated clock. */
constexpr double cyclesPerNs = clockGHz;

/** Convert a cycle count to microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / cyclesPerUs;
}

/** Convert microseconds to cycles (rounded down). */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * cyclesPerUs);
}

/** Convert nanoseconds to cycles (rounded down). */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * cyclesPerNs);
}

/** Convert a cycle count to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / (clockGHz * 1e9);
}

/** Size of a cache line in the simulated machine, bytes. */
constexpr unsigned cacheLineBytes = 64;

/** Mask an address down to its cache-line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~Addr{cacheLineBytes - 1};
}

} // namespace hyperplane

#endif // HYPERPLANE_SIM_TYPES_HH
