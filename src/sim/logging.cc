#include "sim/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hyperplane {

namespace {

std::atomic<unsigned long> warnings{0};

void
vreport(const char *level, const char *fmt, std::va_list ap)
{
    std::fprintf(stderr, "%s: ", level);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    std::va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    warnings.fetch_add(1, std::memory_order_relaxed);
    std::va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

unsigned long
warnCount()
{
    return warnings.load(std::memory_order_relaxed);
}

} // namespace hyperplane
