/**
 * @file
 * A discrete-event simulation kernel.
 *
 * Events scheduled for the same tick fire in scheduling order, which
 * keeps multi-component interactions deterministic.  Events may be
 * cancelled via the EventId returned by schedule().
 *
 * Internals (see docs/PERFORMANCE.md for the full design):
 *
 *  - Callbacks live in a slot array of small-buffer-optimized
 *    EventCallback objects; the schedule fast path performs no heap
 *    allocation for any capture the component layers produce.
 *  - EventIds are generation-tagged slot handles, so cancel() is an
 *    O(1) array probe instead of a hash-set lookup, and a cancelled
 *    event's callback (and captured resources) are destroyed
 *    immediately.
 *  - Dispatch order is (tick, schedule sequence): a near-horizon
 *    calendar of per-tick buckets absorbs the dominant short-delta
 *    schedules in O(1); a binary heap holds far-future events.  The two
 *    front ends are merged by sequence number at dispatch, preserving
 *    the same-tick FIFO contract exactly.
 *  - Cancelled entries left behind in the calendar/heap are purged once
 *    they outnumber live ones, so schedule+cancel churn cannot grow
 *    kernel memory without bound.
 *  - Every event carries a 16-bit owner (partition) tag, inherited from
 *    the event whose callback scheduled it.  The tag never affects
 *    dispatch order; it exists so the partition-affine dispatcher
 *    (sim/parallel_engine.hh) can execute each event on the worker
 *    thread owning its partition while stepping this queue in exactly
 *    sequential order.
 */

#ifndef HYPERPLANE_SIM_EVENT_QUEUE_HH
#define HYPERPLANE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/types.hh"

namespace hyperplane {

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Discrete-event queue driving a single simulation.
 *
 * The typical loop is:
 * @code
 *   EventQueue eq;
 *   eq.schedule(100, [&]{ ... });
 *   eq.run(usToTicks(1000));
 * @endcode
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /**
     * Width of the near-horizon calendar: a schedule whose delta from
     * now() is below this lands in an O(1) per-tick bucket; farther
     * events go to the binary heap.  Covers QWAIT (50), memory (200)
     * and the several-thousand-cycle service times that dominate the
     * event mix; only Poisson inter-arrival gaps at light load overflow
     * to the heap.
     */
    static constexpr Tick horizonTicks = 8192;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time.  Monotonically non-decreasing. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb   Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule a callback @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb)
    {
        return schedule(now_ + delta, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if
     *         it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return liveCount_; }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /** Tick of the next pending event. @pre !empty() */
    Tick nextEventTick() const;

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p until.  Events scheduled exactly at @p until still fire.
     *
     * @return Number of events dispatched.
     */
    std::uint64_t run(Tick until = ~Tick{0});

    /**
     * Dispatch exactly one event, if any.
     * @return true if an event fired.
     */
    bool step();

    /**
     * Advance now() to @p t without running events.  Used by bulk
     * fast-forward paths; @p t must not skip over any pending event.
     */
    void advanceTo(Tick t);

    /** Total events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

    // --- partition-affine dispatch (sim/parallel_engine.hh) -----------

    /**
     * The owner (partition) tag stamped on events scheduled from the
     * current context.  While a callback runs, this is the firing
     * event's own tag, so spawned events inherit their parent's
     * partition; outside dispatch it is whatever the last
     * SpawnOwnerScope (or setSpawnOwner) established, default 0.
     */
    std::uint16_t spawnOwner() const { return spawnOwner_; }

    /** Set the ambient owner tag for subsequently scheduled events. */
    void setSpawnOwner(std::uint16_t owner) { spawnOwner_ = owner; }

    /** RAII owner tag for a block of root schedules. */
    class SpawnOwnerScope
    {
      public:
        SpawnOwnerScope(EventQueue &eq, std::uint16_t owner)
            : eq_(eq), prev_(eq.spawnOwner_)
        {
            eq_.spawnOwner_ = owner;
        }
        ~SpawnOwnerScope() { eq_.spawnOwner_ = prev_; }
        SpawnOwnerScope(const SpawnOwnerScope &) = delete;
        SpawnOwnerScope &operator=(const SpawnOwnerScope &) = delete;

      private:
        EventQueue &eq_;
        std::uint16_t prev_;
    };

    /**
     * Owner tag of the next event run()/step() would dispatch.
     * @return false if the queue is empty.  (Non-const: reclaims
     * cancelled tombstones encountered at the front.)
     */
    bool peekNextOwner(std::uint16_t &owner);

    /** Why runOwnerSlice() returned. */
    enum class SliceEnd
    {
        Empty,       ///< queue drained; now() advanced as run() would
        Until,       ///< next event is past @p until; now() == until
        OwnerSwitch, ///< next event belongs to @p nextOwner
    };

    /**
     * Dispatch the maximal run of consecutive events owned by
     * @p owner, in exactly the order run(until) would use, stopping
     * without dispatching when the next event belongs to someone else
     * (reported via @p nextOwner).  A full pass — slices executed
     * back-to-back following @p nextOwner until Empty/Until — leaves
     * the queue in a state byte-identical to one run(until) call.
     *
     * @param fired Events dispatched by this slice.
     */
    SliceEnd runOwnerSlice(Tick until, std::uint16_t owner,
                           std::uint16_t &nextOwner, std::uint64_t &fired);

    // --- introspection (tests, perf harness) --------------------------

    /**
     * Entries currently held by the calendar + heap, including
     * not-yet-purged cancelled tombstones.  The bounded-memory
     * regression test asserts this tracks pending(), not the number of
     * cancellations ever issued.
     */
    std::size_t debugScheduledEntries() const
    {
        return heap_.size() + bucketRefs_;
    }

    /** Size of the slot array (high-water mark of concurrent events). */
    std::size_t debugSlotCapacity() const { return slots_.size(); }

  private:
    /** Callback + identity of one scheduled event. */
    struct Slot
    {
        Callback cb;
        /** Schedule sequence number; 0 = slot is free. */
        std::uint64_t seq = 0;
        /** Generation tag carried in the public EventId. */
        std::uint32_t gen = 1;
        /** Free-list link (valid while free). */
        std::uint32_t nextFree = 0;
        /** Partition tag for the affine dispatcher (never affects order). */
        std::uint16_t owner = 0;
        /** Whether the event's entry sits in a bucket (vs the heap). */
        bool bucketed = false;
    };

    /** (when, seq) key + owning slot of one calendar/heap entry. */
    struct Ref
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Max-heap comparator for "fires later" (min element at front). */
    struct Later
    {
        bool
        operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** One near-horizon tick's events, appended in schedule order. */
    struct Bucket
    {
        std::vector<Ref> refs;
        /** Index of the next unconsumed entry. */
        std::uint32_t drain = 0;
    };

    static constexpr std::uint32_t noFreeSlot = ~std::uint32_t{0};

    /** True if @p r still refers to a live (uncancelled) event. */
    bool
    refLive(const Ref &r) const
    {
        return slots_[r.slot].seq == r.seq;
    }

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t slot);

    void bucketPush(const Ref &r);
    void setBucketBit(std::size_t b);
    void clearBucketBit(std::size_t b);

    /** Drop stale heap entries off the top. */
    void skipStaleHeap();

    /**
     * Earliest bucketed event, skipping (and reclaiming) stale
     * entries.  @return false if no live bucketed event exists.
     * On success @p tick is its tick; the bucket's drain points at it.
     */
    bool bucketFront(Tick &tick);

    /** Earliest pending tick across both front ends. */
    bool peekNextTick(Tick &tick);

    /**
     * The ref run()/step() would dispatch next, merging both front
     * ends by (when, seq).  Reclaims stale front entries; the winning
     * entry itself is left in place.
     */
    bool peekNextRef(Ref &r, bool &fromBucket);

    /** Remove @p r (the current front, as reported by peekNextRef)
     *  from its front end, advance now(), and fire its callback. */
    void popAndFire(const Ref &r, bool fromBucket);

    /** Reclaim cancelled tombstones once they outnumber live entries. */
    void maybePurge();

    Tick now_ = 0;
    std::uint16_t spawnOwner_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::size_t liveCount_ = 0;

    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = noFreeSlot;

    /** Far-future events, managed with std::push_heap/pop_heap. */
    std::vector<Ref> heap_;
    std::size_t heapStale_ = 0;

    /** Calendar: bucket b holds events with when % horizonTicks == b. */
    std::vector<Bucket> buckets_;
    /** One bit per bucket: set iff the bucket has unconsumed entries. */
    std::vector<std::uint64_t> bucketBits_;
    /** Unconsumed calendar entries (live + stale). */
    std::size_t bucketRefs_ = 0;
    std::size_t bucketStale_ = 0;
    /** Lower bound on the earliest bucketed tick (scan hint). */
    Tick bucketHint_ = ~Tick{0};
};

} // namespace hyperplane

#endif // HYPERPLANE_SIM_EVENT_QUEUE_HH
