/**
 * @file
 * A discrete-event simulation kernel.
 *
 * The kernel is a min-heap of (tick, sequence) ordered events.  Events
 * scheduled for the same tick fire in scheduling order, which keeps
 * multi-component interactions deterministic.  Events may be cancelled via
 * the EventId returned by schedule().
 */

#ifndef HYPERPLANE_SIM_EVENT_QUEUE_HH
#define HYPERPLANE_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace hyperplane {

/** Handle identifying a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel for "no event". */
constexpr EventId invalidEventId = 0;

/**
 * Discrete-event queue driving a single simulation.
 *
 * The typical loop is:
 * @code
 *   EventQueue eq;
 *   eq.schedule(100, [&]{ ... });
 *   eq.run(usToTicks(1000));
 * @endcode
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time.  Monotonically non-decreasing. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb   Callback to invoke.
     * @return Handle that can be passed to cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule a callback @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback cb)
    {
        return schedule(now_ + delta, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * @return true if the event was pending and is now cancelled; false if
     *         it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_.size(); }

    /** True if no events remain. */
    bool empty() const { return pending() == 0; }

    /** Tick of the next pending event. @pre !empty() */
    Tick nextEventTick() const;

    /**
     * Run until the queue is empty or simulated time would exceed
     * @p until.  Events scheduled exactly at @p until still fire.
     *
     * @return Number of events dispatched.
     */
    std::uint64_t run(Tick until = ~Tick{0});

    /**
     * Dispatch exactly one event, if any.
     * @return true if an event fired.
     */
    bool step();

    /**
     * Advance now() to @p t without running events.  Used by bulk
     * fast-forward paths; @p t must not skip over any pending event.
     */
    void advanceTo(Tick t);

    /** Total events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop cancelled entries off the heap top. */
    void skipCancelled();

    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    /** Ids still in the heap and not cancelled. */
    std::unordered_set<EventId> live_;
    /** Ids in the heap that were cancelled (lazily discarded). */
    std::unordered_set<EventId> cancelled_;
};

} // namespace hyperplane

#endif // HYPERPLANE_SIM_EVENT_QUEUE_HH
