/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump captures the state.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — plain status output.
 */

#ifndef HYPERPLANE_SIM_LOGGING_HH
#define HYPERPLANE_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace hyperplane {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Count of warnings emitted so far (exposed for tests). */
unsigned long warnCount();

} // namespace hyperplane

#define hp_panic(...) \
    ::hyperplane::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define hp_fatal(...) \
    ::hyperplane::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define hp_warn(...) ::hyperplane::warnImpl(__VA_ARGS__)
#define hp_inform(...) ::hyperplane::informImpl(__VA_ARGS__)

/** Panic if a library-internal invariant does not hold. */
#define hp_assert(cond, msg, ...)                                          \
    do {                                                                   \
        if (!(cond))                                                       \
            hp_panic("assertion failed (%s): " msg, #cond,                 \
                     ##__VA_ARGS__);                                       \
    } while (0)

#endif // HYPERPLANE_SIM_LOGGING_HH
