#include "sim/parallel_engine.hh"

#include <algorithm>
#include <numeric>
#include <thread>
#include <utility>

#include "sim/logging.hh"

namespace hyperplane {
namespace sim {

// ---------------------------------------------------------------------
// Latency-weighted LPT partitioning
// ---------------------------------------------------------------------

std::vector<unsigned>
balanceByWeight(const std::vector<double> &weights, unsigned bins)
{
    const std::size_t n = weights.size();
    std::vector<unsigned> assign(n, 0);
    if (bins <= 1 || n == 0)
        return assign;

    // Heaviest object first, each into the currently lightest bin.
    // stable_sort + lower-index tie-break keep the result a pure
    // function of the weights (no pointer or hash order leaks in).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return weights[a] > weights[b];
                     });

    std::vector<double> load(bins, 0.0);
    for (const std::size_t i : order) {
        unsigned best = 0;
        for (unsigned b = 1; b < bins; ++b)
            if (load[b] < load[best])
                best = b;
        assign[i] = best;
        load[best] += weights[i];
    }
    return assign;
}

// ---------------------------------------------------------------------
// Token-passing partition-affine dispatch over the sequential kernel
// ---------------------------------------------------------------------

namespace {
constexpr std::uint32_t tokenDone = ~std::uint32_t{0};
} // namespace

std::uint64_t
runShared(EventQueue &eq, Tick until, unsigned partitions)
{
    std::uint16_t first = 0;
    if (partitions <= 1 || !eq.peekNextOwner(first))
        return eq.run(until);

    // The token holds the owner tag whose events run next (tokenDone
    // when finished); worker w serves tags congruent to w mod
    // partitions.  The release store / acquire load pair on the token
    // is the only synchronization: it hands the whole queue (and all
    // partition state the previous slice touched) to the next worker.
    std::atomic<std::uint32_t> token{first};
    std::atomic<std::uint64_t> total{0};

    auto workerFn = [&](unsigned me) {
        std::uint64_t mine = 0;
        std::uint32_t t = token.load(std::memory_order_acquire);
        for (;;) {
            while (t != tokenDone && t % partitions != me) {
                token.wait(t, std::memory_order_acquire);
                t = token.load(std::memory_order_acquire);
            }
            if (t == tokenDone)
                break;
            std::uint16_t next = 0;
            std::uint64_t fired = 0;
            const auto end = eq.runOwnerSlice(
                until, static_cast<std::uint16_t>(t), next, fired);
            mine += fired;
            if (end == EventQueue::SliceEnd::OwnerSwitch) {
                t = next;
                token.store(t, std::memory_order_release);
                if (t % partitions != me)
                    token.notify_all();
            } else {
                token.store(tokenDone, std::memory_order_release);
                token.notify_all();
                break;
            }
        }
        total.fetch_add(mine, std::memory_order_relaxed);
    };

    std::vector<std::thread> threads;
    threads.reserve(partitions - 1);
    for (unsigned w = 1; w < partitions; ++w)
        threads.emplace_back(workerFn, w);
    workerFn(0);
    for (auto &th : threads)
        th.join();
    return total.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// EpochEngine
// ---------------------------------------------------------------------

thread_local EpochEngine::ExecContext EpochEngine::tls_;

EpochEngine::EpochEngine(unsigned partitions, unsigned threads)
{
    hp_assert(partitions >= 1, "EpochEngine needs at least one partition");
    hp_assert(partitions <= 0xFFFF, "partition id must fit 16 bits");
    parts_ = std::vector<Partition>(partitions);
    numThreads_ = threads == 0 ? partitions
                               : std::min(threads, partitions);
    if (numThreads_ < 1)
        numThreads_ = 1;
    workers_ = std::vector<Worker>(numThreads_);
    partToWorker_.resize(partitions);
    for (unsigned p = 0; p < partitions; ++p) {
        partToWorker_[p] = p % numThreads_;
        workers_[p % numThreads_].owned.push_back(p);
    }
    for (Worker &wk : workers_)
        wk.mailbox.resize(numThreads_);
}

EpochEngine::~EpochEngine() = default;

std::uint32_t
EpochEngine::Partition::allocSlot()
{
    if (freeHead != noSlot) {
        const std::uint32_t s = freeHead;
        freeHead = slots[s].nextFree;
        return s;
    }
    slots.emplace_back();
    return static_cast<std::uint32_t>(slots.size() - 1);
}

void
EpochEngine::Partition::freeSlot(std::uint32_t s)
{
    Slot &sl = slots[s];
    sl.cb.reset();
    sl.seq = 0;
    if ((++sl.gen & 0xFFFF) == 0)
        ++sl.gen; // gen 0 reserved: no id equals invalidEpochEventId
    if (sl.state == SlotState::Live)
        --liveCount;
    sl.state = SlotState::Free;
    sl.nextFree = freeHead;
    freeHead = s;
}

void
EpochEngine::Partition::skipStale()
{
    while (!heap.empty()) {
        const Ref &r = heap.front();
        const Slot &s = slots[r.slot];
        if (s.state == SlotState::Live && s.seq == r.seq)
            break;
        std::pop_heap(heap.begin(), heap.end(), RefLater{});
        heap.pop_back();
    }
}

bool
EpochEngine::Partition::nextTick(Tick &t)
{
    skipStale();
    if (heap.empty())
        return false;
    t = heap.front().when;
    return true;
}

EpochEventId
EpochEngine::scheduleDirect(unsigned partition, Tick when, Callback cb)
{
    Partition &part = parts_[partition];
    const std::uint32_t slot = part.allocSlot();
    Slot &s = part.slots[slot];
    s.cb = std::move(cb);
    s.when = when;
    s.seq = ++nextSeq_;
    s.state = SlotState::Live;
    part.heap.push_back(Ref{when, s.seq, slot});
    std::push_heap(part.heap.begin(), part.heap.end(), RefLater{});
    ++part.liveCount;
    return idOf(partition, slot, s.gen);
}

EpochEventId
EpochEngine::schedule(unsigned partition, Tick when, Callback cb)
{
    hp_assert(partition < parts_.size(), "schedule to unknown partition");
    hp_assert(when >= now_, "scheduling into the past");

    if (!tls_.inEvent || tls_.engine != this)
        return scheduleDirect(partition, when, std::move(cb));

    Worker &wk = workers_[tls_.worker];
    Op op;
    op.parentSeq = tls_.parentSeq;
    op.opIdx = tls_.nextOpIdx++;
    op.target = static_cast<std::uint16_t>(partition);

    if (partition == tls_.partition) {
        // Local: callback moves straight into a pre-allocated slot; only
        // the global seq waits for the commit phase.  The returned id is
        // valid (and cancellable) immediately.
        Partition &part = parts_[partition];
        const std::uint32_t slot = part.allocSlot();
        Slot &s = part.slots[slot];
        s.cb = std::move(cb);
        s.when = when;
        s.seq = 0;
        s.state = SlotState::Pending;
        op.when = when;
        op.slot = slot;
        op.schedGen = s.gen;
        wk.mailbox[tls_.worker].push_back(std::move(op));
        return idOf(partition, slot, s.gen);
    }

    hp_assert(when > now_,
              "cross-partition schedule must target a strictly future tick");
    op.when = when;
    op.cb = std::move(cb);
    wk.mailbox[workerOf(partition)].push_back(std::move(op));
    return invalidEpochEventId;
}

bool
EpochEngine::applyCancel(EpochEventId id, bool fromDrain)
{
    const auto partition = static_cast<unsigned>(id >> 48);
    const auto slot = static_cast<std::uint32_t>(id >> 16);
    const auto gen = static_cast<std::uint32_t>(id & 0xFFFF);
    if (partition >= parts_.size())
        return false;
    Partition &part = parts_[partition];
    if (slot >= part.slots.size())
        return false;
    Slot &s = part.slots[slot];
    if ((s.gen & 0xFFFF) != gen || s.state == SlotState::Free)
        return false;
    if (fromDrain && s.state == SlotState::Live)
        hp_assert(s.when > now_,
                  "cross-partition cancel of a non-future event");
    // Heap entry (if any) becomes a tombstone reclaimed by skipStale();
    // a Pending slot's commit op is skipped via the gen bump.
    part.freeSlot(slot);
    return true;
}

bool
EpochEngine::cancelDirect(EpochEventId id)
{
    return applyCancel(id, false);
}

bool
EpochEngine::cancel(EpochEventId id)
{
    if (id == invalidEpochEventId)
        return false;
    const auto partition = static_cast<unsigned>(id >> 48);
    if (!tls_.inEvent || tls_.engine != this ||
        partition == tls_.partition)
        return cancelDirect(id);

    // Foreign event: O(1) mailbox push, applied at the epoch barrier.
    Worker &wk = workers_[tls_.worker];
    Op op;
    op.parentSeq = tls_.parentSeq;
    op.opIdx = tls_.nextOpIdx++;
    op.target = static_cast<std::uint16_t>(partition);
    op.isCancel = true;
    op.cancelId = id;
    wk.mailbox[workerOf(partition)].push_back(std::move(op));
    return true;
}

std::size_t
EpochEngine::pending() const
{
    std::size_t n = 0;
    for (const Partition &part : parts_)
        n += part.liveCount;
    return n;
}

void
EpochEngine::computeLocalMin(unsigned w)
{
    Worker &wk = workers_[w];
    wk.haveLocalMin = false;
    for (const unsigned p : wk.owned) {
        Tick t;
        if (parts_[p].nextTick(t) &&
            (!wk.haveLocalMin || t < wk.localMin)) {
            wk.localMin = t;
            wk.haveLocalMin = true;
        }
    }
}

void
EpochEngine::fireRound(unsigned w)
{
    Worker &wk = workers_[w];
    for (auto &lane : wk.mailbox)
        lane.clear();

    // Fire every tick == now_ event of this worker's partitions in
    // global seq order.  Events committed mid-round don't exist yet
    // (local zero-delta spawns wait for the commit phase and run in
    // the next sub-round), so one pass over current heap tops is
    // exhaustive.
    for (;;) {
        Partition *best = nullptr;
        unsigned bestPart = 0;
        for (const unsigned p : wk.owned) {
            Partition &part = parts_[p];
            part.skipStale();
            if (part.heap.empty() || part.heap.front().when != now_)
                continue;
            if (!best ||
                part.heap.front().seq < best->heap.front().seq) {
                best = &part;
                bestPart = p;
            }
        }
        if (!best)
            break;

        const Ref r = best->heap.front();
        std::pop_heap(best->heap.begin(), best->heap.end(), RefLater{});
        best->heap.pop_back();

        tls_.partition = bestPart;
        tls_.parentSeq = r.seq;
        tls_.nextOpIdx = 0;
        tls_.inEvent = true;
        Callback cb = std::move(best->slots[r.slot].cb);
        best->freeSlot(r.slot);
        ++best->fired;
        ++wk.firedThisRun;
        cb();
        tls_.inEvent = false;
    }
}

void
EpochEngine::commitSerial()
{
    committed_.clear();
    for (Worker &wk : workers_)
        for (auto &lane : wk.mailbox)
            for (Op &op : lane)
                committed_.push_back(&op);

    // (parentSeq, opIdx) is the order one sequential kernel would have
    // seen these schedule()/cancel() calls; assigning global seqs in
    // that order makes same-tick FIFO identical for any thread count.
    std::sort(committed_.begin(), committed_.end(),
              [](const Op *a, const Op *b) {
                  if (a->parentSeq != b->parentSeq)
                      return a->parentSeq < b->parentSeq;
                  return a->opIdx < b->opIdx;
              });
    for (Op *op : committed_)
        if (!op->isCancel)
            op->assignedSeq = ++nextSeq_;

    again_.store(false, std::memory_order_relaxed);
}

void
EpochEngine::drainInbox(unsigned w)
{
    bool sawNowTick = false;
    for (Op *op : committed_) {
        if (workerOf(op->target) != w)
            continue;
        Partition &part = parts_[op->target];

        if (op->isCancel) {
            applyCancel(op->cancelId, true);
            continue;
        }

        std::uint32_t slot = op->slot;
        if (slot == noSlot) {
            // Foreign schedule: the callback travelled in the mailbox.
            slot = part.allocSlot();
            Slot &s = part.slots[slot];
            s.cb = std::move(op->cb);
            s.when = op->when;
        } else {
            // Local pre-allocated slot; a gen mismatch means the parent
            // (or a later same-round event) cancelled it before commit.
            // The seq was still consumed above, as it would have been
            // sequentially.
            Slot &s = part.slots[slot];
            if ((s.gen & 0xFFFF) != (op->schedGen & 0xFFFF) ||
                s.state != SlotState::Pending)
                continue;
        }
        Slot &s = part.slots[slot];
        s.seq = op->assignedSeq;
        s.state = SlotState::Live;
        part.heap.push_back(Ref{s.when, s.seq, slot});
        std::push_heap(part.heap.begin(), part.heap.end(), RefLater{});
        ++part.liveCount;
        if (s.when == now_)
            sawNowTick = true;
    }
    if (sawNowTick)
        again_.store(true, std::memory_order_relaxed);
}

void
EpochEngine::barrier()
{
    // Central counter with a monotonic sense word: the last arriver
    // resets the counter, bumps the sense (release), and wakes the
    // rest; everyone else acquire-waits on the bump.  The release /
    // acquire pair carries every pre-barrier write to every
    // post-barrier reader, which is what lets the phase variables
    // (now_, committed_, mailboxes) stay plain data.
    const std::uint32_t s = sense_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        numThreads_) {
        arrived_.store(0, std::memory_order_relaxed);
        sense_.store(s + 1, std::memory_order_release);
        sense_.notify_all();
    } else {
        std::uint32_t cur;
        while ((cur = sense_.load(std::memory_order_acquire)) == s)
            sense_.wait(s);
        (void)cur;
    }
}

void
EpochEngine::workerLoop(unsigned w)
{
    tls_.engine = this;
    tls_.worker = w;
    for (;;) {
        computeLocalMin(w);
        barrier();
        if (w == 0) {
            Tick m = 0;
            bool have = false;
            for (const Worker &wk : workers_)
                if (wk.haveLocalMin && (!have || wk.localMin < m)) {
                    m = wk.localMin;
                    have = true;
                }
            if (!have || m > until_)
                done_.store(true, std::memory_order_relaxed);
            else
                now_ = m;
        }
        barrier();
        if (done_.load(std::memory_order_relaxed))
            break;

        // Sub-rounds absorb same-tick (zero-delta) spawns: each round
        // fires everything pending at now_, commits the ops it issued,
        // and goes again if the commit scheduled back into now_.
        for (;;) {
            fireRound(w);
            barrier();
            if (w == 0)
                commitSerial();
            barrier();
            drainInbox(w);
            barrier();
            if (!again_.load(std::memory_order_relaxed))
                break;
        }
    }
    tls_.engine = nullptr;
}

std::uint64_t
EpochEngine::run(Tick until)
{
    hp_assert(!tls_.inEvent, "EpochEngine::run from inside an event");
    until_ = until;
    done_.store(false, std::memory_order_relaxed);
    again_.store(false, std::memory_order_relaxed);
    for (Worker &wk : workers_) {
        wk.firedThisRun = 0;
        for (auto &lane : wk.mailbox)
            lane.clear();
    }

    std::vector<std::thread> threads;
    threads.reserve(numThreads_ - 1);
    for (unsigned w = 1; w < numThreads_; ++w)
        threads.emplace_back(&EpochEngine::workerLoop, this, w);
    workerLoop(0);
    for (auto &th : threads)
        th.join();

    std::uint64_t n = 0;
    for (const Worker &wk : workers_)
        n += wk.firedThisRun;
    dispatched_ += n;
    if (now_ < until && until != ~Tick{0})
        now_ = until;
    return n;
}

} // namespace sim
} // namespace hyperplane
