/**
 * @file
 * Tick-parallel simulation backends.
 *
 * Two execution modes share this file, both preserving the sequential
 * kernel's dispatch contract — same-tick events fire in global schedule
 * order, merged by (tick, seq) — exactly:
 *
 *  1. EpochEngine: a barrier-synced tick-epoch engine for object graphs
 *     whose state is partitioned (an event owned by partition p touches
 *     only partition-p state).  Partitions advance one tick per epoch
 *     on worker threads; every schedule/cancel an event issues is
 *     recorded in a per-thread-pair mailbox as an (parentSeq, opIndex)
 *     tagged operation and committed at the epoch barrier in exactly
 *     the order the sequential kernel would have processed it, so
 *     global sequence numbers — and therefore same-tick FIFO order —
 *     are reproduced bit-identically regardless of thread timing.
 *     Same-tick (zero-delta) spawns fire in a later sub-round of the
 *     same epoch, matching the sequential rule that a new event's seq
 *     exceeds every pending one.
 *
 *  2. runShared(): a partition-affine dispatcher for systems whose
 *     components share synchronous state (SdpSystem: one LLC +
 *     coherence directory couples every simulated core, so same-tick
 *     events in different partitions do not commute).  It steps the
 *     ONE sequential EventQueue in exactly sequential order — bit
 *     identity is by construction, for every configuration including
 *     faults and work stealing — but executes each event on the worker
 *     thread owning the event's partition, handing a release/acquire
 *     token between workers only when ownership changes.  Consecutive
 *     same-owner events run as one slice with no synchronization.  The
 *     win is host cache residency: each worker's private cache holds
 *     only its partition's simulated core/cluster state instead of one
 *     thread thrashing through all of it, which is where the wall
 *     clock goes at 512/1024 simulated cores (see
 *     docs/PERFORMANCE.md).
 *
 * Partition assignment uses latency-weighted LPT (longest processing
 * time first) balancing, as in cycle-level simulators that bin sim
 * objects onto threads by measured or estimated per-object cost.
 */

#ifndef HYPERPLANE_SIM_PARALLEL_ENGINE_HH
#define HYPERPLANE_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace sim {

/**
 * Assign @p weights.size() objects to @p bins bins, balancing total
 * weight: heaviest object first into the lightest bin (LPT greedy).
 * Ties break toward the lower bin index, so the assignment is a pure
 * function of the weights.  @return bin index per object.
 */
std::vector<unsigned> balanceByWeight(const std::vector<double> &weights,
                                      unsigned bins);

/**
 * Run @p eq to @p until on @p partitions worker threads.  Every event
 * dispatches in exactly the order the sequential eq.run(until) would
 * use, on the thread owning the event's partition tag (events inherit
 * their scheduler's tag; see EventQueue::SpawnOwnerScope).  The final
 * queue state — now(), dispatched(), pending events, seq counter — is
 * identical to eq.run(until)'s.
 *
 * @return Events dispatched, like EventQueue::run.
 */
std::uint64_t runShared(EventQueue &eq, Tick until, unsigned partitions);

/** Handle to an EpochEngine event, usable for cancellation. */
using EpochEventId = std::uint64_t;

/** Sentinel: no event / non-cancellable cross-partition message. */
constexpr EpochEventId invalidEpochEventId = 0;

/**
 * Barrier-synced tick-epoch engine over partitioned sim objects.
 *
 * Usage contract (asserted in debug builds):
 *  - Events touch only state of their own partition; cross-partition
 *    interaction happens by scheduling events into other partitions.
 *  - schedule() into the caller's own partition returns a cancellable
 *    id; schedule() into a foreign partition is a mailbox message and
 *    returns invalidEpochEventId (the owner can later hand the real id
 *    to peers, who may then cancel() it cross-partition).
 *  - Cross-partition schedules and cancels must target a tick strictly
 *    after the current epoch's tick (they commit at the epoch
 *    barrier); same-partition operations may be same-tick, exactly as
 *    in the sequential kernel.
 *
 * Under that contract, dispatch order, sequence assignment, and every
 * partition's state trajectory are bit-identical to running the same
 * object graph on one sequential EventQueue, for any thread count.
 */
class EpochEngine
{
  public:
    using Callback = EventCallback;

    /**
     * @param partitions Number of state partitions (>= 1).
     * @param threads    Worker threads; 0 = one per partition.  Capped
     *                   at the partition count.
     */
    explicit EpochEngine(unsigned partitions, unsigned threads = 0);
    ~EpochEngine();

    EpochEngine(const EpochEngine &) = delete;
    EpochEngine &operator=(const EpochEngine &) = delete;

    unsigned partitions() const
    {
        return static_cast<unsigned>(parts_.size());
    }

    unsigned threads() const { return numThreads_; }

    /** Current simulated time (stable while an event runs). */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute tick @p when into @p partition.
     * Callable from a running event (worker context) or, before/between
     * run() calls, from the controlling thread.
     */
    EpochEventId schedule(unsigned partition, Tick when, Callback cb);

    /** Schedule @p delta ticks from now into @p partition. */
    EpochEventId scheduleIn(unsigned partition, Tick delta, Callback cb)
    {
        return schedule(partition, now_ + delta, std::move(cb));
    }

    /**
     * Cancel a scheduled event.  Same-partition (or controlling-thread)
     * cancels apply immediately and return whether the event was
     * pending; a cancel of a foreign partition's event is an O(1)
     * mailbox push, applied at the epoch barrier, and returns true for
     * "requested".
     */
    bool cancel(EpochEventId id);

    /** Pending (non-cancelled) events across all partitions. */
    std::size_t pending() const;

    /** Total events dispatched since construction. */
    std::uint64_t dispatched() const { return dispatched_; }

    /**
     * Run until no events remain or simulated time would pass
     * @p until; events exactly at @p until still fire.
     * @return events dispatched by this call.
     */
    std::uint64_t run(Tick until = ~Tick{0});

  private:
    static constexpr std::uint32_t noSlot = ~std::uint32_t{0};

    enum class SlotState : std::uint8_t
    {
        Free,    ///< on the free list
        Pending, ///< local schedule awaiting its commit-phase seq
        Live,    ///< committed: seq assigned, heap entry present
    };

    /** One stored event. */
    struct Slot
    {
        Callback cb;
        Tick when = 0;
        /** Global sequence; 0 until the commit phase assigns one. */
        std::uint64_t seq = 0;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = noSlot;
        SlotState state = SlotState::Free;
    };

    /** (when, seq) heap entry. */
    struct Ref
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    struct RefLater
    {
        bool operator()(const Ref &a, const Ref &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One schedule or cancel issued during an epoch, tagged with the
     * issuing event's global seq and the op's index within that event:
     * sorting by (parentSeq, opIdx) reconstructs the exact order a
     * sequential kernel would have seen the calls.
     */
    struct Op
    {
        std::uint64_t parentSeq = 0;
        std::uint32_t opIdx = 0;
        std::uint16_t target = 0;
        bool isCancel = false;
        Tick when = 0;              ///< schedule only
        std::uint32_t slot = noSlot; ///< schedule: pre-allocated local slot
        std::uint32_t schedGen = 0; ///< gen at issue (detects pre-commit cancel)
        std::uint64_t assignedSeq = 0; ///< filled by the commit phase
        Callback cb;                ///< schedule into foreign partition
        EpochEventId cancelId = 0;  ///< cancel only
    };

    /** Per-partition state, cache-line aligned: exactly one worker
     *  touches a partition between barriers. */
    struct alignas(64) Partition
    {
        std::vector<Slot> slots;
        std::uint32_t freeHead = noSlot;
        std::vector<Ref> heap;
        std::size_t liveCount = 0;
        std::uint64_t fired = 0;

        std::uint32_t allocSlot();
        void freeSlot(std::uint32_t s);
        /** Pop cancelled tombstones off the heap top. */
        void skipStale();
        bool nextTick(Tick &t);
    };

    /** Per-worker execution state. */
    struct alignas(64) Worker
    {
        std::vector<unsigned> owned; ///< partitions this worker runs
        /** Outgoing ops, one lane per destination worker (the
         *  per-thread-pair mailbox); records stay in issue order,
         *  which is (parentSeq, opIdx) order within a lane. */
        std::vector<std::vector<Op>> mailbox;
        Tick localMin = 0;
        bool haveLocalMin = false;
        std::uint64_t firedThisRun = 0;
    };

    /** Context of the event currently running on this thread. */
    struct ExecContext
    {
        EpochEngine *engine = nullptr;
        unsigned worker = 0;
        unsigned partition = 0;
        std::uint64_t parentSeq = 0;
        std::uint32_t nextOpIdx = 0;
        bool inEvent = false;
    };

    static thread_local ExecContext tls_;

    /** Ids pack partition(16) | slot(32) | gen(16). */
    EpochEventId idOf(unsigned partition, std::uint32_t slot,
                      std::uint32_t gen) const
    {
        return (static_cast<EpochEventId>(partition) << 48) |
               (static_cast<EpochEventId>(slot) << 16) | (gen & 0xFFFF);
    }

    unsigned workerOf(unsigned partition) const
    {
        return partToWorker_[partition];
    }

    /** Immediate schedule (controlling thread, between runs). */
    EpochEventId scheduleDirect(unsigned partition, Tick when,
                                Callback cb);
    /** Immediate cancel on a partition this thread may touch. */
    bool cancelDirect(EpochEventId id);

    void workerLoop(unsigned w);
    /** Earliest pending tick across worker @p w's partitions. */
    void computeLocalMin(unsigned w);
    /** Fire all tick == now_ events of worker @p w's partitions in
     *  global seq order; buffer the ops they issue. */
    void fireRound(unsigned w);
    /** Phase done by one thread between barriers: merge every mailbox
     *  lane by (parentSeq, opIdx) and assign global seqs. */
    void commitSerial();
    /** Drain committed ops addressed to worker @p w's partitions. */
    void drainInbox(unsigned w);
    /** Cancel machinery shared by the direct and drain paths. */
    bool applyCancel(EpochEventId id, bool fromDrain);
    void barrier();

    std::vector<Partition> parts_;
    std::vector<unsigned> partToWorker_;
    std::vector<Worker> workers_;
    unsigned numThreads_ = 1;
    /** Epoch's ops, sorted by (parentSeq, opIdx); valid commit→drain. */
    std::vector<Op *> committed_;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t dispatched_ = 0;
    Tick until_ = 0;

    // --- epoch coordination ------------------------------------------
    std::atomic<std::uint32_t> arrived_{0};
    std::atomic<std::uint32_t> sense_{0};
    std::atomic<bool> done_{false};
    /** Set by any worker that saw another same-tick sub-round coming. */
    std::atomic<bool> again_{false};
};

} // namespace sim
} // namespace hyperplane

#endif // HYPERPLANE_SIM_PARALLEL_ENGINE_HH
