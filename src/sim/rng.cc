#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace hyperplane {

namespace {

/** splitmix64 step, used to expand seeds into full generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // All-zero state is the one invalid state for xoshiro.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    hp_assert(bound > 0, "uniformInt bound must be positive");
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    hp_assert(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    haveSpare_ = true;
    return u * mul;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace hyperplane
