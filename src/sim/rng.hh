/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulation (arrival processes, traffic
 * shape activity draws, workload size jitter) flows through Rng so that a
 * fixed seed reproduces a run bit-for-bit.  The generator is
 * xoshiro256** (Blackman & Vigna), which is fast, has a 2^256-1 period,
 * and passes BigCrush.
 */

#ifndef HYPERPLANE_SIM_RNG_HH
#define HYPERPLANE_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace hyperplane {

/**
 * Seedable xoshiro256** generator with the distributions the simulator
 * needs.  Not thread-safe; each simulated component owns its own stream
 * (derived via split()).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) using Lemire's method. @pre bound > 0 */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Exponentially distributed value with the given mean (inter-arrival
     * time of a Poisson process of rate 1/mean).
     */
    double exponential(double mean);

    /** Standard normal via Marsaglia polar method. */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /**
     * Derive an independent child stream.  Implemented by drawing a fresh
     * seed, so child streams are decorrelated from the parent's future
     * output.
     */
    Rng split();

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace hyperplane

#endif // HYPERPLANE_SIM_RNG_HH
