/**
 * @file
 * Small-buffer-optimized callback type for the event kernel.
 *
 * The kernel schedules millions of short-lived closures per run; with
 * std::function every schedule whose capture exceeds the library's
 * (implementation-defined, typically 16-24 byte) inline buffer pays a
 * heap allocation on the hot path.  EventCallback provides 48 bytes of
 * guaranteed inline storage — a census of every schedule() site in the
 * dp/mem/fault/trace/traffic layers shows the largest capture is
 * [this, line, writer, target] at 28-32 bytes, and a copied
 * std::function (32 bytes) still fits — so the simulator's schedule
 * fast path never allocates.  Oversized callables fall back to the heap
 * and bump a process-wide counter that tests and the perf-smoke
 * harness assert stays at zero for the built-in component layers.
 */

#ifndef HYPERPLANE_SIM_CALLBACK_HH
#define HYPERPLANE_SIM_CALLBACK_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace hyperplane {

/** Move-only type-erased void() callable with 48-byte inline storage. */
class EventCallback
{
  public:
    /** Inline capture capacity, bytes (see file comment for sizing). */
    static constexpr std::size_t inlineCapacity = 48;

    EventCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
            vt_ = &inlineVTable<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(f));
            vt_ = &heapVTable<Fn>;
            heapFallbacks_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    EventCallback(EventCallback &&other) noexcept : vt_(other.vt_)
    {
        if (vt_)
            vt_->relocate(other.storage_, storage_);
        other.vt_ = nullptr;
    }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            vt_ = other.vt_;
            if (vt_)
                vt_->relocate(other.storage_, storage_);
            other.vt_ = nullptr;
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** Destroy the held callable (if any); leaves *this empty. */
    void
    reset() noexcept
    {
        if (vt_) {
            vt_->destroy(storage_);
            vt_ = nullptr;
        }
    }

    explicit operator bool() const noexcept { return vt_ != nullptr; }

    void
    operator()()
    {
        vt_->invoke(storage_);
    }

    /**
     * Process-wide count of callables that overflowed the inline buffer
     * (each cost one heap allocation).  Exposed so tests can pin the
     * component layers' captures below inlineCapacity.
     */
    static std::uint64_t
    heapFallbackCount()
    {
        return heapFallbacks_.load(std::memory_order_relaxed);
    }

  private:
    struct VTable
    {
        void (*invoke)(unsigned char *);
        /** Move-construct from src storage into dst, destroy src. */
        void (*relocate)(unsigned char *src, unsigned char *dst) noexcept;
        void (*destroy)(unsigned char *) noexcept;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr VTable inlineVTable{
        [](unsigned char *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](unsigned char *src, unsigned char *dst) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (static_cast<void *>(dst)) Fn(std::move(*f));
            f->~Fn();
        },
        [](unsigned char *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr VTable heapVTable{
        [](unsigned char *s) { (**reinterpret_cast<Fn **>(s))(); },
        [](unsigned char *src, unsigned char *dst) noexcept {
            *reinterpret_cast<Fn **>(dst) = *reinterpret_cast<Fn **>(src);
        },
        [](unsigned char *s) noexcept { delete *reinterpret_cast<Fn **>(s); },
    };

    static inline std::atomic<std::uint64_t> heapFallbacks_{0};

    alignas(std::max_align_t) unsigned char storage_[inlineCapacity];
    const VTable *vt_ = nullptr;
};

} // namespace hyperplane

#endif // HYPERPLANE_SIM_CALLBACK_HH
