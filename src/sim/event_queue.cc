#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <utility>

#include "sim/logging.hh"

namespace hyperplane {

EventQueue::EventQueue()
    : buckets_(horizonTicks), bucketBits_(horizonTicks / 64, 0)
{
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ != noFreeSlot) {
        const std::uint32_t slot = freeHead_;
        freeHead_ = slots_[slot].nextFree;
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    s.cb.reset();
    s.seq = 0;
    // Generation 0 is reserved so no EventId ever equals invalidEventId.
    if (++s.gen == 0)
        s.gen = 1;
    s.nextFree = freeHead_;
    freeHead_ = slot;
    --liveCount_;
}

void
EventQueue::setBucketBit(std::size_t b)
{
    bucketBits_[b >> 6] |= std::uint64_t{1} << (b & 63);
}

void
EventQueue::clearBucketBit(std::size_t b)
{
    bucketBits_[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
}

void
EventQueue::bucketPush(const Ref &r)
{
    Bucket &bk = buckets_[r.when & (horizonTicks - 1)];
    bk.refs.push_back(r);
    if (bk.refs.size() - bk.drain == 1)
        setBucketBit(r.when & (horizonTicks - 1));
    ++bucketRefs_;
    if (r.when < bucketHint_)
        bucketHint_ = r.when;
}

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    hp_assert(when >= now_, "scheduling into the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const std::uint32_t slot = allocSlot();
    Slot &s = slots_[slot];
    s.cb = std::move(cb);
    s.seq = ++nextSeq_;
    s.owner = spawnOwner_;
    s.bucketed = when - now_ < horizonTicks;
    const Ref r{when, s.seq, slot};
    if (s.bucketed) {
        bucketPush(r);
    } else {
        heap_.push_back(r);
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }
    ++liveCount_;
    return (static_cast<EventId>(slot) << 32) | s.gen;
}

bool
EventQueue::cancel(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= slots_.size())
        return false;
    Slot &s = slots_[slot];
    if (s.gen != gen || s.seq == 0)
        return false;
    // The (when, seq, slot) entry stays behind as a tombstone; the
    // callback (and its captured resources) die right now, and the
    // slot is immediately reusable thanks to the generation bump.
    if (s.bucketed)
        ++bucketStale_;
    else
        ++heapStale_;
    freeSlot(slot);
    maybePurge();
    return true;
}

void
EventQueue::skipStaleHeap()
{
    while (!heap_.empty() && !refLive(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        --heapStale_;
    }
}

bool
EventQueue::bucketFront(Tick &tick)
{
    if (bucketRefs_ == 0) {
        bucketHint_ = ~Tick{0};
        return false;
    }
    // Every bucketed event has when in [now_, now_ + horizon), so one
    // non-wrapping pass over that window visits each bucket once.  The
    // hint is a lower bound on the earliest live bucketed tick, making
    // the common case (front unchanged since last call) a single probe.
    Tick t = bucketHint_ < now_ ? now_ : bucketHint_;
    const Tick windowEnd = now_ + horizonTicks;
    while (t < windowEnd) {
        const std::size_t bit = t & (horizonTicks - 1);
        const std::uint64_t word = bucketBits_[bit >> 6] >> (bit & 63);
        if (word == 0) {
            t += 64 - (bit & 63);
            continue;
        }
        t += static_cast<Tick>(std::countr_zero(word));
        if (t >= windowEnd)
            break;
        Bucket &bk = buckets_[t & (horizonTicks - 1)];
        while (bk.drain < bk.refs.size() && !refLive(bk.refs[bk.drain])) {
            ++bk.drain;
            --bucketRefs_;
            --bucketStale_;
        }
        if (bk.drain == bk.refs.size()) {
            bk.refs.clear();
            bk.drain = 0;
            clearBucketBit(t & (horizonTicks - 1));
            if (bucketRefs_ == 0)
                break;
            ++t;
            continue;
        }
        hp_assert(bk.refs[bk.drain].when == t,
                  "calendar bucket tick mismatch");
        bucketHint_ = t;
        tick = t;
        return true;
    }
    bucketHint_ = ~Tick{0};
    return false;
}

bool
EventQueue::peekNextTick(Tick &tick)
{
    Tick bt;
    const bool haveBucket = bucketFront(bt);
    skipStaleHeap();
    const bool haveHeap = !heap_.empty();
    if (!haveBucket && !haveHeap)
        return false;
    if (haveBucket && haveHeap)
        tick = std::min(bt, heap_.front().when);
    else
        tick = haveBucket ? bt : heap_.front().when;
    return true;
}

void
EventQueue::maybePurge()
{
    const std::size_t stale = heapStale_ + bucketStale_;
    if (stale < 1024 || stale * 2 <= heap_.size() + bucketRefs_)
        return;
    std::erase_if(heap_, [this](const Ref &r) { return !refLive(r); });
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    heapStale_ = 0;
    if (bucketStale_ == 0)
        return;
    bucketRefs_ = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        Bucket &bk = buckets_[b];
        if (bk.refs.empty())
            continue;
        std::size_t out = 0;
        for (std::size_t i = bk.drain; i < bk.refs.size(); ++i)
            if (refLive(bk.refs[i]))
                bk.refs[out++] = bk.refs[i];
        bk.refs.resize(out);
        bk.drain = 0;
        if (out == 0)
            clearBucketBit(b);
        else
            bucketRefs_ += out;
    }
    bucketStale_ = 0;
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    Tick t;
    const bool any = self->peekNextTick(t);
    hp_assert(any, "nextEventTick on empty queue");
    return t;
}

bool
EventQueue::peekNextRef(Ref &r, bool &fromBucket)
{
    Tick bt;
    const bool haveBucket = bucketFront(bt);
    skipStaleHeap();
    const bool haveHeap = !heap_.empty();
    if (!haveBucket && !haveHeap)
        return false;

    // Same-tick events must fire in schedule order even when they sit
    // in different front ends (one scheduled from afar, one nearby):
    // merge the two fronts by sequence number.
    if (haveBucket && haveHeap) {
        const Ref &h = heap_.front();
        const Bucket &bk = buckets_[bt & (horizonTicks - 1)];
        const Ref &b = bk.refs[bk.drain];
        fromBucket =
            b.when < h.when || (b.when == h.when && b.seq < h.seq);
        r = fromBucket ? b : h;
    } else {
        fromBucket = haveBucket;
        if (haveBucket) {
            const Bucket &bk = buckets_[bt & (horizonTicks - 1)];
            r = bk.refs[bk.drain];
        } else {
            r = heap_.front();
        }
    }
    return true;
}

void
EventQueue::popAndFire(const Ref &r, bool fromBucket)
{
    if (fromBucket) {
        Bucket &bk = buckets_[r.when & (horizonTicks - 1)];
        ++bk.drain;
        --bucketRefs_;
        if (bk.drain == bk.refs.size()) {
            bk.refs.clear();
            bk.drain = 0;
            clearBucketBit(r.when & (horizonTicks - 1));
        }
    } else {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
    }

    hp_assert(r.when >= now_, "event in the past");
    now_ = r.when;
    // Events spawned by this callback inherit its partition tag.
    const std::uint16_t prevOwner = spawnOwner_;
    spawnOwner_ = slots_[r.slot].owner;
    Callback cb = std::move(slots_[r.slot].cb);
    freeSlot(r.slot);
    ++dispatched_;
    cb();
    spawnOwner_ = prevOwner;
}

bool
EventQueue::step()
{
    Ref r;
    bool fromBucket;
    if (!peekNextRef(r, fromBucket))
        return false;
    popAndFire(r, fromBucket);
    return true;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    Ref r;
    bool fromBucket;
    while (peekNextRef(r, fromBucket) && r.when <= until) {
        popAndFire(r, fromBucket);
        ++n;
    }
    if (now_ < until && until != ~Tick{0})
        now_ = until;
    return n;
}

bool
EventQueue::peekNextOwner(std::uint16_t &owner)
{
    Ref r;
    bool fromBucket;
    if (!peekNextRef(r, fromBucket))
        return false;
    owner = slots_[r.slot].owner;
    return true;
}

EventQueue::SliceEnd
EventQueue::runOwnerSlice(Tick until, std::uint16_t owner,
                          std::uint16_t &nextOwner, std::uint64_t &fired)
{
    fired = 0;
    Ref r;
    bool fromBucket;
    for (;;) {
        if (!peekNextRef(r, fromBucket)) {
            // Terminating slice: leave now() exactly as run(until) would.
            if (now_ < until && until != ~Tick{0})
                now_ = until;
            return SliceEnd::Empty;
        }
        if (r.when > until) {
            if (now_ < until && until != ~Tick{0})
                now_ = until;
            return SliceEnd::Until;
        }
        const std::uint16_t o = slots_[r.slot].owner;
        if (o != owner) {
            nextOwner = o;
            return SliceEnd::OwnerSwitch;
        }
        popAndFire(r, fromBucket);
        ++fired;
    }
}

void
EventQueue::advanceTo(Tick t)
{
    hp_assert(t >= now_, "advanceTo into the past");
    Tick next;
    const bool any = peekNextTick(next);
    hp_assert(!any || next >= t, "advanceTo would skip a pending event");
    now_ = t;
}

} // namespace hyperplane
