#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace hyperplane {

EventId
EventQueue::schedule(Tick when, Callback cb)
{
    hp_assert(when >= now_, "scheduling into the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now_));
    const EventId id = nextId_++;
    heap_.push(Entry{when, id, std::move(cb)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (live_.erase(id) == 0)
        return false;
    // We cannot remove from the middle of a binary heap; mark the id as
    // cancelled and lazily discard it when it reaches the top.
    cancelled_.insert(id);
    return true;
}

void
EventQueue::skipCancelled()
{
    while (!heap_.empty()) {
        auto it = cancelled_.find(heap_.top().id);
        if (it == cancelled_.end())
            break;
        cancelled_.erase(it);
        heap_.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    hp_assert(!heap_.empty(), "nextEventTick on empty queue");
    return heap_.top().when;
}

bool
EventQueue::step()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; moving the callback out before pop()
    // avoids a copy and is safe because we pop immediately.
    auto &top = const_cast<Entry &>(heap_.top());
    hp_assert(top.when >= now_, "event in the past");
    now_ = top.when;
    Callback cb = std::move(top.cb);
    live_.erase(top.id);
    heap_.pop();
    ++dispatched_;
    cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    for (;;) {
        skipCancelled();
        if (heap_.empty() || heap_.top().when > until)
            break;
        step();
        ++n;
    }
    if (now_ < until && until != ~Tick{0})
        now_ = until;
    return n;
}

void
EventQueue::advanceTo(Tick t)
{
    hp_assert(t >= now_, "advanceTo into the past");
    skipCancelled();
    hp_assert(heap_.empty() || heap_.top().when >= t,
              "advanceTo would skip a pending event");
    now_ = t;
}

} // namespace hyperplane
