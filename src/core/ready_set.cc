#include "core/ready_set.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

const char *
toString(ServicePolicy p)
{
    switch (p) {
      case ServicePolicy::RoundRobin:
        return "round-robin";
      case ServicePolicy::WeightedRoundRobin:
        return "weighted-round-robin";
      case ServicePolicy::StrictPriority:
        return "strict-priority";
    }
    return "?";
}

ReadySet::ReadySet(const ReadySetConfig &cfg)
    : cfg_(cfg), ready_(cfg.capacity), mask_(cfg.capacity),
      weights_(cfg.capacity, cfg.defaultWeight ? cfg.defaultWeight : 1)
{
    hp_assert(cfg.capacity > 0, "ready set needs at least one entry");
    switch (cfg.arbiter) {
      case ArbiterKind::BrentKung:
        arbiter_ = std::make_unique<BrentKungPpa>();
        break;
      case ArbiterKind::Ripple:
        arbiter_ = std::make_unique<RipplePpa>();
        break;
    }
    mask_.setAll(); // all queues enabled by default
}

void
ReadySet::activate(QueueId qid)
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    ready_.set(qid);
    activations.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::ReadyActivate, track_,
                         tracer_->now(), qid);
    }
}

void
ReadySet::deactivate(QueueId qid)
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    ready_.clear(qid);
    if (stickyQid_ == qid)
        stickyCredit_ = 0;
}

bool
ReadySet::isReady(QueueId qid) const
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    return ready_.test(qid);
}

void
ReadySet::enable(QueueId qid)
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    mask_.set(qid);
}

void
ReadySet::disable(QueueId qid)
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    mask_.clear(qid);
}

bool
ReadySet::isEnabled(QueueId qid) const
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    return mask_.test(qid);
}

void
ReadySet::setWeight(QueueId qid, std::uint32_t weight)
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    hp_assert(weight >= 1, "WRR weight must be at least 1");
    weights_[qid] = weight;
}

std::uint32_t
ReadySet::weight(QueueId qid) const
{
    hp_assert(qid < cfg_.capacity, "qid out of range");
    return weights_[qid];
}

std::optional<QueueId>
ReadySet::selectNext()
{
    const BitVec masked = ready_ & mask_;

    if (cfg_.policy == ServicePolicy::WeightedRoundRobin &&
        stickyQid_ != invalidQueueId && stickyCredit_ > 0 &&
        masked.test(stickyQid_)) {
        // The priority holder still has credit and work: grant it again
        // for another consecutive round.
        --stickyCredit_;
        ready_.clear(stickyQid_);
        grants.inc();
        if (HP_TRACE_ON(tracer_)) {
            tracer_->instant(trace::Stage::ReadyGrant, track_,
                             tracer_->now(), stickyQid_);
        }
        return stickyQid_;
    }

    unsigned priorityPos = currentPriority_;
    if (cfg_.policy == ServicePolicy::StrictPriority)
        priorityPos = 0; // fixed "10...0" current-priority vector

    const int grant = arbiter_->select(masked, priorityPos);
    if (grant == noGrant)
        return std::nullopt;

    const auto qid = static_cast<QueueId>(grant);
    ready_.clear(qid);
    grants.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::ReadyGrant, track_,
                         tracer_->now(), qid);
    }

    switch (cfg_.policy) {
      case ServicePolicy::RoundRobin:
        // The granted QID gets the lowest priority next round: rotate
        // the priority to the next bit position.
        currentPriority_ = (qid + 1) % cfg_.capacity;
        break;
      case ServicePolicy::WeightedRoundRobin:
        // Reload the weight counter for the new priority holder.
        stickyQid_ = qid;
        stickyCredit_ = weights_[qid] - 1;
        currentPriority_ = (qid + 1) % cfg_.capacity;
        break;
      case ServicePolicy::StrictPriority:
        break; // priority never moves
    }
    return qid;
}

bool
ReadySet::anyReady() const
{
    return (ready_ & mask_).any();
}

unsigned
ReadySet::readyCount() const
{
    return (ready_ & mask_).count();
}

void
ReadySet::reset()
{
    ready_.reset();
    mask_.setAll();
    currentPriority_ = 0;
    stickyQid_ = invalidQueueId;
    stickyCredit_ = 0;
}

} // namespace core
} // namespace hyperplane
