/**
 * @file
 * Programmable Priority Arbiters (Section IV-B of the paper).
 *
 * A PPA takes a ready-bit vector and a current-priority position and
 * grants the first ready bit at or after that position, wrapping around —
 * the building block of the ready set.  Two implementations are modelled:
 *
 *  - RipplePpa: the bit-slice ripple design of Figure 7 — linear delay
 *    and a combinational wrap-around loop.
 *  - BrentKungPpa: thermometer coding plus a Brent-Kung parallel-prefix
 *    network (the paper's chosen design) — logarithmic delay, no loop.
 *
 * Both produce identical grants; they differ in the delay/area they
 * report.  The Brent-Kung model actually schedules the prefix network and
 * derives depth/node counts from the schedule rather than from closed
 * formulas, and a gate-level evaluation path exists so tests can verify
 * the fast word-scan grant logic against the network.
 */

#ifndef HYPERPLANE_CORE_PPA_HH
#define HYPERPLANE_CORE_PPA_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/bitvec.hh"

namespace hyperplane {
namespace core {

/** Grant result: index of the selected bit, or -1 if none is ready. */
constexpr int noGrant = -1;

/** Abstract programmable priority arbiter. */
class PriorityArbiter
{
  public:
    virtual ~PriorityArbiter() = default;

    /**
     * Grant the first set bit of @p ready at or after @p priorityPos,
     * wrapping around (round-robin semantics).
     *
     * @return Granted bit index, or noGrant if @p ready is all-zero.
     */
    virtual int select(const BitVec &ready, unsigned priorityPos) const;

    /** Combinational delay of an n-bit instance, nanoseconds. */
    virtual double delayNs(unsigned n) const = 0;

    /** Two-input gate count of an n-bit instance. */
    virtual std::uint64_t gateCount(unsigned n) const = 0;

    /** Logic depth (levels of two-input gates) of an n-bit instance. */
    virtual unsigned depth(unsigned n) const = 0;

    virtual std::string name() const = 0;
};

/**
 * Ripple bit-slice PPA (Figure 7): priority propagates cell to cell, so
 * delay and depth grow linearly and the wrap-around closes a
 * combinational loop.
 */
class RipplePpa : public PriorityArbiter
{
  public:
    /** Per-cell propagation delay, ns (32 nm class). */
    static constexpr double cellDelayNs = 0.022;

    /**
     * Gate-level reference: literally propagate the priority token
     * through bit-slice cells, as in Figure 7(b).  Used by tests to
     * validate select().
     */
    int selectBitSlice(const BitVec &ready, unsigned priorityPos) const;

    double delayNs(unsigned n) const override;
    std::uint64_t gateCount(unsigned n) const override;
    unsigned depth(unsigned n) const override;
    std::string name() const override { return "ripple"; }
};

/**
 * Brent-Kung parallel-prefix PPA with thermometer coding: the paper's
 * production design, scalable to thousands of bits.
 */
class BrentKungPpa : public PriorityArbiter
{
  public:
    /** Per-prefix-level delay, ns (32 nm class). */
    static constexpr double levelDelayNs = 0.055;
    /** Delay of thermometer decode + grant stage, ns. */
    static constexpr double fixedDelayNs = 0.16;

    /**
     * Gate-level reference: thermometer-code the priority, compute the
     * prefix OR with an explicitly scheduled Brent-Kung network, and
     * derive the one-hot grant.  Used by tests to validate select().
     */
    int selectPrefixNetwork(const BitVec &ready,
                            unsigned priorityPos) const;

    double delayNs(unsigned n) const override;
    std::uint64_t gateCount(unsigned n) const override;
    unsigned depth(unsigned n) const override;
    std::string name() const override { return "brent-kung"; }

    /**
     * Schedule statistics of the n-input Brent-Kung prefix network:
     * number of prefix operators and levels, measured by running the
     * schedule (not closed-form).
     */
    struct NetworkStats
    {
        std::uint64_t prefixOps;
        unsigned levels;
    };
    static NetworkStats networkStats(unsigned n);
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_PPA_HH
