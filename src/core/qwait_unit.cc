#include "core/qwait_unit.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

QwaitUnit::QwaitUnit(const QwaitConfig &cfg)
    : cfg_(cfg), monitoring_(cfg.monitoring), readySet_(cfg.ready)
{
}

const char *
toString(AddResult r)
{
    switch (r) {
      case AddResult::Ok:
        return "ok";
      case AddResult::Conflict:
        return "conflict";
      case AddResult::DuplicateAddr:
        return "duplicate-addr";
      case AddResult::DuplicateQid:
        return "duplicate-qid";
    }
    return "?";
}

AddResult
QwaitUnit::qwaitAdd(QueueId qid, Addr doorbell)
{
    hp_assert(qid < readySet_.capacity(),
              "qid %u exceeds ready set capacity %u", qid,
              readySet_.capacity());
    if (doorbellByQid_.count(qid) != 0)
        return AddResult::DuplicateQid;
    switch (monitoring_.insert(doorbell, qid)) {
      case MonitoringSet::InsertResult::Duplicate:
        return AddResult::DuplicateAddr;
      case MonitoringSet::InsertResult::Conflict:
        return AddResult::Conflict;
      case MonitoringSet::InsertResult::Ok:
        break;
    }
    doorbellByQid_.emplace(qid, lineBase(doorbell));
    return AddResult::Ok;
}

std::optional<Addr>
QwaitUnit::addQueueWithRealloc(QueueId qid,
                               const std::function<Addr()> &allocate,
                               unsigned maxTries)
{
    for (unsigned attempt = 0; attempt < maxTries; ++attempt) {
        const Addr doorbell = allocate();
        switch (qwaitAdd(qid, doorbell)) {
          case AddResult::Ok:
            return lineBase(doorbell);
          case AddResult::DuplicateQid:
            // No address can fix a bound qid; spinning the allocator
            // would only burn the retry budget.
            return std::nullopt;
          case AddResult::Conflict:
          case AddResult::DuplicateAddr:
            break; // draw a fresh address and retry
        }
    }
    return std::nullopt;
}

bool
QwaitUnit::qwaitRemove(QueueId qid)
{
    auto it = doorbellByQid_.find(qid);
    if (it == doorbellByQid_.end())
        return false;
    monitoring_.remove(it->second);
    readySet_.deactivate(qid);
    doorbellByQid_.erase(it);
    return true;
}

std::optional<Addr>
QwaitUnit::doorbellOf(QueueId qid) const
{
    auto it = doorbellByQid_.find(qid);
    if (it == doorbellByQid_.end())
        return std::nullopt;
    return it->second;
}

std::optional<QueueId>
QwaitUnit::qwait()
{
    qwaitCalls.inc();
    auto qid = readySet_.selectNext();
    if (!qid)
        qwaitBlocked.inc();
    return qid;
}

bool
QwaitUnit::qwaitVerify(QueueId qid, const queueing::Doorbell &doorbell)
{
    // Atomic: test-empty + conditional re-arm, with no window in which
    // an arrival could be missed (arrivals after the re-arm raise a new
    // write transaction the armed entry will catch).
    if (doorbell.empty()) {
        monitoring_.arm(doorbell.addr());
        spuriousWakeups.inc();
        if (HP_TRACE_ON(tracer_)) {
            tracer_->instant(trace::Stage::SpuriousWake, track_,
                             tracer_->now(), qid);
        }
        return false;
    }
    return true;
}

void
QwaitUnit::qwaitReconsider(QueueId qid, const queueing::Doorbell &doorbell)
{
    if (doorbell.empty()) {
        monitoring_.arm(doorbell.addr());
    } else {
        readySet_.activate(qid);
        if (wakeCallback_)
            wakeCallback_();
    }
}

void
QwaitUnit::qwaitEnable(QueueId qid)
{
    readySet_.enable(qid);
    if (readySet_.isReady(qid) && wakeCallback_)
        wakeCallback_();
}

bool
QwaitUnit::watchdogVerify(QueueId qid, const queueing::Doorbell &doorbell)
{
    auto it = doorbellByQid_.find(qid);
    if (it == doorbellByQid_.end())
        return false; // not bound (e.g. demoted to software polling)
    if (doorbell.empty() || !monitoring_.isArmed(it->second) ||
        readySet_.isReady(qid)) {
        return false; // healthy
    }
    // Armed entry + nonempty doorbell + not ready: the write transaction
    // never arrived.  Replay exactly what the snoop would have done; a
    // late (delayed) snoop now finds the entry disarmed and no-ops, so
    // recovery is idempotent.
    monitoring_.disarm(it->second);
    readySet_.activate(qid);
    if (activationHook_)
        activationHook_(qid);
    if (wakeCallback_)
        wakeCallback_();
    return true;
}

void
QwaitUnit::injectSpuriousActivation(QueueId qid)
{
    readySet_.activate(qid);
    if (activationHook_)
        activationHook_(qid);
    if (wakeCallback_)
        wakeCallback_();
}

void
QwaitUnit::onWriteTransaction(Addr line, CoreId writer)
{
    (void)writer;
    if (auto qid = monitoring_.onWriteTransaction(line)) {
        readySet_.activate(*qid);
        if (activationHook_)
            activationHook_(*qid);
        // Fired on every activation: the system wakes (at most) one
        // halted core per ready-queue arrival.
        if (wakeCallback_)
            wakeCallback_();
    }
}

} // namespace core
} // namespace hyperplane
