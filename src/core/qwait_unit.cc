#include "core/qwait_unit.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

QwaitUnit::QwaitUnit(const QwaitConfig &cfg)
    : cfg_(cfg), monitoring_(cfg.monitoring), readySet_(cfg.ready)
{
}

bool
QwaitUnit::qwaitAdd(QueueId qid, Addr doorbell)
{
    hp_assert(qid < readySet_.capacity(),
              "qid %u exceeds ready set capacity %u", qid,
              readySet_.capacity());
    if (doorbellByQid_.count(qid) != 0)
        return false; // qid already bound
    if (!monitoring_.insert(doorbell, qid))
        return false; // cuckoo conflict: driver must reallocate
    doorbellByQid_.emplace(qid, lineBase(doorbell));
    return true;
}

std::optional<Addr>
QwaitUnit::addQueueWithRealloc(QueueId qid,
                               const std::function<Addr()> &allocate,
                               unsigned maxTries)
{
    for (unsigned attempt = 0; attempt < maxTries; ++attempt) {
        const Addr doorbell = allocate();
        if (qwaitAdd(qid, doorbell))
            return lineBase(doorbell);
    }
    return std::nullopt;
}

bool
QwaitUnit::qwaitRemove(QueueId qid)
{
    auto it = doorbellByQid_.find(qid);
    if (it == doorbellByQid_.end())
        return false;
    monitoring_.remove(it->second);
    readySet_.deactivate(qid);
    doorbellByQid_.erase(it);
    return true;
}

std::optional<Addr>
QwaitUnit::doorbellOf(QueueId qid) const
{
    auto it = doorbellByQid_.find(qid);
    if (it == doorbellByQid_.end())
        return std::nullopt;
    return it->second;
}

std::optional<QueueId>
QwaitUnit::qwait()
{
    qwaitCalls.inc();
    auto qid = readySet_.selectNext();
    if (!qid)
        qwaitBlocked.inc();
    return qid;
}

bool
QwaitUnit::qwaitVerify(QueueId qid, const queueing::Doorbell &doorbell)
{
    // Atomic: test-empty + conditional re-arm, with no window in which
    // an arrival could be missed (arrivals after the re-arm raise a new
    // write transaction the armed entry will catch).
    if (doorbell.empty()) {
        monitoring_.arm(doorbell.addr());
        spuriousWakeups.inc();
        return false;
    }
    (void)qid;
    return true;
}

void
QwaitUnit::qwaitReconsider(QueueId qid, const queueing::Doorbell &doorbell)
{
    if (doorbell.empty()) {
        monitoring_.arm(doorbell.addr());
    } else {
        readySet_.activate(qid);
        if (wakeCallback_)
            wakeCallback_();
    }
}

void
QwaitUnit::qwaitEnable(QueueId qid)
{
    readySet_.enable(qid);
    if (readySet_.isReady(qid) && wakeCallback_)
        wakeCallback_();
}

void
QwaitUnit::onWriteTransaction(Addr line, CoreId writer)
{
    (void)writer;
    if (auto qid = monitoring_.onWriteTransaction(line)) {
        readySet_.activate(*qid);
        // Fired on every activation: the system wakes (at most) one
        // halted core per ready-queue arrival.
        if (wakeCallback_)
            wakeCallback_();
    }
}

} // namespace core
} // namespace hyperplane
