#include "core/monitoring_set.hh"

#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

namespace {

/** Strong 64-bit mixer (splitmix64 finalizer) with a per-way tweak. */
std::uint64_t
mix(std::uint64_t x, std::uint64_t tweak)
{
    x ^= tweak;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::uint64_t wayTweaks[8] = {
    0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL, 0xa4093822299f31d0ULL,
    0x082efa98ec4e6c89ULL, 0x452821e638d01377ULL, 0xbe5466cf34e90c6cULL,
    0xc0ac29b7c97c50ddULL, 0x3f84d5b5b5470917ULL,
};

constexpr std::uint64_t bankTweak = 0x9216d5d98979fb1bULL;

} // namespace

MonitoringSet::MonitoringSet(const MonitoringSetConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.ways >= 2 && cfg_.ways <= 8,
              "monitoring set supports 2..8 ways");
    hp_assert(cfg_.banks >= 1, "need at least one bank");
    hp_assert(cfg_.capacity % (cfg_.ways * cfg_.banks) == 0,
              "capacity must divide evenly into banks * ways");
    table_.resize(cfg_.capacity);
}

unsigned
MonitoringSet::rowsPerWay() const
{
    return cfg_.capacity / (cfg_.ways * cfg_.banks);
}

unsigned
MonitoringSet::bankOf(Addr tag) const
{
    if (cfg_.banks == 1)
        return 0;
    return static_cast<unsigned>(mix(tag, bankTweak) % cfg_.banks);
}

unsigned
MonitoringSet::hashOf(Addr tag, unsigned way) const
{
    return static_cast<unsigned>(mix(tag, wayTweaks[way]) % rowsPerWay());
}

MonitorEntry &
MonitoringSet::slot(unsigned bank, unsigned way, unsigned row)
{
    const unsigned rows = rowsPerWay();
    return table_[(static_cast<std::size_t>(bank) * cfg_.ways + way) *
                      rows +
                  row];
}

const MonitorEntry &
MonitoringSet::slot(unsigned bank, unsigned way, unsigned row) const
{
    return const_cast<MonitoringSet *>(this)->slot(bank, way, row);
}

MonitorEntry *
MonitoringSet::findMutable(Addr doorbell)
{
    const Addr tag = lineBase(doorbell);
    const unsigned bank = bankOf(tag);
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        MonitorEntry &e = slot(bank, w, hashOf(tag, w));
        if (e.valid && e.tag == tag)
            return &e;
    }
    return nullptr;
}

const MonitorEntry *
MonitoringSet::find(Addr doorbell) const
{
    return const_cast<MonitoringSet *>(this)->findMutable(doorbell);
}

MonitoringSet::InsertResult
MonitoringSet::insert(Addr doorbell, QueueId qid)
{
    const Addr tag = lineBase(doorbell);
    if (findMutable(tag) != nullptr) {
        duplicateInserts.inc();
        return InsertResult::Duplicate;
    }

    const unsigned bank = bankOf(tag);
    MonitorEntry incoming{tag, qid, /*armed=*/true, /*valid=*/true};

    // Cuckoo insertion: place in the first empty candidate slot; if all
    // are occupied, evict one and re-place it with its alternate hash,
    // walking until an empty slot or the step limit.  The displaced-slot
    // path is recorded so a failed walk can be unwound exactly, leaving
    // the table untouched (registered doorbells must never vanish).
    std::vector<MonitorEntry *> path;
    unsigned way = 0;
    for (unsigned step = 0; step < cfg_.maxWalkSteps; ++step) {
        for (unsigned w = 0; w < cfg_.ways; ++w) {
            MonitorEntry &e = slot(bank, w, hashOf(incoming.tag, w));
            if (!e.valid) {
                e = incoming;
                ++occupancy_;
                inserts.inc();
                walkSteps.inc(step);
                return InsertResult::Ok;
            }
        }
        // All candidates full: displace the occupant of the current way
        // (rotating through ways across steps, as the table walk does).
        MonitorEntry &victim = slot(bank, way, hashOf(incoming.tag, way));
        std::swap(incoming, victim);
        path.push_back(&victim);
        way = (way + 1) % cfg_.ways;
    }
    // Walk failed: unwind the displacement chain in reverse, restoring
    // every entry to its original slot.
    for (auto it = path.rbegin(); it != path.rend(); ++it)
        std::swap(incoming, **it);
    walkSteps.inc(cfg_.maxWalkSteps);
    insertConflicts.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::MonitorConflict, track_,
                         tracer_->now(), qid, tag);
    }
    return InsertResult::Conflict;
}

bool
MonitoringSet::remove(Addr doorbell)
{
    MonitorEntry *e = findMutable(doorbell);
    if (e == nullptr)
        return false;
    e->valid = false;
    e->armed = false;
    --occupancy_;
    return true;
}

std::optional<QueueId>
MonitoringSet::onWriteTransaction(Addr line)
{
    snoops.inc();
    MonitorEntry *e = findMutable(line);
    if (e == nullptr || !e->armed)
        return std::nullopt;
    e->armed = false;
    snoopMatches.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::MonitorHit, track_,
                         tracer_->now(), e->qid, line);
    }
    return e->qid;
}

bool
MonitoringSet::arm(Addr doorbell)
{
    MonitorEntry *e = findMutable(doorbell);
    if (e == nullptr)
        return false;
    e->armed = true;
    return true;
}

bool
MonitoringSet::disarm(Addr doorbell)
{
    MonitorEntry *e = findMutable(doorbell);
    if (e == nullptr || !e->armed)
        return false;
    e->armed = false;
    return true;
}

bool
MonitoringSet::isArmed(Addr doorbell) const
{
    const MonitorEntry *e = find(doorbell);
    return e != nullptr && e->armed;
}

} // namespace core
} // namespace hyperplane
