/**
 * @file
 * The monitoring set: a Cuckoo-hashed associative structure mapping
 * doorbell cache-line tags to queue ids (Section IV-A of the paper).
 *
 * Lookups (snoops, re-arms) probe one row in each of the two ways — the
 * cost profile of a 2-way set-associative tag array.  Insertions
 * (QWAIT-ADD) may walk the table, relocating entries between ways as in
 * ZCache/Cuckoo hashing, which keeps the conflict rate negligible when
 * the table is modestly over-provisioned.  Entries carry the paper's
 * exact fields: tag, QID, monitoring (armed) bit, valid bit.
 *
 * The structure can be banked (distributed-directory deployments); the
 * bank is selected by address hash and each bank is an independent
 * Cuckoo table.
 */

#ifndef HYPERPLANE_CORE_MONITORING_SET_HH
#define HYPERPLANE_CORE_MONITORING_SET_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"
#include "stats/sampler.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace core {

/** One monitoring-set entry (tag, QID, monitoring bit, valid bit). */
struct MonitorEntry
{
    Addr tag = 0;
    QueueId qid = invalidQueueId;
    bool armed = false;
    bool valid = false;
};

/** Configuration of the monitoring set hardware. */
struct MonitoringSetConfig
{
    /** Total entries across all banks and ways. */
    unsigned capacity = 1024;
    /**
     * Cuckoo ways (hash functions).  Two-choice/one-slot cuckoo tables
     * cap out at 50% occupancy; the ZCache-style 4-way walk sustains
     * >95%, which is what lets a 1024-entry table track 1000 doorbells
     * with a few percent of over-provisioning (Section IV-A).
     */
    unsigned ways = 4;
    /** Banks (>= 1); for distributed directories. */
    unsigned banks = 1;
    /** Maximum relocation steps before an insert reports a conflict. */
    unsigned maxWalkSteps = 64;
    /** Tag lookup latency, cycles (Section IV-C: within 5 CPU cycles). */
    Tick lookupCycles = 5;
};

/**
 * Cuckoo-hashed monitoring set.
 *
 * All addresses are line-aligned internally.
 */
class MonitoringSet
{
  public:
    explicit MonitoringSet(const MonitoringSetConfig &cfg = {});

    const MonitoringSetConfig &config() const { return cfg_; }

    /** Outcome of an insert() attempt. */
    enum class InsertResult : std::uint8_t
    {
        Ok,        ///< inserted and armed
        Duplicate, ///< doorbell line already registered; retrying the
                   ///< same address can never succeed
        Conflict,  ///< Cuckoo walk failed; reallocate the address
    };

    /**
     * QWAIT-ADD: associate @p doorbell with @p qid and arm it.
     *
     * Duplicate registrations and Cuckoo conflicts are reported
     * separately (and counted separately) so the driver's reallocation
     * loop only retries the case a fresh address can fix.
     */
    InsertResult insert(Addr doorbell, QueueId qid);

    /**
     * QWAIT-REMOVE: drop the entry for @p doorbell.
     * @return false if no such entry exists.
     */
    bool remove(Addr doorbell);

    /**
     * Snoop path: a write transaction on @p line was observed.  If an
     * armed entry matches, it is disarmed (monitoring bit cleared).
     *
     * @return The QID to activate in the ready set, if any.
     */
    std::optional<QueueId> onWriteTransaction(Addr line);

    /**
     * Re-arm the entry for @p doorbell (QWAIT-VERIFY / QWAIT-RECONSIDER
     * on an empty queue).
     * @return false if the doorbell is not registered.
     */
    bool arm(Addr doorbell);

    /**
     * Clear the monitoring bit for @p doorbell without consuming a
     * snoop (watchdog recovery path).
     * @return false if the doorbell is not registered or already
     *         disarmed.
     */
    bool disarm(Addr doorbell);

    /** Entry lookup (tests/inspection). */
    const MonitorEntry *find(Addr doorbell) const;

    /** True if the entry exists and is armed. */
    bool isArmed(Addr doorbell) const;

    /** Number of valid entries. */
    unsigned occupancy() const { return occupancy_; }

    /**
     * Attach a tracer: armed snoop matches stamp monitor_hit and
     * failed Cuckoo walks stamp monitor_conflict on @p track.
     */
    void setTracer(trace::Tracer *tracer, std::uint32_t track)
    {
        tracer_ = tracer;
        track_ = track;
    }

    /** Fraction of capacity in use. */
    double loadFactor() const
    {
        return static_cast<double>(occupancy_) / cfg_.capacity;
    }

    stats::Counter inserts{"inserts"};
    stats::Counter insertConflicts{"insert_conflicts"};
    stats::Counter duplicateInserts{"duplicate_inserts"};
    stats::Counter walkSteps{"cuckoo_walk_steps"};
    stats::Counter snoops{"snoop_lookups"};
    stats::Counter snoopMatches{"snoop_matches"};

  private:
    /** Row count per way per bank. */
    unsigned rowsPerWay() const;

    unsigned bankOf(Addr tag) const;
    unsigned hashOf(Addr tag, unsigned way) const;

    /** Slot reference inside one bank. */
    MonitorEntry &slot(unsigned bank, unsigned way, unsigned row);
    const MonitorEntry &slot(unsigned bank, unsigned way,
                             unsigned row) const;

    MonitorEntry *findMutable(Addr doorbell);

    MonitoringSetConfig cfg_;
    /** banks * ways * rows entries, flattened. */
    std::vector<MonitorEntry> table_;
    unsigned occupancy_ = 0;
    trace::Tracer *tracer_ = nullptr;
    std::uint32_t track_ = 0;
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_MONITORING_SET_HH
