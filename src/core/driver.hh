/**
 * @file
 * The HyperPlane kernel-driver model: the control plane of Algorithm 1.
 *
 * The driver owns the pinned physical address range doorbells are
 * allocated from (QWAIT_init), binds tenants' queues to doorbell
 * addresses via QWAIT-ADD — re-allocating the address when the
 * monitoring set reports a Cuckoo conflict, exactly the retry loop of
 * Algorithm 1 lines 3-6 — and releases both on disconnect
 * (QWAIT-REMOVE).
 */

#ifndef HYPERPLANE_CORE_DRIVER_HH
#define HYPERPLANE_CORE_DRIVER_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/qwait_unit.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace core {

/** Doorbell allocator + tenant connection manager. */
class HyperPlaneDriver
{
  public:
    /**
     * QWAIT_init: reserve the doorbell address range and bind the
     * hardware unit.
     *
     * @param unit      The notification subsystem to manage.
     * @param rangeBase First doorbell address (line-aligned).
     * @param slots     Number of doorbell cache-line slots available.
     * @param seed      Randomizes allocation order (address-space
     *                  layout), which is what makes re-allocation after
     *                  a conflict effective.
     */
    HyperPlaneDriver(QwaitUnit &unit, Addr rangeBase, unsigned slots,
                     std::uint64_t seed = 1);

    /** Inclusive start / exclusive end of the managed range. */
    Addr rangeLo() const { return base_; }
    Addr rangeHi() const
    {
        return base_ + static_cast<Addr>(slots_.size()) * cacheLineBytes;
    }

    /**
     * Connect a tenant queue: allocate a doorbell, QWAIT-ADD it,
     * retrying with fresh addresses on monitoring-set conflicts.
     *
     * @return The bound doorbell address, or std::nullopt if the range
     *         is exhausted, every candidate conflicted, or @p qid is
     *         already connected.
     */
    std::optional<Addr> connect(QueueId qid);

    /** Disconnect a tenant: QWAIT-REMOVE and free its doorbell slot. */
    bool disconnect(QueueId qid);

    /** Doorbell bound to @p qid, if connected. */
    std::optional<Addr> doorbellOf(QueueId qid) const;

    unsigned connectedCount() const
    {
        return static_cast<unsigned>(byQid_.size());
    }

    unsigned freeSlots() const { return freeCount_; }

  private:
    /** Draw a random free slot index, or -1 if none. */
    int drawFreeSlot();

    QwaitUnit &unit_;
    Addr base_;
    std::vector<bool> slots_; ///< true = in use
    unsigned freeCount_;
    Rng rng_;
    std::unordered_map<QueueId, unsigned> byQid_; ///< qid -> slot
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_DRIVER_HH
