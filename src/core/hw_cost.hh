/**
 * @file
 * Analytic area / power / timing model of the HyperPlane hardware
 * (Section IV-C of the paper), standing in for the authors' RTL
 * synthesis, CACTI, and McPAT runs.
 *
 * The model scales with structure sizes and is calibrated so that the
 * paper's configuration (1024-entry monitoring and ready sets, 16 cores,
 * 8.4 mm^2 cores, 32 nm) reproduces the published constants:
 *   - ready set area 0.13 mm^2, monitoring set area 0.21 mm^2
 *   - total area overhead ~0.26% of 16-core area
 *   - power within 6.2% of one core (2.1% ready set + 4.1% monitoring)
 *   - ready set latency 12.25 ns; QWAIT end-to-end 50 cycles
 */

#ifndef HYPERPLANE_CORE_HW_COST_HH
#define HYPERPLANE_CORE_HW_COST_HH

#include <cstdint>

#include "sim/types.hh"

namespace hyperplane {
namespace core {

/** Inputs to the hardware cost model. */
struct HwCostConfig
{
    unsigned monitoringEntries = 1024;
    unsigned readyEntries = 1024;
    unsigned cores = 16;
    /** Baseline core area (paper: 8.4 mm^2 in 32 nm). */
    double coreAreaMm2 = 8.4;
    /** Baseline per-core power, watts (McPAT-class OoO core). */
    double corePowerW = 12.0;
};

/** Area / power / timing estimates for one HyperPlane instance. */
class HwCostModel
{
  public:
    explicit HwCostModel(const HwCostConfig &cfg = {});

    const HwCostConfig &config() const { return cfg_; }

    // --- Area ---------------------------------------------------------

    /** Ready set area, mm^2 (RTL-calibrated; 0.13 at 1024 entries). */
    double readySetAreaMm2() const;

    /** Monitoring set area, mm^2 (CACTI-calibrated; 0.21 at 1024). */
    double monitoringSetAreaMm2() const;

    /** Total accelerator area as a fraction of all-core area. */
    double areaOverheadFraction() const;

    // --- Power --------------------------------------------------------

    /** Ready set power as a fraction of one core's power (0.021). */
    double readySetPowerFraction() const;

    /** Monitoring set power as a fraction of one core's power (0.041). */
    double monitoringSetPowerFraction() const;

    /** Accelerator power as a fraction of total (all-core) power. */
    double powerOverheadFraction() const;

    // --- Timing -------------------------------------------------------

    /**
     * Ready set selection latency, ns: SRAM read of the ready/mask
     * vectors + Brent-Kung PPA + priority update (12.25 ns at 1024).
     */
    double readySetLatencyNs() const;

    /** Monitoring set lookup latency, cycles (within 5 per the paper). */
    Tick monitoringLookupCycles() const { return 5; }

    /**
     * Conservative end-to-end QWAIT latency, cycles, covering NUCA
     * access to the shared ready set (paper: 50).
     */
    Tick qwaitLatencyCycles() const;

  private:
    HwCostConfig cfg_;
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_HW_COST_HH
