#include "core/driver.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

HyperPlaneDriver::HyperPlaneDriver(QwaitUnit &unit, Addr rangeBase,
                                   unsigned slots, std::uint64_t seed)
    : unit_(unit), base_(lineBase(rangeBase)), slots_(slots, false),
      freeCount_(slots), rng_(seed)
{
    hp_assert(slots > 0, "driver needs at least one doorbell slot");
}

int
HyperPlaneDriver::drawFreeSlot()
{
    if (freeCount_ == 0)
        return -1;
    // Random probing over the range; expected O(slots/free) draws.
    for (int attempt = 0; attempt < 64; ++attempt) {
        const auto idx = static_cast<unsigned>(
            rng_.uniformInt(slots_.size()));
        if (!slots_[idx])
            return static_cast<int>(idx);
    }
    // Dense occupancy: linear scan fallback.
    for (unsigned idx = 0; idx < slots_.size(); ++idx) {
        if (!slots_[idx])
            return static_cast<int>(idx);
    }
    return -1;
}

std::optional<Addr>
HyperPlaneDriver::connect(QueueId qid)
{
    if (byQid_.count(qid) != 0)
        return std::nullopt; // already connected

    // Algorithm 1, lines 3-6: draw an address, try QWAIT-ADD, repeat
    // on conflict with a different address.
    std::vector<unsigned> tried;
    for (unsigned attempt = 0; attempt < 16; ++attempt) {
        const int slot = drawFreeSlot();
        if (slot < 0)
            break;
        const Addr doorbell =
            base_ + static_cast<Addr>(slot) * cacheLineBytes;
        // Tentatively reserve so re-draws cannot return it.
        slots_[slot] = true;
        --freeCount_;
        const AddResult res = unit_.qwaitAdd(qid, doorbell);
        if (res == AddResult::Ok) {
            // Roll back the slots we burned on conflicting addresses.
            for (unsigned t : tried) {
                slots_[t] = false;
                ++freeCount_;
            }
            byQid_.emplace(qid, static_cast<unsigned>(slot));
            return doorbell;
        }
        if (res == AddResult::DuplicateQid) {
            // The queue is already bound (outside this driver): no
            // address redraw can succeed.
            slots_[slot] = false;
            ++freeCount_;
            break;
        }
        // Conflict / address collision: redraw a different doorbell.
        tried.push_back(static_cast<unsigned>(slot));
    }
    for (unsigned t : tried) {
        slots_[t] = false;
        ++freeCount_;
    }
    return std::nullopt;
}

bool
HyperPlaneDriver::disconnect(QueueId qid)
{
    auto it = byQid_.find(qid);
    if (it == byQid_.end())
        return false;
    unit_.qwaitRemove(qid);
    slots_[it->second] = false;
    ++freeCount_;
    byQid_.erase(it);
    return true;
}

std::optional<Addr>
HyperPlaneDriver::doorbellOf(QueueId qid) const
{
    auto it = byQid_.find(qid);
    if (it == byQid_.end())
        return std::nullopt;
    return base_ + static_cast<Addr>(it->second) * cacheLineBytes;
}

} // namespace core
} // namespace hyperplane
