/**
 * @file
 * The ready set: tracks queues with available work and grants the next
 * QID to service according to the configured service policy
 * (Sections III-B and IV-B of the paper).
 *
 * State mirrors Figure 6: a ready-bit vector (set when the monitoring set
 * reports an arrival), a mask-bit vector (QWAIT-ENABLE / QWAIT-DISABLE),
 * a current-priority one-hot position, and — for weighted round-robin —
 * a per-queue weight table with a countdown counter.  Selection is
 * performed by a Programmable Priority Arbiter; the Brent-Kung design is
 * the default, the ripple design is available for the ablation study.
 */

#ifndef HYPERPLANE_CORE_READY_SET_HH
#define HYPERPLANE_CORE_READY_SET_HH

#include <memory>
#include <optional>
#include <vector>

#include "core/bitvec.hh"
#include "core/ppa.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace core {

/** Service policies supported by the ready set (Section IV-B). */
enum class ServicePolicy : std::uint8_t
{
    RoundRobin,
    WeightedRoundRobin,
    StrictPriority,
};

const char *toString(ServicePolicy p);

/** Which PPA implementation the ready set instantiates. */
enum class ArbiterKind : std::uint8_t
{
    BrentKung,
    Ripple,
};

/** Ready set configuration. */
struct ReadySetConfig
{
    /** Number of QIDs tracked (ready/mask vector width). */
    unsigned capacity = 1024;
    ServicePolicy policy = ServicePolicy::RoundRobin;
    ArbiterKind arbiter = ArbiterKind::BrentKung;
    /** Default weight for weighted round-robin. */
    std::uint32_t defaultWeight = 1;
};

/**
 * Hardware ready set model.
 *
 * A granted QID's ready bit is cleared; QWAIT-RECONSIDER re-activates it
 * if the queue still holds items, which is how "the current queue runs
 * out of work items" passes priority onward in WRR.
 */
class ReadySet
{
  public:
    explicit ReadySet(const ReadySetConfig &cfg = {});

    const ReadySetConfig &config() const { return cfg_; }
    unsigned capacity() const { return cfg_.capacity; }

    /** Mark @p qid ready (monitoring set matched an arrival). */
    void activate(QueueId qid);

    /** Clear @p qid's ready bit (e.g. on QWAIT-REMOVE). */
    void deactivate(QueueId qid);

    bool isReady(QueueId qid) const;

    /** QWAIT-ENABLE: allow @p qid to be granted again. */
    void enable(QueueId qid);

    /** QWAIT-DISABLE: inhibit grants of @p qid (rate limiting). */
    void disable(QueueId qid);

    bool isEnabled(QueueId qid) const;

    /** Set the WRR weight of @p qid (>= 1). */
    void setWeight(QueueId qid, std::uint32_t weight);
    std::uint32_t weight(QueueId qid) const;

    /**
     * Grant the next QID per the service policy and clear its ready bit.
     * @return std::nullopt if no enabled queue is ready.
     */
    std::optional<QueueId> selectNext();

    /** True if any enabled queue is ready (QWAIT would not block). */
    bool anyReady() const;

    /** Number of enabled ready queues. */
    unsigned readyCount() const;

    /** The arbiter in use (for delay/area queries). */
    const PriorityArbiter &arbiter() const { return *arbiter_; }

    /** Reset dynamic state (ready bits, priority, counters). */
    void reset();

    /**
     * Attach a tracer: activations stamp ready_activate and grants
     * stamp ready_grant on @p track.
     */
    void setTracer(trace::Tracer *tracer, std::uint32_t track)
    {
        tracer_ = tracer;
        track_ = track;
    }

    stats::Counter activations{"activations"};
    stats::Counter grants{"grants"};

  private:
    ReadySetConfig cfg_;
    std::unique_ptr<PriorityArbiter> arbiter_;
    BitVec ready_;
    BitVec mask_;
    unsigned currentPriority_ = 0;
    std::vector<std::uint32_t> weights_;
    /** WRR sticky state: queue holding priority and remaining credit. */
    QueueId stickyQid_ = invalidQueueId;
    std::uint32_t stickyCredit_ = 0;
    trace::Tracer *tracer_ = nullptr;
    std::uint32_t track_ = 0;
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_READY_SET_HH
