/**
 * @file
 * A fixed-size dynamic bit vector used by the ready-set hardware model
 * (ready bits, mask bits, one-hot select/priority vectors).
 *
 * Word-packed with the fast scans the arbiter needs: first set bit at or
 * after a position, circular search, population count.
 */

#ifndef HYPERPLANE_CORE_BITVEC_HH
#define HYPERPLANE_CORE_BITVEC_HH

#include <cstdint>
#include <vector>

namespace hyperplane {
namespace core {

/** Fixed-width vector of bits, indexed 0..size()-1. */
class BitVec
{
  public:
    BitVec() = default;

    /** All-zero vector of @p n bits. */
    explicit BitVec(unsigned n);

    unsigned size() const { return size_; }

    void set(unsigned i);
    void clear(unsigned i);
    void assign(unsigned i, bool v);
    bool test(unsigned i) const;

    /** True if no bit is set. */
    bool none() const;

    /** True if any bit is set. */
    bool any() const { return !none(); }

    /** Number of set bits. */
    unsigned count() const;

    /** Clear all bits. */
    void reset();

    /** Set all bits. */
    void setAll();

    /**
     * Index of the first set bit at or after @p from (no wrap).
     * @return size() if none.
     */
    unsigned findFirstFrom(unsigned from) const;

    /**
     * Circular search: first set bit at or after @p from, wrapping to 0.
     * @return size() if the vector is empty.
     */
    unsigned findFirstCircular(unsigned from) const;

    /** Bitwise AND into a new vector. @pre sizes match */
    BitVec operator&(const BitVec &other) const;

    /** Bitwise OR into a new vector. @pre sizes match */
    BitVec operator|(const BitVec &other) const;

    bool operator==(const BitVec &other) const;

    /** Raw word access for the prefix-network model. */
    const std::vector<std::uint64_t> &words() const { return words_; }

  private:
    void checkIndex(unsigned i) const;

    unsigned size_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_BITVEC_HH
