#include "core/ppa.hh"

#include <bit>
#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

int
PriorityArbiter::select(const BitVec &ready, unsigned priorityPos) const
{
    if (ready.size() == 0)
        return noGrant;
    const unsigned hit = ready.findFirstCircular(priorityPos);
    return hit < ready.size() ? static_cast<int>(hit) : noGrant;
}

int
RipplePpa::selectBitSlice(const BitVec &ready, unsigned priorityPos) const
{
    const unsigned n = ready.size();
    if (n == 0)
        return noGrant;
    // Figure 7(a): each cell grants if (priority-in & ready) and passes
    // the token on otherwise.  Walking at most n cells from the priority
    // position models the wrap-around connection.
    unsigned pos = priorityPos % n;
    for (unsigned step = 0; step < n; ++step) {
        if (ready.test(pos))
            return static_cast<int>(pos);
        pos = pos + 1 == n ? 0 : pos + 1;
    }
    return noGrant;
}

double
RipplePpa::delayNs(unsigned n) const
{
    // Priority may ripple through every cell in the worst case.
    return cellDelayNs * static_cast<double>(n);
}

std::uint64_t
RipplePpa::gateCount(unsigned n) const
{
    // One bit-slice cell (Figure 7a) is ~4 two-input gates: the grant
    // AND, the propagate AND-NOT, plus the OR folding Priority/Pin.
    return static_cast<std::uint64_t>(n) * 4;
}

unsigned
RipplePpa::depth(unsigned n) const
{
    return n; // one level per cell in the worst-case ripple
}

namespace {

/**
 * Run the Brent-Kung inclusive prefix-OR schedule over @p bits.
 * Optionally counts operators and levels.
 */
void
brentKungPrefixOr(std::vector<std::uint8_t> &bits,
                  std::uint64_t *ops = nullptr, unsigned *levels = nullptr)
{
    const std::size_t n = bits.size();
    std::uint64_t opCount = 0;
    unsigned levelCount = 0;

    // Up-sweep (reduce) phase.
    for (std::size_t d = 1; d < n; d <<= 1) {
        bool any = false;
        for (std::size_t i = 2 * d - 1; i < n; i += 2 * d) {
            bits[i] |= bits[i - d];
            ++opCount;
            any = true;
        }
        if (any)
            ++levelCount;
    }
    // Down-sweep phase fills in the remaining prefixes.
    std::size_t top = 1;
    while (top * 2 < n)
        top <<= 1;
    for (std::size_t d = top; d >= 1; d >>= 1) {
        bool any = false;
        for (std::size_t i = 3 * d - 1; i < n; i += 2 * d) {
            bits[i] |= bits[i - d];
            ++opCount;
            any = true;
        }
        if (any)
            ++levelCount;
        if (d == 1)
            break;
    }
    if (ops != nullptr)
        *ops = opCount;
    if (levels != nullptr)
        *levels = levelCount;
}

} // namespace

int
BrentKungPpa::selectPrefixNetwork(const BitVec &ready,
                                  unsigned priorityPos) const
{
    const unsigned n = ready.size();
    if (n == 0)
        return noGrant;
    priorityPos %= n;

    // Thermometer code of the priority: T[i] = 1 for i >= priorityPos.
    // The high-side request vector is arbitrated first; if it is empty,
    // the wrapped low side takes over — eliminating the combinational
    // loop of the ripple design.
    auto arbitrate = [&](bool highSide) -> int {
        std::vector<std::uint8_t> req(n, 0);
        bool any = false;
        for (unsigned i = 0; i < n; ++i) {
            const bool inSide = highSide ? i >= priorityPos
                                         : i < priorityPos;
            const bool r = inSide && ready.test(i);
            req[i] = r ? 1 : 0;
            any = any || r;
        }
        if (!any)
            return noGrant;
        // grant[i] = req[i] & ~prefixOr(req)[i-1]: isolate the first
        // set request using the prefix network.
        std::vector<std::uint8_t> prefix = req;
        brentKungPrefixOr(prefix);
        for (unsigned i = 0; i < n; ++i) {
            const std::uint8_t before = i == 0 ? 0 : prefix[i - 1];
            if (req[i] && !before)
                return static_cast<int>(i);
        }
        hp_panic("prefix network failed to isolate a grant");
    };

    const int hi = arbitrate(true);
    if (hi != noGrant)
        return hi;
    return arbitrate(false);
}

BrentKungPpa::NetworkStats
BrentKungPpa::networkStats(unsigned n)
{
    std::vector<std::uint8_t> bits(n, 0);
    NetworkStats s{};
    brentKungPrefixOr(bits, &s.prefixOps, &s.levels);
    return s;
}

double
BrentKungPpa::delayNs(unsigned n) const
{
    if (n <= 1)
        return fixedDelayNs;
    return fixedDelayNs +
           levelDelayNs * static_cast<double>(networkStats(n).levels + 2);
}

std::uint64_t
BrentKungPpa::gateCount(unsigned n) const
{
    // Prefix operators (1 OR each) + thermometer AND per bit on both
    // sides + grant stage (AND-NOT per bit).
    return networkStats(n).prefixOps + 3ull * n;
}

unsigned
BrentKungPpa::depth(unsigned n) const
{
    return networkStats(n).levels + 2; // + thermometer and grant stages
}

} // namespace core
} // namespace hyperplane
