#include "core/bitvec.hh"

#include <bit>

#include "sim/logging.hh"

namespace hyperplane {
namespace core {

BitVec::BitVec(unsigned n) : size_(n), words_((n + 63) / 64, 0) {}

void
BitVec::checkIndex(unsigned i) const
{
    hp_assert(i < size_, "bit index %u out of range (size %u)", i, size_);
}

void
BitVec::set(unsigned i)
{
    checkIndex(i);
    words_[i / 64] |= std::uint64_t{1} << (i % 64);
}

void
BitVec::clear(unsigned i)
{
    checkIndex(i);
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
}

void
BitVec::assign(unsigned i, bool v)
{
    if (v)
        set(i);
    else
        clear(i);
}

bool
BitVec::test(unsigned i) const
{
    checkIndex(i);
    return (words_[i / 64] >> (i % 64)) & 1;
}

bool
BitVec::none() const
{
    for (auto w : words_) {
        if (w != 0)
            return false;
    }
    return true;
}

unsigned
BitVec::count() const
{
    unsigned n = 0;
    for (auto w : words_)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

void
BitVec::reset()
{
    for (auto &w : words_)
        w = 0;
}

void
BitVec::setAll()
{
    for (auto &w : words_)
        w = ~std::uint64_t{0};
    // Clear bits beyond size_ in the last word.
    const unsigned rem = size_ % 64;
    if (rem != 0 && !words_.empty())
        words_.back() &= (std::uint64_t{1} << rem) - 1;
}

unsigned
BitVec::findFirstFrom(unsigned from) const
{
    if (from >= size_)
        return size_;
    unsigned wi = from / 64;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from % 64));
    for (;;) {
        if (w != 0) {
            const unsigned bit =
                wi * 64 + static_cast<unsigned>(std::countr_zero(w));
            return bit < size_ ? bit : size_;
        }
        if (++wi >= words_.size())
            return size_;
        w = words_[wi];
    }
}

unsigned
BitVec::findFirstCircular(unsigned from) const
{
    if (size_ == 0)
        return 0;
    from %= size_;
    const unsigned hit = findFirstFrom(from);
    if (hit < size_)
        return hit;
    return findFirstFrom(0); // size_ if entirely empty
}

BitVec
BitVec::operator&(const BitVec &other) const
{
    hp_assert(size_ == other.size_, "BitVec size mismatch");
    BitVec out(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] & other.words_[i];
    return out;
}

BitVec
BitVec::operator|(const BitVec &other) const
{
    hp_assert(size_ == other.size_, "BitVec size mismatch");
    BitVec out(size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
        out.words_[i] = words_[i] | other.words_[i];
    return out;
}

bool
BitVec::operator==(const BitVec &other) const
{
    return size_ == other.size_ && words_ == other.words_;
}

} // namespace core
} // namespace hyperplane
