/**
 * @file
 * The QWAIT unit: HyperPlane's full hardware subsystem, tying the
 * monitoring set to the ready set and implementing the instruction
 * semantics of Algorithm 1 in the paper.
 *
 * Instruction mapping:
 *  - QWAIT_init       -> constructor + MemorySystem::watchRange
 *  - QWAIT-ADD        -> qwaitAdd() (with the driver's reallocation loop
 *                        available via addQueueWithRealloc())
 *  - QWAIT-REMOVE     -> qwaitRemove()
 *  - QWAIT            -> qwait() (returns nullopt when the caller would
 *                        halt; the wake callback fires on next arrival)
 *  - QWAIT-VERIFY     -> qwaitVerify()
 *  - QWAIT-RECONSIDER -> qwaitReconsider()
 *  - QWAIT-ENABLE / QWAIT-DISABLE -> qwaitEnable() / qwaitDisable()
 *
 * The unit implements mem::Snooper; registering it over the doorbell
 * range makes GetM transactions flow into the monitoring set exactly as
 * in Figure 4.
 */

#ifndef HYPERPLANE_CORE_QWAIT_UNIT_HH
#define HYPERPLANE_CORE_QWAIT_UNIT_HH

#include <functional>
#include <optional>
#include <unordered_map>

#include "core/monitoring_set.hh"
#include "core/ready_set.hh"
#include "mem/memory_system.hh"
#include "queueing/doorbell.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace core {

/** Full HyperPlane hardware configuration. */
struct QwaitConfig
{
    MonitoringSetConfig monitoring{};
    ReadySetConfig ready{};
    /**
     * End-to-end QWAIT instruction latency, cycles.  The paper
     * conservatively charges 50 cycles, above the sum of component
     * latencies (Section IV-C).
     */
    Tick qwaitLatency = 50;
};

/** Outcome of a QWAIT-ADD attempt. */
enum class AddResult : std::uint8_t
{
    Ok,            ///< bound and monitoring
    Conflict,      ///< Cuckoo conflict; reallocate the address and retry
    DuplicateAddr, ///< doorbell line already monitored (by another qid)
    DuplicateQid,  ///< qid already bound; retrying can never succeed
};

const char *toString(AddResult r);

/**
 * The HyperPlane notification subsystem, shared by all data-plane cores.
 */
class QwaitUnit : public mem::Snooper
{
  public:
    explicit QwaitUnit(const QwaitConfig &cfg = {});

    const QwaitConfig &config() const { return cfg_; }

    // --- Control plane (privileged; kernel driver) -------------------

    /**
     * QWAIT-ADD: bind @p doorbell to @p qid and start monitoring.
     * Only AddResult::Conflict (and DuplicateAddr, under an address
     * allocator that can re-draw a taken line) is worth retrying with a
     * fresh address; DuplicateQid is a caller bug or a benign re-bind.
     */
    AddResult qwaitAdd(QueueId qid, Addr doorbell);

    /**
     * The driver's allocation loop from Algorithm 1: repeatedly draw a
     * doorbell address from @p allocate until QWAIT-ADD succeeds.
     *
     * @param allocate Callable returning candidate doorbell addresses.
     * @param maxTries Give up (return nullopt) after this many attempts.
     * @return The doorbell address that was bound.
     */
    std::optional<Addr> addQueueWithRealloc(
        QueueId qid, const std::function<Addr()> &allocate,
        unsigned maxTries = 16);

    /** QWAIT-REMOVE: disconnect a tenant's queue. */
    bool qwaitRemove(QueueId qid);

    /** Doorbell address bound to @p qid, if any. */
    std::optional<Addr> doorbellOf(QueueId qid) const;

    // --- Data plane --------------------------------------------------

    /**
     * QWAIT: return the next ready QID per the service policy, or
     * std::nullopt if every queue is idle (the calling core halts and is
     * woken via the wake callback).
     */
    std::optional<QueueId> qwait();

    /**
     * QWAIT-VERIFY: atomically test the doorbell; if the queue is empty,
     * re-arm it in the monitoring set.
     *
     * @return true if the queue really has work (proceed to dequeue);
     *         false on a spurious wake-up (re-execute QWAIT).
     */
    bool qwaitVerify(QueueId qid, const queueing::Doorbell &doorbell);

    /**
     * QWAIT-RECONSIDER: after dequeuing, atomically either re-arm the
     * queue in the monitoring set (empty) or re-activate it in the ready
     * set (items remain).
     */
    void qwaitReconsider(QueueId qid, const queueing::Doorbell &doorbell);

    /**
     * QWAIT-ENABLE / QWAIT-DISABLE (rate limiting / congestion ctrl).
     * Enabling a queue that became ready while masked re-fires the
     * wake callback: the hardware select re-evaluates, so halted cores
     * must not sleep through the newly grantable QID.
     */
    void qwaitEnable(QueueId qid);
    void qwaitDisable(QueueId qid) { readySet_.disable(qid); }

    // --- Recovery / fault-injection hooks ----------------------------

    /**
     * Watchdog audit of one queue: if its monitoring entry is armed
     * while the doorbell already advertises work and the queue is not
     * ready, the doorbell snoop was lost — replay the activation
     * (disarm + activate + wake), exactly what the missed write
     * transaction would have done.
     *
     * @return true if a lost notification was recovered.
     */
    bool watchdogVerify(QueueId qid, const queueing::Doorbell &doorbell);

    /**
     * Fault injection: activate @p qid in the ready set with no backing
     * work (a spurious wake source).  QWAIT-VERIFY filters the result.
     */
    void injectSpuriousActivation(QueueId qid);

    // --- Coherence snoop path (Figure 4, steps 1-3) -------------------

    void onWriteTransaction(Addr line, CoreId writer) override;

    /**
     * Register the callback fired when the ready set transitions from
     * empty to non-empty (wakes halted cores).
     */
    void setWakeCallback(std::function<void()> cb)
    {
        wakeCallback_ = std::move(cb);
    }

    /**
     * Observability hook: fired once per notification-path activation
     * (snoop hit, watchdog replay, injected spurious activation) with
     * the activated qid — the ready-set re-activations of
     * QWAIT-RECONSIDER are not notifications and do not fire it.
     */
    void setActivationHook(std::function<void(QueueId)> hook)
    {
        activationHook_ = std::move(hook);
    }

    /**
     * Attach a tracer under hardware track @p track: forwards to the
     * monitoring and ready sets and stamps spurious_wake instants when
     * QWAIT-VERIFY filters an empty grant.
     */
    void setTracer(trace::Tracer *tracer, std::uint32_t track)
    {
        tracer_ = tracer;
        track_ = track;
        monitoring_.setTracer(tracer, track);
        readySet_.setTracer(tracer, track);
    }

    /** QWAIT instruction latency, cycles. */
    Tick qwaitLatency() const { return cfg_.qwaitLatency; }

    MonitoringSet &monitoringSet() { return monitoring_; }
    const MonitoringSet &monitoringSet() const { return monitoring_; }
    ReadySet &readySet() { return readySet_; }
    const ReadySet &readySet() const { return readySet_; }

    stats::Counter qwaitCalls{"qwait_calls"};
    stats::Counter qwaitBlocked{"qwait_blocked"};
    stats::Counter spuriousWakeups{"spurious_wakeups"};

  private:
    QwaitConfig cfg_;
    MonitoringSet monitoring_;
    ReadySet readySet_;
    std::unordered_map<QueueId, Addr> doorbellByQid_;
    std::function<void()> wakeCallback_;
    std::function<void(QueueId)> activationHook_;
    trace::Tracer *tracer_ = nullptr;
    std::uint32_t track_ = 0;
};

} // namespace core
} // namespace hyperplane

#endif // HYPERPLANE_CORE_QWAIT_UNIT_HH
