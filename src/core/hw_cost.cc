#include "core/hw_cost.hh"

#include <cmath>

#include "core/ppa.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace core {

namespace {

/**
 * Per-entry storage of the two structures, bits.
 *
 * Monitoring set entry (Section IV-A): ~40-bit line tag + 10-bit QID +
 * monitoring and valid bits, plus ECC/overhead -> 56 bits.
 * Ready set entry (Figure 6): ready + mask bits, an 8-bit weight, and a
 * share of the PPA/priority logic -> 16 bit-equivalents.
 */
constexpr double monitoringBitsPerEntry = 56.0;
constexpr double readyBitsPerEntry = 16.0;

/**
 * Area per bit-equivalent in 32 nm, mm^2.  Calibrated so the 1024-entry
 * structures land on the paper's 0.21 / 0.13 mm^2.
 */
constexpr double monitoringMm2PerBit = 0.21 / (1024 * monitoringBitsPerEntry);
constexpr double readyMm2PerBit = 0.13 / (1024 * readyBitsPerEntry);

/** Power fractions of one core at the calibration point. */
constexpr double readyPowerFracAt1k = 0.021;
constexpr double monitoringPowerFracAt1k = 0.041;

double
log2d(double x)
{
    return std::log2(x);
}

} // namespace

HwCostModel::HwCostModel(const HwCostConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.monitoringEntries > 0 && cfg_.readyEntries > 0,
              "structure sizes must be positive");
    hp_assert(cfg_.cores > 0, "need at least one core");
}

double
HwCostModel::readySetAreaMm2() const
{
    return readyMm2PerBit * readyBitsPerEntry * cfg_.readyEntries;
}

double
HwCostModel::monitoringSetAreaMm2() const
{
    return monitoringMm2PerBit * monitoringBitsPerEntry *
           cfg_.monitoringEntries;
}

double
HwCostModel::areaOverheadFraction() const
{
    const double accel = readySetAreaMm2() + monitoringSetAreaMm2();
    return accel / (cfg_.coreAreaMm2 * cfg_.cores);
}

double
HwCostModel::readySetPowerFraction() const
{
    // SRAM-dominated structures: power scales ~linearly with entries.
    return readyPowerFracAt1k * cfg_.readyEntries / 1024.0;
}

double
HwCostModel::monitoringSetPowerFraction() const
{
    return monitoringPowerFracAt1k * cfg_.monitoringEntries / 1024.0;
}

double
HwCostModel::powerOverheadFraction() const
{
    return (readySetPowerFraction() + monitoringSetPowerFraction()) /
           cfg_.cores;
}

double
HwCostModel::readySetLatencyNs() const
{
    // Three pipeline components: the ready/mask SRAM read (grows with
    // log2 of the vector width), the Brent-Kung PPA, and the priority
    // register update.  Constants calibrated to 12.25 ns at 1024 entries
    // (Section IV-C).
    const unsigned n = cfg_.readyEntries;
    BrentKungPpa ppa;
    const double ppaNs = ppa.delayNs(n);
    constexpr double sramBaseNs = 2.0;
    constexpr double sramPerLog2Ns = 0.8935;
    const double sramNs = sramBaseNs + sramPerLog2Ns * log2d(n);
    return sramNs + ppaNs;
}

Tick
HwCostModel::qwaitLatencyCycles() const
{
    // Ready-set latency in cycles + monitoring lookup + NUCA round trip,
    // rounded up to the paper's conservative 50-cycle envelope for the
    // 1024-entry configuration (and scaling up for larger ones).
    const double readyCycles = readySetLatencyNs() * cyclesPerNs;
    const double total = readyCycles + 13.0 /* interconnect + issue */;
    return total < 50.0 ? 50 : static_cast<Tick>(std::ceil(total));
}

} // namespace core
} // namespace hyperplane
