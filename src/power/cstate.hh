/**
 * @file
 * C-state machine for a data-plane core.
 *
 * Tracks whether the core is running (C0), halted in C0 (QWAIT with no
 * ready queue), or in the C1 sleep state (power-optimized HyperPlane).
 * The machine accounts time in each state into a CorePowerModel and
 * charges the C1 wake-up latency on exits from C1.
 */

#ifndef HYPERPLANE_POWER_CSTATE_HH
#define HYPERPLANE_POWER_CSTATE_HH

#include "power/core_power.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace power {

/** Core sleep states modelled. */
enum class CState : std::uint8_t
{
    C0Active, ///< executing
    C0Halt,   ///< halted, clock-gated, instant wake
    C1,       ///< sleep state, ~0.5 us wake latency
};

const char *toString(CState s);

/**
 * Per-core C-state tracker.
 *
 * Usage: the core calls run()/halt() as it transitions; each call closes
 * the previous interval and charges it to the power model.  wake()
 * returns the latency penalty to apply before the core can execute.
 */
class CStateMachine
{
  public:
    /**
     * @param power   Energy integrator to charge.
     * @param useC1   If true, halts enter C1 (power-optimized mode);
     *                otherwise they stay in C0-halt.
     */
    CStateMachine(CorePowerModel &power, bool useC1);

    CState state() const { return state_; }

    /**
     * Enter the running state at @p now, executing at @p ipc until the
     * next transition (the ipc is recorded for the upcoming interval).
     */
    void run(Tick now, double ipc);

    /** Enter the halt state at @p now. */
    void halt(Tick now);

    /**
     * Wake from a halt at @p now.
     * @return Wake-up latency in cycles (0 from C0-halt; the C1 exit
     *         latency from C1).
     */
    Tick wake(Tick now);

    /** Close the open interval at @p now (end of measurement). */
    void finish(Tick now);

    stats::Counter halts{"halt_entries"};
    stats::Counter c1Entries{"c1_entries"};

  private:
    /** Charge [intervalStart_, now) to the power model. */
    void closeInterval(Tick now);

    CorePowerModel &power_;
    bool useC1_;
    CState state_ = CState::C0Active;
    double currentIpc_ = 0.0;
    Tick intervalStart_ = 0;
};

} // namespace power
} // namespace hyperplane

#endif // HYPERPLANE_POWER_CSTATE_HH
