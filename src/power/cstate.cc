#include "power/cstate.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace power {

const char *
toString(CState s)
{
    switch (s) {
      case CState::C0Active:
        return "C0-active";
      case CState::C0Halt:
        return "C0-halt";
      case CState::C1:
        return "C1";
    }
    return "?";
}

CStateMachine::CStateMachine(CorePowerModel &power, bool useC1)
    : power_(power), useC1_(useC1)
{
}

void
CStateMachine::closeInterval(Tick now)
{
    hp_assert(now >= intervalStart_, "time went backwards");
    const Tick dur = now - intervalStart_;
    if (dur > 0) {
        switch (state_) {
          case CState::C0Active:
            power_.addActive(dur, currentIpc_);
            break;
          case CState::C0Halt:
            power_.addHalt(dur, false);
            break;
          case CState::C1:
            power_.addHalt(dur, true);
            break;
        }
    }
    intervalStart_ = now;
}

void
CStateMachine::run(Tick now, double ipc)
{
    closeInterval(now);
    state_ = CState::C0Active;
    currentIpc_ = ipc;
}

void
CStateMachine::halt(Tick now)
{
    closeInterval(now);
    halts.inc();
    if (useC1_) {
        state_ = CState::C1;
        c1Entries.inc();
    } else {
        state_ = CState::C0Halt;
    }
}

Tick
CStateMachine::wake(Tick now)
{
    closeInterval(now);
    const Tick latency =
        state_ == CState::C1 ? power_.params().c1WakeLatency : 0;
    state_ = CState::C0Active;
    return latency;
}

void
CStateMachine::finish(Tick now)
{
    closeInterval(now);
}

} // namespace power
} // namespace hyperplane
