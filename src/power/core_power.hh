/**
 * @file
 * McPAT-style core power model.
 *
 * Dynamic power scales with core activity (IPC); static power is always
 * paid while the core is in C0.  Halting (QWAIT with empty queues) drops
 * dynamic power; the C1 sleep state drops most of the static component
 * too, at the cost of a wake-up latency (Section V-D of the paper,
 * [36]/[86]: ~0.5 us for C1 -> C0).
 *
 * The model integrates energy over simulated intervals so experiments can
 * report average power per load point.
 */

#ifndef HYPERPLANE_POWER_CORE_POWER_HH
#define HYPERPLANE_POWER_CORE_POWER_HH

#include "sim/types.hh"

namespace hyperplane {
namespace power {

/** Power model parameters for one core (32 nm OoO class). */
struct PowerParams
{
    /** Leakage + clock-tree power in C0, watts. */
    double staticW = 7.0;
    /** Dynamic power at peak IPC, watts. */
    double dynPeakW = 5.0;
    /** IPC at which dynamic power saturates. */
    double ipcPeak = 4.0;
    /** Power while halted in C0 (clock-gated, leakage remains), watts. */
    double c0HaltW = 3.0;
    /** Power in the C1 sleep state, watts (calibrated so C1 idle sits
     *  at ~16% of saturation power, Figure 12a). */
    double c1W = 1.37;
    /** C1 -> C0 wake-up latency (~0.5 us). */
    Tick c1WakeLatency = usToTicks(0.5);
};

/** Energy integrator for one core. */
class CorePowerModel
{
  public:
    explicit CorePowerModel(const PowerParams &params = {});

    const PowerParams &params() const { return params_; }

    /** Instantaneous power while executing at @p ipc, watts. */
    double activePowerW(double ipc) const;

    /** Instantaneous power while halted (@p c1: deep state), watts. */
    double haltPowerW(bool c1) const;

    /** Charge @p dur cycles of execution at @p ipc. */
    void addActive(Tick dur, double ipc);

    /** Charge @p dur cycles of halt. */
    void addHalt(Tick dur, bool c1);

    /** Total energy accumulated, joules. */
    double energyJ() const { return energyJ_; }

    /** Total time accounted, cycles. */
    Tick accountedTicks() const { return accounted_; }

    /** Average power over everything accounted so far, watts. */
    double averagePowerW() const;

    void clear();

  private:
    PowerParams params_;
    double energyJ_ = 0.0;
    Tick accounted_ = 0;
};

} // namespace power
} // namespace hyperplane

#endif // HYPERPLANE_POWER_CORE_POWER_HH
