#include "power/core_power.hh"

#include <algorithm>

namespace hyperplane {
namespace power {

CorePowerModel::CorePowerModel(const PowerParams &params) : params_(params)
{
}

double
CorePowerModel::activePowerW(double ipc) const
{
    const double activity =
        std::clamp(ipc / params_.ipcPeak, 0.0, 1.0);
    return params_.staticW + params_.dynPeakW * activity;
}

double
CorePowerModel::haltPowerW(bool c1) const
{
    return c1 ? params_.c1W : params_.c0HaltW;
}

void
CorePowerModel::addActive(Tick dur, double ipc)
{
    energyJ_ += activePowerW(ipc) * ticksToSeconds(dur);
    accounted_ += dur;
}

void
CorePowerModel::addHalt(Tick dur, bool c1)
{
    energyJ_ += haltPowerW(c1) * ticksToSeconds(dur);
    accounted_ += dur;
}

double
CorePowerModel::averagePowerW() const
{
    if (accounted_ == 0)
        return 0.0;
    return energyJ_ / ticksToSeconds(accounted_);
}

void
CorePowerModel::clear()
{
    energyJ_ = 0.0;
    accounted_ = 0;
}

} // namespace power
} // namespace hyperplane
