#include "codes/reed_solomon.hh"

#include "codes/gf256.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace codes {

ReedSolomon::ReedSolomon(unsigned k, unsigned m)
    : k_(k), m_(m), cauchy_(GfMatrix::cauchy(m, k))
{
    hp_assert(k >= 1 && m >= 1, "RS needs at least one data+parity shard");
    hp_assert(k + m <= 256, "RS over GF(2^8) supports at most 256 shards");
}

std::vector<Shard>
ReedSolomon::encode(const std::vector<Shard> &data) const
{
    hp_assert(data.size() == k_, "encode expects exactly k data shards");
    const std::size_t len = data[0].size();
    for (const auto &d : data)
        hp_assert(d.size() == len, "all shards must be the same size");

    std::vector<Shard> parity(m_, Shard(len, 0));
    for (unsigned i = 0; i < m_; ++i) {
        for (unsigned j = 0; j < k_; ++j) {
            gfMulAccum(parity[i].data(), data[j].data(), len,
                       cauchy_.at(i, j));
        }
    }
    return parity;
}

std::optional<std::vector<Shard>>
ReedSolomon::decode(const std::vector<Shard> &shards) const
{
    hp_assert(shards.size() == k_ + m_,
              "decode expects k+m shard slots (empty = missing)");

    // Gather the first k surviving shards and their generator rows.
    std::vector<unsigned> rows;
    std::vector<const Shard *> survivors;
    std::size_t len = 0;
    for (unsigned i = 0; i < shards.size() && rows.size() < k_; ++i) {
        if (shards[i].empty())
            continue;
        if (len == 0)
            len = shards[i].size();
        hp_assert(shards[i].size() == len,
                  "surviving shards must be the same size");
        rows.push_back(i);
        survivors.push_back(&shards[i]);
    }
    if (rows.size() < k_)
        return std::nullopt;

    // Build the k x k matrix mapping data -> surviving shards.
    GfMatrix sub(k_, k_);
    for (unsigned r = 0; r < k_; ++r) {
        const unsigned id = rows[r];
        for (unsigned c = 0; c < k_; ++c) {
            sub.at(r, c) = id < k_ ? (id == c ? 1 : 0)
                                   : cauchy_.at(id - k_, c);
        }
    }
    const auto inv = sub.inverted();
    // Any k x k submatrix of [I; Cauchy] is invertible; a failure here is
    // a library bug, not a caller error.
    hp_assert(inv.has_value(), "RS decode matrix unexpectedly singular");

    std::vector<Shard> data(k_, Shard(len, 0));
    for (unsigned i = 0; i < k_; ++i) {
        for (unsigned j = 0; j < k_; ++j) {
            gfMulAccum(data[i].data(), survivors[j]->data(), len,
                       inv->at(i, j));
        }
    }
    return data;
}

} // namespace codes
} // namespace hyperplane
