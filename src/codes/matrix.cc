#include "codes/matrix.hh"

#include "codes/gf256.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace codes {

GfMatrix::GfMatrix(unsigned rows, unsigned cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * cols, 0)
{
}

std::uint8_t &
GfMatrix::at(unsigned r, unsigned c)
{
    hp_assert(r < rows_ && c < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

std::uint8_t
GfMatrix::at(unsigned r, unsigned c) const
{
    hp_assert(r < rows_ && c < cols_, "matrix index out of range");
    return data_[static_cast<std::size_t>(r) * cols_ + c];
}

GfMatrix
GfMatrix::identity(unsigned n)
{
    GfMatrix m(n, n);
    for (unsigned i = 0; i < n; ++i)
        m.at(i, i) = 1;
    return m;
}

GfMatrix
GfMatrix::cauchy(unsigned m, unsigned k)
{
    hp_assert(m + k <= 256, "Cauchy matrix needs m + k <= 256");
    GfMatrix mat(m, k);
    for (unsigned i = 0; i < m; ++i) {
        for (unsigned j = 0; j < k; ++j) {
            const std::uint8_t xi = static_cast<std::uint8_t>(i + k);
            const std::uint8_t yj = static_cast<std::uint8_t>(j);
            mat.at(i, j) = gfInv(gfAdd(xi, yj));
        }
    }
    return mat;
}

GfMatrix
GfMatrix::vandermonde(unsigned m, unsigned k)
{
    GfMatrix mat(m, k);
    for (unsigned i = 0; i < m; ++i)
        for (unsigned j = 0; j < k; ++j)
            mat.at(i, j) = gfPow(gfExp(i), j);
    return mat;
}

GfMatrix
GfMatrix::multiply(const GfMatrix &other) const
{
    hp_assert(cols_ == other.rows_, "matrix shape mismatch in multiply");
    GfMatrix out(rows_, other.cols_);
    for (unsigned i = 0; i < rows_; ++i) {
        for (unsigned j = 0; j < other.cols_; ++j) {
            std::uint8_t acc = 0;
            for (unsigned t = 0; t < cols_; ++t)
                acc = gfAdd(acc, gfMul(at(i, t), other.at(t, j)));
            out.at(i, j) = acc;
        }
    }
    return out;
}

std::optional<GfMatrix>
GfMatrix::inverted() const
{
    hp_assert(rows_ == cols_, "only square matrices can be inverted");
    const unsigned n = rows_;
    GfMatrix work = *this;
    GfMatrix inv = identity(n);

    for (unsigned col = 0; col < n; ++col) {
        // Find a pivot row.
        unsigned pivot = col;
        while (pivot < n && work.at(pivot, col) == 0)
            ++pivot;
        if (pivot == n)
            return std::nullopt; // singular
        if (pivot != col) {
            for (unsigned c = 0; c < n; ++c) {
                std::swap(work.at(pivot, c), work.at(col, c));
                std::swap(inv.at(pivot, c), inv.at(col, c));
            }
        }
        // Scale the pivot row to make the pivot 1.
        const std::uint8_t pinv = gfInv(work.at(col, col));
        for (unsigned c = 0; c < n; ++c) {
            work.at(col, c) = gfMul(work.at(col, c), pinv);
            inv.at(col, c) = gfMul(inv.at(col, c), pinv);
        }
        // Eliminate the column from all other rows.
        for (unsigned r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const std::uint8_t f = work.at(r, col);
            if (f == 0)
                continue;
            for (unsigned c = 0; c < n; ++c) {
                work.at(r, c) =
                    gfAdd(work.at(r, c), gfMul(f, work.at(col, c)));
                inv.at(r, c) =
                    gfAdd(inv.at(r, c), gfMul(f, inv.at(col, c)));
            }
        }
    }
    return inv;
}

GfMatrix
GfMatrix::selectRows(const std::vector<unsigned> &rowIds) const
{
    GfMatrix out(static_cast<unsigned>(rowIds.size()), cols_);
    for (unsigned i = 0; i < rowIds.size(); ++i) {
        hp_assert(rowIds[i] < rows_, "selectRows id out of range");
        for (unsigned c = 0; c < cols_; ++c)
            out.at(i, c) = at(rowIds[i], c);
    }
    return out;
}

bool
GfMatrix::operator==(const GfMatrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

} // namespace codes
} // namespace hyperplane
