/**
 * @file
 * Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy
 * generator matrix (the paper's erasure-coding workload: "Reed-Solomon
 * erasure coding to encode data blocks/fragments using a Cauchy matrix").
 *
 * Encoding of k data shards into m parity shards is a matrix-vector
 * product per byte position; decoding reconstructs missing shards by
 * inverting the k x k submatrix of surviving rows.
 */

#ifndef HYPERPLANE_CODES_REED_SOLOMON_HH
#define HYPERPLANE_CODES_REED_SOLOMON_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "codes/matrix.hh"

namespace hyperplane {
namespace codes {

/** One shard: a fixed-size byte block. */
using Shard = std::vector<std::uint8_t>;

/**
 * Reed-Solomon (k data, m parity) erasure coder.
 *
 * The full generator is [ I_k ; C ] where C is an m x k Cauchy matrix, so
 * the code is systematic: the first k shards are the data itself.
 */
class ReedSolomon
{
  public:
    /**
     * @param k Number of data shards (>= 1).
     * @param m Number of parity shards (>= 1); k + m <= 256.
     */
    ReedSolomon(unsigned k, unsigned m);

    unsigned dataShards() const { return k_; }
    unsigned parityShards() const { return m_; }

    /**
     * Compute the m parity shards.
     *
     * @param data k shards, all the same size.
     * @return m parity shards of the same size.
     */
    std::vector<Shard> encode(const std::vector<Shard> &data) const;

    /**
     * Reconstruct the original k data shards from any k survivors.
     *
     * @param shards   k+m slots; missing shards are empty vectors.
     * @return The k data shards, or std::nullopt if fewer than k shards
     *         survive.
     */
    std::optional<std::vector<Shard>> decode(
        const std::vector<Shard> &shards) const;

    /** The Cauchy parity submatrix (for inspection/tests). */
    const GfMatrix &parityMatrix() const { return cauchy_; }

  private:
    unsigned k_, m_;
    GfMatrix cauchy_;
};

} // namespace codes
} // namespace hyperplane

#endif // HYPERPLANE_CODES_REED_SOLOMON_HH
