#include "codes/raid.hh"

#include "codes/gf256.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace codes {

Raid6::Raid6(unsigned dataDisks) : n_(dataDisks)
{
    hp_assert(dataDisks >= 1 && dataDisks <= 255,
              "RAID-6 supports 1..255 data disks");
}

void
Raid6::checkStripe(const std::vector<Block> &data) const
{
    hp_assert(data.size() == n_, "stripe must have dataDisks blocks");
}

Block
Raid6::computeP(const std::vector<Block> &data) const
{
    checkStripe(data);
    const std::size_t len = data[0].size();
    Block p(len, 0);
    for (const auto &d : data) {
        hp_assert(d.size() == len, "blocks must be the same size");
        for (std::size_t i = 0; i < len; ++i)
            p[i] ^= d[i];
    }
    return p;
}

Block
Raid6::computeQ(const std::vector<Block> &data) const
{
    checkStripe(data);
    const std::size_t len = data[0].size();
    Block q(len, 0);
    for (unsigned disk = 0; disk < n_; ++disk) {
        hp_assert(data[disk].size() == len, "blocks must be the same size");
        gfMulAccum(q.data(), data[disk].data(), len, gfExp(disk));
    }
    return q;
}

std::pair<Block, Block>
Raid6::computePQ(const std::vector<Block> &data) const
{
    return {computeP(data), computeQ(data)};
}

Block
Raid6::recoverDataWithP(const std::vector<Block> &data, const Block &p,
                        unsigned missing) const
{
    checkStripe(data);
    hp_assert(missing < n_, "missing index out of range");
    hp_assert(data[missing].empty(), "missing block slot must be empty");
    Block out = p;
    for (unsigned disk = 0; disk < n_; ++disk) {
        if (disk == missing)
            continue;
        hp_assert(data[disk].size() == out.size(),
                  "blocks must match parity size");
        for (std::size_t i = 0; i < out.size(); ++i)
            out[i] ^= data[disk][i];
    }
    return out;
}

Block
Raid6::recoverDataWithQ(const std::vector<Block> &data, const Block &q,
                        unsigned missing) const
{
    checkStripe(data);
    hp_assert(missing < n_, "missing index out of range");
    hp_assert(data[missing].empty(), "missing block slot must be empty");
    Block acc = q;
    for (unsigned disk = 0; disk < n_; ++disk) {
        if (disk == missing)
            continue;
        gfMulAccum(acc.data(), data[disk].data(), acc.size(), gfExp(disk));
    }
    // acc now equals g^missing * D_missing.
    Block out(acc.size());
    gfMulInto(out.data(), acc.data(), acc.size(),
              gfInv(gfExp(missing)));
    return out;
}

std::pair<Block, Block>
Raid6::recoverTwoData(const std::vector<Block> &data, const Block &p,
                      const Block &q, unsigned missA,
                      unsigned missB) const
{
    checkStripe(data);
    hp_assert(missA < n_ && missB < n_ && missA != missB,
              "need two distinct missing indices");
    hp_assert(data[missA].empty() && data[missB].empty(),
              "missing block slots must be empty");
    const std::size_t len = p.size();

    // Partial parities over the surviving blocks:
    //   pxy = P ^ sum(D_i)        = D_a ^ D_b
    //   qxy = Q ^ sum(g^i D_i)    = g^a D_a ^ g^b D_b
    Block pxy = p;
    Block qxy = q;
    for (unsigned disk = 0; disk < n_; ++disk) {
        if (disk == missA || disk == missB)
            continue;
        hp_assert(data[disk].size() == len,
                  "blocks must match parity size");
        for (std::size_t i = 0; i < len; ++i)
            pxy[i] ^= data[disk][i];
        gfMulAccum(qxy.data(), data[disk].data(), len, gfExp(disk));
    }

    // Solve the 2x2 system:
    //   D_a = (qxy ^ g^b * pxy) / (g^a ^ g^b);  D_b = pxy ^ D_a
    const std::uint8_t ga = gfExp(missA);
    const std::uint8_t gb = gfExp(missB);
    const std::uint8_t denomInv = gfInv(gfAdd(ga, gb));

    Block da(len), db(len);
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t num = gfAdd(qxy[i], gfMul(gb, pxy[i]));
        da[i] = gfMul(num, denomInv);
        db[i] = gfAdd(pxy[i], da[i]);
    }
    return {std::move(da), std::move(db)};
}

bool
Raid6::verify(const std::vector<Block> &data, const Block &p,
              const Block &q) const
{
    return computeP(data) == p && computeQ(data) == q;
}

} // namespace codes
} // namespace hyperplane
