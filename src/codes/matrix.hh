/**
 * @file
 * Dense matrices over GF(2^8): construction of Cauchy / Vandermonde
 * coding matrices and Gaussian-elimination inversion, as needed by the
 * Reed-Solomon erasure coder.
 */

#ifndef HYPERPLANE_CODES_MATRIX_HH
#define HYPERPLANE_CODES_MATRIX_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace hyperplane {
namespace codes {

/** Row-major matrix over GF(2^8). */
class GfMatrix
{
  public:
    GfMatrix() : rows_(0), cols_(0) {}
    GfMatrix(unsigned rows, unsigned cols);

    unsigned rows() const { return rows_; }
    unsigned cols() const { return cols_; }

    std::uint8_t &at(unsigned r, unsigned c);
    std::uint8_t at(unsigned r, unsigned c) const;

    /** Identity matrix of size n. */
    static GfMatrix identity(unsigned n);

    /**
     * Cauchy matrix: element (i, j) = 1 / (x_i + y_j) with
     * x_i = i + k and y_j = j, which are disjoint for i < m, j < k.
     * Every square submatrix of a Cauchy matrix is invertible — the
     * property that makes it an MDS erasure code generator.
     *
     * @param m Number of parity rows.
     * @param k Number of data columns.
     */
    static GfMatrix cauchy(unsigned m, unsigned k);

    /** Vandermonde matrix: element (i, j) = alpha^(i*j), m rows, k cols. */
    static GfMatrix vandermonde(unsigned m, unsigned k);

    /** Matrix product. @pre cols() == other.rows() */
    GfMatrix multiply(const GfMatrix &other) const;

    /**
     * Invert via Gauss-Jordan elimination.
     * @return std::nullopt if singular.  @pre rows() == cols()
     */
    std::optional<GfMatrix> inverted() const;

    /** Extract the given rows into a new matrix. */
    GfMatrix selectRows(const std::vector<unsigned> &rowIds) const;

    bool operator==(const GfMatrix &other) const;

  private:
    unsigned rows_, cols_;
    std::vector<std::uint8_t> data_;
};

} // namespace codes
} // namespace hyperplane

#endif // HYPERPLANE_CODES_MATRIX_HH
