/**
 * @file
 * RAID-6 P+Q parity (the paper's RAID-protection workload: "RAID with P+Q
 * redundancy is used to calculate parity bytes of input data blocks").
 *
 * P is the XOR of all data blocks; Q is the GF(2^8) weighted sum
 * Q = sum_i g^i * D_i with g = 2 (the standard Linux-md construction).
 * Recovery supports every one- and two-erasure case.
 */

#ifndef HYPERPLANE_CODES_RAID_HH
#define HYPERPLANE_CODES_RAID_HH

#include <cstdint>
#include <vector>

namespace hyperplane {
namespace codes {

/** A data or parity block. */
using Block = std::vector<std::uint8_t>;

/** RAID-6 codec over a fixed number of data disks. */
class Raid6
{
  public:
    /** @param dataDisks Number of data blocks per stripe (1..255). */
    explicit Raid6(unsigned dataDisks);

    unsigned dataDisks() const { return n_; }

    /** Compute P (XOR parity) for a stripe. */
    Block computeP(const std::vector<Block> &data) const;

    /** Compute Q (weighted GF parity) for a stripe. */
    Block computeQ(const std::vector<Block> &data) const;

    /** Compute both parities in one pass (as a RAID engine would). */
    std::pair<Block, Block> computePQ(const std::vector<Block> &data) const;

    /**
     * Recover a single missing data block using P.
     * @param data    Stripe with the missing block empty.
     * @param p       The P parity.
     * @param missing Index of the missing block.
     */
    Block recoverDataWithP(const std::vector<Block> &data, const Block &p,
                           unsigned missing) const;

    /**
     * Recover a single missing data block using Q (when P is also lost).
     */
    Block recoverDataWithQ(const std::vector<Block> &data, const Block &q,
                           unsigned missing) const;

    /**
     * Recover two missing data blocks using both P and Q (the hard RAID-6
     * case).
     *
     * @param data Stripe with blocks @p missA and @p missB empty.
     * @return The two recovered blocks, in (missA, missB) order.
     */
    std::pair<Block, Block> recoverTwoData(const std::vector<Block> &data,
                                           const Block &p, const Block &q,
                                           unsigned missA,
                                           unsigned missB) const;

    /**
     * Verify a stripe against its parities.
     * @return true if both P and Q match.
     */
    bool verify(const std::vector<Block> &data, const Block &p,
                const Block &q) const;

  private:
    void checkStripe(const std::vector<Block> &data) const;

    unsigned n_;
};

} // namespace codes
} // namespace hyperplane

#endif // HYPERPLANE_CODES_RAID_HH
