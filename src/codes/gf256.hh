/**
 * @file
 * Arithmetic in GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1
 * (0x11d), the field used by Reed-Solomon storage codes and RAID-6.
 *
 * Multiplication and inversion go through log/exp tables built once at
 * static-initialization time; alpha = 2 is a primitive element of this
 * field.
 */

#ifndef HYPERPLANE_CODES_GF256_HH
#define HYPERPLANE_CODES_GF256_HH

#include <cstddef>
#include <cstdint>

namespace hyperplane {
namespace codes {

/** The primitive polynomial (without the x^8 term): 0x1d. */
constexpr std::uint16_t gfPoly = 0x11d;

/** Add/subtract in GF(2^8) (self-inverse). */
constexpr std::uint8_t
gfAdd(std::uint8_t a, std::uint8_t b)
{
    return a ^ b;
}

/** Multiply in GF(2^8). */
std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

/** Multiplicative inverse. @pre a != 0 */
std::uint8_t gfInv(std::uint8_t a);

/** Divide a by b. @pre b != 0 */
std::uint8_t gfDiv(std::uint8_t a, std::uint8_t b);

/** a raised to the n-th power (n may be 0). */
std::uint8_t gfPow(std::uint8_t a, unsigned n);

/** alpha^n for the primitive element alpha = 2. */
std::uint8_t gfExp(unsigned n);

/** Discrete log base alpha. @pre a != 0 */
unsigned gfLog(std::uint8_t a);

/**
 * dst[i] ^= c * src[i] for i in [0, len): the inner loop of every erasure
 * code.  Table-driven, one lookup per byte.
 */
void gfMulAccum(std::uint8_t *dst, const std::uint8_t *src,
                std::size_t len, std::uint8_t c);

/** dst[i] = c * src[i]. */
void gfMulInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t len,
               std::uint8_t c);

} // namespace codes
} // namespace hyperplane

#endif // HYPERPLANE_CODES_GF256_HH
