#include "codes/gf256.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace codes {

namespace {

/** exp/log tables for alpha = 2 under polynomial 0x11d. */
struct Tables
{
    std::uint8_t exp[512]; // doubled to avoid a mod in gfMul
    unsigned log[256];

    Tables()
    {
        std::uint16_t x = 1;
        for (unsigned i = 0; i < 255; ++i) {
            exp[i] = static_cast<std::uint8_t>(x);
            log[x] = i;
            x <<= 1;
            if (x & 0x100)
                x ^= gfPoly;
        }
        for (unsigned i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = 0; // unused; gfLog asserts on zero
    }
};

const Tables tbl;

} // namespace

std::uint8_t
gfMul(std::uint8_t a, std::uint8_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return tbl.exp[tbl.log[a] + tbl.log[b]];
}

std::uint8_t
gfInv(std::uint8_t a)
{
    hp_assert(a != 0, "inverse of zero in GF(2^8)");
    return tbl.exp[255 - tbl.log[a]];
}

std::uint8_t
gfDiv(std::uint8_t a, std::uint8_t b)
{
    hp_assert(b != 0, "division by zero in GF(2^8)");
    if (a == 0)
        return 0;
    return tbl.exp[tbl.log[a] + 255 - tbl.log[b]];
}

std::uint8_t
gfPow(std::uint8_t a, unsigned n)
{
    if (n == 0)
        return 1;
    if (a == 0)
        return 0;
    return tbl.exp[(tbl.log[a] * static_cast<unsigned long>(n)) % 255];
}

std::uint8_t
gfExp(unsigned n)
{
    return tbl.exp[n % 255];
}

unsigned
gfLog(std::uint8_t a)
{
    hp_assert(a != 0, "log of zero in GF(2^8)");
    return tbl.log[a];
}

void
gfMulAccum(std::uint8_t *dst, const std::uint8_t *src, std::size_t len,
           std::uint8_t c)
{
    if (c == 0)
        return;
    if (c == 1) {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] ^= src[i];
        return;
    }
    const unsigned logc = tbl.log[c];
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t s = src[i];
        if (s != 0)
            dst[i] ^= tbl.exp[tbl.log[s] + logc];
    }
}

void
gfMulInto(std::uint8_t *dst, const std::uint8_t *src, std::size_t len,
          std::uint8_t c)
{
    if (c == 0) {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] = 0;
        return;
    }
    if (c == 1) {
        for (std::size_t i = 0; i < len; ++i)
            dst[i] = src[i];
        return;
    }
    const unsigned logc = tbl.log[c];
    for (std::size_t i = 0; i < len; ++i) {
        const std::uint8_t s = src[i];
        dst[i] = s ? tbl.exp[tbl.log[s] + logc] : 0;
    }
}

} // namespace codes
} // namespace hyperplane
