#include "server/udp_socket.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/wire.hh"

namespace hyperplane {
namespace server {

namespace {

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace

UdpSocket::~UdpSocket()
{
    close();
}

UdpSocket::UdpSocket(UdpSocket &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

UdpSocket &
UdpSocket::operator=(UdpSocket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
UdpSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::optional<UdpSocket>
UdpSocket::open()
{
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0)
        return std::nullopt;
    if (!setNonBlocking(fd)) {
        ::close(fd);
        return std::nullopt;
    }
    return UdpSocket(fd);
}

std::optional<UdpSocket>
UdpSocket::bind(const std::string &ip, std::uint16_t port, bool reusePort)
{
    const auto addr = parseIpv4(ip);
    if (!addr)
        return std::nullopt;
    auto sock = open();
    if (!sock)
        return std::nullopt;
    if (reusePort) {
        const int one = 1;
        if (::setsockopt(sock->fd(), SOL_SOCKET, SO_REUSEPORT, &one,
                         sizeof(one)) != 0) {
            return std::nullopt;
        }
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(*addr);
    sa.sin_port = htons(port);
    if (::bind(sock->fd(), reinterpret_cast<sockaddr *>(&sa),
               sizeof(sa)) != 0) {
        return std::nullopt;
    }
    return sock;
}

std::uint16_t
UdpSocket::localPort() const
{
    if (fd_ < 0)
        return 0;
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&sa), &len) != 0)
        return 0;
    return ntohs(sa.sin_port);
}

std::uint32_t
UdpSocket::localIp() const
{
    if (fd_ < 0)
        return 0;
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&sa), &len) != 0)
        return 0;
    return ntohl(sa.sin_addr.s_addr);
}

std::size_t
UdpSocket::recvBatch(std::vector<Datagram> &out, unsigned maxBatch)
{
    if (fd_ < 0 || maxBatch == 0)
        return 0;
    constexpr unsigned maxVec = 64;
    if (maxBatch > maxVec)
        maxBatch = maxVec;

    std::uint8_t bufs[maxVec][wire::maxDatagramBytes];
    sockaddr_in peers[maxVec];
    iovec iovs[maxVec];
    mmsghdr msgs[maxVec];
    std::memset(msgs, 0, sizeof(mmsghdr) * maxBatch);
    for (unsigned i = 0; i < maxBatch; ++i) {
        iovs[i].iov_base = bufs[i];
        iovs[i].iov_len = wire::maxDatagramBytes;
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
        msgs[i].msg_hdr.msg_name = &peers[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(peers[i]);
    }
    const int n = ::recvmmsg(fd_, msgs, maxBatch, 0, nullptr);
    if (n <= 0)
        return 0;
    out.reserve(out.size() + static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        Datagram d;
        d.peer = peers[i];
        d.bytes.assign(bufs[i], bufs[i] + msgs[i].msg_len);
        out.push_back(std::move(d));
    }
    return static_cast<std::size_t>(n);
}

std::size_t
UdpSocket::recvBatch(RxSlot *slots, unsigned count)
{
    if (fd_ < 0 || count == 0)
        return 0;
    constexpr unsigned maxVec = 64;
    if (count > maxVec)
        count = maxVec;

    iovec iovs[maxVec];
    mmsghdr msgs[maxVec];
    std::memset(msgs, 0, sizeof(mmsghdr) * count);
    for (unsigned i = 0; i < count; ++i) {
        iovs[i].iov_base = slots[i].data;
        iovs[i].iov_len = slots[i].cap;
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
        msgs[i].msg_hdr.msg_name = &slots[i].peer;
        msgs[i].msg_hdr.msg_namelen = sizeof(slots[i].peer);
    }
    const int n = ::recvmmsg(fd_, msgs, count, 0, nullptr);
    if (n <= 0)
        return 0;
    for (int i = 0; i < n; ++i)
        slots[i].len = msgs[i].msg_len;
    return static_cast<std::size_t>(n);
}

std::size_t
UdpSocket::sendBatch(const TxView *views, std::size_t count)
{
    if (fd_ < 0 || count == 0)
        return 0;
    constexpr std::size_t maxVec = 64;
    std::size_t sent = 0;
    while (sent < count) {
        const std::size_t chunk = std::min(count - sent, maxVec);
        iovec iovs[maxVec];
        mmsghdr hdrs[maxVec];
        std::memset(hdrs, 0, sizeof(mmsghdr) * chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
            const TxView &v = views[sent + i];
            iovs[i].iov_base = const_cast<std::uint8_t *>(v.data);
            iovs[i].iov_len = v.len;
            hdrs[i].msg_hdr.msg_iov = &iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
            hdrs[i].msg_hdr.msg_name =
                const_cast<sockaddr_in *>(v.peer);
            hdrs[i].msg_hdr.msg_namelen = sizeof(*v.peer);
        }
        const int n =
            ::sendmmsg(fd_, hdrs, static_cast<unsigned>(chunk), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                continue; // loopback buffers drain fast; retry
            break;
        }
        sent += static_cast<std::size_t>(n);
    }
    return sent;
}

std::size_t
UdpSocket::sendBatch(const Datagram *msgs, std::size_t count)
{
    if (fd_ < 0 || count == 0)
        return 0;
    constexpr std::size_t maxVec = 64;
    std::size_t sent = 0;
    while (sent < count) {
        const std::size_t chunk = std::min(count - sent, maxVec);
        iovec iovs[maxVec];
        mmsghdr hdrs[maxVec];
        std::memset(hdrs, 0, sizeof(mmsghdr) * chunk);
        for (std::size_t i = 0; i < chunk; ++i) {
            const Datagram &d = msgs[sent + i];
            iovs[i].iov_base =
                const_cast<std::uint8_t *>(d.bytes.data());
            iovs[i].iov_len = d.bytes.size();
            hdrs[i].msg_hdr.msg_iov = &iovs[i];
            hdrs[i].msg_hdr.msg_iovlen = 1;
            hdrs[i].msg_hdr.msg_name =
                const_cast<sockaddr_in *>(&d.peer);
            hdrs[i].msg_hdr.msg_namelen = sizeof(d.peer);
        }
        const int n =
            ::sendmmsg(fd_, hdrs, static_cast<unsigned>(chunk), 0);
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
                continue; // loopback buffers drain fast; retry
            break;
        }
        sent += static_cast<std::size_t>(n);
    }
    return sent;
}

bool
UdpSocket::sendTo(const sockaddr_in &peer, const std::uint8_t *data,
                  std::size_t len)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        const ssize_t n = ::sendto(
            fd_, data, len, 0,
            reinterpret_cast<const sockaddr *>(&peer), sizeof(peer));
        if (n == static_cast<ssize_t>(len))
            return true;
        if (n < 0 &&
            (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR))
            continue;
        return false;
    }
}

EpollWaiter::EpollWaiter() : epfd_(::epoll_create1(0)) {}

EpollWaiter::~EpollWaiter()
{
    if (epfd_ >= 0)
        ::close(epfd_);
}

bool
EpollWaiter::add(int fd)
{
    if (epfd_ < 0)
        return false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    return ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0;
}

std::vector<int>
EpollWaiter::wait(int timeoutMs)
{
    std::vector<int> ready;
    if (epfd_ < 0)
        return ready;
    epoll_event evs[16];
    const int n = ::epoll_wait(epfd_, evs, 16, timeoutMs);
    for (int i = 0; i < n; ++i)
        ready.push_back(evs[i].data.fd);
    return ready;
}

std::optional<std::uint32_t>
parseIpv4(const std::string &ip)
{
    in_addr a{};
    if (::inet_pton(AF_INET, ip.c_str(), &a) != 1)
        return std::nullopt;
    return ntohl(a.s_addr);
}

} // namespace server
} // namespace hyperplane
