#include "server/buffer_pool.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace server {

namespace {

/** Round @p n up to a cache-line multiple so frames never share one. */
std::size_t
roundToCacheLine(std::size_t n)
{
    constexpr std::size_t line = 64;
    return (n + line - 1) / line * line;
}

} // namespace

FramePool::FramePool(std::uint32_t numFrames, std::uint32_t frameBytes)
    : numFrames_(numFrames), frameBytes_(frameBytes),
      stride_(roundToCacheLine(frameBytes)),
      slab_(new std::uint8_t[static_cast<std::size_t>(numFrames) *
                             roundToCacheLine(frameBytes)]),
      refs_(std::make_unique<std::atomic<std::uint32_t>[]>(
          numFrames ? numFrames : 1)),
      freeList_(numFrames)
{
    hp_assert(numFrames > 0, "FramePool needs at least one frame");
    hp_assert(frameBytes >= responseHeadroom,
              "frames must hold at least the response headroom");
    for (std::uint32_t i = 0; i < numFrames; ++i)
        refs_[i].store(0, std::memory_order_relaxed);
}

FrameHandle
FramePool::tryAcquire()
{
    std::uint32_t idx;
    if (!freeList_.tryPop(idx)) {
        exhausted_.fetch_add(1, std::memory_order_relaxed);
        return {};
    }
    refs_[idx].store(1, std::memory_order_relaxed);
    return FrameHandle(this, idx);
}

void
FramePool::releaseIndex(std::uint32_t idx)
{
    freeList_.push(idx);
}

} // namespace server
} // namespace hyperplane
