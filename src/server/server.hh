/**
 * @file
 * An event-driven UDP data-plane server on top of the QWAIT runtime.
 *
 * The pipeline is the paper's Figure 2 made real:
 *
 *   RX threads ──> per-flow request queues ──> EmuHyperPlane doorbells
 *   (epoll + recvmmsg,      (MpmcQueue)           (ring per batch)
 *    SO_REUSEPORT shards)                              │
 *                                                      v
 *   TX threads <── per-TX response queues <── DataPlanePool workers
 *   (sendmmsg)                                (QWAIT -> take -> handler)
 *
 * RX threads parse untrusted datagrams with the src/net codecs (parsers
 * fail closed), steer each request to a task queue by hashing its flow
 * key, enqueue it, and ring the queue's doorbell — one ring per
 * (batch, queue), so a 32-packet burst costs one wakeup per touched
 * queue.  Workers run the Algorithm 1 service loop and execute the real
 * workload handlers (echo, GRE-in-IPv6 encapsulation via src/net,
 * session-affinity steering via src/workloads).  TX threads batch the
 * replies back out.
 *
 * The fault layer rides along: an injectable RX->doorbell ring drop
 * models the lost-notification fault the simulator studies, and a
 * watchdog thread audits queue depth against the advertised doorbell
 * value, replays missing rings, and gracefully demotes chronically
 * lossy queues to a software-polled mode (rescued every sweep) with
 * promotion back after clean sweeps — the emulation-side mirror of the
 * simulator's watchdog + FallbackSet machinery.
 *
 * With a Tracer attached, every stage stamps events the existing
 * Perfetto exporter renders: DoorbellWrite (RX), QwaitReturn (grant),
 * Service spans (worker), Completion (TX), plus the watchdog events.
 * Ticks are nsToTicks(ns since start), so exported microseconds are
 * wall-clock microseconds.
 */

#ifndef HYPERPLANE_SERVER_SERVER_HH
#define HYPERPLANE_SERVER_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/ready_set.hh"
#include "emu/data_plane_pool.hh"
#include "emu/emu_hyperplane.hh"
#include "fault/fallback_set.hh"
#include "queueing/mpmc_queue.hh"
#include "server/buffer_pool.hh"
#include "server/tenant.hh"
#include "server/udp_socket.hh"
#include "server/wire.hh"
#include "sim/rng.hh"
#include "stats/registry.hh"
#include "stats/sampler.hh"
#include "telemetry/event_log.hh"
#include "telemetry/flight_recorder.hh"
#include "telemetry/metrics_server.hh"
#include "telemetry/shard_stats.hh"
#include "telemetry/telemetry_config.hh"
#include "trace/trace.hh"
#include "app/app.hh"
#include "workloads/packet_steering.hh"

namespace hyperplane {
namespace server {

/** Fault injection + recovery knobs for the server's notification path. */
struct ServerFaultConfig
{
    /**
     * Probability that an RX batch's doorbell ring is dropped after the
     * requests are queued — the real-thread analogue of a lost doorbell
     * snoop.  0 disables injection.
     */
    double dropRingProbability = 0.0;
    /** Seed for the per-RX-thread injection streams. */
    std::uint64_t seed = 1;

    /** Run the depth-vs-doorbell audit thread. */
    bool watchdogEnabled = true;
    /** Sweep period. */
    double watchdogPeriodUs = 1000.0;
    /** Watchdog recoveries of a queue before demotion to polled mode. */
    unsigned demoteThreshold = 3;
    /** Clean sweeps of a demoted queue before promotion back. */
    unsigned promoteCleanSweeps = 16;

    /**
     * Doorbell-storm containment: a queue ringing more than this many
     * times in one watchdog sweep is demoted — muted on the device (its
     * rings stop waking workers) and served by the watchdog's polled
     * sweep until it stays under the cap for promoteCleanSweeps sweeps.
     * 0 disables containment.
     */
    std::uint64_t doorbellRateCap = 0;

    /**
     * Adversarial doorbell-storm injection: whenever an RX batch
     * contains a packet of @ref stormTenant, ring that tenant's queues
     * stormRingsPerBatch extra times with zero items — the thundering
     * herd a buggy or hostile guest driver produces.  stormTenant
     * unsigned(-1) or stormRingsPerBatch 0 disables injection.
     */
    unsigned stormTenant = static_cast<unsigned>(-1);
    unsigned stormRingsPerBatch = 0;
};

/** UDP server configuration. */
struct ServerConfig
{
    std::string bindIp = "127.0.0.1";
    /** Bind port; 0 picks an ephemeral port (see UdpServer::port()). */
    std::uint16_t port = 0;

    /** RX threads; each owns an SO_REUSEPORT shard of the port. */
    unsigned rxThreads = 1;
    /** TX threads; each owns a reply socket + response queue. */
    unsigned txThreads = 1;
    /** QWAIT worker threads in the DataPlanePool. */
    unsigned workers = 2;
    /** Task queues requests are steered across. */
    unsigned numQueues = 16;

    /** Datagrams per recvmmsg/sendmmsg call. */
    unsigned rxBatch = 32;
    /**
     * Zero-copy frame pool size per RX shard.  Frames hold a datagram
     * from recvmmsg to sendmmsg (RX -> queue -> worker -> TX), so this
     * bounds one shard's requests in flight; a dry pool sheds new
     * arrivals with typed rejects from the reserve below.
     */
    std::uint32_t framesPerRxShard = 4096;
    /**
     * Shared reserve of small frames for typed rejects when an RX
     * shard's pool is dry — exhaustion stays a graceful, answered
     * condition instead of a silent drop.
     */
    std::uint32_t rejectReserveFrames = 512;
    /** Items a worker claims per QWAIT grant. */
    std::uint64_t maxBatch = 16;
    /** Per-queue request capacity (arrivals beyond it are dropped). */
    std::size_t queueCapacity = 8192;

    /** Service policy of the notification device. */
    core::ServicePolicy policy = core::ServicePolicy::RoundRobin;

    /** Steer by 5-tuple + inner flowId (RSS-on-inner, tunnel-friendly);
     *  false steers by outer 5-tuple alone. */
    bool steerByInnerFlow = true;

    /**
     * Tenant table: classification, per-tenant token-bucket admission,
     * disjoint queue groups, and per-queue WRR weights.  Empty runs one
     * implicit unlimited tenant over every queue (the pre-multi-tenant
     * behaviour).  Malformed lists make start() throw
     * std::invalid_argument with the same messages as
     * dp::SdpConfig::validate().
     */
    std::vector<dp::TenantSpec> tenants;

    /**
     * Overload-shedding watermarks over the total queued-request
     * backlog.  At shedLowWatermark the lowest-priority tenant starts
     * being refused (wire::statusShed); thresholds interpolate up to
     * shedHighWatermark where every tenant sheds.  High = 0 disables
     * watermark shedding.
     */
    std::size_t shedLowWatermark = 0;
    std::size_t shedHighWatermark = 0;

    ServerFaultConfig fault;

    /**
     * Stateful application knobs (opcodes 3..5).  numShards is
     * overridden with numQueues at start() so an app shard is exactly
     * one task queue and every flow's state is owned by the queue its
     * crc32c hash steers it to.
     */
    app::AppConfig app;

    /** Live telemetry plane (on by default; see TelemetryConfig). */
    telemetry::TelemetryConfig telemetry;

    /** Optional tracer; the server installs a wall-clock tick source. */
    trace::Tracer *tracer = nullptr;
};

/**
 * Cold server counters (all monotonic).  Unlike the simulator's
 * stats::Counter these are atomics — RX shards, workers, TX threads,
 * and the watchdog increment them concurrently.  The *hot* per-packet
 * counters (rx_batches, rx_packets, parse_errors, served, tx_packets)
 * moved into telemetry::CounterShards — one single-writer cache line
 * per stage thread instead of a contended fetch_add — and are read
 * through UdpServer::counterSnapshot().
 */
struct ServerCounters
{
    std::atomic<std::uint64_t> queueDrops{0};
    /** Packets unanswerable: no frame left even for a typed reject. */
    std::atomic<std::uint64_t> poolDrops{0};
    std::atomic<std::uint64_t> shedRateLimited{0};
    std::atomic<std::uint64_t> shedWatermark{0};
    std::atomic<std::uint64_t> shedQueueFull{0};
    std::atomic<std::uint64_t> stormDemotions{0};
    std::atomic<std::uint64_t> ringsDropped{0};
    std::atomic<std::uint64_t> badStatus{0};
    std::atomic<std::uint64_t> txDrops{0};
    std::atomic<std::uint64_t> txSendErrors{0};
    std::atomic<std::uint64_t> watchdogSweeps{0};
    std::atomic<std::uint64_t> watchdogRecoveries{0};
    std::atomic<std::uint64_t> fallbackServes{0};
    std::atomic<std::uint64_t> demotions{0};
    std::atomic<std::uint64_t> promotions{0};
};

/** Point-in-time copy of every server counter, hot and cold. */
struct ServerCounterSnapshot
{
    std::uint64_t rxBatches = 0;
    std::uint64_t rxPackets = 0;
    std::uint64_t parseErrors = 0;
    std::uint64_t served = 0;
    std::uint64_t txPackets = 0;
    std::uint64_t queueDrops = 0;
    std::uint64_t poolDrops = 0;
    /** Failed frame acquires across the RX pools + reject reserve. */
    std::uint64_t poolExhausted = 0;
    /** Payload copy events on pool frames (echo path keeps this 0). */
    std::uint64_t payloadCopies = 0;
    std::uint64_t shedRateLimited = 0;
    std::uint64_t shedWatermark = 0;
    std::uint64_t shedQueueFull = 0;
    std::uint64_t stormDemotions = 0;
    std::uint64_t ringsDropped = 0;
    std::uint64_t badStatus = 0;
    std::uint64_t txDrops = 0;
    std::uint64_t txSendErrors = 0;
    std::uint64_t watchdogSweeps = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t fallbackServes = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
};

/** The UDP data-plane server. */
class UdpServer
{
  public:
    explicit UdpServer(const ServerConfig &cfg);
    ~UdpServer();

    UdpServer(const UdpServer &) = delete;
    UdpServer &operator=(const UdpServer &) = delete;

    /**
     * Bind the sockets and launch RX / worker / TX / watchdog threads.
     * @return false if sockets are unavailable (sandboxes) or the bind
     *         fails; the server is then inert and safe to destroy.
     */
    bool start();

    /**
     * SIGINT-safe teardown: stop accepting, drain queued requests and
     * responses within @p drainDeadline, then stop and join every
     * thread.  Idempotent.  No handler runs after this returns.
     *
     * @return true if everything drained before the deadline.
     */
    bool stop(std::chrono::nanoseconds drainDeadline =
                  std::chrono::seconds(2));

    bool running() const { return running_.load(); }

    /** Bound port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    const ServerConfig &config() const { return cfg_; }
    const ServerCounters &counters() const { return counters_; }

    /** Consistent-enough copy of every counter, hot and cold. */
    ServerCounterSnapshot counterSnapshot() const;

    /** The notification device (doorbell / wake counters). */
    const emu::EmuHyperPlane &device() const { return *hpDev_; }

    /** Demotion bookkeeping of the graceful-degradation path. */
    const fault::FallbackSet &fallback() const { return fallback_; }

    /** Tenant map + admission state (valid after start()). */
    const TenantTable &tenantTable() const { return *tenants_; }

    /**
     * Register every server counter plus the device counters under
     * @p prefix ("server").
     */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix = "server");

    /** Total requests currently queued toward the workers. */
    std::uint64_t backlog() const;

    /** Nanoseconds since start() (the trace clock). */
    std::uint64_t nowNs() const;

    // ----- live telemetry plane ---------------------------------------

    /**
     * Aggregated per-stage latency histogram (nanoseconds), merged
     * across all shards and tenants; the two-argument form restricts
     * to one tenant.  Empty before start() or with telemetry disabled.
     */
    stats::LogHistogram stageLatency(telemetry::ServerStage st) const;
    stats::LogHistogram stageLatency(telemetry::ServerStage st,
                                     unsigned tenant) const;

    /** Structured operational event log (demotions, sheds, dumps). */
    const telemetry::EventLog &eventLog() const { return eventLog_; }

    /** Sampled trace rings (null before start()). */
    const telemetry::FlightRecorder *flightRecorder() const
    {
        return flight_.get();
    }

    /**
     * The flight recorder + event log as a Perfetto-loadable Chrome
     * trace JSON document (what a SIGUSR1 dump writes).
     */
    std::string flightTraceJson() const;

    /** Write flightTraceJson() to @p path. @return false on IO error. */
    bool dumpFlightTrace(const std::string &path) const;

    /**
     * Ask the watchdog to dump the flight recorder on its next sweep
     * (async-signal-safe: a single relaxed atomic store, suitable for
     * a SIGUSR1 handler).
     */
    void requestFlightDump()
    {
        dumpRequested_.store(true, std::memory_order_relaxed);
    }

    /** Automatic + requested flight dumps performed so far. */
    std::uint64_t flightDumps() const
    {
        return flightDumps_.load(std::memory_order_relaxed);
    }

    /**
     * Bound metrics-endpoint port, or -1 when the endpoint is not
     * running (telemetry.metricsPort < 0, or the bind failed).
     */
    int metricsPort() const;

    /** Current Prometheus exposition page (endpoint's /metrics). */
    std::string prometheusPage() const;

    /** Endpoint dispatch (also used by tests): "" means 404. */
    std::string metricsPage(const std::string &path,
                            std::string &contentType) const;

  private:
    /** Datagram offset inside an RX frame (see FramePool). */
    static constexpr std::uint32_t rxFrameOffset =
        FramePool::responseHeadroom;

    /**
     * A parsed request travelling the MPMC queues as a refcounted
     * frame handle — the received datagram stays where recvmmsg put it
     * (frame + rxFrameOffset) and is never copied.
     */
    struct Request
    {
        sockaddr_in peer{};
        wire::RequestHeader hdr;
        FrameHandle frame;
        std::uint64_t rxNs = 0;
        std::uint64_t admitNs = 0; ///< admission verdict time
        unsigned tenant = 0;

        /** The request payload, in place inside the frame. */
        const std::uint8_t *payload() const
        {
            return frame.data() + rxFrameOffset +
                   wire::RequestHeader::wireSize;
        }
    };

    /** A response built in place at frame + 0, sent straight from it. */
    struct Response
    {
        sockaddr_in peer{};
        FrameHandle frame;
        std::uint32_t len = 0;
        std::uint64_t seq = 0;
        std::uint64_t rxNs = 0;   ///< request receive time
        std::uint64_t doneNs = 0; ///< worker finish (0: typed reject)
        unsigned tenant = 0;
    };

    void rxLoop(unsigned index);
    void txLoop(unsigned index);
    void watchdogLoop();
    void handleBatch(QueueId qid, std::uint64_t n);
    Response makeResponse(unsigned worker, QueueId qid, Request &req);
    /**
     * Fail-fast reject from RX steering: build a payload-free typed
     * reject response and enqueue it straight onto a TX queue, skipping
     * the workers entirely.  @p txCounts accumulates pending TX rings
     * (flushed once per RX batch).  @p frame is the request's own frame
     * when one exists (the reject reuses it); a null handle draws from
     * the reject reserve, and if that too is dry the packet is counted
     * in poolDrops and dropped.
     */
    void enqueueReject(const sockaddr_in &peer,
                       const wire::RequestHeader &hdr,
                       wire::Status status, QueueId qid, unsigned tenant,
                       std::uint64_t rxNs,
                       std::vector<std::uint32_t> &txCounts,
                       FrameHandle &&frame);

    Tick nowTicks() const;

    // Telemetry shard ids: one single-writer shard per stage thread
    // plus one for the watchdog.
    unsigned rxShard(unsigned i) const { return i; }
    unsigned workerShard(unsigned w) const { return cfg_.rxThreads + w; }
    unsigned txShard(unsigned t) const
    {
        return cfg_.rxThreads + cfg_.workers + t;
    }
    unsigned watchdogShard() const
    {
        return cfg_.rxThreads + cfg_.workers + cfg_.txThreads;
    }
    unsigned numTelemetryShards() const { return watchdogShard() + 1; }

    /**
     * Flight-dump trigger policy (watchdog thread only): honours the
     * rate limit, writes "<prefix>_<n>.json", posts a FlightDump
     * event.
     */
    void maybeFlightDump(const char *reason, std::uint64_t ns);

    ServerConfig cfg_;
    ServerCounters counters_;

    std::unique_ptr<emu::EmuHyperPlane> hpDev_;
    std::vector<std::unique_ptr<emu::EmuHyperPlane>> txDevs_;
    // Frame pools are declared before the queues on purpose: members
    // destroy in reverse order, so queues still holding frame handles
    // at destruction release them into live pools.
    std::vector<std::unique_ptr<FramePool>> rxPools_;
    std::unique_ptr<FramePool> rejectPool_;
    std::vector<std::unique_ptr<queueing::MpmcQueue<Request>>> reqQueues_;
    std::vector<std::unique_ptr<queueing::MpmcQueue<Response>>>
        txQueues_;
    std::unique_ptr<emu::DataPlanePool> pool_;
    std::vector<std::unique_ptr<workloads::PacketSteering>> steerers_;
    /** Stateful app handlers, indexed by app::AppKind; shard == qid. */
    std::vector<std::unique_ptr<app::StatefulHandler>> apps_;

    std::vector<UdpSocket> rxSockets_;
    std::vector<UdpSocket> txSockets_;
    std::vector<std::thread> rxThreads_;
    std::vector<std::thread> txThreads_;
    std::thread watchdogThread_;

    std::unique_ptr<TenantTable> tenants_;

    fault::FallbackSet fallback_;
    std::vector<unsigned> recoveryCount_;
    std::vector<unsigned> cleanSweeps_;
    std::vector<std::uint64_t> deficitPrev_;
    /** Per-queue ring-call count at the previous watchdog sweep (the
     *  storm audit diffs the device's monotonic counter against it). */
    std::vector<std::uint64_t> ringsPrev_;
    /**
     * Seqlock-style guard around the RX push..ring window (the audit's
     * inherent race).  Per queue, rxInFlight_ counts RX threads that
     * have pushed but not yet rung, and rxEpoch_ advances when such a
     * window closes.  The watchdog skips a queue whose window is open
     * (inFlight != 0) or closed mid-read (epoch moved), so an in-flight
     * batch is never mistaken for a lost ring.
     */
    std::unique_ptr<std::atomic<std::uint32_t>[]> rxInFlight_;
    std::unique_ptr<std::atomic<std::uint32_t>[]> rxEpoch_;

    // ----- telemetry state --------------------------------------------
    std::unique_ptr<telemetry::CounterShards> hotCounters_;
    std::unique_ptr<telemetry::StageLatencyShards> stageLat_;
    /// Decimation mask for per-request stage sampling: a request
    /// contributes latency samples iff (seq & mask) == 0 (see
    /// TelemetryConfig::stageSampleEvery).
    std::uint64_t stageSampleMask_ = 0;
    std::unique_ptr<telemetry::FlightRecorder> flight_;
    telemetry::EventLog eventLog_;
    std::unique_ptr<telemetry::MetricsServer> metrics_;
    /** Registry backing the endpoint (populated in start()). */
    std::unique_ptr<stats::Registry> selfReg_;
    std::atomic<bool> dumpRequested_{false};
    std::atomic<std::uint64_t> flightDumps_{0};
    /** Watchdog-thread-only dump/spike bookkeeping. */
    std::uint64_t lastDumpNs_ = 0;
    std::uint64_t shedPrevSweep_ = 0;
    std::vector<std::uint64_t> tenantShedPrev_;
    /** Edge detector for per-tenant ShedThreshold events. */
    std::vector<std::uint8_t> tenantShedActive_;

    std::atomic<bool> running_{false};
    std::atomic<bool> rxRunning_{false};
    std::atomic<bool> txRunning_{false};
    std::atomic<bool> watchdogRunning_{false};

    std::uint16_t port_ = 0;
    std::uint32_t boundIp_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_SERVER_HH
