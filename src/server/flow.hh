/**
 * @file
 * Flow identification and RSS-style queue steering for the UDP server.
 *
 * Each received datagram is mapped to one of the server's task queues by
 * hashing its flow key — the UDP 5-tuple, optionally extended with the
 * request's inner flowId.  The extension matters for tunneled traffic
 * (the GRE encapsulation workload): every tunnel datagram between two
 * hosts shares one outer 5-tuple, so steering must reach the inner flow
 * label to spread load, exactly like NIC RSS hashing inner headers.
 *
 * The hash is CRC32C (already the packet-steering workload's flow hash),
 * folded over the packed key.
 */

#ifndef HYPERPLANE_SERVER_FLOW_HH
#define HYPERPLANE_SERVER_FLOW_HH

#include <cstdint>

#include "sim/types.hh"

namespace hyperplane {
namespace server {

/** A UDP flow key in host byte order. */
struct FlowKey
{
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    /** Inner flow label (request flowId); 0 when steering ignores it. */
    std::uint32_t innerFlow = 0;

    bool
    operator==(const FlowKey &o) const
    {
        return srcIp == o.srcIp && dstIp == o.dstIp &&
               srcPort == o.srcPort && dstPort == o.dstPort &&
               innerFlow == o.innerFlow;
    }
};

/** CRC32C hash of the packed flow key. */
std::uint32_t flowHash(const FlowKey &key);

/**
 * Steer a flow to a queue: flowHash modulo @p numQueues.
 * @pre numQueues > 0
 */
QueueId steerToQueue(const FlowKey &key, unsigned numQueues);

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_FLOW_HH
