#include "server/flow.hh"

#include "net/checksum.hh"
#include "net/headers.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace server {

std::uint32_t
flowHash(const FlowKey &key)
{
    std::uint8_t packed[16];
    net::putBe32(packed, key.srcIp);
    net::putBe32(packed + 4, key.dstIp);
    net::putBe16(packed + 8, key.srcPort);
    net::putBe16(packed + 10, key.dstPort);
    net::putBe32(packed + 12, key.innerFlow);
    return net::crc32c(packed, sizeof(packed));
}

QueueId
steerToQueue(const FlowKey &key, unsigned numQueues)
{
    hp_assert(numQueues > 0, "steering needs at least one queue");
    return flowHash(key) % numQueues;
}

} // namespace server
} // namespace hyperplane
