#include "server/wire.hh"

#include <cstring>

#include "net/checksum.hh"
#include "net/headers.hh"
#include "net/simd/dispatch.hh"

namespace hyperplane {
namespace server {
namespace wire {

using net::getBe16;
using net::getBe32;
using net::putBe16;
using net::putBe32;

namespace {

/** Offset of the 16-bit checksum field in both headers. */
constexpr std::size_t checksumOff = 6;

void
putBe64(std::uint8_t *p, std::uint64_t v)
{
    putBe32(p, static_cast<std::uint32_t>(v >> 32));
    putBe32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t
getBe64(const std::uint8_t *p)
{
    return (static_cast<std::uint64_t>(getBe32(p)) << 32) | getBe32(p + 4);
}

/**
 * Datagram checksum with the checksum field treated as zero; the
 * even-offset split around the field lives in net::checksumSpliced.
 */
std::uint16_t
datagramChecksum(const std::uint8_t *data, std::size_t len)
{
    return net::checksumSpliced(data, len, checksumOff);
}

bool
validOpcode(std::uint8_t op)
{
    return op < numOpcodes;
}

} // namespace

const char *
toString(Status s)
{
    switch (s) {
      case statusOk:
        return "ok";
      case statusBadPayload:
        return "bad-payload";
      case statusRateLimited:
        return "rate-limited";
      case statusShed:
        return "shed";
    }
    return "?";
}

const char *
toString(Opcode op)
{
    switch (op) {
      case Opcode::Echo:
        return "echo";
      case Opcode::Encap:
        return "encap";
      case Opcode::Steer:
        return "steer";
      case Opcode::HeavyHitter:
        return "heavy-hitter";
      case Opcode::Conntrack:
        return "conntrack";
      case Opcode::SpinRtt:
        return "spin-rtt";
    }
    return "?";
}

std::size_t
buildRequest(std::uint8_t *buf, std::size_t cap, const RequestHeader &hdr,
             const std::uint8_t *payload)
{
    const std::size_t total = RequestHeader::wireSize + hdr.payloadLen;
    if (total > cap || total > maxDatagramBytes)
        return 0;
    putBe32(buf, requestMagic);
    buf[4] = wireVersion;
    buf[5] = static_cast<std::uint8_t>(hdr.opcode);
    putBe16(buf + 6, 0);
    putBe64(buf + 8, hdr.seq);
    putBe64(buf + 16, hdr.clientTimeNs);
    putBe32(buf + 24, hdr.flowId);
    putBe32(buf + 28, hdr.payloadLen);
    if (hdr.payloadLen)
        std::memcpy(buf + RequestHeader::wireSize, payload,
                    hdr.payloadLen);
    putBe16(buf + checksumOff, datagramChecksum(buf, total));
    return total;
}

std::size_t
buildResponse(std::uint8_t *buf, std::size_t cap,
              const ResponseHeader &hdr, const std::uint8_t *payload)
{
    const std::size_t total = ResponseHeader::wireSize + hdr.payloadLen;
    if (total > cap || total > maxDatagramBytes)
        return 0;
    putBe32(buf, responseMagic);
    buf[4] = wireVersion;
    buf[5] = static_cast<std::uint8_t>(hdr.opcode);
    putBe16(buf + 6, 0);
    putBe64(buf + 8, hdr.seq);
    putBe64(buf + 16, hdr.clientTimeNs);
    putBe32(buf + 24, hdr.flowId);
    putBe32(buf + 28, hdr.status);
    putBe32(buf + 32, hdr.payloadLen);
    if (hdr.payloadLen)
        std::memcpy(buf + ResponseHeader::wireSize, payload,
                    hdr.payloadLen);
    putBe16(buf + checksumOff, datagramChecksum(buf, total));
    return total;
}

std::size_t
buildResponseInPlace(std::uint8_t *buf, std::size_t cap,
                     const ResponseHeader &hdr)
{
    const std::size_t total = ResponseHeader::wireSize + hdr.payloadLen;
    if (total > cap || total > maxDatagramBytes)
        return 0;
    putBe32(buf, responseMagic);
    buf[4] = wireVersion;
    buf[5] = static_cast<std::uint8_t>(hdr.opcode);
    putBe16(buf + 6, 0);
    putBe64(buf + 8, hdr.seq);
    putBe64(buf + 16, hdr.clientTimeNs);
    putBe32(buf + 24, hdr.flowId);
    putBe32(buf + 28, hdr.status);
    putBe32(buf + 32, hdr.payloadLen);
    putBe16(buf + checksumOff, datagramChecksum(buf, total));
    return total;
}

void
precheckRequests(const std::uint8_t *const *pkts,
                 const std::uint32_t *lens, std::size_t n,
                 std::uint8_t *ok)
{
    // Prefix bytes in wire order: magic, version; opcode bounded by
    // numOpcodes.  minLen = header size also guarantees the 8-byte
    // loads the SIMD variants use are in bounds.
    static const std::uint8_t prefix[8] = {
        static_cast<std::uint8_t>(requestMagic >> 24),
        static_cast<std::uint8_t>(requestMagic >> 16),
        static_cast<std::uint8_t>(requestMagic >> 8),
        static_cast<std::uint8_t>(requestMagic),
        wireVersion,
        0,
        0,
        0,
    };
    net::simd::kernels().headerCheck(pkts, lens, n, prefix, numOpcodes,
                                     RequestHeader::wireSize, ok);
}

std::optional<RequestHeader>
parseRequestPrechecked(const std::uint8_t *data, std::size_t len)
{
    if (len > maxDatagramBytes)
        return std::nullopt;
    RequestHeader hdr;
    hdr.opcode = static_cast<Opcode>(data[5]);
    hdr.seq = getBe64(data + 8);
    hdr.clientTimeNs = getBe64(data + 16);
    hdr.flowId = getBe32(data + 24);
    hdr.payloadLen = getBe32(data + 28);
    if (hdr.payloadLen != len - RequestHeader::wireSize)
        return std::nullopt;
    if (getBe16(data + checksumOff) != datagramChecksum(data, len))
        return std::nullopt;
    return hdr;
}

std::optional<RequestHeader>
parseRequest(const std::uint8_t *data, std::size_t len)
{
    if (len < RequestHeader::wireSize || len > maxDatagramBytes)
        return std::nullopt;
    if (getBe32(data) != requestMagic || data[4] != wireVersion ||
        !validOpcode(data[5])) {
        return std::nullopt;
    }
    RequestHeader hdr;
    hdr.opcode = static_cast<Opcode>(data[5]);
    hdr.seq = getBe64(data + 8);
    hdr.clientTimeNs = getBe64(data + 16);
    hdr.flowId = getBe32(data + 24);
    hdr.payloadLen = getBe32(data + 28);
    if (hdr.payloadLen != len - RequestHeader::wireSize)
        return std::nullopt;
    if (getBe16(data + checksumOff) != datagramChecksum(data, len))
        return std::nullopt;
    return hdr;
}

std::optional<ResponseHeader>
parseResponse(const std::uint8_t *data, std::size_t len)
{
    if (len < ResponseHeader::wireSize || len > maxDatagramBytes)
        return std::nullopt;
    if (getBe32(data) != responseMagic || data[4] != wireVersion ||
        !validOpcode(data[5])) {
        return std::nullopt;
    }
    ResponseHeader hdr;
    hdr.opcode = static_cast<Opcode>(data[5]);
    hdr.seq = getBe64(data + 8);
    hdr.clientTimeNs = getBe64(data + 16);
    hdr.flowId = getBe32(data + 24);
    hdr.status = getBe32(data + 28);
    hdr.payloadLen = getBe32(data + 32);
    if (hdr.payloadLen != len - ResponseHeader::wireSize)
        return std::nullopt;
    if (getBe16(data + checksumOff) != datagramChecksum(data, len))
        return std::nullopt;
    return hdr;
}

} // namespace wire
} // namespace server
} // namespace hyperplane
