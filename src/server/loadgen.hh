/**
 * @file
 * Open-loop (and optionally closed-loop) UDP load generator for the
 * data-plane server.
 *
 * The generator measures what the paper measures: *offered-load* tail
 * latency.  In open-loop mode requests depart on a Poisson schedule
 * that never waits for responses — queueing delay at an overloaded
 * server shows up as latency, not as a silently reduced request rate
 * (the closed-loop fallacy).  Closed-loop mode caps the number of
 * outstanding requests instead, for saturation-throughput measurement.
 *
 * Flows are drawn from the paper's traffic shapes (FB / PC / NC / SQ
 * over numFlows inner flow labels), the request mix is pluggable per
 * opcode, and every request carries a departure timestamp that the
 * server echoes back, so end-to-end latency needs no clock agreement
 * beyond this process.  Latencies land in an HDR-style LogHistogram;
 * the report carries throughput, completion ratio, and
 * p50/p90/p99/p99.9, with a JSON rendering for the bench harness.
 *
 * Runs in-process against a UdpServer in the same address space (the
 * loopback tests and bench) or standalone against any address
 * (examples/udp_loadgen).
 */

#ifndef HYPERPLANE_SERVER_LOADGEN_HH
#define HYPERPLANE_SERVER_LOADGEN_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/wire.hh"
#include "stats/histogram.hh"
#include "traffic/shapes.hh"

namespace hyperplane {
namespace server {

/** Load generator configuration. */
struct LoadGenConfig
{
    std::string serverIp = "127.0.0.1";
    std::uint16_t serverPort = 0;

    /** Offered load, requests per second. */
    double ratePerSec = 50000.0;
    /** Send phase length, seconds. */
    double durationSec = 1.0;

    /**
     * Open loop: Poisson departures independent of responses.  Closed
     * loop: at most @ref window requests outstanding.
     */
    bool openLoop = true;
    /** Outstanding-request cap in closed-loop mode. */
    unsigned window = 64;

    /** Inner flow labels traffic is spread across. */
    unsigned numFlows = 64;
    /** Flow-activity shape (per-flow weights, paper Section II-C). */
    traffic::Shape shape = traffic::Shape::FB;

    /**
     * Tenant targeting: the server classifies tenant = flowId %
     * numTenants, so the generator strides its flow labels as
     * flowId = tenantId + numTenants * flowIndex and every request it
     * sends lands on exactly one tenant.  The default (0 of 1) is the
     * single-tenant behaviour.
     */
    unsigned tenantId = 0;
    unsigned numTenants = 1;

    /**
     * Request mix weights by opcode index (Echo, Encap, Steer,
     * HeavyHitter, Conntrack, SpinRtt).  The mix is *flow-coherent*:
     * each flow is assigned one opcode for its whole lifetime (drawn
     * from these weights over the flow population), so stateful
     * handlers see realistic single-app packet streams — a conntrack
     * flow emits open -> data... -> close cycles with consistent
     * seqnos, and a spin-rtt flow carries a coherent spin-bit signal
     * that flips when the receiver observes the reflected bit.
     */
    std::array<double, wire::numOpcodes> opcodeWeights{1.0, 0.0, 0.0,
                                                       0.0, 0.0, 0.0};

    /** Payload bytes per request (Encap sends a valid IPv4 packet of
     *  at least Ipv4Header::wireSize bytes). */
    std::uint32_t payloadBytes = 64;

    std::uint64_t seed = 1;

    /** Leading fraction of the run excluded from latency stats. */
    double warmupFraction = 0.1;

    /** Grace period after the send phase to collect stragglers, sec. */
    double lingerSec = 0.25;

    /** Datagrams per recvmmsg on the response path. */
    unsigned rxBatch = 32;
};

/** Results of one load generator run. */
struct LoadGenReport
{
    double offeredPerSec = 0.0;
    double durationSec = 0.0;

    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    /**
     * Typed rejects (statusRateLimited / statusShed): the server
     * answered but refused the request.  Reported separately from
     * @ref lost — a shed request was *answered*, so completion gates
     * must not count it against the network.
     */
    std::uint64_t shed = 0;
    std::uint64_t answered = 0;     ///< responses of any status (== received)
    std::uint64_t lost = 0;         ///< sent requests with no response
    std::uint64_t badStatus = 0;    ///< error statuses other than sheds
    std::uint64_t parseErrors = 0;  ///< undecodable response datagrams
    std::uint64_t sendFailures = 0; ///< datagrams the kernel refused

    /** received / sent (after the linger window). */
    double completionRatio = 0.0;
    /** shed / sent. */
    double shedRatio = 0.0;
    /** answered / sent (identical to completionRatio; kept explicit so
     *  gates read "answered", not "arrived"). */
    double answeredRatio = 0.0;
    /** Responses per second over the send phase. */
    double achievedPerSec = 0.0;

    /** End-to-end latency percentiles, microseconds (post-warmup). */
    double p50Us = 0.0;
    double p90Us = 0.0;
    double p99Us = 0.0;
    double p999Us = 0.0;
    double meanUs = 0.0;
    double maxUs = 0.0;

    /** Post-warmup latency samples backing the percentiles. */
    std::uint64_t latencySamples = 0;

    /** The full latency distribution (values in nanoseconds). */
    stats::LogHistogram latencyNs{100.0, 1.02, 2048};

    /**
     * Per-tenant breakdown (tenant = response flowId % numTenants).
     * Always sized numTenants; sections for tenants this generator
     * never targeted stay empty.  Single-tenant runs get exactly one
     * section, identical to the global stats.
     */
    struct TenantSection
    {
        unsigned tenant = 0;
        std::uint64_t answered = 0;      ///< responses of any status
        std::uint64_t shed = 0;          ///< typed rejects
        std::uint64_t latencySamples = 0;
        double p50Us = 0.0;
        double p99Us = 0.0;
        double p999Us = 0.0;
        stats::LogHistogram latencyNs{100.0, 1.02, 2048};
    };
    std::vector<TenantSection> tenants;

    /** One JSON object with every scalar above, plus a "tenants"
     *  array of per-tenant percentile sections. */
    std::string json() const;
};

/**
 * The load generator.  One run() per instance; construct anew for a
 * fresh run.
 */
class UdpLoadGen
{
  public:
    explicit UdpLoadGen(const LoadGenConfig &cfg);

    /**
     * Execute the configured run (sender + receiver threads), blocking
     * until the send phase and linger window complete.
     *
     * @return The report, or std::nullopt when sockets are unavailable
     *         (sandboxes) — callers should skip, not fail.
     */
    std::optional<LoadGenReport> run();

  private:
    LoadGenConfig cfg_;
};

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_LOADGEN_HH
