/**
 * @file
 * Thin RAII wrappers over the kernel UDP fast path: batched sockets
 * (recvmmsg / sendmmsg, SO_REUSEPORT sharding) and an epoll waiter.
 *
 * These are the only files in the repository that talk to real sockets;
 * everything above them works in parsed datagrams.  All calls degrade
 * gracefully — a sandbox that forbids sockets makes open()/bind()
 * return std::nullopt and the callers (tests, benches) skip with an
 * annotation instead of failing.
 */

#ifndef HYPERPLANE_SERVER_UDP_SOCKET_HH
#define HYPERPLANE_SERVER_UDP_SOCKET_HH

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace hyperplane {
namespace server {

/** One received or outgoing datagram with its peer address. */
struct Datagram
{
    sockaddr_in peer{};
    std::vector<std::uint8_t> bytes;
};

/**
 * One receive slot for the zero-copy RX path: the caller points
 * @ref data at a frame and recvmmsg scatters straight into it (no
 * intermediate buffer, no copy).  On return, @ref len and @ref peer
 * describe the datagram received into the slot.
 */
struct RxSlot
{
    std::uint8_t *data = nullptr;
    std::uint32_t cap = 0;
    std::uint32_t len = 0;
    sockaddr_in peer{};
};

/**
 * One send view for the zero-copy TX path: sendmmsg gathers directly
 * from @ref data (a response built in place in a pool frame).
 */
struct TxView
{
    const std::uint8_t *data = nullptr;
    std::uint32_t len = 0;
    const sockaddr_in *peer = nullptr;
};

/** Nonblocking UDP socket with batched I/O. */
class UdpSocket
{
  public:
    UdpSocket() = default;
    ~UdpSocket();

    UdpSocket(UdpSocket &&other) noexcept;
    UdpSocket &operator=(UdpSocket &&other) noexcept;
    UdpSocket(const UdpSocket &) = delete;
    UdpSocket &operator=(const UdpSocket &) = delete;

    /**
     * Open an unbound nonblocking UDP socket (client / TX side).
     * @return std::nullopt if sockets are unavailable.
     */
    static std::optional<UdpSocket> open();

    /**
     * Open a nonblocking UDP socket bound to @p ip : @p port.
     *
     * @param ip        Dotted-quad bind address ("127.0.0.1").
     * @param port      Port, 0 for an ephemeral one.
     * @param reusePort Join an SO_REUSEPORT group (RX sharding).
     * @return std::nullopt if sockets are unavailable or the bind fails.
     */
    static std::optional<UdpSocket>
    bind(const std::string &ip, std::uint16_t port, bool reusePort);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Port actually bound (after an ephemeral bind). 0 if unbound. */
    std::uint16_t localPort() const;

    /** Local bound address in host byte order. 0 if unbound. */
    std::uint32_t localIp() const;

    /**
     * Receive up to @p maxBatch datagrams (recvmmsg, nonblocking).
     * Received datagrams are appended to @p out.
     *
     * @return Number received; 0 when the socket has nothing pending.
     */
    std::size_t recvBatch(std::vector<Datagram> &out,
                          unsigned maxBatch);

    /**
     * Receive up to @p count datagrams directly into the caller's
     * slots (recvmmsg scattering into slot.data, zero-copy).  Slots
     * [0, return) are filled in order.
     *
     * @return Number received; 0 when nothing is pending.
     */
    std::size_t recvBatch(RxSlot *slots, unsigned count);

    /**
     * Send @p count datagrams (sendmmsg).
     * @return Number fully handed to the kernel.
     */
    std::size_t sendBatch(const Datagram *msgs, std::size_t count);

    /**
     * Send @p count datagrams gathered straight from the caller's
     * buffers (sendmmsg, zero-copy).  Same retry contract as the
     * Datagram overload.
     */
    std::size_t sendBatch(const TxView *views, std::size_t count);

    /** Send one datagram. @return true on success. */
    bool sendTo(const sockaddr_in &peer, const std::uint8_t *data,
                std::size_t len);

    void close();

  private:
    explicit UdpSocket(int fd) : fd_(fd) {}

    int fd_ = -1;
};

/** Level-triggered epoll wrapper for read-readiness. */
class EpollWaiter
{
  public:
    EpollWaiter();
    ~EpollWaiter();

    EpollWaiter(const EpollWaiter &) = delete;
    EpollWaiter &operator=(const EpollWaiter &) = delete;

    bool valid() const { return epfd_ >= 0; }

    /** Watch @p fd for readability. @return true on success. */
    bool add(int fd);

    /**
     * Wait up to @p timeoutMs for readable fds.
     * @return The readable fds (empty on timeout or error).
     */
    std::vector<int> wait(int timeoutMs);

  private:
    int epfd_ = -1;
};

/** Parse a dotted-quad IPv4 string to host byte order. */
std::optional<std::uint32_t> parseIpv4(const std::string &ip);

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_UDP_SOCKET_HH
