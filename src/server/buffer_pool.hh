/**
 * @file
 * Slab frame pool + refcounted frame handle: the zero-copy datagram
 * path's memory.
 *
 * Each RX shard owns a FramePool.  recvmmsg scatters datagrams
 * straight into pool frames, the parsed Request carries a FrameHandle
 * through the MPMC queues instead of a std::vector payload copy, the
 * worker builds the response *in the same frame*, and TX sendmmsg's
 * from it before the handle's release returns the frame to the pool.
 *
 * The RX offset trick makes the echo path copy-free: a response header
 * (36 bytes) is exactly responseHeadroom = 4 bytes longer than a
 * request header (32 bytes), so RX receives at frame + 4 and the
 * worker writes the response header at frame + 0 — the request payload
 * bytes at frame + 36 are already exactly where the response payload
 * belongs and never move.
 *
 * Frames are fixed-size slots in one slab allocation; the free list is
 * a lock-free index stack (queueing::FreeIndexStack), so acquire and
 * release are one CAS each from any thread.  Exhaustion is a counted,
 * graceful condition — the server answers with a typed shed reject
 * from a small reserve pool instead of crashing or silently dropping.
 *
 * copyEvents() counts every payload copy the pipeline performs on
 * frames of this pool (the zero-copy regression tripwire: the echo
 * path must keep it at zero; GRE encap legitimately pays one transform
 * write per request).
 */

#ifndef HYPERPLANE_SERVER_BUFFER_POOL_HH
#define HYPERPLANE_SERVER_BUFFER_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "queueing/free_stack.hh"

namespace hyperplane {
namespace server {

class FramePool;

/**
 * Refcounted handle to one pool frame.  Copying shares the frame
 * (refcount increment); the last handle's destruction returns the
 * frame to the pool's free list.  A default-constructed handle is
 * null.
 */
class FrameHandle
{
  public:
    FrameHandle() = default;
    ~FrameHandle() { release(); }

    FrameHandle(const FrameHandle &other) : pool_(other.pool_), idx_(other.idx_)
    {
        if (pool_)
            addRef();
    }

    FrameHandle &operator=(const FrameHandle &other)
    {
        if (this != &other) {
            release();
            pool_ = other.pool_;
            idx_ = other.idx_;
            if (pool_)
                addRef();
        }
        return *this;
    }

    FrameHandle(FrameHandle &&other) noexcept
        : pool_(other.pool_), idx_(other.idx_)
    {
        other.pool_ = nullptr;
    }

    FrameHandle &operator=(FrameHandle &&other) noexcept
    {
        if (this != &other) {
            release();
            pool_ = other.pool_;
            idx_ = other.idx_;
            other.pool_ = nullptr;
        }
        return *this;
    }

    explicit operator bool() const { return pool_ != nullptr; }

    /** Frame bytes (frameBytes() of them). Null handle: nullptr. */
    std::uint8_t *data();
    const std::uint8_t *data() const;

    /** Capacity of the frame in bytes. */
    std::uint32_t capacity() const;

    /** Drop this reference now (handle becomes null). */
    void reset() { release(); }

    /** Record a payload copy touching this frame (zero-copy tripwire). */
    void countCopy();

  private:
    friend class FramePool;
    FrameHandle(FramePool *pool, std::uint32_t idx)
        : pool_(pool), idx_(idx)
    {
    }

    void addRef();
    void release();

    FramePool *pool_ = nullptr;
    std::uint32_t idx_ = 0;
};

/** Fixed-size frame slab with a lock-free free list. */
class FramePool
{
  public:
    /**
     * Extra bytes a response header needs over a request header; RX
     * receives at data() + responseHeadroom so the response can be
     * built at data() + 0 without moving the payload.
     */
    static constexpr std::uint32_t responseHeadroom = 4;

    /**
     * @param numFrames  Frames in the slab (all free initially).
     * @param frameBytes Usable bytes per frame.
     */
    FramePool(std::uint32_t numFrames, std::uint32_t frameBytes);

    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;

    /**
     * Take a free frame (refcount 1).  Null handle on exhaustion
     * (counted in exhausted()).
     */
    FrameHandle tryAcquire();

    std::uint32_t numFrames() const { return numFrames_; }
    std::uint32_t frameBytes() const { return frameBytes_; }

    /** Free frames right now (approximate under concurrency). */
    std::uint32_t freeFrames() const { return freeList_.approxSize(); }

    /** Failed tryAcquire() calls so far. */
    std::uint64_t exhausted() const
    {
        return exhausted_.load(std::memory_order_relaxed);
    }

    /**
     * Payload bytes copied into/out of this pool's frames by the
     * pipeline (see countCopy()).  The echo path must not move this.
     */
    std::uint64_t copyEvents() const
    {
        return copyEvents_.load(std::memory_order_relaxed);
    }

    /** Record a payload copy touching a frame (zero-copy tripwire). */
    void countCopy()
    {
        copyEvents_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    friend class FrameHandle;

    std::uint8_t *frameData(std::uint32_t idx)
    {
        return slab_.get() + static_cast<std::size_t>(idx) * stride_;
    }
    std::atomic<std::uint32_t> &refs(std::uint32_t idx)
    {
        return refs_[idx];
    }
    void releaseIndex(std::uint32_t idx);

    std::uint32_t numFrames_;
    std::uint32_t frameBytes_;
    std::size_t stride_;
    std::unique_ptr<std::uint8_t[]> slab_;
    std::unique_ptr<std::atomic<std::uint32_t>[]> refs_;
    queueing::FreeIndexStack freeList_;
    std::atomic<std::uint64_t> exhausted_{0};
    std::atomic<std::uint64_t> copyEvents_{0};
};

inline std::uint8_t *
FrameHandle::data()
{
    return pool_ ? pool_->frameData(idx_) : nullptr;
}

inline const std::uint8_t *
FrameHandle::data() const
{
    return pool_ ? pool_->frameData(idx_) : nullptr;
}

inline std::uint32_t
FrameHandle::capacity() const
{
    return pool_ ? pool_->frameBytes() : 0;
}

inline void
FrameHandle::countCopy()
{
    if (pool_)
        pool_->countCopy();
}

inline void
FrameHandle::addRef()
{
    pool_->refs(idx_).fetch_add(1, std::memory_order_relaxed);
}

inline void
FrameHandle::release()
{
    if (!pool_)
        return;
    FramePool *pool = pool_;
    pool_ = nullptr;
    if (pool->refs(idx_).fetch_sub(1, std::memory_order_acq_rel) == 1)
        pool->releaseIndex(idx_);
}

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_BUFFER_POOL_HH
