#include "server/server.hh"

#include <arpa/inet.h>

#include <algorithm>

#include "net/headers.hh"
#include "net/packet.hh"
#include "queueing/task_queue.hh"
#include "server/flow.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace server {

namespace {

using namespace std::chrono;

/** Outer tunnel header template for the Encap opcode (ULA fd00::/8). */
net::Ipv6Header
outerTemplate()
{
    net::Ipv6Header outer;
    outer.hopLimit = 64;
    outer.src[0] = 0xfd;
    outer.src[15] = 0x01;
    outer.dst[0] = 0xfd;
    outer.dst[15] = 0x02;
    return outer;
}

/** Remaining time until @p deadline, clamped at zero. */
nanoseconds
timeLeft(steady_clock::time_point deadline)
{
    const auto now = steady_clock::now();
    return now >= deadline ? nanoseconds(0) : deadline - now;
}

} // namespace

UdpServer::UdpServer(const ServerConfig &cfg)
    : cfg_(cfg), epoch_(steady_clock::now())
{
    hp_assert(cfg_.rxThreads > 0, "need at least one RX thread");
    hp_assert(cfg_.txThreads > 0, "need at least one TX thread");
    hp_assert(cfg_.workers > 0, "need at least one worker");
    hp_assert(cfg_.numQueues > 0, "need at least one queue");
    hp_assert(cfg_.rxBatch > 0, "rxBatch must be positive");
}

UdpServer::~UdpServer()
{
    stop(seconds(1));
}

std::uint64_t
UdpServer::nowNs() const
{
    return static_cast<std::uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now() - epoch_)
            .count());
}

Tick
UdpServer::nowTicks() const
{
    return nsToTicks(static_cast<double>(nowNs()));
}

bool
UdpServer::start()
{
    if (running_.load())
        return true;

    // Build the tenant table first: a malformed tenant list is a
    // configuration error and throws (std::invalid_argument, with the
    // same actionable messages as dp::SdpConfig::validate()) before any
    // socket or thread exists.
    tenants_ = std::make_unique<TenantTable>(
        cfg_.tenants, cfg_.numQueues, cfg_.shedLowWatermark,
        cfg_.shedHighWatermark);

    // RX sockets: one SO_REUSEPORT shard per RX thread.  The first bind
    // picks the (possibly ephemeral) port; the rest join its group.
    const bool sharded = cfg_.rxThreads > 1;
    auto first = UdpSocket::bind(cfg_.bindIp, cfg_.port, sharded);
    if (!first)
        return false;
    port_ = first->localPort();
    boundIp_ = first->localIp();
    rxSockets_.push_back(std::move(*first));
    for (unsigned i = 1; i < cfg_.rxThreads; ++i) {
        auto s = UdpSocket::bind(cfg_.bindIp, port_, true);
        if (!s) {
            rxSockets_.clear();
            return false;
        }
        rxSockets_.push_back(std::move(*s));
    }
    // TX sockets stay out of the REUSEPORT group (they must not steal
    // inbound datagrams); replies carry their own ephemeral source.
    for (unsigned i = 0; i < cfg_.txThreads; ++i) {
        auto s = UdpSocket::open();
        if (!s) {
            rxSockets_.clear();
            txSockets_.clear();
            return false;
        }
        txSockets_.push_back(std::move(*s));
    }

    epoch_ = steady_clock::now();
    if (cfg_.tracer)
        cfg_.tracer->setClock([this] { return nowTicks(); });

    hpDev_ =
        std::make_unique<emu::EmuHyperPlane>(cfg_.numQueues, cfg_.policy);
    reqQueues_.clear();
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        const auto qid = hpDev_->addQueue();
        hp_assert(qid && *qid == q, "queue registration out of order");
        reqQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Request>>(
                cfg_.queueCapacity));
    }
    // Per-queue WRR weights from the tenant specs, so a weighted or
    // strict-priority policy differentiates the tenants' queue groups.
    for (unsigned t = 0; t < tenants_->numTenants(); ++t) {
        const dp::TenantSpec &spec = tenants_->spec(t);
        for (unsigned q = spec.queueFirst;
             q < spec.queueFirst + spec.queueCount; ++q) {
            hpDev_->setWeight(q, spec.weight);
        }
    }
    txDevs_.clear();
    txQueues_.clear();
    for (unsigned t = 0; t < cfg_.txThreads; ++t) {
        txDevs_.push_back(std::make_unique<emu::EmuHyperPlane>(1));
        txDevs_.back()->addQueue();
        txQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Response>>(
                cfg_.queueCapacity));
    }
    steerers_.clear();
    for (unsigned w = 0; w < cfg_.workers; ++w)
        steerers_.push_back(std::make_unique<workloads::PacketSteering>(
            cfg_.fault.seed + w));

    recoveryCount_.assign(cfg_.numQueues, 0);
    cleanSweeps_.assign(cfg_.numQueues, 0);
    deficitPrev_.assign(cfg_.numQueues, 0);
    ringsPrev_.assign(cfg_.numQueues, 0);
    rxInFlight_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    rxEpoch_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        rxInFlight_[q].store(0, std::memory_order_relaxed);
        rxEpoch_[q].store(0, std::memory_order_relaxed);
    }

    running_.store(true);
    rxRunning_.store(true);
    txRunning_.store(true);

    pool_ = std::make_unique<emu::DataPlanePool>(
        *hpDev_, cfg_.workers,
        [this](QueueId qid, std::uint64_t n) { handleBatch(qid, n); },
        cfg_.maxBatch);
    pool_->start();

    for (unsigned t = 0; t < cfg_.txThreads; ++t)
        txThreads_.emplace_back([this, t] { txLoop(t); });
    for (unsigned i = 0; i < cfg_.rxThreads; ++i)
        rxThreads_.emplace_back([this, i] { rxLoop(i); });
    if (cfg_.fault.watchdogEnabled) {
        watchdogRunning_.store(true);
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    }
    return true;
}

bool
UdpServer::stop(std::chrono::nanoseconds drainDeadline)
{
    if (!running_.exchange(false))
        return true;
    const auto deadline = steady_clock::now() + drainDeadline;

    // 1. Stop accepting: join the RX shards.
    rxRunning_.store(false);
    for (auto &t : rxThreads_)
        t.join();
    rxThreads_.clear();

    // 2. Drain accepted requests.  The watchdog keeps running so that
    //    requests stranded by a dropped ring still get rescued.
    while (backlog() > 0 && steady_clock::now() < deadline)
        std::this_thread::sleep_for(microseconds(200));
    bool drained = backlog() == 0;

    // 3. Drain the doorbell residual, then stop the workers.  After
    //    this returns the pool threads are joined: no handler runs
    //    beyond this point.
    drained = pool_->drain(timeLeft(deadline)) && drained;

    if (watchdogRunning_.exchange(false) && watchdogThread_.joinable())
        watchdogThread_.join();

    // 4. Flush the response queues, then join the TX threads (each
    //    flushes its own remainder on exit).
    while (steady_clock::now() < deadline) {
        std::uint64_t left = 0;
        for (const auto &q : txQueues_)
            left += q->size();
        if (left == 0)
            break;
        std::this_thread::sleep_for(microseconds(200));
    }
    txRunning_.store(false);
    for (auto &t : txThreads_)
        t.join();
    txThreads_.clear();
    for (const auto &q : txQueues_)
        drained = drained && q->empty();

    rxSockets_.clear();
    txSockets_.clear();
    return drained;
}

std::uint64_t
UdpServer::backlog() const
{
    std::uint64_t total = 0;
    for (const auto &q : reqQueues_)
        total += q->size();
    return total;
}

void
UdpServer::rxLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    const std::uint32_t track = trace::trackHardwareBase + index;
    UdpSocket &sock = rxSockets_[index];
    EpollWaiter waiter;
    const bool havePoll = waiter.valid() && waiter.add(sock.fd());

    Rng rng(cfg_.fault.seed * 0x9e3779b97f4a7c15ULL + index + 1);
    std::vector<Datagram> batch;
    std::vector<std::uint32_t> counts(cfg_.numQueues, 0);
    std::vector<QueueId> touched;
    std::vector<std::uint32_t> txCounts(cfg_.txThreads, 0);
    const bool shedEnabled = cfg_.shedHighWatermark > 0;
    const bool stormOn =
        cfg_.fault.stormRingsPerBatch > 0 &&
        cfg_.fault.stormTenant < tenants_->numTenants();

    while (rxRunning_.load(std::memory_order_relaxed)) {
        if (havePoll) {
            if (waiter.wait(50).empty())
                continue;
        } else {
            // Degraded mode without epoll: short-sleep poll.
            std::this_thread::sleep_for(microseconds(100));
        }
        for (;;) {
            batch.clear();
            const std::size_t n = sock.recvBatch(batch, cfg_.rxBatch);
            if (n == 0)
                break;
            counters_.rxBatches.fetch_add(1, std::memory_order_relaxed);
            counters_.rxPackets.fetch_add(n, std::memory_order_relaxed);
            const std::uint64_t rxNs = nowNs();
            // One backlog sample per batch is plenty for watermark
            // shedding: the thresholds are hundreds of requests wide.
            const std::size_t backlogNow = shedEnabled ? backlog() : 0;
            bool stormSeen = false;

            for (Datagram &d : batch) {
                const auto hdr =
                    wire::parseRequest(d.bytes.data(), d.bytes.size());
                if (!hdr) {
                    counters_.parseErrors.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                const unsigned tenant = tenants_->tenantOf(hdr->flowId);
                TenantCounters &tc = tenants_->counters(tenant);
                stormSeen |= stormOn && tenant == cfg_.fault.stormTenant;

                FlowKey key;
                key.srcIp = ntohl(d.peer.sin_addr.s_addr);
                key.dstIp = boundIp_;
                key.srcPort = ntohs(d.peer.sin_port);
                key.dstPort = port_;
                key.innerFlow =
                    cfg_.steerByInnerFlow ? hdr->flowId : 0;
                const QueueId qid = tenants_->steer(key, tenant);

                // Admission control at RX steering: token bucket first,
                // then the priority-ranked backlog watermark.  Rejects
                // fail fast — a typed response now, no worker time.
                wire::Status verdict = wire::statusOk;
                if (!tenants_->admit(tenant, rxNs)) {
                    verdict = wire::statusRateLimited;
                    tc.rateLimited.fetch_add(1,
                                             std::memory_order_relaxed);
                    counters_.shedRateLimited.fetch_add(
                        1, std::memory_order_relaxed);
                } else if (shedEnabled &&
                           tenants_->shouldShed(tenant, backlogNow)) {
                    verdict = wire::statusShed;
                    tc.watermarkShed.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.shedWatermark.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (verdict != wire::statusOk) {
                    enqueueReject(d.peer, *hdr, verdict, qid, txCounts);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::AdmissionShed,
                                        track, nowTicks(), qid,
                                        hdr->seq);
                    }
                    continue;
                }

                Request req;
                req.peer = d.peer;
                req.hdr = *hdr;
                req.payload.assign(
                    d.bytes.begin() + wire::RequestHeader::wireSize,
                    d.bytes.end());
                req.rxNs = rxNs;
                // Open the seqlock window before the push so the
                // watchdog never observes a pushed-but-unrung request
                // without also seeing the window open.
                if (counts[qid] == 0)
                    rxInFlight_[qid].fetch_add(
                        1, std::memory_order_release);
                if (!reqQueues_[qid]->tryPush(std::move(req))) {
                    // Queue full: the deepest overload signal.  Still a
                    // typed reject, not a silent drop.
                    counters_.queueDrops.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.shedQueueFull.fetch_add(
                        1, std::memory_order_relaxed);
                    tc.queueFullShed.fetch_add(
                        1, std::memory_order_relaxed);
                    if (counts[qid] == 0)
                        rxInFlight_[qid].fetch_sub(
                            1, std::memory_order_release);
                    enqueueReject(d.peer, *hdr, wire::statusShed, qid,
                                  txCounts);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::AdmissionShed,
                                        track, nowTicks(), qid,
                                        hdr->seq);
                    }
                    continue;
                }
                tc.admitted.fetch_add(1, std::memory_order_relaxed);
                if (counts[qid]++ == 0)
                    touched.push_back(qid);
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::DoorbellWrite, track,
                                    nowTicks(), qid, hdr->seq);
                }
            }

            // One doorbell ring per (batch, queue).  The injectable
            // drop models a lost doorbell snoop between RX and the
            // notification device.
            for (QueueId qid : touched) {
                const std::uint32_t cnt = counts[qid];
                counts[qid] = 0;
                if (cfg_.fault.dropRingProbability > 0.0 &&
                    rng.chance(cfg_.fault.dropRingProbability)) {
                    counters_.ringsDropped.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::SnoopDropped,
                                        track, nowTicks(), qid, cnt);
                    }
                } else {
                    hpDev_->ring(qid, cnt);
                }
                // Close the window: advance the epoch before lowering
                // the in-flight count so the watchdog can't see a
                // settled count with a stale epoch.
                rxEpoch_[qid].fetch_add(1, std::memory_order_release);
                rxInFlight_[qid].fetch_sub(1,
                                           std::memory_order_release);
            }
            touched.clear();

            // Flush the batch's typed rejects: one TX ring per touched
            // TX queue, same batching discipline as the request path.
            for (unsigned tx = 0; tx < cfg_.txThreads; ++tx) {
                if (txCounts[tx] > 0) {
                    txDevs_[tx]->ring(0, txCounts[tx]);
                    txCounts[tx] = 0;
                }
            }

            // Doorbell-storm injection: the adversarial tenant's driver
            // rings its whole queue group with zero-item doorbells,
            // burning wakeups on spurious grants until the watchdog's
            // rate cap mutes the queues.
            if (stormSeen) {
                const dp::TenantSpec &s =
                    tenants_->spec(cfg_.fault.stormTenant);
                for (unsigned r = 0; r < cfg_.fault.stormRingsPerBatch;
                     ++r) {
                    hpDev_->ring(s.queueFirst + r % s.queueCount, 0);
                }
            }
        }
    }
}

void
UdpServer::enqueueReject(const sockaddr_in &peer,
                         const wire::RequestHeader &hdr,
                         wire::Status status, QueueId qid,
                         std::vector<std::uint32_t> &txCounts)
{
    wire::ResponseHeader rh;
    rh.opcode = hdr.opcode;
    rh.seq = hdr.seq;
    rh.clientTimeNs = hdr.clientTimeNs;
    rh.flowId = hdr.flowId;
    rh.status = status;
    rh.payloadLen = 0;

    Response out;
    out.seq = rh.seq;
    out.dgram.peer = peer;
    out.dgram.bytes.resize(wire::ResponseHeader::wireSize);
    const std::size_t written =
        wire::buildResponse(out.dgram.bytes.data(),
                            out.dgram.bytes.size(), rh, nullptr);
    hp_assert(written != 0, "payload-free reject must serialize");
    out.dgram.bytes.resize(written);

    const unsigned tx = qid % cfg_.txThreads;
    if (!txQueues_[tx]->tryPush(std::move(out))) {
        counters_.txDrops.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ++txCounts[tx];
}

void
UdpServer::handleBatch(QueueId qid, std::uint64_t n)
{
    trace::Tracer *tracer = cfg_.tracer;
    const int widx = emu::DataPlanePool::workerIndex();
    const std::uint32_t track = widx >= 0 ? widx : 0;
    if (HP_TRACE_ON(tracer)) {
        tracer->instant(trace::Stage::QwaitReturn, track, nowTicks(),
                        qid, n);
    }

    std::vector<Request> reqs;
    reqs.reserve(n);
    // The doorbell can over-advertise (watchdog replays, drain races);
    // serve what is actually queued.
    reqQueues_[qid]->popBatch(reqs, n);
    if (reqs.empty())
        return;

    std::vector<std::uint32_t> txCounts(cfg_.txThreads, 0);
    for (Request &req : reqs) {
        if (HP_TRACE_ON(tracer)) {
            tracer->begin(trace::Stage::Service, track, nowTicks(), qid,
                          req.hdr.seq);
        }
        Response resp = makeResponse(track, req);
        if (HP_TRACE_ON(tracer)) {
            tracer->end(trace::Stage::Service, track, nowTicks(), qid,
                        req.hdr.seq);
        }
        const unsigned tx = qid % cfg_.txThreads;
        if (!txQueues_[tx]->tryPush(std::move(resp))) {
            counters_.txDrops.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        ++txCounts[tx];
    }
    counters_.served.fetch_add(reqs.size(), std::memory_order_relaxed);
    const unsigned owner = tenants_->tenantOfQueue(qid);
    if (owner != TenantTable::invalidTenant) {
        tenants_->counters(owner).served.fetch_add(
            reqs.size(), std::memory_order_relaxed);
    }
    for (unsigned tx = 0; tx < cfg_.txThreads; ++tx)
        if (txCounts[tx] > 0)
            txDevs_[tx]->ring(0, txCounts[tx]);
}

UdpServer::Response
UdpServer::makeResponse(unsigned worker, const Request &req)
{
    wire::ResponseHeader rh;
    rh.opcode = req.hdr.opcode;
    rh.seq = req.hdr.seq;
    rh.clientTimeNs = req.hdr.clientTimeNs;
    rh.flowId = req.hdr.flowId;
    rh.status = wire::statusOk;

    const std::uint8_t *payload = nullptr;
    std::uint32_t payloadLen = 0;
    net::PacketBuffer encapBuf;
    std::uint8_t steerBuf[8];

    switch (req.hdr.opcode) {
      case wire::Opcode::Echo:
        payload = req.payload.data();
        payloadLen = static_cast<std::uint32_t>(req.payload.size());
        break;
      case wire::Opcode::Encap: {
        encapBuf = net::PacketBuffer(req.payload.data(),
                                     req.payload.size());
        static const net::Ipv6Header outer = outerTemplate();
        if (net::greEncapsulate(encapBuf, outer, req.hdr.flowId)) {
            payload = encapBuf.data();
            payloadLen = static_cast<std::uint32_t>(encapBuf.size());
        } else {
            rh.status = wire::statusBadPayload;
        }
        break;
      }
      case wire::Opcode::Steer: {
        queueing::WorkItem item;
        item.seq = req.hdr.seq;
        item.flowId = req.hdr.flowId;
        item.payloadBytes =
            static_cast<std::uint32_t>(req.payload.size());
        const unsigned dest = steerers_[worker]->steer(item);
        net::putBe32(steerBuf, flowHash(FlowKey{0, 0, 0, 0,
                                                req.hdr.flowId}));
        net::putBe32(steerBuf + 4, dest);
        payload = steerBuf;
        payloadLen = 8;
        break;
      }
    }

    Response out;
    out.seq = rh.seq;
    out.dgram.peer = req.peer;
    out.dgram.bytes.resize(wire::maxDatagramBytes);
    rh.payloadLen = payloadLen;
    std::size_t written =
        wire::buildResponse(out.dgram.bytes.data(),
                            out.dgram.bytes.size(), rh, payload);
    if (written == 0) {
        // Result would not fit a datagram: fail the request closed.
        rh.status = wire::statusBadPayload;
        rh.payloadLen = 0;
        written = wire::buildResponse(out.dgram.bytes.data(),
                                      out.dgram.bytes.size(), rh,
                                      nullptr);
    }
    out.dgram.bytes.resize(written);
    if (rh.status != wire::statusOk)
        counters_.badStatus.fetch_add(1, std::memory_order_relaxed);
    return out;
}

void
UdpServer::txLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    emu::EmuHyperPlane &dev = *txDevs_[index];
    queueing::MpmcQueue<Response> &queue = *txQueues_[index];
    UdpSocket &sock = txSockets_[index];

    std::vector<Response> pending;
    std::vector<Datagram> dgrams;

    const auto flush = [&](std::size_t n) {
        pending.clear();
        queue.popBatch(pending, n);
        if (pending.empty())
            return;
        dgrams.clear();
        dgrams.reserve(pending.size());
        for (Response &r : pending)
            dgrams.push_back(std::move(r.dgram));
        const std::size_t sent =
            sock.sendBatch(dgrams.data(), dgrams.size());
        counters_.txPackets.fetch_add(sent, std::memory_order_relaxed);
        if (sent < dgrams.size()) {
            counters_.txSendErrors.fetch_add(
                dgrams.size() - sent, std::memory_order_relaxed);
        }
        if (HP_TRACE_ON(tracer)) {
            for (std::size_t i = 0; i < sent; ++i) {
                tracer->instant(trace::Stage::Completion,
                                trace::trackDevice, nowTicks(),
                                invalidQueueId, pending[i].seq);
            }
        }
    };

    while (txRunning_.load(std::memory_order_relaxed)) {
        const auto qid = dev.qwait(milliseconds(5));
        if (!qid)
            continue;
        const std::uint64_t n = dev.take(*qid, cfg_.rxBatch);
        if (n == 0)
            continue;
        flush(n);
    }
    // Final flush: answer everything already queued before exiting.
    while (queue.size() > 0)
        flush(cfg_.rxBatch);
}

void
UdpServer::watchdogLoop()
{
    trace::Tracer *tracer = cfg_.tracer;
    const auto period = microseconds(
        std::max<long>(50, static_cast<long>(
                               cfg_.fault.watchdogPeriodUs)));

    while (watchdogRunning_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(period);
        counters_.watchdogSweeps.fetch_add(1, std::memory_order_relaxed);
        if (HP_TRACE_ON(tracer)) {
            tracer->instant(trace::Stage::WatchdogSweep,
                            trace::trackWatchdog, nowTicks());
        }
        for (QueueId qid = 0; qid < cfg_.numQueues; ++qid) {
            // Doorbell-storm audit: diff the device's monotonic
            // ring-call counter across sweeps.  A queue ringing past
            // the cap is demoted — muted on the device (its rings keep
            // their accounting but wake nobody) and handed to the
            // polled fallback path below.
            const std::uint64_t rings = hpDev_->ringCalls(qid);
            const std::uint64_t ringDelta = rings - ringsPrev_[qid];
            ringsPrev_[qid] = rings;
            const std::uint64_t cap = cfg_.fault.doorbellRateCap;

            if (hpDev_->isMuted(qid)) {
                // Muted: notification is severed, so progress is this
                // sweep's poll.  Muted rings create no deficit — skip
                // the deficit machinery entirely.
                if (hpDev_->pollActivate(qid)) {
                    fallback_.polls.inc();
                    counters_.fallbackServes.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::FallbackServe,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                if (cap > 0 && ringDelta > cap) {
                    cleanSweeps_[qid] = 0;
                } else if (++cleanSweeps_[qid] >=
                           cfg_.fault.promoteCleanSweeps) {
                    hpDev_->setMuted(qid, false);
                    fallback_.remove(qid);
                    recoveryCount_[qid] = 0;
                    cleanSweeps_[qid] = 0;
                    counters_.promotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).promotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Promotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                deficitPrev_[qid] = 0;
                continue;
            }
            if (cap > 0 && ringDelta > cap) {
                hpDev_->setMuted(qid, true);
                if (!fallback_.contains(qid))
                    fallback_.add(qid);
                cleanSweeps_[qid] = 0;
                counters_.demotions.fetch_add(1,
                                              std::memory_order_relaxed);
                counters_.stormDemotions.fetch_add(
                    1, std::memory_order_relaxed);
                const unsigned owner = tenants_->tenantOfQueue(qid);
                if (owner != TenantTable::invalidTenant) {
                    tenants_->counters(owner).demotions.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::Demotion,
                                    trace::trackWatchdog, nowTicks(),
                                    qid);
                }
                deficitPrev_[qid] = 0;
                continue;
            }

            // Seqlock read: an RX thread mid-batch has pushed requests
            // whose ring is still coming — that window is not a
            // deficit.  Sample the epoch, bail if a window is open,
            // read the counters, and bail again if a window opened or
            // closed meanwhile.  Only a read taken entirely between
            // windows can confirm a deficit.
            const std::uint32_t epoch0 =
                rxEpoch_[qid].load(std::memory_order_acquire);
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            // Read the doorbell before the depth counters: a take
            // between the reads then under-counts the deficit (safe)
            // instead of inventing one.
            const std::uint64_t adv = hpDev_->pendingItems(qid);
            const std::uint64_t popped = reqQueues_[qid]->totalPopped();
            const std::uint64_t pushed = reqQueues_[qid]->totalPushed();
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0 ||
                rxEpoch_[qid].load(std::memory_order_acquire) !=
                    epoch0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            const std::uint64_t depth =
                pushed > popped ? pushed - popped : 0;
            const std::uint64_t deficit = depth > adv ? depth - adv : 0;

            if (fallback_.contains(qid)) {
                // Demoted: polled mode.  Re-advertise any deficit every
                // sweep; promote back after enough clean sweeps.
                if (deficit > 0) {
                    cleanSweeps_[qid] = 0;
                    fallback_.polls.inc();
                    fallback_.tasksServed.inc(deficit);
                    counters_.fallbackServes.fetch_add(
                        deficit, std::memory_order_relaxed);
                    hpDev_->ring(qid, deficit);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::FallbackServe,
                                        trace::trackWatchdog, nowTicks(),
                                        qid, deficit);
                    }
                } else if (++cleanSweeps_[qid] >=
                           cfg_.fault.promoteCleanSweeps) {
                    fallback_.remove(qid);
                    recoveryCount_[qid] = 0;
                    cleanSweeps_[qid] = 0;
                    counters_.promotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).promotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Promotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                deficitPrev_[qid] = 0;
                continue;
            }

            // Armed queue: a transient deficit is just an RX thread
            // between push and ring, so recovery requires the deficit
            // to persist across two consecutive sweeps.
            if (deficit > 0 && deficitPrev_[qid] > 0) {
                const std::uint64_t lost =
                    std::min(deficit, deficitPrev_[qid]);
                hpDev_->ring(qid, lost);
                counters_.watchdogRecoveries.fetch_add(
                    1, std::memory_order_relaxed);
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::WatchdogRecovery,
                                    trace::trackWatchdog, nowTicks(),
                                    qid, lost);
                }
                deficitPrev_[qid] = 0;
                if (++recoveryCount_[qid] >=
                    cfg_.fault.demoteThreshold) {
                    fallback_.add(qid);
                    cleanSweeps_[qid] = 0;
                    counters_.demotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).demotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Demotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
            } else {
                deficitPrev_[qid] = deficit;
            }
        }
    }
}

void
UdpServer::registerStats(stats::Registry &reg, const std::string &prefix)
{
    const auto scalar = [&reg, &prefix](
                            const char *name,
                            const std::atomic<std::uint64_t> *c) {
        reg.addScalar(prefix + "." + name, [c] {
            return static_cast<double>(
                c->load(std::memory_order_relaxed));
        });
    };
    scalar("rx_batches", &counters_.rxBatches);
    scalar("rx_packets", &counters_.rxPackets);
    scalar("rx_parse_errors", &counters_.parseErrors);
    scalar("rx_queue_drops", &counters_.queueDrops);
    scalar("shed_rate_limited", &counters_.shedRateLimited);
    scalar("shed_watermark", &counters_.shedWatermark);
    scalar("shed_queue_full", &counters_.shedQueueFull);
    scalar("storm_demotions", &counters_.stormDemotions);
    scalar("rings_dropped", &counters_.ringsDropped);
    scalar("requests_served", &counters_.served);
    scalar("responses_bad_status", &counters_.badStatus);
    scalar("tx_queue_drops", &counters_.txDrops);
    scalar("tx_packets", &counters_.txPackets);
    scalar("tx_send_errors", &counters_.txSendErrors);
    scalar("watchdog_sweeps", &counters_.watchdogSweeps);
    scalar("watchdog_recoveries", &counters_.watchdogRecoveries);
    scalar("fallback_serves", &counters_.fallbackServes);
    scalar("demotions", &counters_.demotions);
    scalar("promotions", &counters_.promotions);
    if (tenants_) {
        for (unsigned t = 0; t < tenants_->numTenants(); ++t) {
            const std::string tp =
                prefix + ".tenant." + tenants_->name(t);
            const TenantCounters &tc = tenants_->counters(t);
            const auto tscalar =
                [&reg, &tp](const char *name,
                            const std::atomic<std::uint64_t> *c) {
                    reg.addScalar(tp + "." + name, [c] {
                        return static_cast<double>(
                            c->load(std::memory_order_relaxed));
                    });
                };
            tscalar("admitted", &tc.admitted);
            tscalar("rate_limited", &tc.rateLimited);
            tscalar("watermark_shed", &tc.watermarkShed);
            tscalar("queue_full_shed", &tc.queueFullShed);
            tscalar("served", &tc.served);
            tscalar("demotions", &tc.demotions);
            tscalar("promotions", &tc.promotions);
        }
    }
    if (hpDev_)
        hpDev_->registerStats(reg, prefix + ".dev");
}

} // namespace server
} // namespace hyperplane
