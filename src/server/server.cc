#include "server/server.hh"

#include <arpa/inet.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "net/headers.hh"
#include "net/packet.hh"
#include "net/simd/dispatch.hh"
#include "queueing/task_queue.hh"
#include "server/flow.hh"
#include "sim/logging.hh"
#include "telemetry/prometheus.hh"
#include "trace/chrome_trace.hh"

namespace hyperplane {
namespace server {

namespace {

using namespace std::chrono;

/** Outer tunnel header template for the Encap opcode (ULA fd00::/8). */
net::Ipv6Header
outerTemplate()
{
    net::Ipv6Header outer;
    outer.hopLimit = 64;
    outer.src[0] = 0xfd;
    outer.src[15] = 0x01;
    outer.dst[0] = 0xfd;
    outer.dst[15] = 0x02;
    return outer;
}

/** Remaining time until @p deadline, clamped at zero. */
nanoseconds
timeLeft(steady_clock::time_point deadline)
{
    const auto now = steady_clock::now();
    return now >= deadline ? nanoseconds(0) : deadline - now;
}

} // namespace

UdpServer::UdpServer(const ServerConfig &cfg)
    : cfg_(cfg), eventLog_(cfg.telemetry.eventLogCapacity),
      epoch_(steady_clock::now())
{
    hp_assert(cfg_.rxThreads > 0, "need at least one RX thread");
    hp_assert(cfg_.txThreads > 0, "need at least one TX thread");
    hp_assert(cfg_.workers > 0, "need at least one worker");
    hp_assert(cfg_.numQueues > 0, "need at least one queue");
    hp_assert(cfg_.rxBatch > 0, "rxBatch must be positive");
}

UdpServer::~UdpServer()
{
    stop(seconds(1));
}

std::uint64_t
UdpServer::nowNs() const
{
    return static_cast<std::uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now() - epoch_)
            .count());
}

Tick
UdpServer::nowTicks() const
{
    return nsToTicks(static_cast<double>(nowNs()));
}

bool
UdpServer::start()
{
    if (running_.load())
        return true;

    // Build the tenant table first: a malformed tenant list is a
    // configuration error and throws (std::invalid_argument, with the
    // same actionable messages as dp::SdpConfig::validate()) before any
    // socket or thread exists.
    tenants_ = std::make_unique<TenantTable>(
        cfg_.tenants, cfg_.numQueues, cfg_.shedLowWatermark,
        cfg_.shedHighWatermark);

    // RX sockets: one SO_REUSEPORT shard per RX thread.  The first bind
    // picks the (possibly ephemeral) port; the rest join its group.
    const bool sharded = cfg_.rxThreads > 1;
    auto first = UdpSocket::bind(cfg_.bindIp, cfg_.port, sharded);
    if (!first)
        return false;
    port_ = first->localPort();
    boundIp_ = first->localIp();
    rxSockets_.push_back(std::move(*first));
    for (unsigned i = 1; i < cfg_.rxThreads; ++i) {
        auto s = UdpSocket::bind(cfg_.bindIp, port_, true);
        if (!s) {
            rxSockets_.clear();
            return false;
        }
        rxSockets_.push_back(std::move(*s));
    }
    // TX sockets stay out of the REUSEPORT group (they must not steal
    // inbound datagrams); replies carry their own ephemeral source.
    for (unsigned i = 0; i < cfg_.txThreads; ++i) {
        auto s = UdpSocket::open();
        if (!s) {
            rxSockets_.clear();
            txSockets_.clear();
            return false;
        }
        txSockets_.push_back(std::move(*s));
    }

    epoch_ = steady_clock::now();
    if (cfg_.tracer)
        cfg_.tracer->setClock([this] { return nowTicks(); });

    // Zero-copy frame pools: drain the old queues first on a restart —
    // queued requests hold frame handles into the pools being replaced.
    reqQueues_.clear();
    txQueues_.clear();
    rxPools_.clear();
    rejectPool_.reset();
    const std::uint32_t frameBytes =
        FramePool::responseHeadroom + wire::maxDatagramBytes;
    for (unsigned i = 0; i < cfg_.rxThreads; ++i) {
        rxPools_.push_back(std::make_unique<FramePool>(
            std::max<std::uint32_t>(cfg_.framesPerRxShard, cfg_.rxBatch),
            frameBytes));
    }
    // Rejects are payload-free 36-byte responses: small frames suffice.
    rejectPool_ = std::make_unique<FramePool>(
        std::max<std::uint32_t>(cfg_.rejectReserveFrames, 1), 64);

    hpDev_ =
        std::make_unique<emu::EmuHyperPlane>(cfg_.numQueues, cfg_.policy);
    reqQueues_.clear();
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        const auto qid = hpDev_->addQueue();
        hp_assert(qid && *qid == q, "queue registration out of order");
        reqQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Request>>(
                cfg_.queueCapacity));
    }
    // Per-queue WRR weights from the tenant specs, so a weighted or
    // strict-priority policy differentiates the tenants' queue groups.
    for (unsigned t = 0; t < tenants_->numTenants(); ++t) {
        const dp::TenantSpec &spec = tenants_->spec(t);
        for (unsigned q = spec.queueFirst;
             q < spec.queueFirst + spec.queueCount; ++q) {
            hpDev_->setWeight(q, spec.weight);
        }
    }
    txDevs_.clear();
    txQueues_.clear();
    for (unsigned t = 0; t < cfg_.txThreads; ++t) {
        txDevs_.push_back(std::make_unique<emu::EmuHyperPlane>(1));
        txDevs_.back()->addQueue();
        txQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Response>>(
                cfg_.queueCapacity));
    }
    steerers_.clear();
    for (unsigned w = 0; w < cfg_.workers; ++w)
        steerers_.push_back(std::make_unique<workloads::PacketSteering>(
            cfg_.fault.seed + w));

    // Stateful app handlers (opcodes 3..5): one instance each, sharded
    // by queue id so a flow's state is owned by the queue its crc32c
    // hash steers it to.
    apps_.clear();
    {
        app::AppConfig acfg = cfg_.app;
        acfg.numShards = cfg_.numQueues;
        for (unsigned k = 0; k < app::numAppKinds; ++k)
            apps_.push_back(app::makeHandler(
                static_cast<app::AppKind>(k), acfg));
    }

    // Telemetry plane: sharded counters always exist (they replaced
    // the contended globals); the stage histograms and flight recorder
    // honour the enable switch.
    hotCounters_ = std::make_unique<telemetry::CounterShards>(
        numTelemetryShards());
    const telemetry::TelemetryConfig &tcfg = cfg_.telemetry;
    if (tcfg.enabled) {
        stageLat_ = std::make_unique<telemetry::StageLatencyShards>(
            numTelemetryShards(), tenants_->numTenants(),
            tcfg.histBaseNs, tcfg.histGrowth, tcfg.histBins);
    } else {
        stageLat_.reset();
    }
    // Stage-histogram decimation period, rounded down to a power of
    // two so the hot-path sample test is (seq & mask) == 0.
    std::uint64_t period = 1;
    while (period * 2 <= std::max<std::uint64_t>(1, tcfg.stageSampleEvery))
        period *= 2;
    stageSampleMask_ = period - 1;
    flight_ = std::make_unique<telemetry::FlightRecorder>(
        numTelemetryShards(), tcfg.recorderCapacity,
        tcfg.enabled ? tcfg.sampleEvery : 0);
    tenantShedPrev_.assign(tenants_->numTenants(), 0);
    tenantShedActive_.assign(tenants_->numTenants(), 0);
    shedPrevSweep_ = 0;
    lastDumpNs_ = 0;
    dumpRequested_.store(false, std::memory_order_relaxed);

    recoveryCount_.assign(cfg_.numQueues, 0);
    cleanSweeps_.assign(cfg_.numQueues, 0);
    deficitPrev_.assign(cfg_.numQueues, 0);
    ringsPrev_.assign(cfg_.numQueues, 0);
    rxInFlight_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    rxEpoch_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        rxInFlight_[q].store(0, std::memory_order_relaxed);
        rxEpoch_[q].store(0, std::memory_order_relaxed);
    }

    running_.store(true);
    rxRunning_.store(true);
    txRunning_.store(true);

    pool_ = std::make_unique<emu::DataPlanePool>(
        *hpDev_, cfg_.workers,
        [this](QueueId qid, std::uint64_t n) { handleBatch(qid, n); },
        cfg_.maxBatch);
    pool_->start();

    for (unsigned t = 0; t < cfg_.txThreads; ++t)
        txThreads_.emplace_back([this, t] { txLoop(t); });
    for (unsigned i = 0; i < cfg_.rxThreads; ++i)
        rxThreads_.emplace_back([this, i] { rxLoop(i); });
    if (cfg_.fault.watchdogEnabled) {
        watchdogRunning_.store(true);
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    }

    eventLog_.post(telemetry::OpEventKind::Startup, nowNs(), ~0u,
                   port_, "pid-local server start");
    if (tcfg.metricsPort >= 0) {
        selfReg_ = std::make_unique<stats::Registry>();
        registerStats(*selfReg_);
        metrics_ = std::make_unique<telemetry::MetricsServer>();
        if (!metrics_->start(
                tcfg.metricsIp,
                static_cast<std::uint16_t>(tcfg.metricsPort),
                [this](const std::string &path, std::string &ct) {
                    return metricsPage(path, ct);
                })) {
            hp_warn("UdpServer: metrics endpoint unavailable, "
                    "continuing without it");
            metrics_.reset();
        }
    }
    return true;
}

bool
UdpServer::stop(std::chrono::nanoseconds drainDeadline)
{
    if (!running_.exchange(false))
        return true;
    const auto deadline = steady_clock::now() + drainDeadline;

    // 1. Stop accepting: join the RX shards.
    rxRunning_.store(false);
    for (auto &t : rxThreads_)
        t.join();
    rxThreads_.clear();

    // 2. Drain accepted requests.  The watchdog keeps running so that
    //    requests stranded by a dropped ring still get rescued.
    while (backlog() > 0 && steady_clock::now() < deadline)
        std::this_thread::sleep_for(microseconds(200));
    bool drained = backlog() == 0;

    // 3. Drain the doorbell residual, then stop the workers.  After
    //    this returns the pool threads are joined: no handler runs
    //    beyond this point.
    drained = pool_->drain(timeLeft(deadline)) && drained;

    if (watchdogRunning_.exchange(false) && watchdogThread_.joinable())
        watchdogThread_.join();

    // 4. Flush the response queues, then join the TX threads (each
    //    flushes its own remainder on exit).
    while (steady_clock::now() < deadline) {
        std::uint64_t left = 0;
        for (const auto &q : txQueues_)
            left += q->size();
        if (left == 0)
            break;
        std::this_thread::sleep_for(microseconds(200));
    }
    txRunning_.store(false);
    for (auto &t : txThreads_)
        t.join();
    txThreads_.clear();
    for (const auto &q : txQueues_)
        drained = drained && q->empty();

    // The endpoint serves during the drain (an operator can scrape a
    // stopping server); it goes down with the last worker gone.
    if (metrics_) {
        metrics_->stop();
        metrics_.reset();
    }

    rxSockets_.clear();
    txSockets_.clear();
    return drained;
}

ServerCounterSnapshot
UdpServer::counterSnapshot() const
{
    using telemetry::HotCounter;
    ServerCounterSnapshot s;
    if (hotCounters_) {
        s.rxBatches = hotCounters_->total(HotCounter::RxBatches);
        s.rxPackets = hotCounters_->total(HotCounter::RxPackets);
        s.parseErrors = hotCounters_->total(HotCounter::ParseErrors);
        s.served = hotCounters_->total(HotCounter::Served);
        s.txPackets = hotCounters_->total(HotCounter::TxPackets);
    }
    const auto ld = [](const std::atomic<std::uint64_t> &c) {
        return c.load(std::memory_order_relaxed);
    };
    s.queueDrops = ld(counters_.queueDrops);
    s.shedRateLimited = ld(counters_.shedRateLimited);
    s.shedWatermark = ld(counters_.shedWatermark);
    s.shedQueueFull = ld(counters_.shedQueueFull);
    s.stormDemotions = ld(counters_.stormDemotions);
    s.ringsDropped = ld(counters_.ringsDropped);
    s.badStatus = ld(counters_.badStatus);
    s.txDrops = ld(counters_.txDrops);
    s.txSendErrors = ld(counters_.txSendErrors);
    s.watchdogSweeps = ld(counters_.watchdogSweeps);
    s.watchdogRecoveries = ld(counters_.watchdogRecoveries);
    s.fallbackServes = ld(counters_.fallbackServes);
    s.demotions = ld(counters_.demotions);
    s.promotions = ld(counters_.promotions);
    s.poolDrops = ld(counters_.poolDrops);
    for (const auto &p : rxPools_) {
        s.poolExhausted += p->exhausted();
        s.payloadCopies += p->copyEvents();
    }
    if (rejectPool_)
        s.poolExhausted += rejectPool_->exhausted();
    return s;
}

std::uint64_t
UdpServer::backlog() const
{
    std::uint64_t total = 0;
    for (const auto &q : reqQueues_)
        total += q->size();
    return total;
}

void
UdpServer::rxLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    const std::uint32_t track = trace::trackHardwareBase + index;
    UdpSocket &sock = rxSockets_[index];
    EpollWaiter waiter;
    const bool havePoll = waiter.valid() && waiter.add(sock.fd());

    Rng rng(cfg_.fault.seed * 0x9e3779b97f4a7c15ULL + index + 1);
    FramePool &pool = *rxPools_[index];
    // Reusable acquired frames: recvmmsg scatters into spare[0..k),
    // consumed ones leave with their Request (or reject), unconsumed
    // and parse-failed ones stay for the next call.
    std::vector<FrameHandle> spare;
    spare.reserve(cfg_.rxBatch);
    // Stack scratch for the pool-dry path: small, fixed, always there.
    constexpr unsigned maxScratch = 8;
    const unsigned scratchSlots =
        std::min(maxScratch, std::max(cfg_.rxBatch, 1u));
    std::uint8_t scratchBufs[maxScratch][wire::maxDatagramBytes];
    const std::size_t slotCount =
        std::max<std::size_t>(cfg_.rxBatch, maxScratch);
    std::vector<RxSlot> slots(slotCount);
    std::vector<const std::uint8_t *> pkts(slotCount);
    std::vector<std::uint32_t> lens(slotCount);
    std::vector<std::uint8_t> prefixOk(slotCount);
    std::vector<std::uint32_t> counts(cfg_.numQueues, 0);
    std::vector<QueueId> touched;
    std::vector<std::uint32_t> txCounts(cfg_.txThreads, 0);
    const bool shedEnabled = cfg_.shedHighWatermark > 0;
    const bool stormOn =
        cfg_.fault.stormRingsPerBatch > 0 &&
        cfg_.fault.stormTenant < tenants_->numTenants();

    // Telemetry: this thread is the single writer of shard `shard`.
    const unsigned shard = rxShard(index);
    telemetry::CounterShards &hot = *hotCounters_;
    telemetry::StageLatencyShards *lat = stageLat_.get();
    telemetry::FlightRecorder &flight = *flight_;
    // Last admission timestamp per queue this batch, for the
    // admit->doorbell stage sample taken at ring time.  (For requests
    // skipped by stage decimation this is the batch rx timestamp —
    // admission itself is sub-microsecond, so the ring-wait sample
    // stays honest.)
    std::vector<std::uint64_t> admitLast(cfg_.numQueues, 0);

    while (rxRunning_.load(std::memory_order_relaxed)) {
        if (havePoll) {
            if (waiter.wait(50).empty())
                continue;
        } else {
            // Degraded mode without epoll: short-sleep poll.
            std::this_thread::sleep_for(microseconds(100));
        }
        for (;;) {
            // Top up the receive window with pool frames; recvmmsg
            // scatters straight into them at rxFrameOffset so the
            // payload is already where the response wants it.
            while (spare.size() < cfg_.rxBatch) {
                FrameHandle h = pool.tryAcquire();
                if (!h)
                    break;
                spare.push_back(std::move(h));
            }
            const bool scratch = spare.empty();
            std::size_t n;
            if (scratch) {
                // Pool dry: drain into stack scratch so exhaustion
                // stays an answered, typed condition (rejects from the
                // reserve pool) instead of an epoll livelock.
                for (unsigned i = 0; i < scratchSlots; ++i) {
                    slots[i].data = scratchBufs[i];
                    slots[i].cap = wire::maxDatagramBytes;
                }
                n = sock.recvBatch(slots.data(), scratchSlots);
            } else {
                for (std::size_t i = 0; i < spare.size(); ++i) {
                    slots[i].data = spare[i].data() + rxFrameOffset;
                    slots[i].cap = wire::maxDatagramBytes;
                }
                n = sock.recvBatch(
                    slots.data(), static_cast<unsigned>(spare.size()));
            }
            if (n == 0)
                break;
            hot.add(shard, telemetry::HotCounter::RxBatches);
            hot.add(shard, telemetry::HotCounter::RxPackets, n);
            const std::uint64_t rxNs = nowNs();
            // One backlog sample per batch is plenty for watermark
            // shedding: the thresholds are hundreds of requests wide.
            const std::size_t backlogNow = shedEnabled ? backlog() : 0;
            bool stormSeen = false;

            // Batched magic/version/opcode validation through the
            // dispatched (SIMD on capable hosts) header-check kernel;
            // the per-packet parse below skips what this verified.
            for (std::size_t i = 0; i < n; ++i) {
                pkts[i] = slots[i].data;
                lens[i] = slots[i].len;
            }
            wire::precheckRequests(pkts.data(), lens.data(), n,
                                   prefixOk.data());

            for (std::size_t i = 0; i < n; ++i) {
                if (!prefixOk[i]) {
                    hot.add(shard, telemetry::HotCounter::ParseErrors);
                    continue; // frame stays in spare for reuse
                }
                const auto hdr = wire::parseRequestPrechecked(
                    slots[i].data, slots[i].len);
                if (!hdr) {
                    hot.add(shard, telemetry::HotCounter::ParseErrors);
                    continue;
                }
                const sockaddr_in &peer = slots[i].peer;
                const unsigned tenant = tenants_->tenantOf(hdr->flowId);
                TenantCounters &tc = tenants_->counters(tenant);
                stormSeen |= stormOn && tenant == cfg_.fault.stormTenant;

                FlowKey key;
                key.srcIp = ntohl(peer.sin_addr.s_addr);
                key.dstIp = boundIp_;
                key.srcPort = ntohs(peer.sin_port);
                key.dstPort = port_;
                key.innerFlow =
                    cfg_.steerByInnerFlow ? hdr->flowId : 0;
                const QueueId qid = tenants_->steer(key, tenant);

                // Pool-dry arrivals cannot carry a frame to a worker:
                // shed them typed, like a full queue (the next-deepest
                // overload signal).
                if (scratch) {
                    tc.queueFullShed.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.shedQueueFull.fetch_add(
                        1, std::memory_order_relaxed);
                    enqueueReject(peer, *hdr, wire::statusShed, qid,
                                  tenant, rxNs, txCounts,
                                  FrameHandle());
                    if (flight.sampled(hdr->seq)) {
                        flight.stamp(
                            shard, trace::Stage::AdmissionShed,
                            trace::Phase::Instant, track,
                            nsToTicks(static_cast<double>(rxNs)), qid,
                            hdr->seq);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::AdmissionShed,
                                        track, nowTicks(), qid,
                                        hdr->seq);
                    }
                    continue;
                }

                // Admission control at RX steering: token bucket first,
                // then the priority-ranked backlog watermark.  Rejects
                // fail fast — a typed response now, no worker time.
                wire::Status verdict = wire::statusOk;
                if (!tenants_->admit(tenant, rxNs)) {
                    verdict = wire::statusRateLimited;
                    tc.rateLimited.fetch_add(1,
                                             std::memory_order_relaxed);
                    counters_.shedRateLimited.fetch_add(
                        1, std::memory_order_relaxed);
                } else if (shedEnabled &&
                           tenants_->shouldShed(tenant, backlogNow)) {
                    verdict = wire::statusShed;
                    tc.watermarkShed.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.shedWatermark.fetch_add(
                        1, std::memory_order_relaxed);
                }
                // Stage sampling is decimated on the sequence number
                // (same trick as the flight recorder), so the extra
                // clock read and the histogram insert are paid for
                // 1-in-stageSampleEvery requests; the rest reuse the
                // batch rx timestamp.
                const bool stageSampled =
                    lat && (hdr->seq & stageSampleMask_) == 0;
                const std::uint64_t admitNs =
                    stageSampled ? nowNs() : rxNs;
                if (stageSampled) {
                    lat->record(
                        shard, telemetry::ServerStage::RxAdmit, tenant,
                        static_cast<double>(admitNs - rxNs));
                }
                if (verdict != wire::statusOk) {
                    // The reject reuses the request's own frame.
                    enqueueReject(peer, *hdr, verdict, qid, tenant,
                                  rxNs, txCounts,
                                  std::move(spare[i]));
                    if (flight.sampled(hdr->seq)) {
                        flight.stamp(shard,
                                     trace::Stage::AdmissionShed,
                                     trace::Phase::Instant, track,
                                     nsToTicks(static_cast<double>(
                                         admitNs)),
                                     qid, hdr->seq);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::AdmissionShed,
                                        track, nowTicks(), qid,
                                        hdr->seq);
                    }
                    continue;
                }

                Request req;
                req.peer = peer;
                req.hdr = *hdr;
                req.frame = std::move(spare[i]);
                req.rxNs = rxNs;
                req.admitNs = admitNs;
                req.tenant = tenant;
                admitLast[qid] = admitNs;
                // Open the seqlock window before the push so the
                // watchdog never observes a pushed-but-unrung request
                // without also seeing the window open.
                if (counts[qid] == 0)
                    rxInFlight_[qid].fetch_add(
                        1, std::memory_order_release);
                if (!reqQueues_[qid]->tryPush(std::move(req))) {
                    // Queue full: the deepest overload signal.  Still a
                    // typed reject, not a silent drop.
                    counters_.queueDrops.fetch_add(
                        1, std::memory_order_relaxed);
                    counters_.shedQueueFull.fetch_add(
                        1, std::memory_order_relaxed);
                    tc.queueFullShed.fetch_add(
                        1, std::memory_order_relaxed);
                    if (counts[qid] == 0)
                        rxInFlight_[qid].fetch_sub(
                            1, std::memory_order_release);
                    // tryPush leaves its argument intact on failure, so
                    // the reject can still ride the request's frame.
                    enqueueReject(peer, *hdr, wire::statusShed, qid,
                                  tenant, rxNs, txCounts,
                                  std::move(req.frame));
                    if (flight.sampled(hdr->seq)) {
                        flight.stamp(shard,
                                     trace::Stage::AdmissionShed,
                                     trace::Phase::Instant, track,
                                     nsToTicks(static_cast<double>(
                                         admitNs)),
                                     qid, hdr->seq);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::AdmissionShed,
                                        track, nowTicks(), qid,
                                        hdr->seq);
                    }
                    continue;
                }
                tc.admitted.fetch_add(1, std::memory_order_relaxed);
                if (counts[qid]++ == 0)
                    touched.push_back(qid);
                if (flight.sampled(hdr->seq)) {
                    flight.stamp(
                        shard, trace::Stage::DoorbellWrite,
                        trace::Phase::Instant, track,
                        nsToTicks(static_cast<double>(admitNs)), qid,
                        hdr->seq);
                }
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::DoorbellWrite, track,
                                    nowTicks(), qid, hdr->seq);
                }
            }

            // Compact: moved-from handles leave holes in the receive
            // window; keep only the still-owned frames for reuse.
            if (!scratch) {
                spare.erase(std::remove_if(spare.begin(), spare.end(),
                                           [](const FrameHandle &h) {
                                               return !h;
                                           }),
                            spare.end());
            }

            // One doorbell ring per (batch, queue).  The injectable
            // drop models a lost doorbell snoop between RX and the
            // notification device.
            const std::uint64_t ringNs =
                lat && !touched.empty() ? nowNs() : 0;
            for (QueueId qid : touched) {
                const std::uint32_t cnt = counts[qid];
                counts[qid] = 0;
                if (lat) {
                    // One admit->doorbell sample per (batch, queue):
                    // the last admitted request's wait for its ring.
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    lat->record(
                        shard, telemetry::ServerStage::AdmitDoorbell,
                        owner != TenantTable::invalidTenant ? owner : 0,
                        static_cast<double>(ringNs - admitLast[qid]));
                }
                if (cfg_.fault.dropRingProbability > 0.0 &&
                    rng.chance(cfg_.fault.dropRingProbability)) {
                    counters_.ringsDropped.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::SnoopDropped,
                                        track, nowTicks(), qid, cnt);
                    }
                } else {
                    hpDev_->ring(qid, cnt);
                }
                // Close the window: advance the epoch before lowering
                // the in-flight count so the watchdog can't see a
                // settled count with a stale epoch.
                rxEpoch_[qid].fetch_add(1, std::memory_order_release);
                rxInFlight_[qid].fetch_sub(1,
                                           std::memory_order_release);
            }
            touched.clear();

            // Flush the batch's typed rejects: one TX ring per touched
            // TX queue, same batching discipline as the request path.
            for (unsigned tx = 0; tx < cfg_.txThreads; ++tx) {
                if (txCounts[tx] > 0) {
                    txDevs_[tx]->ring(0, txCounts[tx]);
                    txCounts[tx] = 0;
                }
            }

            // Doorbell-storm injection: the adversarial tenant's driver
            // rings its whole queue group with zero-item doorbells,
            // burning wakeups on spurious grants until the watchdog's
            // rate cap mutes the queues.
            if (stormSeen) {
                const dp::TenantSpec &s =
                    tenants_->spec(cfg_.fault.stormTenant);
                for (unsigned r = 0; r < cfg_.fault.stormRingsPerBatch;
                     ++r) {
                    hpDev_->ring(s.queueFirst + r % s.queueCount, 0);
                }
            }
        }
    }
}

void
UdpServer::enqueueReject(const sockaddr_in &peer,
                         const wire::RequestHeader &hdr,
                         wire::Status status, QueueId qid,
                         unsigned tenant, std::uint64_t rxNs,
                         std::vector<std::uint32_t> &txCounts,
                         FrameHandle &&frame)
{
    // A reject normally rides the request's own frame; a null handle
    // (pool-dry scratch path) draws one from the small reserve pool so
    // exhaustion still answers typed.
    if (!frame && rejectPool_)
        frame = rejectPool_->tryAcquire();
    if (!frame) {
        // Reserve dry too: the only truly unanswerable case.
        counters_.poolDrops.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    wire::ResponseHeader rh;
    rh.opcode = hdr.opcode;
    rh.seq = hdr.seq;
    rh.clientTimeNs = hdr.clientTimeNs;
    rh.flowId = hdr.flowId;
    rh.status = status;
    rh.payloadLen = 0;

    Response out;
    out.seq = rh.seq;
    out.rxNs = rxNs;
    out.doneNs = 0; // reject sentinel: TX skips stage latency
    out.tenant = tenant;
    out.peer = peer;
    const std::size_t written =
        wire::buildResponseInPlace(frame.data(), frame.capacity(), rh);
    hp_assert(written != 0, "payload-free reject must serialize");
    out.len = static_cast<std::uint32_t>(written);
    out.frame = std::move(frame);

    const unsigned tx = qid % cfg_.txThreads;
    if (!txQueues_[tx]->tryPush(std::move(out))) {
        counters_.txDrops.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ++txCounts[tx];
}

void
UdpServer::handleBatch(QueueId qid, std::uint64_t n)
{
    trace::Tracer *tracer = cfg_.tracer;
    const int widx = emu::DataPlanePool::workerIndex();
    const std::uint32_t track = widx >= 0 ? widx : 0;
    // Off-pool callers (the watchdog's polled fallback serve) write the
    // watchdog's telemetry shard: worker shards are single-writer and
    // worker 0 may be live concurrently.
    const unsigned shard = widx >= 0
                               ? workerShard(static_cast<unsigned>(widx))
                               : watchdogShard();
    telemetry::StageLatencyShards *lat = stageLat_.get();
    telemetry::FlightRecorder &flight = *flight_;
    if (HP_TRACE_ON(tracer)) {
        tracer->instant(trace::Stage::QwaitReturn, track, nowTicks(),
                        qid, n);
    }

    std::vector<Request> reqs;
    reqs.reserve(n);
    // The doorbell can over-advertise (watchdog replays, drain races);
    // serve what is actually queued.
    reqQueues_[qid]->popBatch(reqs, n);
    if (reqs.empty())
        return;

    // One clock read per grant covers the queue-wait stage for the
    // whole batch; sampled requests get precise per-request Service
    // spans on top.
    const std::uint64_t grantNs = lat ? nowNs() : 0;
    if (flight.enabled()) {
        flight.stamp(shard, trace::Stage::QwaitReturn,
                     trace::Phase::Instant, track, nowTicks(), qid,
                     reqs.size());
    }

    std::vector<std::uint32_t> txCounts(cfg_.txThreads, 0);
    for (Request &req : reqs) {
        // Same decimation as RX: a sequence number that sampled there
        // samples here too, so per-request spans stay coherent across
        // stages.
        const bool stageSampled =
            lat && (req.hdr.seq & stageSampleMask_) == 0;
        if (stageSampled) {
            lat->record(
                shard, telemetry::ServerStage::QwaitService,
                req.tenant,
                static_cast<double>(grantNs - req.admitNs));
        }
        const bool sampledReq = flight.sampled(req.hdr.seq);
        if (sampledReq) {
            flight.stamp(shard, trace::Stage::Service,
                         trace::Phase::Begin, track, nowTicks(), qid,
                         req.hdr.seq);
        }
        if (HP_TRACE_ON(tracer)) {
            tracer->begin(trace::Stage::Service, track, nowTicks(), qid,
                          req.hdr.seq);
        }
        Response resp = makeResponse(track, qid, req);
        resp.rxNs = req.rxNs;
        resp.tenant = req.tenant;
        // doneNs == 0 tells TX to skip the service->tx and e2e
        // samples, so decimated requests pay no clock read here and
        // none at TX either.
        resp.doneNs = stageSampled ? nowNs() : 0;
        if (sampledReq) {
            flight.stamp(shard, trace::Stage::Service,
                         trace::Phase::End, track, nowTicks(), qid,
                         req.hdr.seq);
        }
        if (HP_TRACE_ON(tracer)) {
            tracer->end(trace::Stage::Service, track, nowTicks(), qid,
                        req.hdr.seq);
        }
        const unsigned tx = qid % cfg_.txThreads;
        if (!txQueues_[tx]->tryPush(std::move(resp))) {
            counters_.txDrops.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        ++txCounts[tx];
    }
    hotCounters_->add(shard, telemetry::HotCounter::Served,
                      reqs.size());
    const unsigned owner = tenants_->tenantOfQueue(qid);
    if (owner != TenantTable::invalidTenant) {
        tenants_->counters(owner).served.fetch_add(
            reqs.size(), std::memory_order_relaxed);
    }
    for (unsigned tx = 0; tx < cfg_.txThreads; ++tx)
        if (txCounts[tx] > 0)
            txDevs_[tx]->ring(0, txCounts[tx]);
}

UdpServer::Response
UdpServer::makeResponse(unsigned worker, QueueId qid, Request &req)
{
    wire::ResponseHeader rh;
    rh.opcode = req.hdr.opcode;
    rh.seq = req.hdr.seq;
    rh.clientTimeNs = req.hdr.clientTimeNs;
    rh.flowId = req.hdr.flowId;
    rh.status = wire::statusOk;

    // The response is built in the request's own frame.  RX received
    // the datagram at frame + responseHeadroom, which puts the request
    // payload exactly at frame + ResponseHeader::wireSize — already
    // where the response payload belongs.  Echo therefore writes a
    // header and moves nothing.
    std::uint8_t *frame = req.frame.data();
    std::uint8_t *framePayload = frame + wire::ResponseHeader::wireSize;
    std::uint32_t payloadLen = req.hdr.payloadLen;

    switch (req.hdr.opcode) {
      case wire::Opcode::Echo:
        break; // payload is already in place: zero copies
      case wire::Opcode::Encap: {
        net::PacketBuffer encapBuf(framePayload, req.hdr.payloadLen);
        static const net::Ipv6Header outer = outerTemplate();
        if (net::greEncapsulate(encapBuf, outer, req.hdr.flowId) &&
            encapBuf.size() <= wire::maxDatagramBytes -
                                   wire::ResponseHeader::wireSize) {
            // Encap grows the packet, so the transform result cannot
            // share bytes with its input: one counted copy-out.
            std::memcpy(framePayload, encapBuf.data(), encapBuf.size());
            req.frame.countCopy();
            payloadLen = static_cast<std::uint32_t>(encapBuf.size());
        } else {
            rh.status = wire::statusBadPayload;
            payloadLen = 0;
        }
        break;
      }
      case wire::Opcode::Steer: {
        queueing::WorkItem item;
        item.seq = req.hdr.seq;
        item.flowId = req.hdr.flowId;
        item.payloadBytes = req.hdr.payloadLen;
        const unsigned dest = steerers_[worker]->steer(item);
        // The 8-byte verdict overwrites the request payload in place
        // (the steer decision never reads the payload bytes).
        net::putBe32(framePayload, flowHash(FlowKey{0, 0, 0, 0,
                                                    req.hdr.flowId}));
        net::putBe32(framePayload + 4, dest);
        payloadLen = 8;
        break;
      }
      case wire::Opcode::HeavyHitter:
      case wire::Opcode::Conntrack:
      case wire::Opcode::SpinRtt: {
        // Stateful app dispatch: the shard is the queue id, so every
        // flow's state lives with the queue its crc32c hash steered it
        // to — no cross-core state access.  The output buffer ALIASES
        // the request payload (in-place response build); handlers
        // decode fully before writing, and never copy frame bytes, so
        // the zero-copy tripwire stays untouched.
        app::AppRequest areq;
        areq.flowId = req.hdr.flowId;
        areq.seq = req.hdr.seq;
        areq.nowNs = nowNs();
        areq.payload = req.payload();
        areq.payloadLen = req.hdr.payloadLen;
        const unsigned idx = static_cast<unsigned>(req.hdr.opcode) -
                             wire::firstAppOpcode;
        const app::AppResult ares = apps_[idx]->handle(
            static_cast<unsigned>(qid), areq, framePayload,
            req.frame.capacity() - wire::ResponseHeader::wireSize);
        if (ares.ok) {
            payloadLen = ares.payloadLen;
        } else {
            rh.status = wire::statusBadPayload;
            payloadLen = 0;
        }
        break;
      }
    }

    rh.payloadLen = payloadLen;
    std::size_t written = wire::buildResponseInPlace(
        frame, req.frame.capacity(), rh);
    if (written == 0) {
        // Result would not fit a datagram: fail the request closed.
        rh.status = wire::statusBadPayload;
        rh.payloadLen = 0;
        written = wire::buildResponseInPlace(frame,
                                             req.frame.capacity(), rh);
    }
    Response out;
    out.seq = rh.seq;
    out.peer = req.peer;
    out.len = static_cast<std::uint32_t>(written);
    out.frame = std::move(req.frame);
    if (rh.status != wire::statusOk)
        counters_.badStatus.fetch_add(1, std::memory_order_relaxed);
    return out;
}

void
UdpServer::txLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    emu::EmuHyperPlane &dev = *txDevs_[index];
    queueing::MpmcQueue<Response> &queue = *txQueues_[index];
    UdpSocket &sock = txSockets_[index];

    const unsigned shard = txShard(index);
    telemetry::CounterShards &hot = *hotCounters_;
    telemetry::StageLatencyShards *lat = stageLat_.get();
    telemetry::FlightRecorder &flight = *flight_;

    std::vector<Response> pending;
    std::vector<TxView> views;

    const auto flush = [&](std::size_t n) {
        pending.clear();
        queue.popBatch(pending, n);
        if (pending.empty())
            return;
        // sendmmsg gathers straight from the pool frames; the frames
        // release back to their pools when `pending` clears next round.
        views.clear();
        views.reserve(pending.size());
        for (const Response &r : pending)
            views.push_back(TxView{r.frame.data(), r.len, &r.peer});
        const std::size_t sent =
            sock.sendBatch(views.data(), views.size());
        hot.add(shard, telemetry::HotCounter::TxPackets, sent);
        if (sent < views.size()) {
            counters_.txSendErrors.fetch_add(
                views.size() - sent, std::memory_order_relaxed);
        }
        if (lat) {
            // One clock read covers the whole sent batch.  doneNs == 0
            // means no worker finish timestamp exists — a typed reject
            // or a request skipped by stage decimation — so neither
            // per-request sample applies.
            const std::uint64_t txNs = nowNs();
            for (std::size_t i = 0; i < sent; ++i) {
                const Response &r = pending[i];
                if (r.doneNs != 0) {
                    lat->record(
                        shard, telemetry::ServerStage::ServiceTx,
                        r.tenant,
                        static_cast<double>(txNs - r.doneNs));
                    lat->record(
                        shard, telemetry::ServerStage::EndToEnd,
                        r.tenant,
                        static_cast<double>(txNs - r.rxNs));
                }
            }
        }
        if (flight.enabled()) {
            const Tick t = nowTicks();
            for (std::size_t i = 0; i < sent; ++i) {
                if (flight.sampled(pending[i].seq)) {
                    flight.stamp(shard, trace::Stage::Completion,
                                 trace::Phase::Instant,
                                 trace::trackDevice, t,
                                 invalidQueueId, pending[i].seq);
                }
            }
        }
        if (HP_TRACE_ON(tracer)) {
            for (std::size_t i = 0; i < sent; ++i) {
                tracer->instant(trace::Stage::Completion,
                                trace::trackDevice, nowTicks(),
                                invalidQueueId, pending[i].seq);
            }
        }
    };

    while (txRunning_.load(std::memory_order_relaxed)) {
        const auto qid = dev.qwait(milliseconds(5));
        if (!qid)
            continue;
        const std::uint64_t n = dev.take(*qid, cfg_.rxBatch);
        if (n == 0)
            continue;
        flush(n);
    }
    // Final flush: answer everything already queued before exiting.
    while (queue.size() > 0)
        flush(cfg_.rxBatch);
}

void
UdpServer::watchdogLoop()
{
    trace::Tracer *tracer = cfg_.tracer;
    const auto period = microseconds(
        std::max<long>(50, static_cast<long>(
                               cfg_.fault.watchdogPeriodUs)));
    const unsigned shard = watchdogShard();
    telemetry::FlightRecorder &flight = *flight_;
    const auto fstamp = [&](trace::Stage st, QueueId qid,
                            std::uint64_t arg = 0) {
        if (flight.enabled()) {
            flight.stamp(shard, st, trace::Phase::Instant,
                         trace::trackWatchdog, nowTicks(), qid, arg);
        }
    };

    while (watchdogRunning_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(period);
        counters_.watchdogSweeps.fetch_add(1, std::memory_order_relaxed);
        bool demotedThisSweep = false;
        if (HP_TRACE_ON(tracer)) {
            tracer->instant(trace::Stage::WatchdogSweep,
                            trace::trackWatchdog, nowTicks());
        }
        for (QueueId qid = 0; qid < cfg_.numQueues; ++qid) {
            // Doorbell-storm audit: diff the device's monotonic
            // ring-call counter across sweeps.  A queue ringing past
            // the cap is demoted — muted on the device (its rings keep
            // their accounting but wake nobody) and handed to the
            // polled fallback path below.
            const std::uint64_t rings = hpDev_->ringCalls(qid);
            const std::uint64_t ringDelta = rings - ringsPrev_[qid];
            ringsPrev_[qid] = rings;
            const std::uint64_t cap = cfg_.fault.doorbellRateCap;

            if (hpDev_->isMuted(qid)) {
                // Muted: notification is severed, so progress is this
                // sweep's poll.  Muted rings create no deficit — skip
                // the deficit machinery entirely.
                if (hpDev_->pollActivate(qid)) {
                    fallback_.polls.inc();
                    counters_.fallbackServes.fetch_add(
                        1, std::memory_order_relaxed);
                    fstamp(trace::Stage::FallbackServe, qid);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::FallbackServe,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                if (cap > 0 && ringDelta > cap) {
                    cleanSweeps_[qid] = 0;
                } else if (++cleanSweeps_[qid] >=
                           cfg_.fault.promoteCleanSweeps) {
                    hpDev_->setMuted(qid, false);
                    fallback_.remove(qid);
                    recoveryCount_[qid] = 0;
                    cleanSweeps_[qid] = 0;
                    eventLog_.post(telemetry::OpEventKind::Promotion,
                                   nowNs(), qid);
                    fstamp(trace::Stage::Promotion, qid);
                    counters_.promotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).promotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Promotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                deficitPrev_[qid] = 0;
                continue;
            }
            if (cap > 0 && ringDelta > cap) {
                hpDev_->setMuted(qid, true);
                if (!fallback_.contains(qid))
                    fallback_.add(qid);
                cleanSweeps_[qid] = 0;
                demotedThisSweep = true;
                counters_.demotions.fetch_add(1,
                                              std::memory_order_relaxed);
                counters_.stormDemotions.fetch_add(
                    1, std::memory_order_relaxed);
                const unsigned owner = tenants_->tenantOfQueue(qid);
                eventLog_.post(
                    telemetry::OpEventKind::StormDemotion, nowNs(),
                    qid, ringDelta,
                    owner != TenantTable::invalidTenant
                        ? "tenant=" + tenants_->name(owner)
                        : std::string());
                fstamp(trace::Stage::Demotion, qid, ringDelta);
                if (owner != TenantTable::invalidTenant) {
                    tenants_->counters(owner).demotions.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::Demotion,
                                    trace::trackWatchdog, nowTicks(),
                                    qid);
                }
                deficitPrev_[qid] = 0;
                continue;
            }

            // Seqlock read: an RX thread mid-batch has pushed requests
            // whose ring is still coming — that window is not a
            // deficit.  Sample the epoch, bail if a window is open,
            // read the counters, and bail again if a window opened or
            // closed meanwhile.  Only a read taken entirely between
            // windows can confirm a deficit.
            const std::uint32_t epoch0 =
                rxEpoch_[qid].load(std::memory_order_acquire);
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            // Read the doorbell before the depth counters: a take
            // between the reads then under-counts the deficit (safe)
            // instead of inventing one.
            const std::uint64_t adv = hpDev_->pendingItems(qid);
            const std::uint64_t popped = reqQueues_[qid]->totalPopped();
            const std::uint64_t pushed = reqQueues_[qid]->totalPushed();
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0 ||
                rxEpoch_[qid].load(std::memory_order_acquire) !=
                    epoch0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            const std::uint64_t depth =
                pushed > popped ? pushed - popped : 0;
            const std::uint64_t deficit = depth > adv ? depth - adv : 0;

            if (fallback_.contains(qid)) {
                // Demoted: polled mode.  Re-advertise any deficit every
                // sweep; promote back after enough clean sweeps.
                if (deficit > 0) {
                    cleanSweeps_[qid] = 0;
                    fallback_.polls.inc();
                    fallback_.tasksServed.inc(deficit);
                    counters_.fallbackServes.fetch_add(
                        deficit, std::memory_order_relaxed);
                    hpDev_->ring(qid, deficit);
                    fstamp(trace::Stage::FallbackServe, qid, deficit);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::FallbackServe,
                                        trace::trackWatchdog, nowTicks(),
                                        qid, deficit);
                    }
                } else if (++cleanSweeps_[qid] >=
                           cfg_.fault.promoteCleanSweeps) {
                    fallback_.remove(qid);
                    recoveryCount_[qid] = 0;
                    cleanSweeps_[qid] = 0;
                    eventLog_.post(telemetry::OpEventKind::Promotion,
                                   nowNs(), qid);
                    fstamp(trace::Stage::Promotion, qid);
                    counters_.promotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).promotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Promotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                deficitPrev_[qid] = 0;
                continue;
            }

            // Armed queue: a transient deficit is just an RX thread
            // between push and ring, so recovery requires the deficit
            // to persist across two consecutive sweeps.
            if (deficit > 0 && deficitPrev_[qid] > 0) {
                const std::uint64_t lost =
                    std::min(deficit, deficitPrev_[qid]);
                hpDev_->ring(qid, lost);
                counters_.watchdogRecoveries.fetch_add(
                    1, std::memory_order_relaxed);
                eventLog_.post(
                    telemetry::OpEventKind::RingDropRecovery, nowNs(),
                    qid, lost);
                fstamp(trace::Stage::WatchdogRecovery, qid, lost);
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::WatchdogRecovery,
                                    trace::trackWatchdog, nowTicks(),
                                    qid, lost);
                }
                deficitPrev_[qid] = 0;
                if (++recoveryCount_[qid] >=
                    cfg_.fault.demoteThreshold) {
                    fallback_.add(qid);
                    cleanSweeps_[qid] = 0;
                    demotedThisSweep = true;
                    eventLog_.post(telemetry::OpEventKind::Demotion,
                                   nowNs(), qid,
                                   recoveryCount_[qid]);
                    fstamp(trace::Stage::Demotion, qid);
                    counters_.demotions.fetch_add(
                        1, std::memory_order_relaxed);
                    const unsigned owner = tenants_->tenantOfQueue(qid);
                    if (owner != TenantTable::invalidTenant) {
                        tenants_->counters(owner).demotions.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Demotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
            } else {
                deficitPrev_[qid] = deficit;
            }
        }

        // ---- stateful app idle expiry: the watchdog drives every
        //      handler's cross-shard sweep (handlers also expire
        //      amortized in the data path) -----------------------------
        {
            const std::uint64_t sweepNs = nowNs();
            for (auto &app : apps_)
                app->sweepIdle(sweepNs);
        }

        // ---- per-sweep telemetry: shed spikes, tenant thresholds,
        //      and flight-dump triggers -------------------------------
        const auto ld = [](const std::atomic<std::uint64_t> &c) {
            return c.load(std::memory_order_relaxed);
        };
        const std::uint64_t shedNow = ld(counters_.shedRateLimited) +
                                      ld(counters_.shedWatermark) +
                                      ld(counters_.shedQueueFull);
        const std::uint64_t shedDelta = shedNow - shedPrevSweep_;
        shedPrevSweep_ = shedNow;
        const bool shedSpike = cfg_.telemetry.shedSpikePerSweep > 0 &&
                               shedDelta >
                                   cfg_.telemetry.shedSpikePerSweep;
        if (shedSpike) {
            eventLog_.post(telemetry::OpEventKind::ShedSpike, nowNs(),
                           ~0u, shedDelta);
        }
        for (unsigned t = 0; t < tenants_->numTenants(); ++t) {
            const TenantCounters &tc = tenants_->counters(t);
            const std::uint64_t tShed = ld(tc.rateLimited) +
                                        ld(tc.watermarkShed) +
                                        ld(tc.queueFullShed);
            const std::uint64_t tDelta = tShed - tenantShedPrev_[t];
            tenantShedPrev_[t] = tShed;
            if (tDelta > 0 && !tenantShedActive_[t]) {
                eventLog_.post(telemetry::OpEventKind::ShedThreshold,
                               nowNs(), ~0u, tDelta,
                               "tenant=" + tenants_->name(t));
            }
            tenantShedActive_[t] = tDelta > 0 ? 1 : 0;
        }

        if (dumpRequested_.exchange(false,
                                    std::memory_order_relaxed)) {
            maybeFlightDump("requested", nowNs());
        } else if (demotedThisSweep && cfg_.telemetry.dumpOnDemotion) {
            maybeFlightDump("demotion", nowNs());
        } else if (shedSpike) {
            maybeFlightDump("shed_spike", nowNs());
        }
    }
}

void
UdpServer::maybeFlightDump(const char *reason, std::uint64_t ns)
{
    if (!flight_ || !flight_->enabled())
        return;
    const auto minGapNs = static_cast<std::uint64_t>(
        cfg_.telemetry.minDumpIntervalSec * 1e9);
    if (lastDumpNs_ != 0 && ns - lastDumpNs_ < minGapNs)
        return;
    lastDumpNs_ = ns;
    const std::uint64_t n =
        flightDumps_.fetch_add(1, std::memory_order_relaxed);
    const std::string path = cfg_.telemetry.flightDumpPrefix + "_" +
                             std::to_string(n) + ".json";
    const bool ok = dumpFlightTrace(path);
    eventLog_.post(telemetry::OpEventKind::FlightDump, ns, ~0u, n,
                   std::string(reason) + " -> " + path +
                       (ok ? "" : " (write failed)"));
    if (!ok)
        hp_warn("UdpServer: flight dump to '%s' failed", path.c_str());
}

void
UdpServer::registerStats(stats::Registry &reg, const std::string &prefix)
{
    const auto scalar = [&reg, &prefix](
                            const char *name,
                            const std::atomic<std::uint64_t> *c) {
        reg.addScalar(prefix + "." + name, [c] {
            return static_cast<double>(
                c->load(std::memory_order_relaxed));
        });
    };
    // Hot counters live in the telemetry shards; aggregate on read.
    const auto hot = [&reg, &prefix, this](const char *name,
                                           telemetry::HotCounter c) {
        reg.addScalar(prefix + "." + name, [this, c] {
            return hotCounters_
                ? static_cast<double>(hotCounters_->total(c))
                : 0.0;
        });
    };
    hot("rx_batches", telemetry::HotCounter::RxBatches);
    hot("rx_packets", telemetry::HotCounter::RxPackets);
    hot("rx_parse_errors", telemetry::HotCounter::ParseErrors);
    hot("requests_served", telemetry::HotCounter::Served);
    hot("tx_packets", telemetry::HotCounter::TxPackets);
    scalar("rx_queue_drops", &counters_.queueDrops);
    scalar("shed_rate_limited", &counters_.shedRateLimited);
    scalar("shed_watermark", &counters_.shedWatermark);
    scalar("shed_queue_full", &counters_.shedQueueFull);
    scalar("storm_demotions", &counters_.stormDemotions);
    scalar("rings_dropped", &counters_.ringsDropped);
    scalar("responses_bad_status", &counters_.badStatus);
    scalar("tx_queue_drops", &counters_.txDrops);
    scalar("tx_send_errors", &counters_.txSendErrors);
    scalar("watchdog_sweeps", &counters_.watchdogSweeps);
    scalar("watchdog_recoveries", &counters_.watchdogRecoveries);
    scalar("fallback_serves", &counters_.fallbackServes);
    scalar("demotions", &counters_.demotions);
    scalar("promotions", &counters_.promotions);
    scalar("pool_drops", &counters_.poolDrops);

    // Zero-copy pool health.  Sums across the per-RX-shard pools (plus
    // the reject reserve where it applies).
    reg.addScalar(prefix + ".pool.frames_total", [this] {
        double total = 0;
        for (const auto &p : rxPools_)
            total += static_cast<double>(p->numFrames());
        return total;
    });
    reg.addScalar(prefix + ".pool.frames_free", [this] {
        double total = 0;
        for (const auto &p : rxPools_)
            total += static_cast<double>(p->freeFrames());
        return total;
    });
    reg.addScalar(prefix + ".pool.exhausted", [this] {
        double total = 0;
        for (const auto &p : rxPools_)
            total += static_cast<double>(p->exhausted());
        if (rejectPool_)
            total += static_cast<double>(rejectPool_->exhausted());
        return total;
    });
    reg.addScalar(prefix + ".pool.reject_reserve_free", [this] {
        return rejectPool_
                   ? static_cast<double>(rejectPool_->freeFrames())
                   : 0.0;
    });
    // The zero-copy tripwire: payload copies RX->TX.  Echo-only runs
    // must hold this at zero; encap pays one per request by design.
    reg.addScalar(prefix + ".payload_copies", [this] {
        double total = 0;
        for (const auto &p : rxPools_)
            total += static_cast<double>(p->copyEvents());
        return total;
    });

    // Stateful app counters: server.app.<name>.* (handlers register
    // their own; getters sum shards under the shard locks).
    for (auto &app : apps_)
        app->registerStats(reg, prefix + ".app." + app->name());

    // SIMD dispatch provenance: which kernel tier each hot function
    // resolved to (0 = scalar, 1 = sse, 2 = avx2).
    reg.addScalar(prefix + ".simd.checksum_level", [] {
        return static_cast<double>(net::simd::kernels().checksumLevel);
    });
    reg.addScalar(prefix + ".simd.crc32c_level", [] {
        return static_cast<double>(net::simd::kernels().crc32cLevel);
    });
    reg.addScalar(prefix + ".simd.header_level", [] {
        return static_cast<double>(
            net::simd::kernels().headerCheckLevel);
    });
    reg.addScalar(prefix + ".simd.force_scalar", [] {
        return net::simd::kernels().forcedScalar ? 1.0 : 0.0;
    });

    // Telemetry-plane self-observation.
    reg.addScalar(prefix + ".telemetry.flight_recorded", [this] {
        return flight_ ? static_cast<double>(flight_->recorded())
                       : 0.0;
    });
    reg.addScalar(prefix + ".telemetry.flight_sample_every", [this] {
        return flight_ ? static_cast<double>(flight_->sampleEvery())
                       : 0.0;
    });
    reg.addScalar(prefix + ".telemetry.flight_dumps", [this] {
        return static_cast<double>(flightDumps());
    });
    reg.addScalar(prefix + ".telemetry.events_posted", [this] {
        return static_cast<double>(eventLog_.posted());
    });
    reg.addScalar(prefix + ".telemetry.metrics_requests", [this] {
        return metrics_
            ? static_cast<double>(metrics_->requestsServed())
            : 0.0;
    });
    reg.addScalar(prefix + ".uptime_seconds", [this] {
        return static_cast<double>(nowNs()) / 1e9;
    });
    reg.addScalar(prefix + ".backlog", [this] {
        return static_cast<double>(backlog());
    });

    // Per-stage latency quantiles (ns), aggregated across shards and
    // tenants at read time.
    for (unsigned si = 0; si < telemetry::kNumServerStages; ++si) {
        const auto st = static_cast<telemetry::ServerStage>(si);
        const std::string sp =
            prefix + ".stage." + telemetry::toString(st);
        const auto q = [&reg, &sp, st, this](const char *name,
                                             double quant) {
            reg.addScalar(sp + "." + name, [this, st, quant] {
                return stageLat_
                    ? stageLat_->aggregate(st).quantile(quant)
                    : 0.0;
            });
        };
        q("p50_ns", 0.50);
        q("p99_ns", 0.99);
        q("p999_ns", 0.999);
        reg.addScalar(sp + ".mean_ns", [this, st] {
            return stageLat_ ? stageLat_->aggregate(st).mean() : 0.0;
        });
        reg.addScalar(sp + ".count", [this, st] {
            return stageLat_
                ? static_cast<double>(stageLat_->samples(st))
                : 0.0;
        });
    }
    if (tenants_) {
        for (unsigned t = 0; t < tenants_->numTenants(); ++t) {
            const std::string tp =
                prefix + ".tenant." + tenants_->name(t);
            const TenantCounters &tc = tenants_->counters(t);
            const auto tscalar =
                [&reg, &tp](const char *name,
                            const std::atomic<std::uint64_t> *c) {
                    reg.addScalar(tp + "." + name, [c] {
                        return static_cast<double>(
                            c->load(std::memory_order_relaxed));
                    });
                };
            tscalar("admitted", &tc.admitted);
            tscalar("rate_limited", &tc.rateLimited);
            tscalar("watermark_shed", &tc.watermarkShed);
            tscalar("queue_full_shed", &tc.queueFullShed);
            tscalar("served", &tc.served);
            tscalar("demotions", &tc.demotions);
            tscalar("promotions", &tc.promotions);
            // Per-tenant per-stage quantiles, merged across shards.
            for (unsigned si = 0; si < telemetry::kNumServerStages;
                 ++si) {
                const auto st =
                    static_cast<telemetry::ServerStage>(si);
                const std::string sp =
                    tp + ".stage." + telemetry::toString(st);
                const auto tq = [&reg, &sp, st, t,
                                 this](const char *name, double quant) {
                    reg.addScalar(sp + "." + name,
                                  [this, st, t, quant] {
                                      return stageLat_
                                          ? stageLat_
                                                ->aggregate(st, t)
                                                .quantile(quant)
                                          : 0.0;
                                  });
                };
                tq("p50_ns", 0.50);
                tq("p99_ns", 0.99);
                tq("p999_ns", 0.999);
            }
        }
    }
    if (hpDev_)
        hpDev_->registerStats(reg, prefix + ".dev");
}

stats::LogHistogram
UdpServer::stageLatency(telemetry::ServerStage st) const
{
    if (stageLat_)
        return stageLat_->aggregate(st);
    return stats::LogHistogram(cfg_.telemetry.histBaseNs,
                               cfg_.telemetry.histGrowth,
                               cfg_.telemetry.histBins);
}

stats::LogHistogram
UdpServer::stageLatency(telemetry::ServerStage st,
                        unsigned tenant) const
{
    if (stageLat_ && tenant < stageLat_->numTenants())
        return stageLat_->aggregate(st, tenant);
    return stats::LogHistogram(cfg_.telemetry.histBaseNs,
                               cfg_.telemetry.histGrowth,
                               cfg_.telemetry.histBins);
}

std::string
UdpServer::flightTraceJson() const
{
    std::vector<trace::TraceEvent> events;
    if (flight_)
        events = flight_->snapshot();
    // Overlay the operational events the flight recorder does not
    // stamp itself (the watchdog already stamps demotions, promotions,
    // and recoveries) so the Perfetto view shows the incident timeline
    // next to the sampled request spans.
    for (const auto &e : eventLog_.snapshot()) {
        trace::Stage st;
        switch (e.kind) {
          case telemetry::OpEventKind::ShedThreshold:
          case telemetry::OpEventKind::ShedSpike:
            st = trace::Stage::AdmissionShed;
            break;
          case telemetry::OpEventKind::Startup:
          case telemetry::OpEventKind::FlightDump:
            st = trace::Stage::WatchdogSweep;
            break;
          default:
            continue; // stamped live by the watchdog already
        }
        trace::TraceEvent te;
        te.ts = nsToTicks(static_cast<double>(e.ns));
        te.arg = e.value;
        te.qid = e.queue == ~0u ? invalidQueueId : e.queue;
        te.track = trace::trackWatchdog;
        te.stage = st;
        te.phase = trace::Phase::Instant;
        events.push_back(te);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const trace::TraceEvent &a,
                        const trace::TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    return trace::chromeTraceJson(events);
}

bool
UdpServer::dumpFlightTrace(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    os << flightTraceJson();
    return os.good();
}

int
UdpServer::metricsPort() const
{
    return metrics_ && metrics_->running()
        ? static_cast<int>(metrics_->port())
        : -1;
}

std::string
UdpServer::prometheusPage() const
{
    if (!selfReg_) {
        stats::Registry reg;
        // registerStats is logically const here: it only reads
        // counter addresses and registers getters.
        const_cast<UdpServer *>(this)->registerStats(reg);
        return telemetry::prometheusText(
            reg, static_cast<double>(nowNs()) / 1e9);
    }
    return telemetry::prometheusText(
        *selfReg_, static_cast<double>(nowNs()) / 1e9);
}

std::string
UdpServer::metricsPage(const std::string &path,
                       std::string &contentType) const
{
    if (path == "/metrics") {
        contentType = "text/plain; version=0.0.4; charset=utf-8";
        return prometheusPage();
    }
    if (path == "/stats.json") {
        contentType = "application/json";
        if (selfReg_)
            return selfReg_->reportJson();
        stats::Registry reg;
        const_cast<UdpServer *>(this)->registerStats(reg);
        return reg.reportJson();
    }
    if (path == "/events.json") {
        contentType = "application/json";
        return eventLog_.json();
    }
    if (path == "/flight.json") {
        contentType = "application/json";
        return flightTraceJson();
    }
    if (path == "/healthz") {
        contentType = "text/plain; charset=utf-8";
        return running() ? "ok\n" : "stopping\n";
    }
    if (path == "/") {
        contentType = "text/plain; charset=utf-8";
        return "hyperplane udp server metrics endpoint\n"
               "  /metrics      Prometheus text exposition\n"
               "  /stats.json   full stats registry as JSON\n"
               "  /events.json  structured operational event log\n"
               "  /flight.json  flight-recorder Perfetto trace\n"
               "  /healthz      liveness probe\n";
    }
    return {};
}

} // namespace server
} // namespace hyperplane
