#include "server/server.hh"

#include <arpa/inet.h>

#include <algorithm>

#include "net/headers.hh"
#include "net/packet.hh"
#include "queueing/task_queue.hh"
#include "server/flow.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace server {

namespace {

using namespace std::chrono;

/** Outer tunnel header template for the Encap opcode (ULA fd00::/8). */
net::Ipv6Header
outerTemplate()
{
    net::Ipv6Header outer;
    outer.hopLimit = 64;
    outer.src[0] = 0xfd;
    outer.src[15] = 0x01;
    outer.dst[0] = 0xfd;
    outer.dst[15] = 0x02;
    return outer;
}

/** Remaining time until @p deadline, clamped at zero. */
nanoseconds
timeLeft(steady_clock::time_point deadline)
{
    const auto now = steady_clock::now();
    return now >= deadline ? nanoseconds(0) : deadline - now;
}

} // namespace

UdpServer::UdpServer(const ServerConfig &cfg)
    : cfg_(cfg), epoch_(steady_clock::now())
{
    hp_assert(cfg_.rxThreads > 0, "need at least one RX thread");
    hp_assert(cfg_.txThreads > 0, "need at least one TX thread");
    hp_assert(cfg_.workers > 0, "need at least one worker");
    hp_assert(cfg_.numQueues > 0, "need at least one queue");
    hp_assert(cfg_.rxBatch > 0, "rxBatch must be positive");
}

UdpServer::~UdpServer()
{
    stop(seconds(1));
}

std::uint64_t
UdpServer::nowNs() const
{
    return static_cast<std::uint64_t>(
        duration_cast<nanoseconds>(steady_clock::now() - epoch_)
            .count());
}

Tick
UdpServer::nowTicks() const
{
    return nsToTicks(static_cast<double>(nowNs()));
}

bool
UdpServer::start()
{
    if (running_.load())
        return true;

    // RX sockets: one SO_REUSEPORT shard per RX thread.  The first bind
    // picks the (possibly ephemeral) port; the rest join its group.
    const bool sharded = cfg_.rxThreads > 1;
    auto first = UdpSocket::bind(cfg_.bindIp, cfg_.port, sharded);
    if (!first)
        return false;
    port_ = first->localPort();
    boundIp_ = first->localIp();
    rxSockets_.push_back(std::move(*first));
    for (unsigned i = 1; i < cfg_.rxThreads; ++i) {
        auto s = UdpSocket::bind(cfg_.bindIp, port_, true);
        if (!s) {
            rxSockets_.clear();
            return false;
        }
        rxSockets_.push_back(std::move(*s));
    }
    // TX sockets stay out of the REUSEPORT group (they must not steal
    // inbound datagrams); replies carry their own ephemeral source.
    for (unsigned i = 0; i < cfg_.txThreads; ++i) {
        auto s = UdpSocket::open();
        if (!s) {
            rxSockets_.clear();
            txSockets_.clear();
            return false;
        }
        txSockets_.push_back(std::move(*s));
    }

    epoch_ = steady_clock::now();
    if (cfg_.tracer)
        cfg_.tracer->setClock([this] { return nowTicks(); });

    hpDev_ =
        std::make_unique<emu::EmuHyperPlane>(cfg_.numQueues, cfg_.policy);
    reqQueues_.clear();
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        const auto qid = hpDev_->addQueue();
        hp_assert(qid && *qid == q, "queue registration out of order");
        reqQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Request>>(
                cfg_.queueCapacity));
    }
    txDevs_.clear();
    txQueues_.clear();
    for (unsigned t = 0; t < cfg_.txThreads; ++t) {
        txDevs_.push_back(std::make_unique<emu::EmuHyperPlane>(1));
        txDevs_.back()->addQueue();
        txQueues_.push_back(
            std::make_unique<queueing::MpmcQueue<Response>>(
                cfg_.queueCapacity));
    }
    steerers_.clear();
    for (unsigned w = 0; w < cfg_.workers; ++w)
        steerers_.push_back(std::make_unique<workloads::PacketSteering>(
            cfg_.fault.seed + w));

    recoveryCount_.assign(cfg_.numQueues, 0);
    cleanSweeps_.assign(cfg_.numQueues, 0);
    deficitPrev_.assign(cfg_.numQueues, 0);
    rxInFlight_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    rxEpoch_ = std::make_unique<std::atomic<std::uint32_t>[]>(
        cfg_.numQueues);
    for (unsigned q = 0; q < cfg_.numQueues; ++q) {
        rxInFlight_[q].store(0, std::memory_order_relaxed);
        rxEpoch_[q].store(0, std::memory_order_relaxed);
    }

    running_.store(true);
    rxRunning_.store(true);
    txRunning_.store(true);

    pool_ = std::make_unique<emu::DataPlanePool>(
        *hpDev_, cfg_.workers,
        [this](QueueId qid, std::uint64_t n) { handleBatch(qid, n); },
        cfg_.maxBatch);
    pool_->start();

    for (unsigned t = 0; t < cfg_.txThreads; ++t)
        txThreads_.emplace_back([this, t] { txLoop(t); });
    for (unsigned i = 0; i < cfg_.rxThreads; ++i)
        rxThreads_.emplace_back([this, i] { rxLoop(i); });
    if (cfg_.fault.watchdogEnabled) {
        watchdogRunning_.store(true);
        watchdogThread_ = std::thread([this] { watchdogLoop(); });
    }
    return true;
}

bool
UdpServer::stop(std::chrono::nanoseconds drainDeadline)
{
    if (!running_.exchange(false))
        return true;
    const auto deadline = steady_clock::now() + drainDeadline;

    // 1. Stop accepting: join the RX shards.
    rxRunning_.store(false);
    for (auto &t : rxThreads_)
        t.join();
    rxThreads_.clear();

    // 2. Drain accepted requests.  The watchdog keeps running so that
    //    requests stranded by a dropped ring still get rescued.
    while (backlog() > 0 && steady_clock::now() < deadline)
        std::this_thread::sleep_for(microseconds(200));
    bool drained = backlog() == 0;

    // 3. Drain the doorbell residual, then stop the workers.  After
    //    this returns the pool threads are joined: no handler runs
    //    beyond this point.
    drained = pool_->drain(timeLeft(deadline)) && drained;

    if (watchdogRunning_.exchange(false) && watchdogThread_.joinable())
        watchdogThread_.join();

    // 4. Flush the response queues, then join the TX threads (each
    //    flushes its own remainder on exit).
    while (steady_clock::now() < deadline) {
        std::uint64_t left = 0;
        for (const auto &q : txQueues_)
            left += q->size();
        if (left == 0)
            break;
        std::this_thread::sleep_for(microseconds(200));
    }
    txRunning_.store(false);
    for (auto &t : txThreads_)
        t.join();
    txThreads_.clear();
    for (const auto &q : txQueues_)
        drained = drained && q->empty();

    rxSockets_.clear();
    txSockets_.clear();
    return drained;
}

std::uint64_t
UdpServer::backlog() const
{
    std::uint64_t total = 0;
    for (const auto &q : reqQueues_)
        total += q->size();
    return total;
}

void
UdpServer::rxLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    const std::uint32_t track = trace::trackHardwareBase + index;
    UdpSocket &sock = rxSockets_[index];
    EpollWaiter waiter;
    const bool havePoll = waiter.valid() && waiter.add(sock.fd());

    Rng rng(cfg_.fault.seed * 0x9e3779b97f4a7c15ULL + index + 1);
    std::vector<Datagram> batch;
    std::vector<std::uint32_t> counts(cfg_.numQueues, 0);
    std::vector<QueueId> touched;

    while (rxRunning_.load(std::memory_order_relaxed)) {
        if (havePoll) {
            if (waiter.wait(50).empty())
                continue;
        } else {
            // Degraded mode without epoll: short-sleep poll.
            std::this_thread::sleep_for(microseconds(100));
        }
        for (;;) {
            batch.clear();
            const std::size_t n = sock.recvBatch(batch, cfg_.rxBatch);
            if (n == 0)
                break;
            counters_.rxBatches.fetch_add(1, std::memory_order_relaxed);
            counters_.rxPackets.fetch_add(n, std::memory_order_relaxed);
            const std::uint64_t rxNs = nowNs();

            for (Datagram &d : batch) {
                const auto hdr =
                    wire::parseRequest(d.bytes.data(), d.bytes.size());
                if (!hdr) {
                    counters_.parseErrors.fetch_add(
                        1, std::memory_order_relaxed);
                    continue;
                }
                FlowKey key;
                key.srcIp = ntohl(d.peer.sin_addr.s_addr);
                key.dstIp = boundIp_;
                key.srcPort = ntohs(d.peer.sin_port);
                key.dstPort = port_;
                key.innerFlow =
                    cfg_.steerByInnerFlow ? hdr->flowId : 0;
                const QueueId qid = steerToQueue(key, cfg_.numQueues);

                Request req;
                req.peer = d.peer;
                req.hdr = *hdr;
                req.payload.assign(
                    d.bytes.begin() + wire::RequestHeader::wireSize,
                    d.bytes.end());
                req.rxNs = rxNs;
                // Open the seqlock window before the push so the
                // watchdog never observes a pushed-but-unrung request
                // without also seeing the window open.
                if (counts[qid] == 0)
                    rxInFlight_[qid].fetch_add(
                        1, std::memory_order_release);
                if (!reqQueues_[qid]->tryPush(std::move(req))) {
                    counters_.queueDrops.fetch_add(
                        1, std::memory_order_relaxed);
                    if (counts[qid] == 0)
                        rxInFlight_[qid].fetch_sub(
                            1, std::memory_order_release);
                    continue;
                }
                if (counts[qid]++ == 0)
                    touched.push_back(qid);
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::DoorbellWrite, track,
                                    nowTicks(), qid, hdr->seq);
                }
            }

            // One doorbell ring per (batch, queue).  The injectable
            // drop models a lost doorbell snoop between RX and the
            // notification device.
            for (QueueId qid : touched) {
                const std::uint32_t cnt = counts[qid];
                counts[qid] = 0;
                if (cfg_.fault.dropRingProbability > 0.0 &&
                    rng.chance(cfg_.fault.dropRingProbability)) {
                    counters_.ringsDropped.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::SnoopDropped,
                                        track, nowTicks(), qid, cnt);
                    }
                } else {
                    hpDev_->ring(qid, cnt);
                }
                // Close the window: advance the epoch before lowering
                // the in-flight count so the watchdog can't see a
                // settled count with a stale epoch.
                rxEpoch_[qid].fetch_add(1, std::memory_order_release);
                rxInFlight_[qid].fetch_sub(1,
                                           std::memory_order_release);
            }
            touched.clear();
        }
    }
}

void
UdpServer::handleBatch(QueueId qid, std::uint64_t n)
{
    trace::Tracer *tracer = cfg_.tracer;
    const int widx = emu::DataPlanePool::workerIndex();
    const std::uint32_t track = widx >= 0 ? widx : 0;
    if (HP_TRACE_ON(tracer)) {
        tracer->instant(trace::Stage::QwaitReturn, track, nowTicks(),
                        qid, n);
    }

    std::vector<Request> reqs;
    reqs.reserve(n);
    // The doorbell can over-advertise (watchdog replays, drain races);
    // serve what is actually queued.
    reqQueues_[qid]->popBatch(reqs, n);
    if (reqs.empty())
        return;

    std::vector<std::uint32_t> txCounts(cfg_.txThreads, 0);
    for (Request &req : reqs) {
        if (HP_TRACE_ON(tracer)) {
            tracer->begin(trace::Stage::Service, track, nowTicks(), qid,
                          req.hdr.seq);
        }
        Response resp = makeResponse(track, req);
        if (HP_TRACE_ON(tracer)) {
            tracer->end(trace::Stage::Service, track, nowTicks(), qid,
                        req.hdr.seq);
        }
        const unsigned tx = qid % cfg_.txThreads;
        if (!txQueues_[tx]->tryPush(std::move(resp))) {
            counters_.txDrops.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        ++txCounts[tx];
    }
    counters_.served.fetch_add(reqs.size(), std::memory_order_relaxed);
    for (unsigned tx = 0; tx < cfg_.txThreads; ++tx)
        if (txCounts[tx] > 0)
            txDevs_[tx]->ring(0, txCounts[tx]);
}

UdpServer::Response
UdpServer::makeResponse(unsigned worker, const Request &req)
{
    wire::ResponseHeader rh;
    rh.opcode = req.hdr.opcode;
    rh.seq = req.hdr.seq;
    rh.clientTimeNs = req.hdr.clientTimeNs;
    rh.flowId = req.hdr.flowId;
    rh.status = wire::statusOk;

    const std::uint8_t *payload = nullptr;
    std::uint32_t payloadLen = 0;
    net::PacketBuffer encapBuf;
    std::uint8_t steerBuf[8];

    switch (req.hdr.opcode) {
      case wire::Opcode::Echo:
        payload = req.payload.data();
        payloadLen = static_cast<std::uint32_t>(req.payload.size());
        break;
      case wire::Opcode::Encap: {
        encapBuf = net::PacketBuffer(req.payload.data(),
                                     req.payload.size());
        static const net::Ipv6Header outer = outerTemplate();
        if (net::greEncapsulate(encapBuf, outer, req.hdr.flowId)) {
            payload = encapBuf.data();
            payloadLen = static_cast<std::uint32_t>(encapBuf.size());
        } else {
            rh.status = wire::statusBadPayload;
        }
        break;
      }
      case wire::Opcode::Steer: {
        queueing::WorkItem item;
        item.seq = req.hdr.seq;
        item.flowId = req.hdr.flowId;
        item.payloadBytes =
            static_cast<std::uint32_t>(req.payload.size());
        const unsigned dest = steerers_[worker]->steer(item);
        net::putBe32(steerBuf, flowHash(FlowKey{0, 0, 0, 0,
                                                req.hdr.flowId}));
        net::putBe32(steerBuf + 4, dest);
        payload = steerBuf;
        payloadLen = 8;
        break;
      }
    }

    Response out;
    out.seq = rh.seq;
    out.dgram.peer = req.peer;
    out.dgram.bytes.resize(wire::maxDatagramBytes);
    rh.payloadLen = payloadLen;
    std::size_t written =
        wire::buildResponse(out.dgram.bytes.data(),
                            out.dgram.bytes.size(), rh, payload);
    if (written == 0) {
        // Result would not fit a datagram: fail the request closed.
        rh.status = wire::statusBadPayload;
        rh.payloadLen = 0;
        written = wire::buildResponse(out.dgram.bytes.data(),
                                      out.dgram.bytes.size(), rh,
                                      nullptr);
    }
    out.dgram.bytes.resize(written);
    if (rh.status != wire::statusOk)
        counters_.badStatus.fetch_add(1, std::memory_order_relaxed);
    return out;
}

void
UdpServer::txLoop(unsigned index)
{
    trace::Tracer *tracer = cfg_.tracer;
    emu::EmuHyperPlane &dev = *txDevs_[index];
    queueing::MpmcQueue<Response> &queue = *txQueues_[index];
    UdpSocket &sock = txSockets_[index];

    std::vector<Response> pending;
    std::vector<Datagram> dgrams;

    const auto flush = [&](std::size_t n) {
        pending.clear();
        queue.popBatch(pending, n);
        if (pending.empty())
            return;
        dgrams.clear();
        dgrams.reserve(pending.size());
        for (Response &r : pending)
            dgrams.push_back(std::move(r.dgram));
        const std::size_t sent =
            sock.sendBatch(dgrams.data(), dgrams.size());
        counters_.txPackets.fetch_add(sent, std::memory_order_relaxed);
        if (sent < dgrams.size()) {
            counters_.txSendErrors.fetch_add(
                dgrams.size() - sent, std::memory_order_relaxed);
        }
        if (HP_TRACE_ON(tracer)) {
            for (std::size_t i = 0; i < sent; ++i) {
                tracer->instant(trace::Stage::Completion,
                                trace::trackDevice, nowTicks(),
                                invalidQueueId, pending[i].seq);
            }
        }
    };

    while (txRunning_.load(std::memory_order_relaxed)) {
        const auto qid = dev.qwait(milliseconds(5));
        if (!qid)
            continue;
        const std::uint64_t n = dev.take(*qid, cfg_.rxBatch);
        if (n == 0)
            continue;
        flush(n);
    }
    // Final flush: answer everything already queued before exiting.
    while (queue.size() > 0)
        flush(cfg_.rxBatch);
}

void
UdpServer::watchdogLoop()
{
    trace::Tracer *tracer = cfg_.tracer;
    const auto period = microseconds(
        std::max<long>(50, static_cast<long>(
                               cfg_.fault.watchdogPeriodUs)));

    while (watchdogRunning_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(period);
        counters_.watchdogSweeps.fetch_add(1, std::memory_order_relaxed);
        if (HP_TRACE_ON(tracer)) {
            tracer->instant(trace::Stage::WatchdogSweep,
                            trace::trackWatchdog, nowTicks());
        }
        for (QueueId qid = 0; qid < cfg_.numQueues; ++qid) {
            // Seqlock read: an RX thread mid-batch has pushed requests
            // whose ring is still coming — that window is not a
            // deficit.  Sample the epoch, bail if a window is open,
            // read the counters, and bail again if a window opened or
            // closed meanwhile.  Only a read taken entirely between
            // windows can confirm a deficit.
            const std::uint32_t epoch0 =
                rxEpoch_[qid].load(std::memory_order_acquire);
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            // Read the doorbell before the depth counters: a take
            // between the reads then under-counts the deficit (safe)
            // instead of inventing one.
            const std::uint64_t adv = hpDev_->pendingItems(qid);
            const std::uint64_t popped = reqQueues_[qid]->totalPopped();
            const std::uint64_t pushed = reqQueues_[qid]->totalPushed();
            if (rxInFlight_[qid].load(std::memory_order_acquire) != 0 ||
                rxEpoch_[qid].load(std::memory_order_acquire) !=
                    epoch0) {
                deficitPrev_[qid] = 0;
                continue;
            }
            const std::uint64_t depth =
                pushed > popped ? pushed - popped : 0;
            const std::uint64_t deficit = depth > adv ? depth - adv : 0;

            if (fallback_.contains(qid)) {
                // Demoted: polled mode.  Re-advertise any deficit every
                // sweep; promote back after enough clean sweeps.
                if (deficit > 0) {
                    cleanSweeps_[qid] = 0;
                    fallback_.polls.inc();
                    fallback_.tasksServed.inc(deficit);
                    counters_.fallbackServes.fetch_add(
                        deficit, std::memory_order_relaxed);
                    hpDev_->ring(qid, deficit);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::FallbackServe,
                                        trace::trackWatchdog, nowTicks(),
                                        qid, deficit);
                    }
                } else if (++cleanSweeps_[qid] >=
                           cfg_.fault.promoteCleanSweeps) {
                    fallback_.remove(qid);
                    recoveryCount_[qid] = 0;
                    cleanSweeps_[qid] = 0;
                    counters_.promotions.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Promotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
                deficitPrev_[qid] = 0;
                continue;
            }

            // Armed queue: a transient deficit is just an RX thread
            // between push and ring, so recovery requires the deficit
            // to persist across two consecutive sweeps.
            if (deficit > 0 && deficitPrev_[qid] > 0) {
                const std::uint64_t lost =
                    std::min(deficit, deficitPrev_[qid]);
                hpDev_->ring(qid, lost);
                counters_.watchdogRecoveries.fetch_add(
                    1, std::memory_order_relaxed);
                if (HP_TRACE_ON(tracer)) {
                    tracer->instant(trace::Stage::WatchdogRecovery,
                                    trace::trackWatchdog, nowTicks(),
                                    qid, lost);
                }
                deficitPrev_[qid] = 0;
                if (++recoveryCount_[qid] >=
                    cfg_.fault.demoteThreshold) {
                    fallback_.add(qid);
                    cleanSweeps_[qid] = 0;
                    counters_.demotions.fetch_add(
                        1, std::memory_order_relaxed);
                    if (HP_TRACE_ON(tracer)) {
                        tracer->instant(trace::Stage::Demotion,
                                        trace::trackWatchdog, nowTicks(),
                                        qid);
                    }
                }
            } else {
                deficitPrev_[qid] = deficit;
            }
        }
    }
}

void
UdpServer::registerStats(stats::Registry &reg, const std::string &prefix)
{
    const auto scalar = [&reg, &prefix](
                            const char *name,
                            const std::atomic<std::uint64_t> *c) {
        reg.addScalar(prefix + "." + name, [c] {
            return static_cast<double>(
                c->load(std::memory_order_relaxed));
        });
    };
    scalar("rx_batches", &counters_.rxBatches);
    scalar("rx_packets", &counters_.rxPackets);
    scalar("rx_parse_errors", &counters_.parseErrors);
    scalar("rx_queue_drops", &counters_.queueDrops);
    scalar("rings_dropped", &counters_.ringsDropped);
    scalar("requests_served", &counters_.served);
    scalar("responses_bad_status", &counters_.badStatus);
    scalar("tx_queue_drops", &counters_.txDrops);
    scalar("tx_packets", &counters_.txPackets);
    scalar("tx_send_errors", &counters_.txSendErrors);
    scalar("watchdog_sweeps", &counters_.watchdogSweeps);
    scalar("watchdog_recoveries", &counters_.watchdogRecoveries);
    scalar("fallback_serves", &counters_.fallbackServes);
    scalar("demotions", &counters_.demotions);
    scalar("promotions", &counters_.promotions);
    if (hpDev_)
        hpDev_->registerStats(reg, prefix + ".dev");
}

} // namespace server
} // namespace hyperplane
