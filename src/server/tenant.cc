#include "server/tenant.hh"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "sim/logging.hh"

namespace hyperplane {
namespace server {

TokenBucket::TokenBucket(double ratePerSec, double burst)
    : ratePerSec_(ratePerSec)
{
    if (ratePerSec > 0.0) {
        microPerNs_ = ratePerSec * microPerToken / 1e9;
        const double depth =
            burst > 0.0 ? burst : std::max(1.0, ratePerSec * 0.02);
        burstMicro_ = depth * microPerToken;
        microTokens_.store(static_cast<std::int64_t>(burstMicro_),
                           std::memory_order_relaxed);
    }
}

bool
TokenBucket::tryTake(std::uint64_t nowNs)
{
    if (unlimited())
        return true;

    // Refill: CAS-claim the elapsed window, then add its tokens.  A
    // claim is only attempted once at least one micro-token accrued, so
    // truncation loses < 1e-6 token per call.  Losing the CAS just
    // means another caller is adding the same window's tokens.
    std::uint64_t last = lastRefillNs_.load(std::memory_order_acquire);
    if (nowNs > last) {
        const double add =
            static_cast<double>(nowNs - last) * microPerNs_;
        if (add >= 1.0 &&
            lastRefillNs_.compare_exchange_strong(
                last, nowNs, std::memory_order_acq_rel)) {
            const auto addMicro = static_cast<std::int64_t>(add);
            const auto cap = static_cast<std::int64_t>(burstMicro_);
            const std::int64_t after =
                microTokens_.fetch_add(addMicro,
                                       std::memory_order_relaxed) +
                addMicro;
            if (after > cap) {
                microTokens_.fetch_sub(after - cap,
                                       std::memory_order_relaxed);
            }
        }
    }

    const auto cost = static_cast<std::int64_t>(microPerToken);
    const std::int64_t before =
        microTokens_.fetch_sub(cost, std::memory_order_acq_rel);
    if (before < cost) {
        microTokens_.fetch_add(cost, std::memory_order_relaxed);
        return false;
    }
    return true;
}

TenantTable::TenantTable(std::vector<dp::TenantSpec> specs,
                         unsigned numQueues,
                         std::size_t shedLowWatermark,
                         std::size_t shedHighWatermark)
    : specs_(std::move(specs))
{
    hp_assert(numQueues > 0, "need at least one queue");
    if (specs_.empty()) {
        dp::TenantSpec all;
        all.name = "default";
        all.queueFirst = 0;
        all.queueCount = numQueues;
        specs_.push_back(std::move(all));
    }
    const std::string err = dp::validateTenantSpecs(specs_, numQueues);
    if (!err.empty())
        throw std::invalid_argument("TenantTable: " + err);
    if (shedHighWatermark > 0 &&
        (shedLowWatermark == 0 ||
         shedLowWatermark > shedHighWatermark)) {
        throw std::invalid_argument(
            "TenantTable: shedLowWatermark must be in "
            "(0, shedHighWatermark] when watermark shedding is "
            "enabled");
    }

    names_.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i)
        names_.push_back(dp::tenantName(specs_[i], i));

    queueOwner_.assign(numQueues, invalidTenant);
    for (unsigned t = 0; t < specs_.size(); ++t) {
        const auto &s = specs_[t];
        for (unsigned q = s.queueFirst; q < s.queueFirst + s.queueCount;
             ++q) {
            queueOwner_[q] = t;
        }
    }

    // Priority-ranked shed thresholds: distinct priorities, ascending,
    // interpolate each rank between the low and high watermark.  The
    // lowest priority sheds first; with one priority level everyone
    // sheds at the high watermark.
    shedThreshold_.assign(specs_.size(), 0);
    if (shedHighWatermark > 0) {
        std::set<std::uint32_t> levels;
        for (const auto &s : specs_)
            levels.insert(s.priority);
        const std::size_t numLevels = levels.size();
        for (unsigned t = 0; t < specs_.size(); ++t) {
            const std::size_t rank = static_cast<std::size_t>(
                std::distance(levels.begin(),
                              levels.find(specs_[t].priority)));
            shedThreshold_[t] =
                numLevels <= 1
                    ? shedHighWatermark
                    : shedLowWatermark +
                          (shedHighWatermark - shedLowWatermark) *
                              rank / (numLevels - 1);
        }
    }

    buckets_.reserve(specs_.size());
    for (const auto &s : specs_) {
        buckets_.push_back(std::make_unique<TokenBucket>(
            s.rateLimitPerSec, s.burst));
    }
    counters_ = std::make_unique<TenantCounters[]>(specs_.size());
}

unsigned
TenantTable::tenantOfQueue(QueueId qid) const
{
    hp_assert(qid < queueOwner_.size(), "qid out of range");
    return queueOwner_[qid];
}

QueueId
TenantTable::steer(const FlowKey &key, unsigned tenant) const
{
    const auto &s = specs_[tenant];
    return s.queueFirst + flowHash(key) % s.queueCount;
}

bool
TenantTable::admit(unsigned tenant, std::uint64_t nowNs)
{
    return buckets_[tenant]->tryTake(nowNs);
}

} // namespace server
} // namespace hyperplane
