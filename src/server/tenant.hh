/**
 * @file
 * Tenant classification, admission control, and queue-group steering
 * for the UDP data-plane server.
 *
 * The TenantTable is the RX-side half of multi-tenant QoS: it maps a
 * request to its tenant, decides whether the tenant's token bucket
 * admits it, decides whether the global backlog watermark sheds it,
 * and steers admitted requests into the tenant's own queue group.  The
 * scheduling half (per-queue WRR weights / strict priority) lives in
 * the ready-set policies the EmuHyperPlane already runs; the table
 * only has to keep tenants on disjoint queue groups so those policies
 * have something to differentiate.
 *
 * Tenant identity comes from the request's inner flow label:
 * tenant = flowId % numTenants.  That is the emulation's stand-in for
 * a real classifier key (VNI, MAC, TLS SNI...) — deterministic, cheap,
 * and easy for the load generator to target by striding its flow ids.
 *
 * Shedding order is priority-ranked: each tenant gets a backlog
 * threshold interpolated between the low and high watermark by its
 * priority rank, so as the server fills up the lowest-priority traffic
 * is refused first and the highest-priority traffic last.
 */

#ifndef HYPERPLANE_SERVER_TENANT_HH
#define HYPERPLANE_SERVER_TENANT_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "dp/tenant_spec.hh"
#include "server/flow.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace server {

/**
 * Lock-free token bucket over an external nanosecond clock.
 *
 * Tokens are kept in micro-token fixed point so fractional refill per
 * call accumulates exactly.  Refill is CAS-claimed: one caller per
 * elapsed window adds the tokens, everyone else just tries to take.
 * Single-threaded use is exact; under producer concurrency the bucket
 * is approximate by at most one in-flight refill, which is the usual
 * admission-control contract.
 */
class TokenBucket
{
  public:
    /**
     * @param ratePerSec Admitted requests/second; <= 0 disables
     *                   limiting (tryTake always succeeds).
     * @param burst      Bucket depth, requests; <= 0 auto-sizes to
     *                   ~20 ms of rate (min 1).
     */
    TokenBucket(double ratePerSec, double burst);

    /** Take one token at time @p nowNs.  @return false = reject. */
    bool tryTake(std::uint64_t nowNs);

    bool unlimited() const { return microPerNs_ <= 0.0; }
    double ratePerSec() const { return ratePerSec_; }
    double burst() const { return burstMicro_ / 1e6; }

  private:
    static constexpr double microPerToken = 1e6;

    double ratePerSec_ = 0.0;
    /** Micro-tokens accrued per elapsed nanosecond. */
    double microPerNs_ = 0.0;
    double burstMicro_ = 0.0;
    std::atomic<std::uint64_t> lastRefillNs_{0};
    std::atomic<std::int64_t> microTokens_{0};
};

/** Per-tenant server counters (shared by RX shards and the watchdog). */
struct TenantCounters
{
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> rateLimited{0};   ///< token-bucket rejects
    std::atomic<std::uint64_t> watermarkShed{0}; ///< backlog-watermark rejects
    std::atomic<std::uint64_t> queueFullShed{0}; ///< queue-capacity rejects
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> demotions{0};
    std::atomic<std::uint64_t> promotions{0};

    /** Every reject flavour combined. */
    std::uint64_t
    shedTotal() const
    {
        return rateLimited.load(std::memory_order_relaxed) +
               watermarkShed.load(std::memory_order_relaxed) +
               queueFullShed.load(std::memory_order_relaxed);
    }
};

/** Immutable tenant map + mutable admission state for one server. */
class TenantTable
{
  public:
    /** tenantOfQueue() result for a queue no tenant's group covers. */
    static constexpr unsigned invalidTenant = static_cast<unsigned>(-1);

    /**
     * @param specs     Tenant list; empty builds one implicit
     *                  unlimited tenant spanning every queue.
     * @param numQueues The server's queue count.
     * @param shedLowWatermark  Backlog (total queued requests) at which
     *                  the lowest-priority tenant starts shedding.
     * @param shedHighWatermark Backlog at which every tenant sheds;
     *                  0 disables watermark shedding entirely.
     * @throws std::invalid_argument on a malformed spec list (same
     *         messages as SdpConfig::validate()).
     */
    TenantTable(std::vector<dp::TenantSpec> specs, unsigned numQueues,
                std::size_t shedLowWatermark,
                std::size_t shedHighWatermark);

    unsigned numTenants() const
    {
        return static_cast<unsigned>(specs_.size());
    }

    const dp::TenantSpec &spec(unsigned tenant) const
    {
        return specs_[tenant];
    }

    /** Effective display name of @p tenant. */
    const std::string &name(unsigned tenant) const
    {
        return names_[tenant];
    }

    /** Classify a request by its inner flow label. */
    unsigned
    tenantOf(std::uint32_t flowId) const
    {
        return flowId % numTenants();
    }

    /** Owner of @p qid (queue groups are disjoint and covering-checked
     *  at steering time, so this is a plain range scan over few
     *  tenants). */
    unsigned tenantOfQueue(QueueId qid) const;

    /** Steer @p key into @p tenant's queue group. */
    QueueId steer(const FlowKey &key, unsigned tenant) const;

    /**
     * Token-bucket admission for one request of @p tenant at @p nowNs.
     * @return false = reject (statusRateLimited).
     */
    bool admit(unsigned tenant, std::uint64_t nowNs);

    /**
     * Watermark shed decision: true when the current @p backlog means
     * @p tenant's new arrivals should be refused (statusShed).
     * Lowest priority sheds first; disabled tables never shed.
     */
    bool
    shouldShed(unsigned tenant, std::size_t backlog) const
    {
        const std::size_t thr = shedThreshold_[tenant];
        return thr != 0 && backlog >= thr;
    }

    /** The backlog threshold of @p tenant (0 = never sheds). */
    std::size_t shedThreshold(unsigned tenant) const
    {
        return shedThreshold_[tenant];
    }

    TenantCounters &counters(unsigned tenant)
    {
        return counters_[tenant];
    }
    const TenantCounters &counters(unsigned tenant) const
    {
        return counters_[tenant];
    }

  private:
    std::vector<dp::TenantSpec> specs_;
    std::vector<std::string> names_;
    /** qid -> owning tenant. */
    std::vector<unsigned> queueOwner_;
    std::vector<std::size_t> shedThreshold_;
    std::vector<std::unique_ptr<TokenBucket>> buckets_;
    std::unique_ptr<TenantCounters[]> counters_;
};

} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_TENANT_HH
