/**
 * @file
 * Request/response wire format of the UDP data-plane server.
 *
 * One request or response per UDP datagram, all multi-byte fields in
 * network byte order (the src/net big-endian helpers).  The format is
 * deliberately small and self-checking — the server parses untrusted
 * bytes, so every parse fails closed: bad magic, unknown version or
 * opcode, a length that disagrees with the datagram, or a checksum
 * mismatch all reject the packet without touching the payload.
 *
 * Request datagram (32-byte header + payload):
 *
 *   off size field
 *     0    4 magic "HPRQ"
 *     4    1 version (wireVersion)
 *     5    1 opcode
 *     6    2 checksum   RFC 1071 over the whole datagram, field zeroed
 *     8    8 seq        client-chosen, echoed back
 *    16    8 clientTimeNs  client timestamp, opaque to the server
 *    24    4 flowId     inner-flow label (tunnel key / RSS-style steer)
 *    28    4 payloadLen
 *    32    -  payload
 *
 * Response datagram (36-byte header + payload): same layout with a
 * "HPRS" magic and a 4-byte status inserted before payloadLen.
 */

#ifndef HYPERPLANE_SERVER_WIRE_HH
#define HYPERPLANE_SERVER_WIRE_HH

#include <cstddef>
#include <cstdint>
#include <optional>

namespace hyperplane {
namespace server {
namespace wire {

/** Largest datagram either side will build or accept. */
constexpr std::size_t maxDatagramBytes = 2048;

constexpr std::uint32_t requestMagic = 0x48505251;  // "HPRQ"
constexpr std::uint32_t responseMagic = 0x48505253; // "HPRS"
constexpr std::uint8_t wireVersion = 1;

/**
 * Request kinds the data plane serves.
 *
 * Opcode space layout:
 *   0..2   stateless packet ops (echo / encap / steer)
 *   3..15  reserved for stateful applications (src/app); 3..5 are
 *          assigned, 6..15 reserved for future apps and REJECTED today
 *          by the same `opcode < numOpcodes` bound the SIMD precheck
 *          enforces.  New app opcodes must be allocated contiguously so
 *          that single-bound check stays sufficient.
 *   16..   unassigned, rejected.
 */
enum class Opcode : std::uint8_t
{
    Echo = 0,  ///< payload returned unchanged
    Encap = 1, ///< payload (an IPv4 packet) GRE-in-IPv6 encapsulated
    Steer = 2, ///< payload hashed to a session-affine destination
    // --- stateful app range (dispatched to src/app handlers) ---------
    HeavyHitter = 3, ///< count-min sketch update + promotion lookup
    Conntrack = 4,   ///< connection-tracking NAT/LB verb
    SpinRtt = 5,     ///< passive spin-bit RTT observation
};

constexpr std::uint8_t numOpcodes = 6;

/** First opcode dispatched to a stateful app handler. */
constexpr std::uint8_t firstAppOpcode = 3;

/** Reserved ceiling of the app opcode range (exclusive). */
constexpr std::uint8_t appOpcodeRangeEnd = 16;

/** True when @p op routes to a stateful app handler. */
constexpr bool
isAppOpcode(Opcode op)
{
    return static_cast<std::uint8_t>(op) >= firstAppOpcode &&
           static_cast<std::uint8_t>(op) < numOpcodes;
}

const char *toString(Opcode op);

/**
 * Response status codes.  The two reject codes are the overload
 * control's fail-fast path: an inadmissible request is answered with a
 * typed, payload-free reject at RX steering instead of being silently
 * dropped, so clients can distinguish "the server said no" (back off)
 * from "the network lost it" (retry).
 */
enum Status : std::uint32_t
{
    statusOk = 0,
    statusBadPayload = 1,  ///< payload failed the opcode's own parser
    statusRateLimited = 2, ///< tenant exceeded its admitted rate
    statusShed = 3,        ///< overload shed (watermark or queue full)
};

const char *toString(Status s);

/** True for the admission-control reject statuses (shed responses). */
constexpr bool
isShedStatus(std::uint32_t status)
{
    return status == statusRateLimited || status == statusShed;
}

/** Parsed request header; payload follows at data + wireSize. */
struct RequestHeader
{
    static constexpr std::size_t wireSize = 32;

    Opcode opcode = Opcode::Echo;
    std::uint64_t seq = 0;
    std::uint64_t clientTimeNs = 0;
    std::uint32_t flowId = 0;
    std::uint32_t payloadLen = 0;
};

/** Parsed response header; payload follows at data + wireSize. */
struct ResponseHeader
{
    static constexpr std::size_t wireSize = 36;

    Opcode opcode = Opcode::Echo;
    std::uint64_t seq = 0;
    std::uint64_t clientTimeNs = 0;
    std::uint32_t flowId = 0;
    std::uint32_t status = statusOk;
    std::uint32_t payloadLen = 0;
};

/**
 * Serialize a request into @p buf (capacity @p cap), computing the
 * checksum.  @p payload supplies hdr.payloadLen bytes (may be null when
 * the length is 0).
 *
 * @return Total datagram size, or 0 if it would not fit in @p cap or
 *         exceed maxDatagramBytes.
 */
std::size_t buildRequest(std::uint8_t *buf, std::size_t cap,
                         const RequestHeader &hdr,
                         const std::uint8_t *payload);

/** Serialize a response; same contract as buildRequest. */
std::size_t buildResponse(std::uint8_t *buf, std::size_t cap,
                          const ResponseHeader &hdr,
                          const std::uint8_t *payload);

/**
 * Serialize a response whose payload ALREADY sits at
 * buf + ResponseHeader::wireSize — the zero-copy TX path.  Writes only
 * the 36 header bytes and checksums header + payload in place;
 * byte-identical to buildResponse with the same header and payload.
 *
 * @return Total datagram size, or 0 if it would not fit (the payload
 *         bytes are left untouched in that case).
 */
std::size_t buildResponseInPlace(std::uint8_t *buf, std::size_t cap,
                                 const ResponseHeader &hdr);

/**
 * Parse and verify a request datagram.  Fails closed on short input,
 * bad magic/version/opcode, a payloadLen that disagrees with @p len, or
 * a checksum mismatch.
 */
std::optional<RequestHeader> parseRequest(const std::uint8_t *data,
                                          std::size_t len);

/**
 * Batched prefix validation for an RX burst, through the dispatched
 * (SIMD on capable hosts) header-check kernel.  Sets ok[i] = 1 iff
 * packet i is at least a full header and its magic / version / opcode
 * prefix is valid — the checks parseRequestPrechecked() then skips.
 */
void precheckRequests(const std::uint8_t *const *pkts,
                      const std::uint32_t *lens, std::size_t n,
                      std::uint8_t *ok);

/**
 * parseRequest() minus the prefix checks precheckRequests() already
 * performed.  @pre precheckRequests() reported ok for (data, len).
 * Still validates payloadLen against @p len and the checksum, still
 * fails closed.
 */
std::optional<RequestHeader>
parseRequestPrechecked(const std::uint8_t *data, std::size_t len);

/** Parse and verify a response datagram; same contract. */
std::optional<ResponseHeader> parseResponse(const std::uint8_t *data,
                                            std::size_t len);

} // namespace wire
} // namespace server
} // namespace hyperplane

#endif // HYPERPLANE_SERVER_WIRE_HH
