#include "server/loadgen.hh"

#include <arpa/inet.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "app/app.hh"
#include "net/headers.hh"
#include "server/udp_socket.hh"
#include "server/wire.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/json.hh"

namespace hyperplane {
namespace server {

namespace {

using namespace std::chrono;

/** Cumulative distribution lookup: first index whose cum exceeds u. */
std::size_t
pickIndex(const std::vector<double> &cum, double u)
{
    const auto it = std::upper_bound(cum.begin(), cum.end(), u);
    const std::size_t i =
        static_cast<std::size_t>(it - cum.begin());
    return std::min(i, cum.size() - 1);
}

std::vector<double>
cumulative(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    std::vector<double> cum;
    cum.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
        acc += total > 0.0 ? w / total : 0.0;
        cum.push_back(acc);
    }
    if (!cum.empty())
        cum.back() = 1.0;
    return cum;
}

/** Build the per-opcode payload template (Encap needs a real IPv4
 *  packet so the server-side encapsulation parses). */
std::vector<std::uint8_t>
payloadTemplate(wire::Opcode op, std::uint32_t bytes, Rng &rng)
{
    std::uint32_t len = std::min<std::uint32_t>(
        bytes, static_cast<std::uint32_t>(wire::maxDatagramBytes -
                                          wire::RequestHeader::wireSize -
                                          64));
    if (op == wire::Opcode::Encap)
        len = std::max<std::uint32_t>(len, net::Ipv4Header::wireSize);
    std::vector<std::uint8_t> payload(len);
    for (auto &b : payload)
        b = static_cast<std::uint8_t>(rng.next());
    if (op == wire::Opcode::Encap) {
        net::Ipv4Header ip;
        ip.totalLength = static_cast<std::uint16_t>(len);
        ip.protocol = net::protoUdp;
        ip.src = 0x0a000001;
        ip.dst = 0x0a000002;
        ip.write(payload.data());
    }
    return payload;
}

} // namespace

std::string
LoadGenReport::json() const
{
    using stats::jsonNumber;
    std::string out = "{";
    const auto field = [&out](const char *name, double v, bool first =
                                                             false) {
        if (!first)
            out += ", ";
        out += stats::jsonString(name) + ": " + jsonNumber(v);
    };
    field("offered_per_sec", offeredPerSec, true);
    field("duration_sec", durationSec);
    field("sent", static_cast<double>(sent));
    field("received", static_cast<double>(received));
    field("shed", static_cast<double>(shed));
    field("answered", static_cast<double>(answered));
    field("lost", static_cast<double>(lost));
    field("bad_status", static_cast<double>(badStatus));
    field("parse_errors", static_cast<double>(parseErrors));
    field("send_failures", static_cast<double>(sendFailures));
    field("completion_ratio", completionRatio);
    field("shed_ratio", shedRatio);
    field("answered_ratio", answeredRatio);
    field("achieved_per_sec", achievedPerSec);
    field("p50_us", p50Us);
    field("p90_us", p90Us);
    field("p99_us", p99Us);
    field("p999_us", p999Us);
    field("mean_us", meanUs);
    field("max_us", maxUs);
    field("latency_samples", static_cast<double>(latencySamples));
    out += ", " + stats::jsonString("tenants") + ": [";
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSection &t = tenants[i];
        if (i)
            out += ", ";
        out += "{";
        out += stats::jsonString("tenant") + ": " +
               jsonNumber(static_cast<double>(t.tenant));
        out += ", " + stats::jsonString("answered") + ": " +
               jsonNumber(static_cast<double>(t.answered));
        out += ", " + stats::jsonString("shed") + ": " +
               jsonNumber(static_cast<double>(t.shed));
        out += ", " + stats::jsonString("latency_samples") + ": " +
               jsonNumber(static_cast<double>(t.latencySamples));
        out += ", " + stats::jsonString("p50_us") + ": " +
               jsonNumber(t.p50Us);
        out += ", " + stats::jsonString("p99_us") + ": " +
               jsonNumber(t.p99Us);
        out += ", " + stats::jsonString("p999_us") + ": " +
               jsonNumber(t.p999Us);
        out += "}";
    }
    out += "]}";
    return out;
}

UdpLoadGen::UdpLoadGen(const LoadGenConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.ratePerSec > 0.0, "rate must be positive");
    hp_assert(cfg_.durationSec > 0.0, "duration must be positive");
    hp_assert(cfg_.numFlows > 0, "need at least one flow");
    hp_assert(cfg_.numTenants > 0, "need at least one tenant");
    hp_assert(cfg_.tenantId < cfg_.numTenants,
              "tenantId out of range");
}

std::optional<LoadGenReport>
UdpLoadGen::run()
{
    auto sockOpt = UdpSocket::open();
    if (!sockOpt)
        return std::nullopt;
    UdpSocket sock = std::move(*sockOpt);
    const auto ip = parseIpv4(cfg_.serverIp);
    if (!ip)
        return std::nullopt;
    sockaddr_in server{};
    server.sin_family = AF_INET;
    server.sin_addr.s_addr = htonl(*ip);
    server.sin_port = htons(cfg_.serverPort);

    Rng rng(cfg_.seed);
    const std::vector<double> flowCum =
        cumulative(traffic::shapeWeights(cfg_.shape, cfg_.numFlows, rng));
    const std::vector<double> opCum = cumulative(std::vector<double>(
        cfg_.opcodeWeights.begin(), cfg_.opcodeWeights.end()));
    std::vector<std::vector<std::uint8_t>> payloads;
    for (std::uint8_t op = 0; op < wire::numOpcodes; ++op)
        payloads.push_back(payloadTemplate(
            static_cast<wire::Opcode>(op), cfg_.payloadBytes, rng));

    // Flow-coherent opcode assignment: each flow draws its opcode once
    // and keeps it for the run, so stateful handlers see single-app
    // streams with consistent per-flow sequences.
    std::vector<std::uint8_t> flowOpcode(cfg_.numFlows);
    for (auto &op : flowOpcode)
        op = static_cast<std::uint8_t>(pickIndex(opCum, rng.uniform()));
    // Per-flow packet counters (sender thread only) and spin-bit state
    // (receiver writes the reflected bit, sender reads it — the
    // client-side half of the spin-bit RTT protocol).
    std::vector<std::uint64_t> flowSeq(cfg_.numFlows, 0);
    auto spinState =
        std::make_unique<std::atomic<std::uint8_t>[]>(cfg_.numFlows);
    for (unsigned f = 0; f < cfg_.numFlows; ++f)
        spinState[f].store(1, std::memory_order_relaxed);

    LoadGenReport report;
    report.offeredPerSec = cfg_.ratePerSec;
    report.durationSec = cfg_.durationSec;
    report.tenants.resize(cfg_.numTenants);
    for (unsigned t = 0; t < cfg_.numTenants; ++t)
        report.tenants[t].tenant = t;

    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> badStatus{0};
    std::atomic<std::uint64_t> parseErrors{0};
    std::atomic<std::int64_t> outstanding{0};
    std::atomic<bool> rxRun{true};

    const auto epoch = steady_clock::now();
    const auto nowNs = [&epoch] {
        return static_cast<std::uint64_t>(
            duration_cast<nanoseconds>(steady_clock::now() - epoch)
                .count());
    };
    const std::uint64_t durationNs =
        static_cast<std::uint64_t>(cfg_.durationSec * 1e9);
    const std::uint64_t warmupEndNs = static_cast<std::uint64_t>(
        cfg_.warmupFraction * cfg_.durationSec * 1e9);

    // Receiver: drain responses, record post-warmup e2e latency.  The
    // histogram is only ever touched here, so no lock is needed.
    std::thread receiver([&] {
        EpollWaiter waiter;
        const bool havePoll = waiter.valid() && waiter.add(sock.fd());
        std::vector<Datagram> batch;
        while (rxRun.load(std::memory_order_relaxed)) {
            if (havePoll) {
                if (waiter.wait(5).empty())
                    continue;
            } else {
                std::this_thread::sleep_for(microseconds(200));
            }
            for (;;) {
                batch.clear();
                if (sock.recvBatch(batch, cfg_.rxBatch) == 0)
                    break;
                const std::uint64_t now = nowNs();
                for (const Datagram &d : batch) {
                    const auto hdr = wire::parseResponse(
                        d.bytes.data(), d.bytes.size());
                    if (!hdr) {
                        parseErrors.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                    received.fetch_add(1, std::memory_order_relaxed);
                    outstanding.fetch_sub(1,
                                          std::memory_order_relaxed);
                    // Same tenant classifier as the server's RX
                    // admission.  The per-tenant sections are only
                    // touched on this (single receiver) thread.
                    auto &ten =
                        report.tenants[hdr->flowId % cfg_.numTenants];
                    ten.answered++;
                    // A typed reject is the server *answering* — it is
                    // neither lost nor an error, and its (fast) reject
                    // turnaround must not dilute the service latency
                    // distribution.
                    const bool wasShed =
                        wire::isShedStatus(hdr->status);
                    if (wasShed) {
                        shed.fetch_add(1, std::memory_order_relaxed);
                        ten.shed++;
                        continue;
                    }
                    if (hdr->status != wire::statusOk)
                        badStatus.fetch_add(
                            1, std::memory_order_relaxed);
                    // Spin-bit client half: on seeing our bit
                    // reflected, flip the flow's outgoing bit — one
                    // client flip per round trip, so the server's edge
                    // gaps measure real RTTs.
                    if (hdr->opcode == wire::Opcode::SpinRtt &&
                        hdr->status == wire::statusOk &&
                        hdr->flowId % cfg_.numTenants == cfg_.tenantId) {
                        const std::uint32_t f =
                            (hdr->flowId - cfg_.tenantId) /
                            cfg_.numTenants;
                        const auto resp = app::decodeSpinResponse(
                            d.bytes.data() +
                                wire::ResponseHeader::wireSize,
                            hdr->payloadLen);
                        if (f < cfg_.numFlows && resp) {
                            spinState[f].store(
                                resp->spin ^ 1,
                                std::memory_order_relaxed);
                        }
                    }
                    if (hdr->clientTimeNs >= warmupEndNs &&
                        now > hdr->clientTimeNs) {
                        const double latNs = static_cast<double>(
                            now - hdr->clientTimeNs);
                        report.latencyNs.record(latNs);
                        ten.latencyNs.record(latNs);
                    }
                }
            }
        }
    });

    // Sender: open loop paces Poisson departures that never wait for
    // responses; closed loop sends whenever the window has room.
    const double meanGapNs = 1e9 / cfg_.ratePerSec;
    std::uint64_t seq = 0;
    std::uint64_t nextSendNs = 0;
    std::vector<Datagram> out;
    std::uint8_t buf[wire::maxDatagramBytes];

    std::uint8_t appPayload[64];
    const auto buildOne = [&] {
        wire::RequestHeader hdr;
        const std::uint32_t f = static_cast<std::uint32_t>(
            pickIndex(flowCum, rng.uniform()));
        // The flow's opcode is fixed for the run (flow coherence).
        hdr.opcode = static_cast<wire::Opcode>(flowOpcode[f]);
        hdr.seq = seq++;
        hdr.clientTimeNs = nowNs();
        // Stride the flow label so the server's tenant classifier
        // (flowId % numTenants) maps every request to cfg_.tenantId.
        hdr.flowId = cfg_.tenantId + cfg_.numTenants * f;
        const std::uint8_t *payloadData = nullptr;
        if (wire::isAppOpcode(hdr.opcode)) {
            // Stateful apps get a synthesized, flow-coherent payload:
            // conntrack emits open -> data... -> close cycles with
            // per-connection seqnos; spin-rtt stamps the flow's
            // current spin bit.
            const auto kind = static_cast<app::AppKind>(
                static_cast<std::uint8_t>(hdr.opcode) -
                wire::firstAppOpcode);
            const std::size_t n = app::synthesizeRequest(
                kind, hdr.flowId, flowSeq[f],
                spinState[f].load(std::memory_order_relaxed),
                appPayload, sizeof(appPayload));
            ++flowSeq[f];
            hdr.payloadLen = static_cast<std::uint32_t>(n);
            payloadData = appPayload;
        } else {
            const auto &payload =
                payloads[static_cast<std::size_t>(hdr.opcode)];
            hdr.payloadLen = static_cast<std::uint32_t>(payload.size());
            payloadData = payload.data();
        }
        const std::size_t n = wire::buildRequest(
            buf, sizeof(buf), hdr, payloadData);
        Datagram d;
        d.peer = server;
        d.bytes.assign(buf, buf + n);
        out.push_back(std::move(d));
    };

    while (nowNs() < durationNs) {
        out.clear();
        if (cfg_.openLoop) {
            const std::uint64_t now = nowNs();
            while (nextSendNs <= now && out.size() < 64)
                {
                    buildOne();
                    nextSendNs += static_cast<std::uint64_t>(
                        rng.exponential(meanGapNs));
                }
            if (out.empty()) {
                const std::uint64_t gap = nextSendNs - now;
                if (gap > 200000)
                    std::this_thread::sleep_for(
                        nanoseconds(gap - 100000));
                continue;
            }
        } else {
            const std::int64_t room =
                static_cast<std::int64_t>(cfg_.window) -
                outstanding.load(std::memory_order_relaxed);
            if (room <= 0) {
                std::this_thread::yield();
                continue;
            }
            const auto n = std::min<std::int64_t>(room, 64);
            for (std::int64_t i = 0; i < n; ++i)
                buildOne();
        }
        const std::size_t ok = sock.sendBatch(out.data(), out.size());
        sent.fetch_add(ok, std::memory_order_relaxed);
        outstanding.fetch_add(static_cast<std::int64_t>(ok),
                              std::memory_order_relaxed);
        report.sendFailures += out.size() - ok;
    }
    const double sendElapsedSec = static_cast<double>(nowNs()) / 1e9;

    // Linger for stragglers, longer if responses are still arriving.
    const auto lingerEnd =
        steady_clock::now() +
        nanoseconds(static_cast<std::uint64_t>(cfg_.lingerSec * 1e9));
    while (steady_clock::now() < lingerEnd &&
           received.load(std::memory_order_relaxed) <
               sent.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(milliseconds(1));
    }
    rxRun.store(false);
    receiver.join();

    report.sent = sent.load();
    report.received = received.load();
    report.shed = shed.load();
    report.answered = report.received;
    report.lost = report.sent > report.received
                      ? report.sent - report.received
                      : 0;
    report.badStatus = badStatus.load();
    report.parseErrors = parseErrors.load();
    report.completionRatio =
        report.sent ? static_cast<double>(report.received) /
                          static_cast<double>(report.sent)
                    : 0.0;
    report.shedRatio =
        report.sent ? static_cast<double>(report.shed) /
                          static_cast<double>(report.sent)
                    : 0.0;
    report.answeredRatio = report.completionRatio;
    report.achievedPerSec =
        sendElapsedSec > 0.0
            ? static_cast<double>(report.received) / sendElapsedSec
            : 0.0;
    report.latencySamples = report.latencyNs.count();
    if (report.latencySamples > 0) {
        report.p50Us = report.latencyNs.quantile(0.50) / 1e3;
        report.p90Us = report.latencyNs.quantile(0.90) / 1e3;
        report.p99Us = report.latencyNs.quantile(0.99) / 1e3;
        report.p999Us = report.latencyNs.quantile(0.999) / 1e3;
        report.meanUs = report.latencyNs.mean() / 1e3;
        report.maxUs = report.latencyNs.max() / 1e3;
    }
    for (auto &t : report.tenants) {
        t.latencySamples = t.latencyNs.count();
        if (t.latencySamples == 0)
            continue;
        t.p50Us = t.latencyNs.quantile(0.50) / 1e3;
        t.p99Us = t.latencyNs.quantile(0.99) / 1e3;
        t.p999Us = t.latencyNs.quantile(0.999) / 1e3;
    }
    return report;
}

} // namespace server
} // namespace hyperplane
