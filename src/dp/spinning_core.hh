/**
 * @file
 * The spin-polling data-plane core: the state-of-the-art baseline the
 * paper compares against (a DPDK-style poll-mode loop).
 *
 * The core sweeps its assigned queues round-robin.  Each poll reads the
 * queue's doorbell and descriptor lines through the memory system (the
 * cache misses on empty queue heads are exactly the queue-scalability
 * pathology of Section II).  Non-empty queues are drained one item at a
 * time with dequeue + processing costs; in shared (scale-up) mode each
 * dequeue additionally pays lock/CAS synchronization on a per-queue sync
 * line, which ping-pongs between the sharing cores' L1s.
 *
 * Simulation-efficiency machinery (does not change modelled behaviour):
 *
 *  - Idle sleep: when the core's queue subset is provably empty (shared
 *    backlog counter == 0) it stops scheduling events entirely; the
 *    system's arrival hook wakes it, and the elapsed interval is charged
 *    as spinning (cycles, useless instructions, sweep-phase advance) at
 *    the measured steady-state per-poll cost.
 *  - Empty-run skipping: when work exists somewhere, the run of empty
 *    queues between the sweep position and the next ready queue is
 *    charged analytically instead of issuing per-queue memory ops, with
 *    periodic real polls keeping the per-poll cost estimate honest.
 */

#ifndef HYPERPLANE_DP_SPINNING_CORE_HH
#define HYPERPLANE_DP_SPINNING_CORE_HH

#include "dp/dp_core.hh"

namespace hyperplane {
namespace dp {

/** Spin-polling data-plane core. */
class SpinningCore : public DataPlaneCore
{
  public:
    /**
     * @param shared True when multiple cores share this core's queue
     *               subset (scale-up organizations): dequeues pay
     *               synchronization costs.
     */
    SpinningCore(CoreId id, EventQueue &eq, mem::MemorySystem &mem,
                 queueing::QueueSet &queues,
                 workloads::Workload &workload,
                 const CoreTimingParams &params, ServiceJitter jitter,
                 std::uint64_t seed, bool shared);

    void start() override;
    void resetStats() override;

    /**
     * Close open idle-spin accounting at the end of a measurement.
     */
    void finalize(Tick endTick) override;

    /**
     * Share a backlog counter between cores that serve the same queue
     * subset (scale-up), so a dequeue by any sharer is visible to all.
     */
    void setBacklogCounter(std::uint64_t *counter) { backlog_ = counter; }

    /** True while the core is in the event-free idle-spin state. */
    bool idleSpinning() const { return idleSpinning_; }

    /** Steady-state per-poll cost estimate, cycles (diagnostics). */
    double avgPollCostEstimate() const { return avgPollCost_; }

    /**
     * Arrival notification from the system: wakes an idle-spinning core,
     * charging the skipped interval as spinning.
     */
    void wakeSpin();

  private:
    /** Event body: poll/process until the next event horizon. */
    void step();

    /**
     * Poll the queue at the current sweep position (real memory ops).
     * @return Cycles consumed.
     */
    Tick pollOnce();

    /** Dequeue and process the head of @p qid. @return cycles. */
    Tick serveQueue(QueueId qid);

    /** Enter the event-free idle-spin state. */
    void enterIdleSpin();

    /** Charge [idleStart_, now) as analytic spinning. */
    void flushIdleSpin(Tick now);

    /**
     * Charge @p n empty polls analytically and advance the sweep phase.
     */
    void chargeSkippedPolls(std::uint64_t n);

    bool shared_;
    unsigned sweepPos_ = 0;
    /** Ready-item count over the cluster's queues (system-maintained). */
    std::uint64_t ownBacklog_ = 0;
    std::uint64_t *backlog_ = &ownBacklog_;
    /** EWMA of per-poll cost in steady state, cycles (for skipping). */
    double avgPollCost_ = 0.0;
    /** Real polls executed so far (idle-sleep is allowed only after a
     *  full warm-up sweep so cache state matches continuous polling). */
    std::uint64_t realPolls_ = 0;
    bool idleSpinning_ = false;
    Tick idleStart_ = 0;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_SPINNING_CORE_HH
