#include "dp/tenant_model.hh"

namespace hyperplane {
namespace dp {

const char *
toString(TenantNotify n)
{
    switch (n) {
      case TenantNotify::Spin:
        return "spin";
      case TenantNotify::Umwait:
        return "umwait";
    }
    return "?";
}

TenantModel::TenantModel(const TenantParams &params, std::uint64_t seed)
    : params_(params), rng_(seed ^ 0x7e4a47ULL)
{
}

Tick
TenantModel::deliver(const queueing::WorkItem &item, Tick when)
{
    Tick reaction = 0;
    switch (params_.notify) {
      case TenantNotify::Spin:
        // The doorbell write lands at a uniformly random phase of the
        // tenant's tight poll loop.
        reaction = rng_.uniformInt(params_.spinPollCycles + 1);
        break;
      case TenantNotify::Umwait:
        // The monitor fires immediately; the core pays the C0.x exit.
        reaction = params_.umwaitWakeCycles;
        break;
    }
    const Tick held = when + reaction + params_.receiveCycles;
    latency_.record(ticksToUs(held - item.arrivalTick));
    ++delivered_;
    return held;
}

void
TenantModel::resetStats()
{
    latency_.clear();
    delivered_ = 0;
}

} // namespace dp
} // namespace hyperplane
