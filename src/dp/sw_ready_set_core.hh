/**
 * @file
 * HyperPlane with a *software* ready set (the Figure 13 ablation).
 *
 * The monitoring set remains hardware (coherence transactions are not
 * visible to software), but QWAIT becomes a code sequence that locks the
 * ready list and iterates it to find the next QID under the service
 * policy.  Its cost therefore grows with the number of ready QIDs —
 * cheap when traffic concentrates, expensive under fully-balanced
 * traffic where the list holds hundreds of entries (Section V-E).
 */

#ifndef HYPERPLANE_DP_SW_READY_SET_CORE_HH
#define HYPERPLANE_DP_SW_READY_SET_CORE_HH

#include "dp/hyperplane_core.hh"

namespace hyperplane {
namespace dp {

/** Software-ready-set variant of the HyperPlane core. */
class SwReadySetCore : public HyperPlaneCore
{
  public:
    /** Cycles to take/release the ready-list lock + loop setup. */
    static constexpr Tick swFixedCycles = 60;
    /** Cycles per ready-list entry the iterator scans. */
    static constexpr Tick swPerEntryCycles = 4;

    using HyperPlaneCore::HyperPlaneCore;

  protected:
    Tick qwaitCost() const override;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_SW_READY_SET_CORE_HH
