/**
 * @file
 * An interrupt-driven data-plane core: the conventional kernel-mediated
 * notification path of Figure 1(a), added as a second baseline.
 *
 * The core halts when idle; a work arrival raises an interrupt whose
 * delivery (ISR entry, kernel demux, wakeup/schedule) costs
 * interruptCycles before the data plane runs.  While draining, further
 * arrivals need no interrupt (NAPI-style masking): the core hunts
 * non-empty queues like a poll loop until the backlog is empty, then
 * re-enables interrupts and halts again.
 *
 * Compared to the two planes of the paper: latency is flat in queue
 * count (no sweep) but pays the fixed kernel cost on every idle-to-busy
 * transition — worse than HyperPlane everywhere, better than spinning
 * only at large queue counts; power is work-proportional like
 * HyperPlane.
 */

#ifndef HYPERPLANE_DP_INTERRUPT_CORE_HH
#define HYPERPLANE_DP_INTERRUPT_CORE_HH

#include "dp/dp_core.hh"

namespace hyperplane {
namespace dp {

/** Kernel-interrupt notification core. */
class InterruptCore : public DataPlaneCore
{
  public:
    /**
     * @param interruptCycles ISR + kernel wakeup cost per idle-to-busy
     *                        transition (~1.5 us class).
     */
    InterruptCore(CoreId id, EventQueue &eq, mem::MemorySystem &mem,
                  queueing::QueueSet &queues,
                  workloads::Workload &workload,
                  const CoreTimingParams &params, ServiceJitter jitter,
                  std::uint64_t seed, Tick interruptCycles);

    void start() override;
    void resetStats() override;
    void finalize(Tick endTick) override;

    /** Shared cluster backlog counter (as in SpinningCore). */
    void setBacklogCounter(std::uint64_t *counter) { backlog_ = counter; }

    bool halted() const { return halted_; }

    /** Arrival notification: raise the interrupt if the core is idle. */
    void raiseInterrupt();

    /** Interrupts taken (idle-to-busy transitions). */
    std::uint64_t interruptsTaken() const { return interrupts_; }

  private:
    void step();
    void accountHalt(Tick until);

    /** Serve the next non-empty queue. @return cycles, 0 if none. */
    Tick serveNext();

    Tick interruptCycles_;
    std::uint64_t ownBacklog_ = 0;
    std::uint64_t *backlog_ = &ownBacklog_;
    unsigned huntPos_ = 0;
    bool halted_ = false;
    Tick haltStart_ = 0;
    std::uint64_t interrupts_ = 0;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_INTERRUPT_CORE_HH
