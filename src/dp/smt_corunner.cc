#include "dp/smt_corunner.hh"

#include <algorithm>

namespace hyperplane {
namespace dp {

SmtCoRunner::SmtCoRunner(const SmtParams &params) : params_(params) {}

double
SmtCoRunner::coRunnerIpc(double dpActiveFraction, double dpActiveIpc) const
{
    const double frac = std::clamp(dpActiveFraction, 0.0, 1.0);
    const double activity =
        std::clamp(dpActiveIpc / params_.ipcPeak, 0.0, 1.0);
    // ICOUNT-style sharing: the sibling steals issue slots in proportion
    // to how often and how fast it executes.
    const double loss = params_.contention * frac * activity;
    return params_.soloIpc * (1.0 - loss);
}

} // namespace dp
} // namespace hyperplane
