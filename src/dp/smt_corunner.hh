/**
 * @file
 * SMT co-runner interference model (Figure 11(b)).
 *
 * Two hardware threads share a core: the data-plane thread and a regular
 * batch application (matrix multiplication in the paper).  Fetch/issue
 * slots are allocated ICOUNT-style, so a spinning thread with a high IPC
 * is a severe antagonist, while a halted HyperPlane thread leaves the
 * whole core to the co-runner.  The model maps the data-plane thread's
 * measured occupancy and IPC to the co-runner's achieved IPC.
 */

#ifndef HYPERPLANE_DP_SMT_CORUNNER_HH
#define HYPERPLANE_DP_SMT_CORUNNER_HH

namespace hyperplane {
namespace dp {

/** Parameters for the SMT interference model. */
struct SmtParams
{
    /** Co-runner IPC when it owns the core alone. */
    double soloIpc = 2.2;
    /** Fraction of the co-runner's throughput a fully-active,
     *  full-speed sibling thread takes away. */
    double contention = 0.65;
    /** Core-wide peak IPC used to normalize the sibling's activity. */
    double ipcPeak = 3.0;
};

/** Analytic SMT co-runner model. */
class SmtCoRunner
{
  public:
    explicit SmtCoRunner(const SmtParams &params = {});

    const SmtParams &params() const { return params_; }

    /**
     * Co-runner IPC given the data-plane thread's behaviour.
     *
     * @param dpActiveFraction Fraction of time the DP thread is not
     *                         halted (1.0 for spinning planes).
     * @param dpActiveIpc      DP thread IPC while active.
     */
    double coRunnerIpc(double dpActiveFraction, double dpActiveIpc) const;

  private:
    SmtParams params_;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_SMT_CORUNNER_HH
