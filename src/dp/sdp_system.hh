/**
 * @file
 * SdpSystem: assembles a complete simulated software data plane and runs
 * one experiment point.
 *
 * The system owns the event queue, the MESI memory hierarchy, the queue
 * set, the traffic source, the workload, the data-plane cores, and — for
 * HyperPlane planes — one QwaitUnit per queue cluster (matching the
 * partitioned ready-set configurations of Section V-C).  run() executes
 * a warmup phase, clears statistics, measures, and returns the digested
 * results every figure of the paper is built from.
 */

#ifndef HYPERPLANE_DP_SDP_SYSTEM_HH
#define HYPERPLANE_DP_SDP_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <vector>

#include "core/qwait_unit.hh"
#include "dp/dp_core.hh"
#include "dp/hyperplane_core.hh"
#include "fault/fallback_set.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "fault/watchdog.hh"
#include "dp/smt_corunner.hh"
#include "dp/tenant_model.hh"
#include "dp/tenant_spec.hh"
#include "power/core_power.hh"
#include "stats/histogram.hh"
#include "stats/registry.hh"
#include "trace/latency_breakdown.hh"
#include "trace/timeseries.hh"
#include "trace/trace.hh"
#include "trace/trace_config.hh"
#include "traffic/poisson_source.hh"
#include "traffic/shapes.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace dp {

/** Which notification mechanism the data plane uses. */
enum class PlaneKind : std::uint8_t
{
    Spinning,          ///< DPDK-style spin-polling baseline
    HyperPlane,        ///< hardware monitoring + ready set
    HyperPlaneSwReady, ///< hardware monitoring, software ready set
    InterruptDriven,   ///< conventional kernel-interrupt baseline
};

const char *toString(PlaneKind k);

/** Queue-to-core organization (Section V-C). */
enum class QueueOrg : std::uint8_t
{
    ScaleOut,   ///< each core owns a private queue subset
    ScaleUp2,   ///< 2-core clusters share queue subsets
    ScaleUpAll, ///< all cores share all queues
};

const char *toString(QueueOrg o);

/** Full experiment-point configuration. */
struct SdpConfig
{
    PlaneKind plane = PlaneKind::HyperPlane;
    unsigned numCores = 1;
    unsigned numQueues = 100;
    workloads::Kind workload = workloads::Kind::PacketEncapsulation;
    traffic::Shape shape = traffic::Shape::FB;
    /** Total offered arrival rate, tasks/second. */
    double offeredRatePerSec = 1e5;
    QueueOrg org = QueueOrg::ScaleUpAll;
    core::ServicePolicy policy = core::ServicePolicy::RoundRobin;
    /** Power-optimized HyperPlane: halt into C1. */
    bool powerOptimized = false;
    /** Items dequeued per QWAIT return. */
    unsigned batchSize = 1;
    /** End-to-end QWAIT latency, cycles (Section IV-C: 50). */
    Tick qwaitLatency = 50;
    /** Kernel interrupt delivery cost for the interrupt plane, us. */
    double interruptUs = 1.5;
    /** NUMA-style work stealing across partitioned ready sets. */
    bool workStealing = false;
    /** Interconnect cost per remote ready-set probe, cycles. */
    Tick stealExtraCycles = 90;
    /** Flow-stateful in-order queues (reconsider after processing). */
    bool inOrderQueues = false;
    /** Background-task quantum for non-blocking QWAIT; 0 = halt. */
    Tick backgroundQuantum = 0;
    /** Model the tenant-side receive path (Figure 2 steps 2d-3). */
    bool modelTenants = false;
    TenantParams tenant{};
    /**
     * Multi-tenant QoS: tenants mapped to disjoint queue groups with
     * per-group WRR weights.  Empty = one implicit tenant, no QoS.
     * Shared with the emulated server (server::TenantTable).
     */
    std::vector<TenantSpec> tenants{};
    ServiceJitter jitter = ServiceJitter::Exponential;
    /** Static load imbalance across active queues (Figure 10b). */
    double imbalance = 0.0;
    double warmupUs = 2000.0;
    double measureUs = 20000.0;
    /** 0 = use the workload's default payload size. */
    std::uint32_t payloadBytes = 0;
    std::size_t maxQueueDepth = 512;
    std::uint64_t seed = 1;
    /**
     * Simulation worker threads (the host threads stepping the event
     * kernel, NOT simulated cores).  1 = sequential kernel; N > 1 =
     * the partition-affine parallel backend (sim/parallel_engine.hh),
     * whose results are bit-identical to 1 by construction; 0 = the
     * HYPERPLANE_SIM_THREADS environment variable if set, else 1.
     * Worker count is capped at the cluster count.
     */
    unsigned simThreads = 0;
    CoreTimingParams timing{};
    power::PowerParams power{};
    SmtParams smt{};
    /**
     * Monitoring-set geometry.  Capacity 0 auto-sizes each cluster's
     * table to its queue span + 25% over-provisioning (the paper's
     * regime); nonzero values pin the per-cluster capacity, which is
     * how the saturation/degradation tests force demotions.
     */
    unsigned monitoringCapacity = 0;
    unsigned monitoringWays = 4;
    unsigned monitoringBanks = 1;
    unsigned monitoringMaxWalkSteps = 64;
    /** Fault campaign to inject (defaults to all-zero: no faults). */
    fault::FaultPlan fault{};
    /** Recovery mechanisms (watchdog sweep, graceful degradation). */
    fault::RecoveryConfig recovery{};
    /** Observability: event tracing, latency breakdown, sampling. */
    trace::TraceConfig trace{};

    /**
     * Reject degenerate configurations with a descriptive
     * std::invalid_argument instead of downstream UB/asserts.  Called
     * at the top of SdpSystem construction.
     */
    void validate() const;
};

/** Digested results of one experiment point. */
struct SdpResults
{
    double throughputMtps = 0.0; ///< million tasks per second
    std::uint64_t completions = 0;
    std::uint64_t generated = 0;
    std::uint64_t dropped = 0;
    double avgLatencyUs = 0.0;
    double p50LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double p999LatencyUs = 0.0;
    double maxLatencyUs = 0.0;
    double ipc = 0.0;        ///< whole-window IPC, averaged over cores
    double usefulIpc = 0.0;  ///< useful-instruction component
    double uselessIpc = 0.0; ///< spinning component
    double activeFraction = 0.0; ///< non-halted fraction of core time
    double activeIpc = 0.0;      ///< IPC while active
    double avgCorePowerW = 0.0;
    double coRunnerIpc = 0.0; ///< SMT co-runner model output
    double avgPollsPerTask = 0.0;
    std::uint64_t spuriousWakeups = 0;
    std::uint64_t stolenGrants = 0;   ///< work-stealing remote grants
    std::uint64_t interrupts = 0;     ///< interrupt plane: IRQs taken
    double backgroundIpc = 0.0;       ///< non-blocking QWAIT bg work
    /** End-to-end (tenant-held) latency, when modelTenants is set. */
    double e2eAvgLatencyUs = 0.0;
    double e2eP99LatencyUs = 0.0;

    // --- Fault campaign + recovery accounting (tentpole) -------------

    std::uint64_t snoopsDropped = 0;
    std::uint64_t snoopsDelayed = 0;
    /** Drops that opened a lost-notification episode. */
    std::uint64_t lostInjected = 0;
    std::uint64_t watchdogRecoveries = 0;
    std::uint64_t selfRecoveries = 0;
    /** Lost episodes still open when the run ended. */
    std::uint64_t lostOutstanding = 0;
    std::uint64_t wakesSuppressed = 0;
    std::uint64_t wakeRefires = 0;
    std::uint64_t spuriousInjected = 0;
    std::uint64_t stormWrites = 0;
    std::uint64_t watchdogSweeps = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
    /** Tasks served via the software-polled fallback path. */
    std::uint64_t fallbackTasks = 0;
    /** Queues stranded at end of run: nonempty + armed + not ready +
     *  not software-polled (0 whenever recovery is working). */
    std::uint64_t stuckQueues = 0;

    // --- Observability (trace.enable) --------------------------------

    /** Notification episodes with a full per-stage record. */
    std::uint64_t breakdownSamples = 0;
    /** Episodes closed without one (e.g. fallback-served). */
    std::uint64_t breakdownIncomplete = 0;
    /** Mean per-stage latencies, us (sum == breakdownE2eAvgUs). */
    double avgDoorbellToSnoopUs = 0.0;
    double avgSnoopToReadyUs = 0.0;
    double avgReadyToGrantUs = 0.0;
    double avgGrantToCompletionUs = 0.0;
    double breakdownE2eAvgUs = 0.0;
    double breakdownE2eP99Us = 0.0;
    /** Events recorded / evicted by the trace ring buffer. */
    std::uint64_t traceEvents = 0;
    std::uint64_t traceDropped = 0;
};

/** One simulated software-data-plane instance. */
class SdpSystem
{
  public:
    explicit SdpSystem(const SdpConfig &cfg);
    ~SdpSystem();

    SdpSystem(const SdpSystem &) = delete;
    SdpSystem &operator=(const SdpSystem &) = delete;

    /** Run warmup + measurement; returns the digested results. */
    SdpResults run();

    // --- component access (tests, custom experiments) ----------------

    const SdpConfig &config() const { return cfg_; }
    EventQueue &eventQueue() { return eq_; }
    mem::MemorySystem &memory() { return *mem_; }
    queueing::QueueSet &queues() { return queues_; }
    workloads::Workload &workload() { return *workload_; }
    traffic::PoissonSource &source() { return *source_; }

    /** Number of queue clusters (1 for scale-up-all). */
    unsigned numClusters() const;

    /**
     * Simulation worker threads this run will actually use after
     * resolving simThreads = 0 (env override) and the cluster cap.
     */
    unsigned simPartitions() const { return simPartitions_; }

    /** Partition (sim worker) a cluster's events execute on. */
    std::uint16_t ownerOfCluster(unsigned cluster) const
    {
        return static_cast<std::uint16_t>(clusterPart_[cluster]);
    }

    /** The QwaitUnit of a cluster (null for spinning planes). */
    core::QwaitUnit *qwaitUnit(unsigned cluster);

    /** The fault injector (null when the plan is all-zero). */
    fault::FaultInjector *faultInjector() { return faults_.get(); }

    /** The watchdog (null unless recovery machinery is enabled). */
    fault::Watchdog *watchdog() { return watchdog_.get(); }

    /** A cluster's fallback set (null without graceful degradation). */
    fault::FallbackSet *fallbackSet(unsigned cluster);

    /**
     * Queues currently stranded: nonempty, hardware-monitored with the
     * entry armed, not in the ready set, and not software-polled — the
     * lost-notification end state recovery must prevent.
     */
    std::uint64_t stuckQueues() const;

    DataPlaneCore &core(unsigned idx) { return *cores_[idx]; }

    /** Latency distribution of the measurement window, microseconds. */
    const stats::LogHistogram &latencyHistogram() const
    {
        return latency_;
    }

    /** Tenant-side model (null unless config().modelTenants). */
    TenantModel *tenants() { return tenants_.get(); }

    /** Per-queue weights after shape + imbalance application. */
    const std::vector<double> &weights() const { return weights_; }

    /** The event tracer (null unless config().trace.enable and the
     *  subsystem is compiled in). */
    trace::Tracer *tracer() { return tracer_.get(); }

    /** The per-stage latency breakdown (null when not tracing). */
    trace::LatencyBreakdown *breakdown() { return breakdown_.get(); }

    /** Sampled counter time series (null unless trace.sampleEveryUs). */
    const trace::TimeSeries *timeSeries() const
    {
        return sampler_ ? &sampler_->series() : nullptr;
    }

    /** The system's stat registry (populated at construction). */
    const stats::Registry &registry() const { return registry_; }

    /** Export the event buffer as Chrome/Perfetto trace JSON. */
    void writeChromeTrace(std::ostream &os) const;

    /**
     * Dump every component's statistics as sorted "path = value" lines
     * (gem5-style stats report).
     */
    void dumpStats(std::ostream &os) const;

  private:
    void build();
    /** eq_.run(until) via the resolved backend (sequential or token). */
    std::uint64_t runSim(Tick until);
    void registerStats();
    unsigned clusterOf(QueueId qid) const;
    void onArrival(QueueId qid, const queueing::WorkItem &item);
    void onCompletion(const queueing::WorkItem &item, Tick when);
    SdpResults digest(Tick windowTicks);

    // --- fault wiring -------------------------------------------------
    /** Wake one halted core of @p cluster. @return true if one woke. */
    bool deliverWake(unsigned cluster);
    /** Map a registered snooper back to its QwaitUnit. */
    core::QwaitUnit *unitForSnooper(mem::Snooper *s);
    /** Deliver a (possibly delayed) snoop, keeping the lost ledger. */
    void deliverSnoop(mem::Snooper *target, Addr line, CoreId writer);
    /** Snoop-path interposition: drop / delay / deliver + ledger. */
    bool interposeSnoop(Addr line, CoreId writer, mem::Snooper *target);
    /** Bind one queue with retries; demote on exhaustion. */
    void bindQueue(core::QwaitUnit &unit, unsigned cluster, QueueId qid);
    void scheduleSpuriousWake();
    void scheduleStormBurst();

    SdpConfig cfg_;
    EventQueue eq_;
    std::unique_ptr<mem::MemorySystem> mem_;
    queueing::QueueSet queues_;
    std::unique_ptr<workloads::Workload> workload_;
    std::vector<double> weights_;
    std::vector<std::unique_ptr<core::QwaitUnit>> qwaitUnits_;
    std::vector<std::unique_ptr<DataPlaneCore>> cores_;
    /** Per-cluster ready-item counters for spinning fast-forward. */
    std::vector<std::uint64_t> clusterBacklogs_;
    /** Cluster id of each core. */
    std::vector<unsigned> coreCluster_;
    /** Resolved sim worker threads (1 = sequential kernel). */
    unsigned simPartitions_ = 1;
    /** Cluster -> partition map (latency-weighted LPT). */
    std::vector<unsigned> clusterPart_;
    std::unique_ptr<traffic::PoissonSource> source_;
    std::unique_ptr<TenantModel> tenants_;
    std::unique_ptr<fault::FaultInjector> faults_;
    /** One fallback set per cluster (entries null w/o degradation). */
    std::vector<std::unique_ptr<fault::FallbackSet>> fallbacks_;
    std::unique_ptr<fault::Watchdog> watchdog_;
    std::unique_ptr<trace::Tracer> tracer_;
    std::unique_ptr<trace::LatencyBreakdown> breakdown_;
    std::unique_ptr<trace::RegistrySampler> sampler_;
    stats::Registry registry_;
    stats::LogHistogram latency_{0.01, 1.02, 2048};
    bool measuring_ = false;
    Tick measureStart_ = 0;
    std::uint64_t completions_ = 0;
};

/** Convenience: build + run in one call. */
SdpResults runSdp(const SdpConfig &cfg);

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_SDP_SYSTEM_HH
