/**
 * @file
 * Tenant QoS specification shared by the simulator and the emulated
 * server.
 *
 * A tenant is a traffic class with its own queue group, service weight,
 * priority, and admitted rate.  The same spec drives both sides of the
 * repo: `SdpConfig::tenants` applies the weights to the simulated
 * ready sets, and `server::TenantTable` builds the real admission /
 * steering state of the UDP server from it.  Validation lives here so
 * both consumers reject the same malformed configs with the same
 * messages (`SdpConfig::validate()` wraps it, the server throws from
 * the TenantTable constructor).
 *
 * The queue group is a contiguous [queueFirst, queueFirst+queueCount)
 * range.  Two invariants tie the spec to the ready-set hardware model:
 *
 *  - Groups must not overlap: per-queue weights and per-tenant
 *    accounting are only meaningful when each queue has one owner.
 *  - Priority order must follow queue-group order (higher priority =
 *    lower queue ids), because the strict-priority arbiter grants the
 *    lowest ready QID — a high-priority tenant parked on high queue
 *    ids would silently get the *worst* service.
 */

#ifndef HYPERPLANE_DP_TENANT_SPEC_HH
#define HYPERPLANE_DP_TENANT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hyperplane {
namespace dp {

/** One tenant's QoS contract. */
struct TenantSpec
{
    /** Display / stats name ("tenant0" when empty). */
    std::string name;

    /** WRR weight applied to every queue in the group (>= 1). */
    std::uint32_t weight = 1;

    /**
     * Scheduling priority; higher wins.  Under StrictPriority the
     * arbiter grants lower QIDs first, so validation requires higher
     * priority tenants to own lower-numbered queue groups.
     */
    std::uint32_t priority = 0;

    /**
     * Admitted request rate, requests/second (token bucket at RX
     * steering).  0 means unlimited — only legal at priority 0, since
     * an unlimited high-priority tenant could starve everyone below.
     */
    double rateLimitPerSec = 0.0;

    /** Token bucket depth, requests.  0 auto-sizes to ~20 ms of rate. */
    double burst = 0.0;

    /** First queue of the tenant's contiguous queue group. */
    unsigned queueFirst = 0;

    /** Queues in the group (>= 1). */
    unsigned queueCount = 0;
};

/** Effective name of spec @p i ("tenantN" when unnamed). */
inline std::string
tenantName(const TenantSpec &spec, std::size_t i)
{
    return spec.name.empty() ? "tenant" + std::to_string(i) : spec.name;
}

/**
 * Validate a tenant list against a data plane with @p numQueues queues.
 *
 * @return An actionable error message, or "" when the list is valid.
 *         An empty list is valid (single implicit tenant, no QoS).
 */
inline std::string
validateTenantSpecs(const std::vector<TenantSpec> &tenants,
                    unsigned numQueues)
{
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        const TenantSpec &t = tenants[i];
        const std::string who = "tenant " + tenantName(t, i);
        if (t.weight == 0)
            return who + ": weight must be >= 1 (0 would never be "
                         "granted by the WRR arbiter)";
        if (t.queueCount == 0)
            return who + ": queueCount must be >= 1 (a tenant without "
                         "queues cannot be served)";
        if (t.queueFirst >= numQueues ||
            t.queueCount > numQueues - t.queueFirst) {
            return who + ": queue group [" +
                   std::to_string(t.queueFirst) + ", " +
                   std::to_string(t.queueFirst + t.queueCount) +
                   ") exceeds numQueues=" + std::to_string(numQueues);
        }
        if (t.rateLimitPerSec < 0.0)
            return who + ": rateLimitPerSec must be >= 0";
        if (t.burst < 0.0)
            return who + ": burst must be >= 0";
        if (t.rateLimitPerSec == 0.0 && t.priority > 0)
            return who + ": priority > 0 requires a rate limit (an "
                         "unlimited high-priority tenant starves lower "
                         "priorities)";
        for (std::size_t j = 0; j < i; ++j) {
            const TenantSpec &o = tenants[j];
            const bool disjoint =
                t.queueFirst >= o.queueFirst + o.queueCount ||
                o.queueFirst >= t.queueFirst + t.queueCount;
            if (!disjoint) {
                return who + ": queue group overlaps tenant " +
                       tenantName(o, j) +
                       " (per-queue weights need a single owner)";
            }
            // Strict-priority arbiters grant the lowest QID: priority
            // order must agree with queue-group order.
            const bool tBelow = t.queueFirst < o.queueFirst;
            if ((tBelow && t.priority < o.priority) ||
                (!tBelow && t.priority > o.priority)) {
                return who + ": priority order contradicts queue-group "
                             "order (higher priority tenants must own "
                             "lower queue ids for the strict-priority "
                             "arbiter)";
            }
        }
    }
    return "";
}

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_TENANT_SPEC_HH
