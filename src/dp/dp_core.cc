#include "dp/dp_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace dp {

DataPlaneCore::DataPlaneCore(CoreId id, EventQueue &eq,
                             mem::MemorySystem &mem,
                             queueing::QueueSet &queues,
                             workloads::Workload &workload,
                             const CoreTimingParams &params,
                             ServiceJitter jitter, std::uint64_t seed)
    : id_(id), eq_(eq), mem_(mem), queues_(queues), workload_(workload),
      params_(params), jitter_(jitter), rng_(seed ^ (id * 0x5bd1e995ULL))
{
}

void
DataPlaneCore::assignQueues(std::vector<QueueId> qids)
{
    hp_assert(!qids.empty(), "core needs at least one queue");
    qids_ = std::move(qids);
}

void
DataPlaneCore::stop()
{
    running_ = false;
}

Tick
DataPlaneCore::touchTaskBuffer(const queueing::WorkItem &item)
{
    const unsigned lines = workload_.dataLines(item);
    // Each queue owns a small pool of buffer slots; successive items
    // rotate through the slots, so the live working set scales with the
    // number of *active* queues (the LLC-pressure effect of Figure 8).
    const Addr slotBytes =
        static_cast<Addr>(lines + 1) * cacheLineBytes;
    const Addr queuePool = queueing::AddressMap::taskDataBase +
                           static_cast<Addr>(item.qid) *
                               params_.slotsPerQueue * slotBytes;
    const Addr base =
        queuePool + (item.seq % params_.slotsPerQueue) * slotBytes;

    Tick latency = 0;
    for (unsigned l = 0; l < lines; ++l) {
        const Addr a = base + static_cast<Addr>(l) * cacheLineBytes;
        // Roughly half the lines are written (output buffers).
        const auto r = (l % 2 == 0) ? mem_.read(id_, a)
                                    : mem_.write(id_, a);
        latency += r.latency;
    }
    return latency;
}

Tick
DataPlaneCore::jitteredService(Tick base)
{
    switch (jitter_) {
      case ServiceJitter::None:
        return base;
      case ServiceJitter::Exponential:
        return static_cast<Tick>(
            std::max(1.0, rng_.exponential(static_cast<double>(base))));
    }
    return base;
}

Tick
DataPlaneCore::processItem(const queueing::WorkItem &item)
{
    // Transport/workload processing (Figure 2, step 2b).  onItem lets
    // stateful workloads mutate per-flow state and charge
    // state-dependent cost; stateless workloads forward to
    // serviceCycles unchanged.
    const Tick service = jitteredService(workload_.onItem(item));
    const Tick bufferLat = touchTaskBuffer(item);

    // Tenant notification (steps 2c-2d): write the tenant-side doorbell.
    const auto notif = mem_.write(
        id_, queueing::AddressMap::tenantDoorbellAddr(item.qid));

    const Tick total =
        service + bufferLat + params_.notifyCycles + notif.latency;

    const auto serviceInstr = static_cast<std::uint64_t>(
        params_.serviceInstrPerCycle * static_cast<double>(service));
    chargeActive(total, serviceInstr + params_.notifyInstr, true);
    ++activity_.tasks;

    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::Completion, id_, freeAt_ + total,
                         item.qid, item.seq);
    }
    if (completionHook_)
        completionHook_(item, freeAt_ + total);
    return total;
}

void
DataPlaneCore::chargeActive(Tick cycles, std::uint64_t instr, bool useful)
{
    activity_.activeTicks += cycles;
    if (useful)
        activity_.usefulInstr += instr;
    else
        activity_.uselessInstr += instr;
}

} // namespace dp
} // namespace hyperplane
