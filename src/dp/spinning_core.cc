#include "dp/spinning_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace dp {

namespace {

/** Maximum simulated time one step event may cover, cycles. */
constexpr Tick maxChunk = usToTicks(50.0);

} // namespace

SpinningCore::SpinningCore(CoreId id, EventQueue &eq,
                           mem::MemorySystem &mem,
                           queueing::QueueSet &queues,
                           workloads::Workload &workload,
                           const CoreTimingParams &params,
                           ServiceJitter jitter, std::uint64_t seed,
                           bool shared)
    : DataPlaneCore(id, eq, mem, queues, workload, params, jitter, seed),
      shared_(shared)
{
}

void
SpinningCore::start()
{
    hp_assert(!qids_.empty(), "no queues assigned");
    running_ = true;
    idleSpinning_ = false;
    freeAt_ = eq_.now();
    eq_.schedule(freeAt_, [this] { step(); });
}

void
SpinningCore::resetStats()
{
    DataPlaneCore::resetStats();
    // An idle-spin interval in progress restarts at the boundary.
    if (idleSpinning_)
        idleStart_ = eq_.now();
}

void
SpinningCore::finalize(Tick endTick)
{
    if (idleSpinning_) {
        flushIdleSpin(endTick);
        idleStart_ = endTick;
    }
}

void
SpinningCore::enterIdleSpin()
{
    idleSpinning_ = true;
    idleStart_ = freeAt_;
}

void
SpinningCore::flushIdleSpin(Tick now)
{
    if (now <= idleStart_)
        return;
    const Tick delta = now - idleStart_;
    const auto per =
        static_cast<Tick>(std::max(1.0, avgPollCost_));
    chargeSkippedPolls(delta / per);
    // Sub-poll remainder: still spinning.
    chargeActive(delta % per, 0, false);
    idleStart_ = now;
}

void
SpinningCore::chargeSkippedPolls(std::uint64_t n)
{
    if (n == 0)
        return;
    const auto per = static_cast<Tick>(std::max(1.0, avgPollCost_));
    activity_.polls += n;
    activity_.emptyPolls += n;
    chargeActive(n * per, n * params_.pollInstr, false);
    sweepPos_ = static_cast<unsigned>((sweepPos_ + n) % qids_.size());
}

void
SpinningCore::wakeSpin()
{
    if (!running_ || !idleSpinning_)
        return;
    idleSpinning_ = false;
    const Tick now = eq_.now();
    flushIdleSpin(now);
    freeAt_ = std::max(freeAt_, now);
    eq_.schedule(freeAt_, [this] { step(); });
}

void
SpinningCore::step()
{
    if (!running_ || idleSpinning_)
        return;
    // Bound the chunk by the next pending event so arrivals and other
    // cores' actions interleave at the right times.
    Tick horizon = freeAt_ + maxChunk;
    if (!eq_.empty())
        horizon = std::min(horizon, eq_.nextEventTick());
    if (horizon <= freeAt_)
        horizon = freeAt_ + 1;

    const unsigned n = static_cast<unsigned>(qids_.size());
    while (running_ && freeAt_ < horizon) {
        if (*backlog_ == 0) {
            if (avgPollCost_ >= 1.0 && realPolls_ >= qids_.size()) {
                // Provably nothing to find: go event-free until the
                // arrival hook wakes us.  The bootstrap sweep has
                // already warmed every queue-head line, so the charged
                // per-poll cost matches continuous polling.
                enterIdleSpin();
                return;
            }
            // Bootstrap: sweep every queue for real once.
            pollOnce();
            continue;
        }

        // Work exists somewhere in our subset: hunt for the next ready
        // queue from the sweep position.
        unsigned k = 0;
        bool found = false;
        for (; k < n; ++k) {
            if (!queues_[qids_[(sweepPos_ + k) % n]].empty()) {
                found = true;
                break;
            }
        }
        if (!found) {
            // The shared counter says ready but our subset shows none —
            // a transient in shared mode (a sibling is dequeuing).  One
            // real poll makes progress and keeps time moving.
            pollOnce();
            continue;
        }
        if (k == 0) {
            // The sweep position is the ready queue: poll and serve.
            pollOnce();
            continue;
        }
        // An empty run of k queues precedes the ready one.  Execute one
        // real empty poll — keeping the per-poll cost estimate and the
        // cache state honest — and charge the remaining k-1 empties
        // analytically, bounded by the event horizon.
        pollOnce();
        --k;
        if (k > 0 && avgPollCost_ >= 1.0) {
            const auto per = static_cast<Tick>(avgPollCost_);
            const Tick skipCost = k * per;
            if (freeAt_ + skipCost > horizon) {
                // Only part of the empty run fits before the horizon:
                // sweep that far and yield to the pending event.
                const auto fit = std::min<std::uint64_t>(
                    (horizon - freeAt_) / per, k);
                if (fit > 0) {
                    chargeSkippedPolls(fit);
                    freeAt_ += fit * per;
                }
                continue;
            }
            chargeSkippedPolls(k);
            freeAt_ += skipCost;
        }
        // Loop re-hunts: the ready queue is now at the sweep position
        // (k == 0) unless the horizon intervened.
    }
    if (running_)
        eq_.schedule(freeAt_, [this] { step(); });
}

Tick
SpinningCore::pollOnce()
{
    const QueueId qid = qids_[sweepPos_];
    sweepPos_ = sweepPos_ + 1 == qids_.size() ? 0 : sweepPos_ + 1;
    ++activity_.polls;
    ++realPolls_;

    queueing::TaskQueue &q = queues_[qid];
    // The poll-loop body: branch/bookkeeping plus the queue-head read.
    // Small sweeps run the tight-loop fast path.
    const bool tight = qids_.size() <= params_.tightLoopMax;
    const Tick loopCycles =
        tight ? params_.tightLoopCycles : params_.pollLoopCycles;
    const unsigned loopInstr =
        tight ? params_.tightLoopInstr : params_.pollInstr;
    Tick cost = loopCycles;
    cost += mem_.read(id_, q.doorbellAddr()).latency;
    cost += mem_.read(id_, q.descriptorAddr()).latency;

    if (q.empty()) {
        ++activity_.emptyPolls;
        chargeActive(cost, loopInstr, false);
        freeAt_ += cost;
        // Track the steady-state per-poll cost for skip accounting.
        avgPollCost_ = avgPollCost_ == 0.0
            ? static_cast<double>(cost)
            : 0.9 * avgPollCost_ + 0.1 * static_cast<double>(cost);
        return cost;
    }

    // Found work: the poll that discovered it counts as useful.
    chargeActive(cost, loopInstr, true);
    freeAt_ += cost;
    return cost + serveQueue(qid);
}

Tick
SpinningCore::serveQueue(QueueId qid)
{
    queueing::TaskQueue &q = queues_[qid];
    Tick cost = 0;

    if (shared_) {
        // Scale-up spinning: cores must synchronize to dequeue.  The
        // lock/CAS line ping-pongs between the sharing cores' L1s — the
        // cost Section II calls out as making shared queues impractical.
        cost += mem_.atomicRmw(id_, queueing::AddressMap::syncAddr(qid))
                    .latency;
        cost += params_.sharedDequeueSyncCycles;
    }

    // Consumer-side doorbell decrement + descriptor fetch.
    cost += params_.dequeueCycles;
    cost += mem_.atomicRmw(id_, q.doorbellAddr()).latency;
    cost += mem_.read(id_, q.descriptorAddr()).latency;

    auto item = q.dequeue();
    if (!item) {
        // Raced with a sharing core; the CAS work was wasted.
        chargeActive(cost, params_.dequeueInstr, false);
        freeAt_ += cost;
        return cost;
    }
    if (*backlog_ > 0)
        --*backlog_;
    chargeActive(cost, params_.dequeueInstr, true);
    freeAt_ += cost;

    Tick total = cost + processItem(*item);
    freeAt_ = freeAt_ - cost + total; // processItem charged separately

    // rx_burst-style batching: drain up to spinBurst items from this
    // visit (the batch decrement is covered by the single RMW above).
    unsigned drained = 1;
    while (drained < params_.spinBurst && !q.empty()) {
        Tick c = params_.dequeueCycles / 2;
        c += mem_.read(id_, q.descriptorAddr()).latency;
        auto next = q.dequeue();
        if (!next)
            break;
        if (*backlog_ > 0)
            --*backlog_;
        chargeActive(c, params_.dequeueInstr / 2, true);
        freeAt_ += c;
        const Tick svc = processItem(*next);
        freeAt_ += svc;
        total += c + svc;
        ++drained;
    }
    return total;
}

} // namespace dp
} // namespace hyperplane
