/**
 * @file
 * Common machinery for simulated data-plane cores.
 *
 * A data-plane core is an event-driven state machine over the shared
 * EventQueue.  Its activity advances a private time cursor (freeAt());
 * memory operations go through the shared MemorySystem and contribute
 * their latencies.  Cores account executed instructions (split into
 * useful work and useless spinning), cycles per C-state, and completion
 * latencies — everything Figures 8-13 need.
 */

#ifndef HYPERPLANE_DP_DP_CORE_HH
#define HYPERPLANE_DP_DP_CORE_HH

#include <functional>
#include <vector>

#include "mem/memory_system.hh"
#include "queueing/task_queue.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace dp {

/** Abstract-core timing parameters (instruction-level costs). */
struct CoreTimingParams
{
    /**
     * Pure-compute cycles of one poll-loop iteration (no memory): the
     * rx_burst-style per-queue dispatch, ring-state checks, and branch
     * overhead of a DPDK-class poll-mode driver.
     */
    Tick pollLoopCycles = 280;
    /** Instructions retired per poll-loop iteration (wide unrolled
     *  descriptor checks executing at high IPC while spinning). */
    unsigned pollInstr = 800;
    /**
     * Poll cost when the sweep covers only a few queues: the loop stays
     * tight and branch-predicted with per-queue state register-resident
     * (a tenant polling its own queue, or an SDP with <= tightLoopMax
     * queues), which is why spinning still wins by a hair at a single
     * queue (Section V-B).
     */
    Tick tightLoopCycles = 15;
    unsigned tightLoopInstr = 45;
    unsigned tightLoopMax = 4;
    /** Compute cycles of a dequeue (descriptor parse, bookkeeping). */
    Tick dequeueCycles = 20;
    unsigned dequeueInstr = 30;
    /** Compute cycles to notify the tenant (build + ring doorbell). */
    Tick notifyCycles = 10;
    unsigned notifyInstr = 15;
    /** QWAIT-VERIFY / QWAIT-RECONSIDER instruction overhead, cycles. */
    Tick verifyCycles = 8;
    Tick reconsiderCycles = 8;
    /** Instructions per cycle while executing workload service code
     *  (memory-bound transport processing). */
    double serviceInstrPerCycle = 1.1;
    /** Task-buffer slots per queue (bounds the buffer working set). */
    unsigned slotsPerQueue = 16;
    /**
     * Extra per-dequeue synchronization cost when multiple cores share
     * queues without HyperPlane (spin-polling scale-up): lock/CAS
     * acquire + release on the queue's synchronization line.
     */
    Tick sharedDequeueSyncCycles = 150;
    /**
     * Items a spinning core drains from a non-empty queue per sweep
     * visit (DPDK rx_burst-style batching; the doorbell counter is
     * decremented by the batch size).
     */
    unsigned spinBurst = 6;
};

/** Service-time variability applied on top of the workload model. */
enum class ServiceJitter : std::uint8_t
{
    None,        ///< deterministic service times
    Exponential, ///< exponential multiplier, mean 1 (cv = 1)
};

/** Completion callback: (item, completionTick). */
using CompletionHook =
    std::function<void(const queueing::WorkItem &, Tick)>;

/** Per-core activity statistics (reset at the measurement boundary). */
struct CoreActivity
{
    std::uint64_t tasks = 0;
    std::uint64_t usefulInstr = 0;
    std::uint64_t uselessInstr = 0;
    std::uint64_t polls = 0;
    std::uint64_t emptyPolls = 0;
    Tick activeTicks = 0;
    Tick c0HaltTicks = 0;
    Tick c1HaltTicks = 0;
    std::uint64_t wakeups = 0;
    /** Low-priority background-task execution (non-blocking QWAIT). */
    Tick backgroundTicks = 0;
    std::uint64_t backgroundInstr = 0;

    void clear() { *this = CoreActivity{}; }

    double
    ipc(Tick window) const
    {
        if (window == 0)
            return 0.0;
        return static_cast<double>(usefulInstr + uselessInstr) /
               static_cast<double>(window);
    }
};

/**
 * Base class for all data-plane core models.
 */
class DataPlaneCore
{
  public:
    DataPlaneCore(CoreId id, EventQueue &eq, mem::MemorySystem &mem,
                  queueing::QueueSet &queues,
                  workloads::Workload &workload,
                  const CoreTimingParams &params, ServiceJitter jitter,
                  std::uint64_t seed);

    virtual ~DataPlaneCore() = default;

    CoreId id() const { return id_; }

    /** Queues this core services (scale-out subset or all). */
    void assignQueues(std::vector<QueueId> qids);
    const std::vector<QueueId> &assignedQueues() const { return qids_; }

    /** Begin executing (schedules the first step). */
    virtual void start() = 0;

    /** Stop executing (the core stops rescheduling itself). */
    virtual void stop();

    void setCompletionHook(CompletionHook hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Attach a tracer; events stamp on this core's track (= id). */
    virtual void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Reset activity counters at the measurement boundary. */
    virtual void resetStats() { activity_.clear(); }

    /** Close any open halt/idle accounting at the end of a window. */
    virtual void finalize(Tick endTick) { (void)endTick; }

    const CoreActivity &activity() const { return activity_; }

    /** The core's time cursor: when it next becomes free. */
    Tick freeAt() const { return freeAt_; }

  protected:
    /**
     * One task-buffer access pass: touch the item's buffer lines
     * through the memory system.
     * @return Total memory latency incurred, cycles.
     */
    Tick touchTaskBuffer(const queueing::WorkItem &item);

    /**
     * Process a dequeued item: charge service time + buffer traffic +
     * tenant notification, record the completion.
     * @return Cycles consumed.
     */
    Tick processItem(const queueing::WorkItem &item);

    /** Apply service jitter to a base cycle count. */
    Tick jitteredService(Tick base);

    /** Charge an active interval (updates instruction + cycle stats). */
    void chargeActive(Tick cycles, std::uint64_t instr, bool useful);

    CoreId id_;
    EventQueue &eq_;
    mem::MemorySystem &mem_;
    queueing::QueueSet &queues_;
    workloads::Workload &workload_;
    CoreTimingParams params_;
    ServiceJitter jitter_;
    Rng rng_;
    std::vector<QueueId> qids_;
    CompletionHook completionHook_;
    trace::Tracer *tracer_ = nullptr;
    CoreActivity activity_;
    Tick freeAt_ = 0;
    bool running_ = false;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_DP_CORE_HH
