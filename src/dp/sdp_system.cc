#include "dp/sdp_system.hh"

#include <algorithm>
#include <ostream>

#include "stats/registry.hh"

#include "dp/interrupt_core.hh"
#include "dp/spinning_core.hh"
#include "dp/sw_ready_set_core.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace dp {

namespace {

/** Table I cache geometry. */
const mem::CacheGeometry l1Geom{32 * 1024, 4, cacheLineBytes};
const mem::CacheGeometry llcGeom{16ull * 1024 * 1024, 16,
                                 cacheLineBytes};

/** Round @p v up to a multiple of @p m. */
unsigned
roundUpTo(unsigned v, unsigned m)
{
    return (v + m - 1) / m * m;
}

} // namespace

const char *
toString(PlaneKind k)
{
    switch (k) {
      case PlaneKind::Spinning:
        return "spinning";
      case PlaneKind::HyperPlane:
        return "hyperplane";
      case PlaneKind::HyperPlaneSwReady:
        return "hyperplane-sw-ready";
      case PlaneKind::InterruptDriven:
        return "interrupt-driven";
    }
    return "?";
}

const char *
toString(QueueOrg o)
{
    switch (o) {
      case QueueOrg::ScaleOut:
        return "scale-out";
      case QueueOrg::ScaleUp2:
        return "scale-up-2";
      case QueueOrg::ScaleUpAll:
        return "scale-up";
    }
    return "?";
}

SdpSystem::SdpSystem(const SdpConfig &cfg)
    : cfg_(cfg), queues_(cfg.numQueues)
{
    build();
}

SdpSystem::~SdpSystem()
{
    for (auto &unit : qwaitUnits_)
        mem_->unwatch(unit.get());
}

unsigned
SdpSystem::numClusters() const
{
    switch (cfg_.org) {
      case QueueOrg::ScaleOut:
        return cfg_.numCores;
      case QueueOrg::ScaleUp2:
        return std::max(1u, cfg_.numCores / 2);
      case QueueOrg::ScaleUpAll:
        return 1;
    }
    return 1;
}

unsigned
SdpSystem::clusterOf(QueueId qid) const
{
    const unsigned clusters = numClusters();
    const unsigned perCluster = cfg_.numQueues / clusters;
    return std::min(clusters - 1, qid / perCluster);
}

core::QwaitUnit *
SdpSystem::qwaitUnit(unsigned cluster)
{
    if (cluster >= qwaitUnits_.size())
        return nullptr;
    return qwaitUnits_[cluster].get();
}

void
SdpSystem::build()
{
    hp_assert(cfg_.numCores >= 1, "need at least one data-plane core");
    hp_assert(cfg_.numQueues >= numClusters(),
              "need at least one queue per cluster");
    hp_assert(cfg_.numCores % numClusters() == 0,
              "cores must divide evenly into clusters");

    mem_ = std::make_unique<mem::MemorySystem>(cfg_.numCores, l1Geom,
                                               llcGeom);
    workload_ = makeWorkload(cfg_.workload, cfg_.seed);

    // Traffic shape -> per-queue weights (+ optional static imbalance).
    Rng shapeRng(cfg_.seed ^ 0x5eedULL);
    weights_ = traffic::shapeWeights(cfg_.shape, cfg_.numQueues,
                                     shapeRng);
    if (cfg_.imbalance > 0.0)
        weights_ = traffic::applyImbalance(weights_, cfg_.imbalance);

    const unsigned clusters = numClusters();
    const unsigned coresPerCluster = cfg_.numCores / clusters;
    const unsigned queuesPerCluster = cfg_.numQueues / clusters;
    clusterBacklogs_.assign(clusters, 0);
    coreCluster_.resize(cfg_.numCores);

    const bool hyper = cfg_.plane == PlaneKind::HyperPlane ||
                       cfg_.plane == PlaneKind::HyperPlaneSwReady;

    if (hyper) {
        // One QwaitUnit per cluster, snooping that cluster's doorbell
        // address slice.
        for (unsigned c = 0; c < clusters; ++c) {
            core::QwaitConfig qcfg;
            const unsigned span = c + 1 == clusters
                ? cfg_.numQueues - c * queuesPerCluster
                : queuesPerCluster;
            qcfg.monitoring.capacity = roundUpTo(
                std::max(1024u, span + span / 4), qcfg.monitoring.ways);
            qcfg.ready.capacity = cfg_.numQueues;
            qcfg.ready.policy = cfg_.policy;
            qcfg.qwaitLatency = cfg_.qwaitLatency;
            auto unit = std::make_unique<core::QwaitUnit>(qcfg);

            const QueueId lo = c * queuesPerCluster;
            const QueueId hi = c + 1 == clusters
                ? cfg_.numQueues
                : lo + queuesPerCluster;
            for (QueueId q = lo; q < hi; ++q) {
                const bool ok =
                    unit->qwaitAdd(q, queues_[q].doorbellAddr());
                hp_assert(ok, "QWAIT-ADD failed for qid %u", q);
            }
            mem_->watchRange(
                queueing::AddressMap::doorbellAddr(lo),
                queueing::AddressMap::doorbellAddr(hi - 1) +
                    cacheLineBytes,
                unit.get());
            qwaitUnits_.push_back(std::move(unit));
        }
    }

    // Create cores, assign queue subsets cluster by cluster.
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        const unsigned c = i / coresPerCluster;
        coreCluster_[i] = c;
        const QueueId lo = c * queuesPerCluster;
        const QueueId hi = c + 1 == clusters ? cfg_.numQueues
                                             : lo + queuesPerCluster;
        std::vector<QueueId> subset;
        subset.reserve(hi - lo);
        for (QueueId q = lo; q < hi; ++q)
            subset.push_back(q);

        std::unique_ptr<DataPlaneCore> core;
        if (cfg_.plane == PlaneKind::Spinning) {
            auto sc = std::make_unique<SpinningCore>(
                i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                cfg_.jitter, cfg_.seed + i, coresPerCluster > 1);
            sc->setBacklogCounter(&clusterBacklogs_[c]);
            core = std::move(sc);
        } else if (cfg_.plane == PlaneKind::InterruptDriven) {
            auto ic = std::make_unique<InterruptCore>(
                i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                cfg_.jitter, cfg_.seed + i,
                usToTicks(cfg_.interruptUs));
            ic->setBacklogCounter(&clusterBacklogs_[c]);
            core = std::move(ic);
        } else {
            core::QwaitUnit &unit = *qwaitUnits_[c];
            const Tick wake = cfg_.power.c1WakeLatency;
            std::unique_ptr<HyperPlaneCore> hpc;
            if (cfg_.plane == PlaneKind::HyperPlane) {
                hpc = std::make_unique<HyperPlaneCore>(
                    i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                    cfg_.jitter, cfg_.seed + i, unit,
                    cfg_.powerOptimized, wake, cfg_.batchSize);
            } else {
                hpc = std::make_unique<SwReadySetCore>(
                    i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                    cfg_.jitter, cfg_.seed + i, unit,
                    cfg_.powerOptimized, wake, cfg_.batchSize);
            }
            hpc->setInOrder(cfg_.inOrderQueues);
            hpc->setBackgroundTask(cfg_.backgroundQuantum);
            core = std::move(hpc);
        }
        core->assignQueues(std::move(subset));
        core->setCompletionHook(
            [this](const queueing::WorkItem &item, Tick when) {
                onCompletion(item, when);
            });
        cores_.push_back(std::move(core));
    }

    if (hyper) {
        // NUMA-style work stealing: every core may fall through to the
        // other clusters' ready sets when its own is idle.
        if (cfg_.workStealing && clusters > 1) {
            for (unsigned i = 0; i < cfg_.numCores; ++i) {
                std::vector<core::QwaitUnit *> targets;
                for (unsigned c = 0; c < clusters; ++c) {
                    if (c != coreCluster_[i])
                        targets.push_back(qwaitUnits_[c].get());
                }
                static_cast<HyperPlaneCore *>(cores_[i].get())
                    ->setStealTargets(std::move(targets),
                                      cfg_.stealExtraCycles);
            }
        }
        // Wake one halted core of the cluster per ready-queue arrival;
        // with stealing enabled, fall back to any halted core.
        for (unsigned c = 0; c < clusters; ++c) {
            qwaitUnits_[c]->setWakeCallback([this, c, coresPerCluster] {
                const unsigned base = c * coresPerCluster;
                for (unsigned k = 0; k < coresPerCluster; ++k) {
                    auto *hpc = static_cast<HyperPlaneCore *>(
                        cores_[base + k].get());
                    if (hpc->halted()) {
                        hpc->wake();
                        return;
                    }
                }
                if (cfg_.workStealing) {
                    for (auto &corePtr : cores_) {
                        auto *hpc = static_cast<HyperPlaneCore *>(
                            corePtr.get());
                        if (hpc->halted()) {
                            hpc->wake();
                            return;
                        }
                    }
                }
            });
        }
    }

    // Traffic source.
    traffic::SourceConfig scfg;
    scfg.totalRatePerSec = cfg_.offeredRatePerSec;
    scfg.payloadBytes = cfg_.payloadBytes != 0
        ? cfg_.payloadBytes
        : workload_->defaultPayloadBytes();
    scfg.maxQueueDepth = cfg_.maxQueueDepth;
    scfg.seed = cfg_.seed ^ 0x7ea99ULL;
    source_ = std::make_unique<traffic::PoissonSource>(
        eq_, queues_, mem_.get(), scfg, weights_);
    if (cfg_.modelTenants) {
        tenants_ = std::make_unique<TenantModel>(cfg_.tenant,
                                                 cfg_.seed ^ 0x7e9aULL);
    }
    source_->setArrivalHook(
        [this](QueueId qid, const queueing::WorkItem &item) {
            onArrival(qid, item);
        });
}

void
SdpSystem::onArrival(QueueId qid, const queueing::WorkItem &item)
{
    (void)item;
    const unsigned c = clusterOf(qid);
    ++clusterBacklogs_[c];
    if (cfg_.plane == PlaneKind::Spinning) {
        // Wake any idle-spinning cores of this cluster so they resume
        // real polling at the arrival instant.
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (coreCluster_[i] == c) {
                static_cast<SpinningCore *>(cores_[i].get())
                    ->wakeSpin();
            }
        }
    } else if (cfg_.plane == PlaneKind::InterruptDriven) {
        // Deliver the interrupt to an idle core of this cluster.
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (coreCluster_[i] == c) {
                auto *ic =
                    static_cast<InterruptCore *>(cores_[i].get());
                if (ic->halted()) {
                    ic->raiseInterrupt();
                    break;
                }
            }
        }
    }
}

void
SdpSystem::onCompletion(const queueing::WorkItem &item, Tick when)
{
    if (cfg_.plane == PlaneKind::HyperPlane ||
        cfg_.plane == PlaneKind::HyperPlaneSwReady) {
        // HyperPlane planes do not poll; keep the shared backlog
        // counters balanced anyway for introspection.
        auto &b = clusterBacklogs_[clusterOf(item.qid)];
        if (b > 0)
            --b;
    }
    if (!measuring_ || when < measureStart_)
        return;
    ++completions_;
    latency_.record(ticksToUs(when - item.arrivalTick));
    if (tenants_)
        tenants_->deliver(item, when);
}

SdpResults
SdpSystem::run()
{
    for (auto &core : cores_)
        core->start();
    source_->start();

    const Tick warmupEnd = eq_.now() + usToTicks(cfg_.warmupUs);
    eq_.run(warmupEnd);

    // Measurement boundary: clear every statistic.
    measuring_ = true;
    measureStart_ = warmupEnd;
    completions_ = 0;
    latency_.clear();
    for (auto &core : cores_)
        core->resetStats();
    if (tenants_)
        tenants_->resetStats();
    const std::uint64_t genAtStart = source_->generated();
    const std::uint64_t dropAtStart = source_->dropped();

    const Tick end = warmupEnd + usToTicks(cfg_.measureUs);
    eq_.run(end);

    // Close halt/idle intervals still open at the end of the window.
    for (auto &core : cores_)
        core->finalize(end);

    SdpResults r = digest(end - measureStart_);
    r.generated = source_->generated() - genAtStart;
    r.dropped = source_->dropped() - dropAtStart;

    for (auto &core : cores_)
        core->stop();
    source_->stop();
    return r;
}

SdpResults
SdpSystem::digest(Tick windowTicks)
{
    SdpResults r;
    const double windowSec = ticksToSeconds(windowTicks);

    r.completions = completions_;
    r.throughputMtps =
        static_cast<double>(completions_) / windowSec / 1e6;
    if (latency_.count() > 0) {
        r.avgLatencyUs = latency_.mean();
        r.p50LatencyUs = latency_.quantile(0.50);
        r.p99LatencyUs = latency_.quantile(0.99);
        r.p999LatencyUs = latency_.quantile(0.999);
        r.maxLatencyUs = latency_.max();
    }

    power::CorePowerModel powerModel(cfg_.power);
    double totalInstr = 0, usefulInstr = 0, uselessInstr = 0;
    double activeTicks = 0, powerSum = 0;
    std::uint64_t polls = 0, tasks = 0;
    for (const auto &core : cores_) {
        const CoreActivity &a = core->activity();
        totalInstr +=
            static_cast<double>(a.usefulInstr + a.uselessInstr);
        usefulInstr += static_cast<double>(a.usefulInstr);
        uselessInstr += static_cast<double>(a.uselessInstr);
        activeTicks += static_cast<double>(a.activeTicks);
        polls += a.polls;
        tasks += a.tasks;

        const double coreActiveIpc = a.activeTicks > 0
            ? static_cast<double>(a.usefulInstr + a.uselessInstr) /
                static_cast<double>(a.activeTicks)
            : 0.0;
        // Unaccounted window time (core idle before its chunk closed)
        // is treated as halted-in-C0 for spinning planes too; in
        // practice spinning cores are active for the full window.
        const auto accounted = static_cast<double>(
            a.activeTicks + a.c0HaltTicks + a.c1HaltTicks);
        const double slack =
            std::max(0.0, static_cast<double>(windowTicks) - accounted);
        double energy =
            powerModel.activePowerW(coreActiveIpc) *
                ticksToSeconds(a.activeTicks) +
            powerModel.haltPowerW(false) *
                (ticksToSeconds(a.c0HaltTicks) + slack / (clockGHz * 1e9)) +
            powerModel.haltPowerW(true) * ticksToSeconds(a.c1HaltTicks);
        powerSum += energy / windowSec;
    }
    const double coreWindows =
        static_cast<double>(windowTicks) * cfg_.numCores;
    r.ipc = totalInstr / coreWindows;
    r.usefulIpc = usefulInstr / coreWindows;
    r.uselessIpc = uselessInstr / coreWindows;
    r.activeFraction = std::min(1.0, activeTicks / coreWindows);
    r.activeIpc = activeTicks > 0 ? totalInstr / activeTicks : 0.0;
    r.avgCorePowerW = powerSum / cfg_.numCores;
    r.avgPollsPerTask =
        tasks > 0 ? static_cast<double>(polls) / tasks : 0.0;

    SmtCoRunner smt(cfg_.smt);
    r.coRunnerIpc = smt.coRunnerIpc(r.activeFraction, r.activeIpc);

    for (const auto &unit : qwaitUnits_)
        r.spuriousWakeups += unit->spuriousWakeups.value();
    double bgInstr = 0;
    for (const auto &core : cores_) {
        if (auto *hpc = dynamic_cast<HyperPlaneCore *>(core.get()))
            r.stolenGrants += hpc->stolen();
        if (auto *ic = dynamic_cast<InterruptCore *>(core.get()))
            r.interrupts += ic->interruptsTaken();
        bgInstr += static_cast<double>(core->activity().backgroundInstr);
    }
    r.backgroundIpc = bgInstr / coreWindows;
    if (tenants_ && tenants_->latency().count() > 0) {
        r.e2eAvgLatencyUs = tenants_->latency().mean();
        r.e2eP99LatencyUs = tenants_->latency().quantile(0.99);
    }
    return r;
}

void
SdpSystem::dumpStats(std::ostream &os) const
{
    stats::Registry reg;
    reg.addGroup("mem",
                 {mem_->l1Hits, mem_->llcHits, mem_->remoteForwards,
                  mem_->memAccesses, mem_->invalidations,
                  mem_->writeTransactions, mem_->snoopHits});
    reg.addGroup("source", {source_->generated_, source_->dropped_});
    for (unsigned c = 0; c < qwaitUnits_.size(); ++c) {
        const auto &u = *qwaitUnits_[c];
        const std::string p = "hyperplane" + std::to_string(c);
        reg.addGroup(p, {u.qwaitCalls, u.qwaitBlocked,
                         u.spuriousWakeups});
        reg.addGroup(p + ".monitoring",
                     {u.monitoringSet().inserts,
                      u.monitoringSet().insertConflicts,
                      u.monitoringSet().snoops,
                      u.monitoringSet().snoopMatches});
        reg.addGroup(p + ".ready", {u.readySet().activations,
                                    u.readySet().grants});
        reg.addScalar(p + ".monitoring.occupancy", [&u] {
            return static_cast<double>(u.monitoringSet().occupancy());
        });
    }
    for (unsigned i = 0; i < cores_.size(); ++i) {
        const CoreActivity &a = cores_[i]->activity();
        const std::string p = "core" + std::to_string(i);
        reg.addScalar(p + ".tasks",
                      [&a] { return static_cast<double>(a.tasks); });
        reg.addScalar(p + ".polls",
                      [&a] { return static_cast<double>(a.polls); });
        reg.addScalar(p + ".empty_polls", [&a] {
            return static_cast<double>(a.emptyPolls);
        });
        reg.addScalar(p + ".useful_instr", [&a] {
            return static_cast<double>(a.usefulInstr);
        });
        reg.addScalar(p + ".useless_instr", [&a] {
            return static_cast<double>(a.uselessInstr);
        });
        reg.addScalar(p + ".active_ticks", [&a] {
            return static_cast<double>(a.activeTicks);
        });
        reg.addScalar(p + ".halt_ticks", [&a] {
            return static_cast<double>(a.c0HaltTicks + a.c1HaltTicks);
        });
        reg.addScalar(p + ".wakeups", [&a] {
            return static_cast<double>(a.wakeups);
        });
    }
    os << reg.report();
}

SdpResults
runSdp(const SdpConfig &cfg)
{
    SdpSystem system(cfg);
    return system.run();
}

} // namespace dp
} // namespace hyperplane
