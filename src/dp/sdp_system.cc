#include "dp/sdp_system.hh"

#include <algorithm>
#include <ostream>
#include <stdexcept>
#include <string>

#include "stats/registry.hh"
#include "trace/chrome_trace.hh"

#include "dp/interrupt_core.hh"
#include "dp/spinning_core.hh"
#include "dp/sw_ready_set_core.hh"
#include "sim/logging.hh"
#include "sim/parallel_engine.hh"

#include <cstdlib>

namespace hyperplane {
namespace dp {

namespace {

/** Table I cache geometry. */
const mem::CacheGeometry l1Geom{32 * 1024, 4, cacheLineBytes};
const mem::CacheGeometry llcGeom{16ull * 1024 * 1024, 16,
                                 cacheLineBytes};

/** Round @p v up to a multiple of @p m. */
unsigned
roundUpTo(unsigned v, unsigned m)
{
    return (v + m - 1) / m * m;
}

/** simThreads = 0 resolves to HYPERPLANE_SIM_THREADS, else 1. */
unsigned
resolveSimThreads(unsigned cfg)
{
    if (cfg != 0)
        return cfg;
    if (const char *env = std::getenv("HYPERPLANE_SIM_THREADS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 1;
}

} // namespace

const char *
toString(PlaneKind k)
{
    switch (k) {
      case PlaneKind::Spinning:
        return "spinning";
      case PlaneKind::HyperPlane:
        return "hyperplane";
      case PlaneKind::HyperPlaneSwReady:
        return "hyperplane-sw-ready";
      case PlaneKind::InterruptDriven:
        return "interrupt-driven";
    }
    return "?";
}

const char *
toString(QueueOrg o)
{
    switch (o) {
      case QueueOrg::ScaleOut:
        return "scale-out";
      case QueueOrg::ScaleUp2:
        return "scale-up-2";
      case QueueOrg::ScaleUpAll:
        return "scale-up";
    }
    return "?";
}

void
SdpConfig::validate() const
{
    auto fail = [](const std::string &msg) {
        throw std::invalid_argument("SdpConfig: " + msg);
    };
    auto rate01 = [&fail](double v, const char *name) {
        if (!(v >= 0.0 && v <= 1.0))
            fail(std::string(name) + " must be in [0, 1]");
    };

    if (numCores == 0)
        fail("numCores must be >= 1");
    if (numQueues == 0)
        fail("numQueues must be >= 1");
    unsigned clusters = 1;
    switch (org) {
      case QueueOrg::ScaleOut:
        clusters = numCores;
        break;
      case QueueOrg::ScaleUp2:
        clusters = std::max(1u, numCores / 2);
        break;
      case QueueOrg::ScaleUpAll:
        clusters = 1;
        break;
    }
    if (numQueues < clusters)
        fail("need at least one queue per cluster (numQueues < clusters)");
    if (numCores % clusters != 0)
        fail("cores must divide evenly into clusters");

    if (monitoringWays < 2 || monitoringWays > 8)
        fail("monitoringWays must be in [2, 8]");
    if (monitoringBanks == 0)
        fail("monitoringBanks must be >= 1");
    if (monitoringMaxWalkSteps == 0)
        fail("monitoringMaxWalkSteps must be >= 1");
    if (monitoringCapacity != 0) {
        const unsigned slice = monitoringWays * monitoringBanks;
        if (monitoringCapacity < slice)
            fail("monitoringCapacity must be >= ways * banks");
        if (monitoringCapacity % slice != 0)
            fail("monitoringCapacity must divide evenly into "
                 "banks * ways");
    }

    if (batchSize == 0)
        fail("batchSize must be >= 1");
    if (!(offeredRatePerSec > 0.0))
        fail("offeredRatePerSec must be > 0");
    if (!(measureUs > 0.0))
        fail("measureUs must be > 0");
    if (warmupUs < 0.0)
        fail("warmupUs must be >= 0");
    if (maxQueueDepth == 0)
        fail("maxQueueDepth must be >= 1");

    rate01(fault.dropSnoopRate, "fault.dropSnoopRate");
    rate01(fault.delaySnoopRate, "fault.delaySnoopRate");
    rate01(fault.addConflictRate, "fault.addConflictRate");
    rate01(fault.suppressWakeRate, "fault.suppressWakeRate");
    if (fault.delaySnoopRate > 0.0 && !(fault.delayMeanUs > 0.0))
        fail("fault.delayMeanUs must be > 0 when snoops are delayed");
    if (fault.spuriousWakesPerSec < 0.0)
        fail("fault.spuriousWakesPerSec must be >= 0");
    if (fault.stormRatePerSec < 0.0)
        fail("fault.stormRatePerSec must be >= 0");
    if (fault.stormRatePerSec > 0.0 && fault.stormBurst == 0)
        fail("fault.stormBurst must be >= 1 when storms are enabled");
    if (fault.stormQueue != invalidQueueId &&
        fault.stormQueue >= numQueues) {
        fail("fault.stormQueue out of range");
    }

    const std::string tenantErr =
        validateTenantSpecs(tenants, numQueues);
    if (!tenantErr.empty())
        fail(tenantErr);

    if (trace.enable && trace.bufferCapacity == 0)
        fail("trace.bufferCapacity must be >= 1 when tracing");
    if (trace.sampleEveryUs < 0.0)
        fail("trace.sampleEveryUs must be >= 0");

    if (recovery.watchdog && !(recovery.watchdogPeriodUs > 0.0))
        fail("recovery.watchdogPeriodUs must be > 0");
    if (recovery.gracefulDegradation) {
        if (recovery.addMaxTries == 0)
            fail("recovery.addMaxTries must be >= 1");
        if (recovery.fallbackPollPeriod == 0)
            fail("recovery.fallbackPollPeriod must be >= 1");
    }
}

SdpSystem::SdpSystem(const SdpConfig &cfg)
    : cfg_((cfg.validate(), cfg)), queues_(cfg.numQueues)
{
    build();
}

SdpSystem::~SdpSystem()
{
    for (auto &unit : qwaitUnits_)
        mem_->unwatch(unit.get());
}

unsigned
SdpSystem::numClusters() const
{
    switch (cfg_.org) {
      case QueueOrg::ScaleOut:
        return cfg_.numCores;
      case QueueOrg::ScaleUp2:
        return std::max(1u, cfg_.numCores / 2);
      case QueueOrg::ScaleUpAll:
        return 1;
    }
    return 1;
}

unsigned
SdpSystem::clusterOf(QueueId qid) const
{
    const unsigned clusters = numClusters();
    const unsigned perCluster = cfg_.numQueues / clusters;
    return std::min(clusters - 1, qid / perCluster);
}

core::QwaitUnit *
SdpSystem::qwaitUnit(unsigned cluster)
{
    if (cluster >= qwaitUnits_.size())
        return nullptr;
    return qwaitUnits_[cluster].get();
}

void
SdpSystem::build()
{
    hp_assert(cfg_.numCores >= 1, "need at least one data-plane core");
    hp_assert(cfg_.numQueues >= numClusters(),
              "need at least one queue per cluster");
    hp_assert(cfg_.numCores % numClusters() == 0,
              "cores must divide evenly into clusters");

    if (trace::kCompiledIn && cfg_.trace.enable) {
        tracer_ = std::make_unique<trace::Tracer>(
            cfg_.trace.bufferCapacity);
        tracer_->setClock([this] { return eq_.now(); });
        tracer_->setEnabled(true);
        breakdown_ = std::make_unique<trace::LatencyBreakdown>();
    }

    mem_ = std::make_unique<mem::MemorySystem>(cfg_.numCores, l1Geom,
                                               llcGeom);
    mem_->setTracer(tracer_.get());
    // Stateful app workloads shard by queue id: numQueues shards keeps
    // each shard's state cluster-local under the parallel backend.
    workload_ = makeWorkload(cfg_.workload, cfg_.seed, cfg_.numQueues);

    // Traffic shape -> per-queue weights (+ optional static imbalance).
    Rng shapeRng(cfg_.seed ^ 0x5eedULL);
    weights_ = traffic::shapeWeights(cfg_.shape, cfg_.numQueues,
                                     shapeRng);
    if (cfg_.imbalance > 0.0)
        weights_ = traffic::applyImbalance(weights_, cfg_.imbalance);

    const unsigned clusters = numClusters();
    const unsigned coresPerCluster = cfg_.numCores / clusters;
    const unsigned queuesPerCluster = cfg_.numQueues / clusters;
    clusterBacklogs_.assign(clusters, 0);
    coreCluster_.resize(cfg_.numCores);

    // Sim-thread partitioning: clusters are the unit of placement (a
    // cluster's cores, QwaitUnit, and queues interact densely), bins
    // balanced by the traffic weight each cluster serves.  Owner tags
    // never change dispatch order, so results are independent of the
    // worker count.
    simPartitions_ = std::min(
        {resolveSimThreads(cfg_.simThreads), clusters, 0xFFFFu});
    std::vector<double> clusterWeight(clusters, 0.0);
    for (QueueId q = 0; q < cfg_.numQueues; ++q)
        clusterWeight[clusterOf(q)] += weights_[q];
    clusterPart_ = sim::balanceByWeight(clusterWeight, simPartitions_);

    const bool hyper = cfg_.plane == PlaneKind::HyperPlane ||
                       cfg_.plane == PlaneKind::HyperPlaneSwReady;

    if (cfg_.fault.any()) {
        faults_ = std::make_unique<fault::FaultInjector>(
            cfg_.fault, cfg_.seed ^ 0xfa017ULL);
    }
    fallbacks_.resize(clusters);
    if (hyper && cfg_.recovery.gracefulDegradation) {
        for (auto &fb : fallbacks_)
            fb = std::make_unique<fault::FallbackSet>();
    }

    if (hyper) {
        // One QwaitUnit per cluster, snooping that cluster's doorbell
        // address slice.
        for (unsigned c = 0; c < clusters; ++c) {
            core::QwaitConfig qcfg;
            const unsigned span = c + 1 == clusters
                ? cfg_.numQueues - c * queuesPerCluster
                : queuesPerCluster;
            qcfg.monitoring.ways = cfg_.monitoringWays;
            qcfg.monitoring.banks = cfg_.monitoringBanks;
            qcfg.monitoring.maxWalkSteps = cfg_.monitoringMaxWalkSteps;
            const unsigned slice =
                cfg_.monitoringWays * cfg_.monitoringBanks;
            qcfg.monitoring.capacity = cfg_.monitoringCapacity != 0
                ? cfg_.monitoringCapacity
                : roundUpTo(std::max(1024u, span + span / 4), slice);
            qcfg.ready.capacity = cfg_.numQueues;
            qcfg.ready.policy = cfg_.policy;
            qcfg.qwaitLatency = cfg_.qwaitLatency;
            auto unit = std::make_unique<core::QwaitUnit>(qcfg);

            const QueueId lo = c * queuesPerCluster;
            const QueueId hi = c + 1 == clusters
                ? cfg_.numQueues
                : lo + queuesPerCluster;
            unit->setTracer(tracer_.get(),
                            trace::trackHardwareBase + c);
            if (breakdown_) {
                const Tick lookup =
                    unit->monitoringSet().config().lookupCycles;
                unit->setActivationHook([this, lookup](QueueId q) {
                    breakdown_->onActivate(q, eq_.now(), lookup);
                });
            }
            for (QueueId q = lo; q < hi; ++q)
                bindQueue(*unit, c, q);
            mem_->watchRange(
                queueing::AddressMap::doorbellAddr(lo),
                queueing::AddressMap::doorbellAddr(hi - 1) +
                    cacheLineBytes,
                unit.get());
            qwaitUnits_.push_back(std::move(unit));
        }
        // Tenant QoS: each group's WRR weight lands on its queues'
        // ready-set entries (ready sets index global QIDs).
        for (const TenantSpec &t : cfg_.tenants) {
            for (QueueId q = t.queueFirst;
                 q < t.queueFirst + t.queueCount; ++q) {
                qwaitUnits_[clusterOf(q)]->readySet().setWeight(
                    q, t.weight);
            }
        }
        if (faults_ && (cfg_.fault.dropSnoopRate > 0.0 ||
                        cfg_.fault.delaySnoopRate > 0.0)) {
            mem_->setSnoopInterposer(
                [this](Addr line, CoreId writer, mem::Snooper *target) {
                    return interposeSnoop(line, writer, target);
                });
        }
    }

    // Create cores, assign queue subsets cluster by cluster.
    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        const unsigned c = i / coresPerCluster;
        coreCluster_[i] = c;
        const QueueId lo = c * queuesPerCluster;
        const QueueId hi = c + 1 == clusters ? cfg_.numQueues
                                             : lo + queuesPerCluster;
        std::vector<QueueId> subset;
        subset.reserve(hi - lo);
        for (QueueId q = lo; q < hi; ++q)
            subset.push_back(q);

        std::unique_ptr<DataPlaneCore> core;
        if (cfg_.plane == PlaneKind::Spinning) {
            auto sc = std::make_unique<SpinningCore>(
                i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                cfg_.jitter, cfg_.seed + i, coresPerCluster > 1);
            sc->setBacklogCounter(&clusterBacklogs_[c]);
            core = std::move(sc);
        } else if (cfg_.plane == PlaneKind::InterruptDriven) {
            auto ic = std::make_unique<InterruptCore>(
                i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                cfg_.jitter, cfg_.seed + i,
                usToTicks(cfg_.interruptUs));
            ic->setBacklogCounter(&clusterBacklogs_[c]);
            core = std::move(ic);
        } else {
            core::QwaitUnit &unit = *qwaitUnits_[c];
            const Tick wake = cfg_.power.c1WakeLatency;
            std::unique_ptr<HyperPlaneCore> hpc;
            if (cfg_.plane == PlaneKind::HyperPlane) {
                hpc = std::make_unique<HyperPlaneCore>(
                    i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                    cfg_.jitter, cfg_.seed + i, unit,
                    cfg_.powerOptimized, wake, cfg_.batchSize);
            } else {
                hpc = std::make_unique<SwReadySetCore>(
                    i, eq_, *mem_, queues_, *workload_, cfg_.timing,
                    cfg_.jitter, cfg_.seed + i, unit,
                    cfg_.powerOptimized, wake, cfg_.batchSize);
            }
            hpc->setInOrder(cfg_.inOrderQueues);
            hpc->setBackgroundTask(cfg_.backgroundQuantum);
            if (fallbacks_[c]) {
                hpc->setFallback(fallbacks_[c].get(),
                                 cfg_.recovery.fallbackPollPeriod);
            }
            core = std::move(hpc);
        }
        core->setTracer(tracer_.get());
        if (auto *hpc = dynamic_cast<HyperPlaneCore *>(core.get()))
            hpc->setBreakdown(breakdown_.get());
        core->assignQueues(std::move(subset));
        core->setCompletionHook(
            [this](const queueing::WorkItem &item, Tick when) {
                onCompletion(item, when);
            });
        cores_.push_back(std::move(core));
    }

    if (hyper) {
        // NUMA-style work stealing: every core may fall through to the
        // other clusters' ready sets when its own is idle.
        if (cfg_.workStealing && clusters > 1) {
            for (unsigned i = 0; i < cfg_.numCores; ++i) {
                std::vector<core::QwaitUnit *> targets;
                for (unsigned c = 0; c < clusters; ++c) {
                    if (c != coreCluster_[i])
                        targets.push_back(qwaitUnits_[c].get());
                }
                static_cast<HyperPlaneCore *>(cores_[i].get())
                    ->setStealTargets(std::move(targets),
                                      cfg_.stealExtraCycles);
            }
        }
        // Wake one halted core of the cluster per ready-queue arrival;
        // with stealing enabled, fall back to any halted core.  The
        // callback is the injection point for wake suppression; the
        // watchdog's re-fire path bypasses it via deliverWake().
        for (unsigned c = 0; c < clusters; ++c) {
            qwaitUnits_[c]->setWakeCallback([this, c] {
                if (faults_ && faults_->rollSuppressWake())
                    return;
                // The wake event (and everything the woken core spawns
                // from it) executes on the cluster's sim partition.
                EventQueue::SpawnOwnerScope own(eq_, ownerOfCluster(c));
                deliverWake(c);
            });
        }
        // Recovery machinery: the watchdog owns the periodic sweep and
        // the promotion retries for demoted queues.
        if (cfg_.recovery.enabled()) {
            std::vector<fault::WatchdogCluster> wclusters;
            for (unsigned c = 0; c < clusters; ++c) {
                fault::WatchdogCluster wc;
                wc.unit = qwaitUnits_[c].get();
                wc.fallback = fallbacks_[c].get();
                const QueueId lo = c * queuesPerCluster;
                const QueueId hi = c + 1 == clusters
                    ? cfg_.numQueues
                    : lo + queuesPerCluster;
                for (QueueId q = lo; q < hi; ++q)
                    wc.qids.push_back(q);
                wc.deliverWake = [this, c] { return deliverWake(c); };
                wclusters.push_back(std::move(wc));
            }
            watchdog_ = std::make_unique<fault::Watchdog>(
                eq_, queues_, std::move(wclusters), faults_.get(),
                cfg_.recovery);
            watchdog_->setTracer(tracer_.get());
            watchdog_->start();
        }
        // Free-running injectors (spurious activations need a unit).
        if (faults_ && cfg_.fault.spuriousWakesPerSec > 0.0)
            scheduleSpuriousWake();
    }
    // Doorbell storms are tenant behaviour: they hit every plane kind.
    if (faults_ && cfg_.fault.stormRatePerSec > 0.0)
        scheduleStormBurst();

    // Traffic source.
    traffic::SourceConfig scfg;
    scfg.totalRatePerSec = cfg_.offeredRatePerSec;
    scfg.payloadBytes = cfg_.payloadBytes != 0
        ? cfg_.payloadBytes
        : workload_->defaultPayloadBytes();
    scfg.maxQueueDepth = cfg_.maxQueueDepth;
    scfg.seed = cfg_.seed ^ 0x7ea99ULL;
    source_ = std::make_unique<traffic::PoissonSource>(
        eq_, queues_, mem_.get(), scfg, weights_);
    if (cfg_.modelTenants) {
        tenants_ = std::make_unique<TenantModel>(cfg_.tenant,
                                                 cfg_.seed ^ 0x7e9aULL);
    }
    source_->setArrivalHook(
        [this](QueueId qid, const queueing::WorkItem &item) {
            onArrival(qid, item);
        });

    registerStats();
    if (cfg_.trace.sampleEveryUs > 0.0) {
        sampler_ = std::make_unique<trace::RegistrySampler>(
            eq_, registry_, cfg_.trace.samplePaths,
            usToTicks(cfg_.trace.sampleEveryUs));
    }
}

void
SdpSystem::bindQueue(core::QwaitUnit &unit, unsigned cluster, QueueId qid)
{
    // Algorithm 1's reallocation loop, adapted to the fixed per-queue
    // address map: retries ride out injected conflict pressure; a
    // genuinely full table needs demotion, not another walk.
    const unsigned tries = std::max(1u, cfg_.recovery.addMaxTries);
    for (unsigned t = 0; t < tries; ++t) {
        if (faults_ && faults_->rollAddConflict())
            continue;
        const auto res = unit.qwaitAdd(qid, queues_[qid].doorbellAddr());
        if (res == core::AddResult::Ok)
            return;
        if (res != core::AddResult::Conflict)
            break; // duplicate: no retry can fix it
    }
    if (cfg_.recovery.gracefulDegradation && fallbacks_[cluster]) {
        fallbacks_[cluster]->add(qid);
        return;
    }
    hp_fatal("QWAIT-ADD failed for qid %u (monitoring set full or "
             "conflicted; enable recovery.gracefulDegradation)",
             qid);
}

bool
SdpSystem::deliverWake(unsigned cluster)
{
    const unsigned coresPerCluster = cfg_.numCores / numClusters();
    const unsigned base = cluster * coresPerCluster;
    for (unsigned k = 0; k < coresPerCluster; ++k) {
        auto *hpc =
            static_cast<HyperPlaneCore *>(cores_[base + k].get());
        if (hpc->halted()) {
            hpc->wake();
            return true;
        }
    }
    if (cfg_.workStealing) {
        for (auto &corePtr : cores_) {
            auto *hpc = static_cast<HyperPlaneCore *>(corePtr.get());
            if (hpc->halted()) {
                hpc->wake();
                return true;
            }
        }
    }
    return false;
}

core::QwaitUnit *
SdpSystem::unitForSnooper(mem::Snooper *s)
{
    for (auto &u : qwaitUnits_) {
        if (u.get() == s)
            return u.get();
    }
    return nullptr;
}

void
SdpSystem::deliverSnoop(mem::Snooper *target, Addr line, CoreId writer)
{
    // A snoop reaching an armed entry of a lost queue closes the
    // episode: the activation it triggers is the self-recovery.
    if (core::QwaitUnit *unit = unitForSnooper(target)) {
        const core::MonitorEntry *e = unit->monitoringSet().find(line);
        if (e != nullptr && e->armed && faults_ &&
            faults_->isLost(e->qid)) {
            faults_->recordSelfRecovery(e->qid);
        }
    }
    target->onWriteTransaction(line, writer);
}

bool
SdpSystem::interposeSnoop(Addr line, CoreId writer, mem::Snooper *target)
{
    core::QwaitUnit *unit = unitForSnooper(target);
    if (unit == nullptr)
        return false; // unknown snooper: deliver normally

    if (faults_->rollDropSnoop()) {
        // A drop only loses work if it would have activated a queue
        // that actually has items: armed entry, not ready, nonempty
        // doorbell (the storm tenant's empty writes carry no work).
        const core::MonitorEntry *e = unit->monitoringSet().find(line);
        if (e != nullptr && e->armed &&
            !unit->readySet().isReady(e->qid) &&
            !queues_[e->qid].doorbell().empty()) {
            faults_->recordLost(e->qid);
        } else {
            faults_->harmlessDrops.inc();
        }
        if (HP_TRACE_ON(tracer_.get())) {
            tracer_->instant(trace::Stage::SnoopDropped,
                             trace::trackDevice, eq_.now(),
                             e != nullptr ? e->qid : invalidQueueId,
                             line);
        }
        return true; // swallowed
    }
    if (const auto delay = faults_->rollDelaySnoop()) {
        if (HP_TRACE_ON(tracer_.get())) {
            tracer_->instant(trace::Stage::SnoopDelayed,
                             trace::trackDevice, eq_.now(),
                             invalidQueueId, line);
        }
        eq_.scheduleIn(*delay, [this, line, writer, target] {
            deliverSnoop(target, line, writer);
        });
        return true; // in flight
    }
    deliverSnoop(target, line, writer);
    return true;
}

void
SdpSystem::scheduleSpuriousWake()
{
    const double gapUs = faults_->nextSpuriousGapUs();
    eq_.scheduleIn(std::max<Tick>(1, usToTicks(gapUs)), [this] {
        const auto qid = static_cast<QueueId>(
            faults_->pickSpuriousTarget(cfg_.numQueues));
        qwaitUnits_[clusterOf(qid)]->injectSpuriousActivation(qid);
        faults_->spuriousInjected.inc();
        scheduleSpuriousWake();
    });
}

void
SdpSystem::scheduleStormBurst()
{
    const double gapUs = faults_->nextStormGapUs();
    eq_.scheduleIn(std::max<Tick>(1, usToTicks(gapUs)), [this] {
        const QueueId victim = cfg_.fault.stormQueue != invalidQueueId
            ? cfg_.fault.stormQueue
            : static_cast<QueueId>(
                  faults_->pickStormTarget(cfg_.numQueues));
        // Doorbell writes with no enqueued work: each one raises a
        // write transaction (and a spurious activation if the entry is
        // armed) that QWAIT-VERIFY then filters.
        for (unsigned i = 0; i < std::max(1u, cfg_.fault.stormBurst);
             ++i) {
            faults_->stormWrites.inc();
            mem_->deviceWrite(queues_[victim].doorbellAddr());
        }
        scheduleStormBurst();
    });
}

fault::FallbackSet *
SdpSystem::fallbackSet(unsigned cluster)
{
    if (cluster >= fallbacks_.size())
        return nullptr;
    return fallbacks_[cluster].get();
}

std::uint64_t
SdpSystem::stuckQueues() const
{
    std::uint64_t stuck = 0;
    for (QueueId qid = 0; qid < cfg_.numQueues; ++qid) {
        if (queues_[qid].depth() == 0)
            continue;
        const unsigned c = clusterOf(qid);
        if (c < fallbacks_.size() && fallbacks_[c] &&
            fallbacks_[c]->contains(qid)) {
            continue; // software-polled: progress guaranteed
        }
        if (c >= qwaitUnits_.size())
            continue; // polling/interrupt planes cannot lose snoops
        const core::QwaitUnit &unit = *qwaitUnits_[c];
        const auto db = unit.doorbellOf(qid);
        if (!db) {
            ++stuck; // nonempty but nobody is watching it
            continue;
        }
        if (unit.monitoringSet().isArmed(*db) &&
            !unit.readySet().isReady(qid)) {
            ++stuck; // armed + nonempty + not ready: the lost state
        }
    }
    return stuck;
}

void
SdpSystem::onArrival(QueueId qid, const queueing::WorkItem &item)
{
    // The hook runs after the enqueue but before the doorbell write's
    // snoop, so depth() == 1 identifies the empty->non-empty transition
    // that carries a fresh notification.
    if (breakdown_ && queues_[qid].depth() == 1)
        breakdown_->onDoorbell(qid, item.seq, item.arrivalTick);
    if (HP_TRACE_ON(tracer_.get())) {
        tracer_->instant(trace::Stage::DoorbellWrite, trace::trackDevice,
                         item.arrivalTick, qid, item.seq);
    }
    const unsigned c = clusterOf(qid);
    ++clusterBacklogs_[c];
    if (cfg_.plane == PlaneKind::Spinning) {
        // Wake any idle-spinning cores of this cluster so they resume
        // real polling at the arrival instant.
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (coreCluster_[i] == c) {
                static_cast<SpinningCore *>(cores_[i].get())
                    ->wakeSpin();
            }
        }
    } else if (cfg_.plane == PlaneKind::InterruptDriven) {
        // Deliver the interrupt to an idle core of this cluster.
        for (unsigned i = 0; i < cores_.size(); ++i) {
            if (coreCluster_[i] == c) {
                auto *ic =
                    static_cast<InterruptCore *>(cores_[i].get());
                if (ic->halted()) {
                    ic->raiseInterrupt();
                    break;
                }
            }
        }
    }
}

void
SdpSystem::onCompletion(const queueing::WorkItem &item, Tick when)
{
    if (cfg_.plane == PlaneKind::HyperPlane ||
        cfg_.plane == PlaneKind::HyperPlaneSwReady) {
        // HyperPlane planes do not poll; keep the shared backlog
        // counters balanced anyway for introspection.
        auto &b = clusterBacklogs_[clusterOf(item.qid)];
        if (b > 0)
            --b;
    }
    if (breakdown_)
        breakdown_->onCompletion(item.qid, item.seq, when);
    if (!measuring_ || when < measureStart_)
        return;
    ++completions_;
    latency_.record(ticksToUs(when - item.arrivalTick));
    if (tenants_)
        tenants_->deliver(item, when);
}

std::uint64_t
SdpSystem::runSim(Tick until)
{
    if (simPartitions_ <= 1)
        return eq_.run(until);
    return sim::runShared(eq_, until, simPartitions_);
}

SdpResults
SdpSystem::run()
{
    for (unsigned i = 0; i < cores_.size(); ++i) {
        EventQueue::SpawnOwnerScope own(
            eq_, ownerOfCluster(coreCluster_[i]));
        cores_[i]->start();
    }
    source_->start();
    if (sampler_)
        sampler_->start();

    const Tick warmupEnd = eq_.now() + usToTicks(cfg_.warmupUs);
    runSim(warmupEnd);

    // Measurement boundary: clear every statistic.
    measuring_ = true;
    measureStart_ = warmupEnd;
    completions_ = 0;
    latency_.clear();
    for (auto &core : cores_)
        core->resetStats();
    if (tenants_)
        tenants_->resetStats();
    if (breakdown_)
        breakdown_->clear();
    const std::uint64_t genAtStart = source_->generated();
    const std::uint64_t dropAtStart = source_->dropped();

    const Tick end = warmupEnd + usToTicks(cfg_.measureUs);
    runSim(end);

    // Close halt/idle intervals still open at the end of the window.
    for (auto &core : cores_)
        core->finalize(end);

    SdpResults r = digest(end - measureStart_);
    r.generated = source_->generated() - genAtStart;
    r.dropped = source_->dropped() - dropAtStart;

    for (auto &core : cores_)
        core->stop();
    source_->stop();
    if (sampler_)
        sampler_->stop();
    return r;
}

SdpResults
SdpSystem::digest(Tick windowTicks)
{
    SdpResults r;
    const double windowSec = ticksToSeconds(windowTicks);

    r.completions = completions_;
    r.throughputMtps =
        static_cast<double>(completions_) / windowSec / 1e6;
    if (latency_.count() > 0) {
        r.avgLatencyUs = latency_.mean();
        r.p50LatencyUs = latency_.quantile(0.50);
        r.p99LatencyUs = latency_.quantile(0.99);
        r.p999LatencyUs = latency_.quantile(0.999);
        r.maxLatencyUs = latency_.max();
    }

    power::CorePowerModel powerModel(cfg_.power);
    double totalInstr = 0, usefulInstr = 0, uselessInstr = 0;
    double activeTicks = 0, powerSum = 0;
    std::uint64_t polls = 0, tasks = 0;
    for (const auto &core : cores_) {
        const CoreActivity &a = core->activity();
        totalInstr +=
            static_cast<double>(a.usefulInstr + a.uselessInstr);
        usefulInstr += static_cast<double>(a.usefulInstr);
        uselessInstr += static_cast<double>(a.uselessInstr);
        activeTicks += static_cast<double>(a.activeTicks);
        polls += a.polls;
        tasks += a.tasks;

        const double coreActiveIpc = a.activeTicks > 0
            ? static_cast<double>(a.usefulInstr + a.uselessInstr) /
                static_cast<double>(a.activeTicks)
            : 0.0;
        // Unaccounted window time (core idle before its chunk closed)
        // is treated as halted-in-C0 for spinning planes too; in
        // practice spinning cores are active for the full window.
        const auto accounted = static_cast<double>(
            a.activeTicks + a.c0HaltTicks + a.c1HaltTicks);
        const double slack =
            std::max(0.0, static_cast<double>(windowTicks) - accounted);
        double energy =
            powerModel.activePowerW(coreActiveIpc) *
                ticksToSeconds(a.activeTicks) +
            powerModel.haltPowerW(false) *
                (ticksToSeconds(a.c0HaltTicks) + slack / (clockGHz * 1e9)) +
            powerModel.haltPowerW(true) * ticksToSeconds(a.c1HaltTicks);
        powerSum += energy / windowSec;
    }
    const double coreWindows =
        static_cast<double>(windowTicks) * cfg_.numCores;
    r.ipc = totalInstr / coreWindows;
    r.usefulIpc = usefulInstr / coreWindows;
    r.uselessIpc = uselessInstr / coreWindows;
    r.activeFraction = std::min(1.0, activeTicks / coreWindows);
    r.activeIpc = activeTicks > 0 ? totalInstr / activeTicks : 0.0;
    r.avgCorePowerW = powerSum / cfg_.numCores;
    r.avgPollsPerTask =
        tasks > 0 ? static_cast<double>(polls) / tasks : 0.0;

    SmtCoRunner smt(cfg_.smt);
    r.coRunnerIpc = smt.coRunnerIpc(r.activeFraction, r.activeIpc);

    for (const auto &unit : qwaitUnits_)
        r.spuriousWakeups += unit->spuriousWakeups.value();
    double bgInstr = 0;
    for (const auto &core : cores_) {
        if (auto *hpc = dynamic_cast<HyperPlaneCore *>(core.get()))
            r.stolenGrants += hpc->stolen();
        if (auto *ic = dynamic_cast<InterruptCore *>(core.get()))
            r.interrupts += ic->interruptsTaken();
        bgInstr += static_cast<double>(core->activity().backgroundInstr);
    }
    r.backgroundIpc = bgInstr / coreWindows;
    if (tenants_ && tenants_->latency().count() > 0) {
        r.e2eAvgLatencyUs = tenants_->latency().mean();
        r.e2eP99LatencyUs = tenants_->latency().quantile(0.99);
    }

    if (faults_) {
        r.snoopsDropped = faults_->snoopsDropped.value();
        r.snoopsDelayed = faults_->snoopsDelayed.value();
        r.lostInjected = faults_->lostInjected.value();
        r.watchdogRecoveries = faults_->watchdogRecovered.value();
        r.selfRecoveries = faults_->selfRecovered.value();
        r.lostOutstanding = faults_->outstandingLost();
        r.wakesSuppressed = faults_->wakesSuppressed.value();
        r.spuriousInjected = faults_->spuriousInjected.value();
        r.stormWrites = faults_->stormWrites.value();
    }
    if (watchdog_) {
        r.watchdogSweeps = watchdog_->sweeps.value();
        r.wakeRefires = watchdog_->wakeRefires.value();
        if (!faults_)
            r.watchdogRecoveries = watchdog_->recoveries.value();
    }
    for (const auto &fb : fallbacks_) {
        if (!fb)
            continue;
        r.demotions += fb->demotions.value();
        r.promotions += fb->promotions.value();
        r.fallbackTasks += fb->tasksServed.value();
    }
    if (breakdown_) {
        r.breakdownSamples = breakdown_->samples();
        r.breakdownIncomplete = breakdown_->incomplete();
        if (breakdown_->endToEndUs().count() > 0) {
            r.avgDoorbellToSnoopUs =
                breakdown_->doorbellToSnoopUs().mean();
            r.avgSnoopToReadyUs = breakdown_->snoopToReadyUs().mean();
            r.avgReadyToGrantUs = breakdown_->readyToGrantUs().mean();
            r.avgGrantToCompletionUs =
                breakdown_->grantToCompletionUs().mean();
            r.breakdownE2eAvgUs = breakdown_->endToEndUs().mean();
            r.breakdownE2eP99Us =
                breakdown_->endToEndUs().quantile(0.99);
        }
    }
    if (tracer_) {
        r.traceEvents = tracer_->recorded();
        r.traceDropped = tracer_->dropped();
    }
    r.stuckQueues = stuckQueues();
    return r;
}

void
SdpSystem::registerStats()
{
    stats::Registry &reg = registry_;
    reg.addGroup("mem",
                 {mem_->l1Hits, mem_->llcHits, mem_->remoteForwards,
                  mem_->memAccesses, mem_->invalidations,
                  mem_->writeTransactions, mem_->snoopHits,
                  mem_->dirLookups, mem_->dirHits});
    reg.addScalar("mem.directory_lines", [this] {
        return static_cast<double>(mem_->directoryLines());
    });
    reg.addGroup("source", {source_->generated_, source_->dropped_});
    for (unsigned c = 0; c < qwaitUnits_.size(); ++c) {
        const auto &u = *qwaitUnits_[c];
        const std::string p = "hyperplane" + std::to_string(c);
        reg.addGroup(p, {u.qwaitCalls, u.qwaitBlocked,
                         u.spuriousWakeups});
        reg.addGroup(p + ".monitoring",
                     {u.monitoringSet().inserts,
                      u.monitoringSet().insertConflicts,
                      u.monitoringSet().snoops,
                      u.monitoringSet().snoopMatches});
        reg.addGroup(p + ".ready", {u.readySet().activations,
                                    u.readySet().grants});
        reg.addScalar(p + ".monitoring.occupancy", [&u] {
            return static_cast<double>(u.monitoringSet().occupancy());
        });
    }
    if (faults_) {
        reg.addGroup("fault",
                     {faults_->snoopsDropped, faults_->harmlessDrops,
                      faults_->snoopsDelayed,
                      faults_->forcedAddConflicts,
                      faults_->wakesSuppressed, faults_->spuriousInjected,
                      faults_->stormWrites, faults_->lostInjected,
                      faults_->watchdogRecovered,
                      faults_->selfRecovered});
        reg.addScalar("fault.lost_outstanding", [this] {
            return static_cast<double>(faults_->outstandingLost());
        });
    }
    if (watchdog_) {
        reg.addGroup("watchdog",
                     {watchdog_->sweeps, watchdog_->recoveries,
                      watchdog_->earlyRecoveries, watchdog_->wakeRefires,
                      watchdog_->promotions,
                      watchdog_->runtimeDemotions});
    }
    for (unsigned c = 0; c < fallbacks_.size(); ++c) {
        if (!fallbacks_[c])
            continue;
        const auto &fb = *fallbacks_[c];
        reg.addGroup("fallback" + std::to_string(c),
                     {fb.demotions, fb.promotions, fb.polls,
                      fb.tasksServed});
    }
    for (unsigned i = 0; i < cores_.size(); ++i) {
        const CoreActivity &a = cores_[i]->activity();
        const std::string p = "core" + std::to_string(i);
        reg.addScalar(p + ".tasks",
                      [&a] { return static_cast<double>(a.tasks); });
        reg.addScalar(p + ".polls",
                      [&a] { return static_cast<double>(a.polls); });
        reg.addScalar(p + ".empty_polls", [&a] {
            return static_cast<double>(a.emptyPolls);
        });
        reg.addScalar(p + ".useful_instr", [&a] {
            return static_cast<double>(a.usefulInstr);
        });
        reg.addScalar(p + ".useless_instr", [&a] {
            return static_cast<double>(a.uselessInstr);
        });
        reg.addScalar(p + ".active_ticks", [&a] {
            return static_cast<double>(a.activeTicks);
        });
        reg.addScalar(p + ".halt_ticks", [&a] {
            return static_cast<double>(a.c0HaltTicks + a.c1HaltTicks);
        });
        reg.addScalar(p + ".wakeups", [&a] {
            return static_cast<double>(a.wakeups);
        });
    }
    if (tracer_) {
        reg.addScalar("trace.events", [this] {
            return static_cast<double>(tracer_->recorded());
        });
        reg.addScalar("trace.dropped", [this] {
            return static_cast<double>(tracer_->dropped());
        });
    }
    if (breakdown_) {
        reg.addScalar("trace.breakdown_samples", [this] {
            return static_cast<double>(breakdown_->samples());
        });
        reg.addScalar("trace.breakdown_incomplete", [this] {
            return static_cast<double>(breakdown_->incomplete());
        });
        reg.addScalar("trace.breakdown_open", [this] {
            return static_cast<double>(breakdown_->open());
        });
    }
    reg.addScalar("system.completions", [this] {
        return static_cast<double>(completions_);
    });
}

void
SdpSystem::dumpStats(std::ostream &os) const
{
    os << registry_.report();
}

void
SdpSystem::writeChromeTrace(std::ostream &os) const
{
    if (tracer_) {
        trace::writeChromeTrace(os, *tracer_);
    } else {
        os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}\n";
    }
}

SdpResults
runSdp(const SdpConfig &cfg)
{
    SdpSystem system(cfg);
    return system.run();
}

} // namespace dp
} // namespace hyperplane
