#include "dp/hyperplane_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace dp {

namespace {

/** Instructions the QWAIT / VERIFY / RECONSIDER sequences retire. */
constexpr unsigned qwaitInstr = 8;
constexpr unsigned verifyInstr = 10;
constexpr unsigned reconsiderInstr = 10;

} // namespace

HyperPlaneCore::HyperPlaneCore(CoreId id, EventQueue &eq,
                               mem::MemorySystem &mem,
                               queueing::QueueSet &queues,
                               workloads::Workload &workload,
                               const CoreTimingParams &params,
                               ServiceJitter jitter, std::uint64_t seed,
                               core::QwaitUnit &qwait, bool powerOptimized,
                               Tick c1WakeLatency, unsigned batchSize)
    : DataPlaneCore(id, eq, mem, queues, workload, params, jitter, seed),
      qwait_(qwait), powerOpt_(powerOptimized),
      c1WakeLatency_(c1WakeLatency), batch_(batchSize ? batchSize : 1)
{
}

void
HyperPlaneCore::start()
{
    running_ = true;
    halted_ = false;
    ++pollEpoch_; // void poll timers left over from a previous run
    freeAt_ = eq_.now();
    lastFallbackSweep_ = freeAt_;
    eq_.schedule(freeAt_, [this] { step(); });
}

void
HyperPlaneCore::stop()
{
    DataPlaneCore::stop();
}

void
HyperPlaneCore::resetStats()
{
    DataPlaneCore::resetStats();
    // A halt in progress restarts its accounting at the boundary.
    if (halted_)
        haltStart_ = eq_.now();
}

Tick
HyperPlaneCore::qwaitCost() const
{
    return qwait_.qwaitLatency();
}

void
HyperPlaneCore::setStealTargets(std::vector<core::QwaitUnit *> targets,
                                Tick extraCycles)
{
    stealTargets_ = std::move(targets);
    stealExtraCycles_ = extraCycles;
}

void
HyperPlaneCore::setBackgroundTask(Tick quantumCycles, double ipc)
{
    backgroundQuantum_ = quantumCycles;
    backgroundIpc_ = ipc;
}

void
HyperPlaneCore::setFallback(fault::FallbackSet *fallback, Tick pollPeriod)
{
    fallback_ = fallback;
    fallbackPollPeriod_ = std::max<Tick>(1, pollPeriod);
}

unsigned
HyperPlaneCore::sweepFallback()
{
    if (fallback_ == nullptr || fallback_->empty())
        return 0;
    fallback_->polls.inc();
    unsigned served = 0;
    // Iterate a snapshot so servicing is insensitive to membership
    // changes the watchdog makes between events.
    const std::vector<QueueId> members = fallback_->queues();
    for (QueueId qid : members) {
        queueing::TaskQueue &q = queues_[qid];
        // Software poll: tight-loop sweep check + doorbell read (the
        // demoted set is small, so the loop stays branch-predicted).
        Tick cost = params_.tightLoopCycles;
        cost += mem_.read(id_, q.doorbellAddr()).latency;
        const bool hasWork = !q.doorbell().empty();
        chargeActive(cost, params_.tightLoopInstr, hasWork);
        freeAt_ += cost;
        ++activity_.polls;
        if (!hasWork) {
            ++activity_.emptyPolls;
            continue;
        }
        for (unsigned b = 0; b < batch_; ++b) {
            Tick dcost = params_.dequeueCycles;
            dcost += mem_.atomicRmw(id_, q.doorbellAddr()).latency;
            dcost += mem_.read(id_, q.descriptorAddr()).latency;
            auto item = q.dequeue();
            chargeActive(dcost, params_.dequeueInstr, item.has_value());
            freeAt_ += dcost;
            if (!item)
                break;
            if (HP_TRACE_ON(tracer_)) {
                tracer_->instant(trace::Stage::FallbackServe, id_,
                                 freeAt_, qid, item->seq);
            }
            freeAt_ += processItem(*item);
            ++served;
            ++fallbackServed_;
            fallback_->tasksServed.inc();
            if (q.empty())
                break;
        }
    }
    lastFallbackSweep_ = freeAt_;
    return served;
}

void
HyperPlaneCore::haltWithPollTimeout()
{
    halted_ = true;
    haltStart_ = freeAt_;
    traceHaltBegin(freeAt_);
    // Bounded halt: a doorbell wake may arrive first; otherwise the
    // poll timer re-runs the loop.  The epoch guard voids this timer if
    // a wake (or a newer halt) supersedes it.
    const std::uint64_t epoch = ++pollEpoch_;
    eq_.schedule(freeAt_ + fallbackPollPeriod_, [this, epoch] {
        if (!running_ || !halted_ || epoch != pollEpoch_)
            return;
        halted_ = false;
        traceHaltEnd(eq_.now());
        accountHalt(eq_.now());
        freeAt_ = eq_.now() + (powerOpt_ ? c1WakeLatency_ : 0);
        eq_.schedule(freeAt_, [this] { step(); });
    });
}

std::optional<std::pair<QueueId, core::QwaitUnit *>>
HyperPlaneCore::qwaitAll()
{
    const Tick qcost = qwaitCost();
    if (auto qid = qwait_.qwait()) {
        chargeActive(qcost, qwaitInstr, true);
        freeAt_ += qcost;
        return std::make_pair(*qid, &qwait_);
    }
    chargeActive(qcost, qwaitInstr, false);
    freeAt_ += qcost;
    // Local ready set empty: try to steal from remote sockets' ready
    // sets, each probe paying the interconnect round trip.
    for (core::QwaitUnit *unit : stealTargets_) {
        chargeActive(stealExtraCycles_, qwaitInstr, false);
        freeAt_ += stealExtraCycles_;
        if (auto qid = unit->qwait()) {
            ++stolen_;
            return std::make_pair(*qid, unit);
        }
    }
    return std::nullopt;
}

void
HyperPlaneCore::accountHalt(Tick wakeTick)
{
    const Tick dur = wakeTick > haltStart_ ? wakeTick - haltStart_ : 0;
    if (powerOpt_)
        activity_.c1HaltTicks += dur;
    else
        activity_.c0HaltTicks += dur;
}

void
HyperPlaneCore::wake()
{
    if (!running_ || !halted_)
        return;
    ++pollEpoch_; // a real wake supersedes any pending poll timer
    halted_ = false;
    const Tick now = eq_.now();
    traceHaltEnd(now);
    if (HP_TRACE_ON(tracer_))
        tracer_->instant(trace::Stage::Wake, id_, now);
    accountHalt(now);
    ++activity_.wakeups;
    freeAt_ = now + (powerOpt_ ? c1WakeLatency_ : 0);
    eq_.schedule(freeAt_, [this] { step(); });
}

void
HyperPlaneCore::finalize(Tick endTick)
{
    if (halted_) {
        accountHalt(endTick);
        haltStart_ = endTick;
        // Close the open halt span so traces end well-formed.
        traceHaltEnd(endTick);
    }
}

void
HyperPlaneCore::traceHaltBegin(Tick t)
{
    if (HP_TRACE_ON(tracer_))
        tracer_->begin(trace::Stage::Halt, id_, t);
}

void
HyperPlaneCore::traceHaltEnd(Tick t)
{
    // A wake event can fire between eq_.now() and the halting step's
    // freeAt_; clamp so the span never closes before it opened.
    if (HP_TRACE_ON(tracer_))
        tracer_->end(trace::Stage::Halt, id_, std::max(t, haltStart_));
}

void
HyperPlaneCore::step()
{
    if (!running_)
        return;

    // Mandatory fallback service: demoted queues make progress at
    // bounded latency even while hardware grants keep the core busy.
    bool sweptThisStep = false;
    unsigned fallbackHits = 0;
    if (fallback_ != nullptr && !fallback_->empty() &&
        freeAt_ >= lastFallbackSweep_ + fallbackPollPeriod_) {
        fallbackHits = sweepFallback();
        sweptThisStep = true;
    }

    // QWAIT (Figure 4, steps 4-5), with optional remote stealing.
    const auto grant = qwaitAll();
    if (!grant) {
        if (fallback_ != nullptr && !fallback_->empty()) {
            // No hardware grant: poll the demoted queues in software.
            if (!sweptThisStep)
                fallbackHits = sweepFallback();
            if (fallbackHits > 0) {
                eq_.schedule(freeAt_, [this] { step(); });
                return;
            }
            if (backgroundQuantum_ == 0) {
                haltWithPollTimeout();
                return;
            }
            // Fall through: the background quantum re-polls anyway.
        }
        if (backgroundQuantum_ > 0) {
            // Non-blocking QWAIT: run a low-priority quantum, re-poll.
            activity_.backgroundTicks += backgroundQuantum_;
            activity_.backgroundInstr += static_cast<std::uint64_t>(
                backgroundIpc_ *
                static_cast<double>(backgroundQuantum_));
            activity_.activeTicks += backgroundQuantum_;
            freeAt_ += backgroundQuantum_;
            eq_.schedule(freeAt_, [this] { step(); });
            return;
        }
        // No ready queue: halt until the wake callback fires.
        halted_ = true;
        haltStart_ = freeAt_;
        traceHaltBegin(freeAt_);
        return;
    }
    const QueueId qid = grant->first;
    core::QwaitUnit &unit = *grant->second;

    // QWAIT returned a grant: the notification has reached software.
    if (HP_TRACE_ON(tracer_))
        tracer_->instant(trace::Stage::QwaitReturn, id_, freeAt_, qid);
    if (breakdown_ != nullptr)
        breakdown_->onGrant(qid, freeAt_);

    queueing::TaskQueue &q = queues_[qid];

    // QWAIT-VERIFY: filter spurious wake-ups/returns.
    Tick vcost = params_.verifyCycles;
    vcost += mem_.read(id_, q.doorbellAddr()).latency;
    const bool ready = unit.qwaitVerify(qid, q.doorbell());
    chargeActive(vcost, verifyInstr, ready);
    freeAt_ += vcost;

    if (ready) {
        if (HP_TRACE_ON(tracer_))
            tracer_->begin(trace::Stage::Service, id_, freeAt_, qid);
        // Dequeue up to batch_ items (step 6).
        std::vector<queueing::WorkItem> items;
        items.reserve(batch_);
        for (unsigned b = 0; b < batch_; ++b) {
            Tick dcost = params_.dequeueCycles;
            dcost += mem_.atomicRmw(id_, q.doorbellAddr()).latency;
            dcost += mem_.read(id_, q.descriptorAddr()).latency;
            auto item = q.dequeue();
            chargeActive(dcost, params_.dequeueInstr,
                         item.has_value());
            freeAt_ += dcost;
            if (!item)
                break;
            items.push_back(*item);
            if (q.empty())
                break;
        }

        // QWAIT-RECONSIDER: re-arm (empty) or re-activate (non-empty).
        // Its memory-barrier semantics put it after the dequeue but
        // before processing, maximizing intra-queue concurrency.
        if (!inOrder_) {
            unit.qwaitReconsider(qid, q.doorbell());
            chargeActive(params_.reconsiderCycles, reconsiderInstr,
                         true);
            freeAt_ += params_.reconsiderCycles;
        }

        // Transport processing (step 8).
        for (const auto &item : items)
            freeAt_ += processItem(item);

        if (HP_TRACE_ON(tracer_))
            tracer_->end(trace::Stage::Service, id_, freeAt_, qid);

        if (inOrder_) {
            // In-order (flow-stateful) mode: RECONSIDER follows
            // processing (Algorithm 1 lines 18/19 swapped), so the
            // queue cannot be re-granted until this item is done.  It
            // must execute at its real simulated time — its wake
            // side-effects release other cores — so it runs as its own
            // event at freeAt_ rather than inside this step.
            core::QwaitUnit *u = &unit;
            eq_.schedule(freeAt_, [this, u, qid] {
                if (!running_)
                    return;
                queueing::TaskQueue &tq = queues_[qid];
                u->qwaitReconsider(qid, tq.doorbell());
                chargeActive(params_.reconsiderCycles, reconsiderInstr,
                             true);
                freeAt_ += params_.reconsiderCycles;
                eq_.schedule(freeAt_, [this] { step(); });
            });
            return;
        }
    }

    eq_.schedule(freeAt_, [this] { step(); });
}

} // namespace dp
} // namespace hyperplane
