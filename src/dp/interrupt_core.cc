#include "dp/interrupt_core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace dp {

namespace {

/** Instructions retired per ISR + wakeup (kernel path). */
constexpr unsigned interruptInstr = 2500;

} // namespace

InterruptCore::InterruptCore(CoreId id, EventQueue &eq,
                             mem::MemorySystem &mem,
                             queueing::QueueSet &queues,
                             workloads::Workload &workload,
                             const CoreTimingParams &params,
                             ServiceJitter jitter, std::uint64_t seed,
                             Tick interruptCycles)
    : DataPlaneCore(id, eq, mem, queues, workload, params, jitter, seed),
      interruptCycles_(interruptCycles)
{
}

void
InterruptCore::start()
{
    hp_assert(!qids_.empty(), "no queues assigned");
    running_ = true;
    halted_ = true; // idle until the first interrupt
    haltStart_ = eq_.now();
    freeAt_ = eq_.now();
}

void
InterruptCore::resetStats()
{
    DataPlaneCore::resetStats();
    if (halted_)
        haltStart_ = eq_.now();
}

void
InterruptCore::finalize(Tick endTick)
{
    if (halted_) {
        accountHalt(endTick);
        haltStart_ = endTick;
    }
}

void
InterruptCore::accountHalt(Tick until)
{
    if (until > haltStart_)
        activity_.c0HaltTicks += until - haltStart_;
}

void
InterruptCore::raiseInterrupt()
{
    if (!running_ || !halted_)
        return; // interrupts masked while draining
    halted_ = false;
    const Tick now = eq_.now();
    accountHalt(now);
    ++interrupts_;
    ++activity_.wakeups;
    // ISR entry + kernel demux + wakeup of the data-plane thread.
    freeAt_ = std::max(freeAt_, now) + interruptCycles_;
    chargeActive(interruptCycles_, interruptInstr, false);
    eq_.schedule(freeAt_, [this] { step(); });
}

Tick
InterruptCore::serveNext()
{
    const unsigned n = static_cast<unsigned>(qids_.size());
    for (unsigned k = 0; k < n; ++k) {
        const QueueId qid = qids_[(huntPos_ + k) % n];
        queueing::TaskQueue &q = queues_[qid];
        if (q.empty())
            continue;
        huntPos_ = (huntPos_ + k + 1) % n;
        // Dequeue + process (the NAPI poll function body).
        Tick cost = params_.dequeueCycles;
        cost += mem_.atomicRmw(id_, q.doorbellAddr()).latency;
        cost += mem_.read(id_, q.descriptorAddr()).latency;
        auto item = q.dequeue();
        if (!item)
            return 0;
        if (*backlog_ > 0)
            --*backlog_;
        chargeActive(cost, params_.dequeueInstr, true);
        freeAt_ += cost;
        const Tick svc = processItem(*item);
        freeAt_ += svc;
        ++activity_.polls;
        return cost + svc;
    }
    return 0;
}

void
InterruptCore::step()
{
    if (!running_)
        return;
    // Drain until the cluster backlog is empty, yielding to pending
    // events between items so multicore interleavings stay correct.
    Tick horizon = freeAt_ + usToTicks(50.0);
    if (!eq_.empty())
        horizon = std::min(horizon, eq_.nextEventTick());

    bool progressed = false;
    while (running_ && *backlog_ > 0 && freeAt_ < horizon) {
        if (serveNext() == 0)
            break; // our subset shows nothing (sibling racing)
        progressed = true;
    }
    if (!running_)
        return;
    if (*backlog_ > 0) {
        // More work pending: continue draining after the horizon.  If
        // no item was servable this pass (transient counter/queue skew
        // in shared mode), nudge time forward so the retry cannot spin
        // at the same tick.
        if (!progressed)
            ++freeAt_;
        eq_.schedule(freeAt_, [this] { step(); });
        return;
    }
    // Unmask interrupts and halt.
    halted_ = true;
    haltStart_ = freeAt_;
}

} // namespace dp
} // namespace hyperplane
