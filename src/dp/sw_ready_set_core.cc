#include "dp/sw_ready_set_core.hh"

namespace hyperplane {
namespace dp {

Tick
SwReadySetCore::qwaitCost() const
{
    // The iterator scans the ready list under a lock.  On average it
    // examines half the ready entries before the round-robin cursor
    // lands on the next QID; we charge the full scan length's average.
    const unsigned readyEntries = qwait_.readySet().readyCount();
    return swFixedCycles +
           swPerEntryCycles * static_cast<Tick>(readyEntries);
}

} // namespace dp
} // namespace hyperplane
