/**
 * @file
 * Tenant-side notification model: the right-hand side of Figure 2.
 *
 * After transport processing, the SDP writes the tenant-side doorbell
 * (steps 2c-2d); the tenant core is then informed (step 3).  Unlike the
 * SDP, a tenant has only one or a few queues, so — as Section II-A
 * notes — it can monitor them cheaply with a tight spin loop or an
 * MWAIT/UMWAIT variant.  TenantModel adds that final hop so end-to-end
 * latencies (work arrival -> tenant informed) can be reported next to
 * the data-plane completion latencies.
 */

#ifndef HYPERPLANE_DP_TENANT_MODEL_HH
#define HYPERPLANE_DP_TENANT_MODEL_HH

#include "queueing/task_queue.hh"
#include "sim/rng.hh"
#include "stats/histogram.hh"

namespace hyperplane {
namespace dp {

/** How tenant cores watch their own queues. */
enum class TenantNotify : std::uint8_t
{
    Spin,   ///< tight spin loop on 1-2 queues (near-zero reaction)
    Umwait, ///< UMWAIT on the doorbell line: halts, pays a wake cost
};

const char *toString(TenantNotify n);

/** Tenant-side timing parameters. */
struct TenantParams
{
    TenantNotify notify = TenantNotify::Umwait;
    /** UMWAIT monitor wake-up cost, cycles (C0.1/C0.2-class exit). */
    Tick umwaitWakeCycles = 150;
    /** Spin-loop iteration over the tenant's own queue(s), cycles. */
    Tick spinPollCycles = 20;
    /** Tenant-side dequeue + hand-off to application code, cycles. */
    Tick receiveCycles = 120;
};

/**
 * Models every tenant's receive path and aggregates end-to-end latency
 * (producer enqueue -> tenant has the work item in hand).
 */
class TenantModel
{
  public:
    explicit TenantModel(const TenantParams &params = {},
                         std::uint64_t seed = 1);

    const TenantParams &params() const { return params_; }

    /**
     * The SDP rang the tenant doorbell for @p item at @p when.
     * Computes the tenant-side delay and records the end-to-end
     * latency.
     *
     * @return The tick at which the tenant holds the item.
     */
    Tick deliver(const queueing::WorkItem &item, Tick when);

    /** End-to-end latency distribution, microseconds. */
    const stats::LogHistogram &latency() const { return latency_; }

    std::uint64_t delivered() const { return delivered_; }

    /** Reset accumulated statistics (measurement boundary). */
    void resetStats();

  private:
    TenantParams params_;
    Rng rng_;
    stats::LogHistogram latency_{0.01, 1.02, 2048};
    std::uint64_t delivered_ = 0;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_TENANT_MODEL_HH
