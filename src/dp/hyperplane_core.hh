/**
 * @file
 * The HyperPlane data-plane core: runs the QWAIT loop of Algorithm 1.
 *
 * Each iteration executes QWAIT (fixed 50-cycle latency against the
 * shared QwaitUnit), QWAIT-VERIFY, a dequeue batch, QWAIT-RECONSIDER,
 * and item processing.  When QWAIT finds no ready queue the core halts —
 * either clock-gated in C0 or, in power-optimized mode, in the C1 sleep
 * state with a ~0.5 us wake-up penalty — until the QwaitUnit's wake
 * callback fires.
 */

#ifndef HYPERPLANE_DP_HYPERPLANE_CORE_HH
#define HYPERPLANE_DP_HYPERPLANE_CORE_HH

#include <optional>
#include <utility>
#include <vector>

#include "core/qwait_unit.hh"
#include "dp/dp_core.hh"
#include "fault/fallback_set.hh"
#include "trace/latency_breakdown.hh"

namespace hyperplane {
namespace dp {

/** HyperPlane-accelerated data-plane core. */
class HyperPlaneCore : public DataPlaneCore
{
  public:
    /**
     * @param qwait          Shared notification subsystem (per cluster).
     * @param powerOptimized Halt into C1 instead of C0-halt.
     * @param c1WakeLatency  C1 exit latency, cycles.
     * @param batchSize      Items dequeued per QWAIT return.
     */
    HyperPlaneCore(CoreId id, EventQueue &eq, mem::MemorySystem &mem,
                   queueing::QueueSet &queues,
                   workloads::Workload &workload,
                   const CoreTimingParams &params, ServiceJitter jitter,
                   std::uint64_t seed, core::QwaitUnit &qwait,
                   bool powerOptimized, Tick c1WakeLatency,
                   unsigned batchSize = 1);

    void start() override;
    void stop() override;
    void resetStats() override;

    /** True while blocked in QWAIT with no ready queue. */
    bool halted() const { return halted_; }

    /**
     * Wake a halted core (ready set became non-empty).  Applies the C1
     * exit latency in power-optimized mode.  No-op if not halted.
     */
    void wake();

    /** Close out halt-time accounting at the end of a run. */
    void finalize(Tick endTick) override;

    /**
     * NUMA work stealing (Section III-B future work): when the local
     * ready set is empty, QWAIT falls through to the given remote
     * QwaitUnits, each attempt costing @p extraCycles of interconnect
     * latency on top of the QWAIT latency.
     */
    void setStealTargets(std::vector<core::QwaitUnit *> targets,
                         Tick extraCycles);

    /**
     * In-order (flow-stateful) mode: QWAIT-RECONSIDER executes after
     * item processing (Algorithm 1 lines 18/19 swapped), so a queue is
     * never serviced by two cores concurrently.
     */
    void setInOrder(bool inOrder) { inOrder_ = inOrder; }

    /**
     * Background-task mode (the non-blocking QWAIT variant of Section
     * III-A): instead of halting on an empty ready set, run a
     * low-priority work quantum and re-poll.
     *
     * @param quantumCycles Length of one background quantum; 0 disables.
     * @param ipc           IPC of the background computation.
     */
    void setBackgroundTask(Tick quantumCycles, double ipc = 1.5);

    /** Items served from remote (stolen) ready sets. */
    std::uint64_t stolen() const { return stolen_; }

    /**
     * Graceful degradation: also service the cluster's software-polled
     * fallback set (queues the monitoring set could not hold).  While
     * the set is non-empty the core never halts indefinitely — an
     * epoch-guarded poll timer bounds every halt by @p pollPeriod, and
     * a sweep is forced at least once per period even when hardware
     * queues keep the core saturated.
     */
    void setFallback(fault::FallbackSet *fallback, Tick pollPeriod);

    /** Tasks this core served from the fallback set. */
    std::uint64_t fallbackServed() const { return fallbackServed_; }

    /** Attach the per-stage latency-breakdown tracker (may be null). */
    void setBreakdown(trace::LatencyBreakdown *breakdown)
    {
        breakdown_ = breakdown;
    }

  protected:
    /**
     * Cycles one QWAIT instruction occupies the core.  The software
     * ready-set variant (Figure 13) overrides this.
     */
    virtual Tick qwaitCost() const;

    /** Event body: one QWAIT iteration. */
    void step();

    /** Account a completed halt interval. */
    void accountHalt(Tick wakeTick);

    /** QWAIT against local then remote units.
     *  @return (qid, owning unit) or nullopt; charges latency. */
    std::optional<std::pair<QueueId, core::QwaitUnit *>> qwaitAll();

    /** Software-poll every fallback queue once; drains hits.
     *  @return Items served. */
    unsigned sweepFallback();

    /** Halt with a poll-timer bound (fallback set non-empty). */
    void haltWithPollTimeout();

    /** Stamp the halt-span open/close events around halted_. */
    void traceHaltBegin(Tick t);
    void traceHaltEnd(Tick t);

    core::QwaitUnit &qwait_;
    bool powerOpt_;
    Tick c1WakeLatency_;
    unsigned batch_;
    bool halted_ = false;
    Tick haltStart_ = 0;
    std::vector<core::QwaitUnit *> stealTargets_;
    Tick stealExtraCycles_ = 0;
    bool inOrder_ = false;
    Tick backgroundQuantum_ = 0;
    double backgroundIpc_ = 1.5;
    std::uint64_t stolen_ = 0;
    fault::FallbackSet *fallback_ = nullptr;
    Tick fallbackPollPeriod_ = 3000;
    Tick lastFallbackSweep_ = 0;
    std::uint64_t fallbackServed_ = 0;
    /** Invalidates in-flight poll-timeout events when a real wake (or
     *  a newer halt) supersedes them. */
    std::uint64_t pollEpoch_ = 0;
    trace::LatencyBreakdown *breakdown_ = nullptr;
};

} // namespace dp
} // namespace hyperplane

#endif // HYPERPLANE_DP_HYPERPLANE_CORE_HH
