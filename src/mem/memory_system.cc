#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace mem {

MemorySystem::MemorySystem(unsigned numCores, const CacheGeometry &l1Geom,
                           const CacheGeometry &llcGeom,
                           const MemLatencies &lat)
    : lat_(lat), llc_(llcGeom)
{
    hp_assert(numCores > 0, "need at least one core");
    l1s_.reserve(numCores);
    for (unsigned i = 0; i < numCores; ++i)
        l1s_.emplace_back(l1Geom);
}

CacheArray &
MemorySystem::l1(CoreId core)
{
    hp_assert(core < l1s_.size(), "core id out of range");
    return l1s_[core];
}

const CacheArray &
MemorySystem::l1(CoreId core) const
{
    hp_assert(core < l1s_.size(), "core id out of range");
    return l1s_[core];
}

int
MemorySystem::findOwner(Addr line, CoreId except) const
{
    for (unsigned c = 0; c < l1s_.size(); ++c) {
        if (c == except)
            continue;
        const LineState st = l1s_[c].state(line);
        if (st == LineState::Modified || st == LineState::Exclusive)
            return static_cast<int>(c);
    }
    return -1;
}

bool
MemorySystem::anyOtherSharer(Addr line, CoreId except) const
{
    for (unsigned c = 0; c < l1s_.size(); ++c) {
        if (c != except && l1s_[c].contains(line))
            return true;
    }
    return false;
}

unsigned
MemorySystem::invalidateOthers(Addr line, CoreId except)
{
    unsigned n = 0;
    for (unsigned c = 0; c < l1s_.size(); ++c) {
        if (c == except)
            continue;
        if (l1s_[c].invalidate(line) != LineState::Invalid)
            ++n;
    }
    if (n > 0)
        invalidations.inc(n);
    return n;
}

void
MemorySystem::insertLlc(Addr line)
{
    if (auto victim = llc_.insert(line, LineState::Shared)) {
        // Inclusive LLC: evicting a line removes it from all L1s too.
        invalidateOthers(victim->first, deviceWriter);
    }
}

void
MemorySystem::insertL1(CoreId core, Addr line, LineState st)
{
    if (auto victim = l1s_[core].insert(line, st)) {
        // A dirty victim is written back into the LLC; the LLC already
        // holds the tag (inclusive), so no further action is modelled.
        (void)victim;
    }
}

AccessResult
MemorySystem::read(CoreId core, Addr addr)
{
    hp_assert(core < l1s_.size(), "core id out of range");
    const Addr line = lineBase(addr);
    CacheArray &l1c = l1s_[core];

    if (l1c.contains(line)) {
        l1c.touch(line);
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }
    l1c.misses.inc();

    // Another core owns the line exclusively: cache-to-cache forward,
    // owner downgrades to Shared.
    const int owner = findOwner(line, core);
    if (owner >= 0) {
        l1s_[owner].setState(line, LineState::Shared);
        insertLlc(line); // forwarded data also lands in the LLC
        insertL1(core, line, LineState::Shared);
        remoteForwards.inc();
        return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
    }

    if (llc_.contains(line)) {
        llc_.touch(line);
        llc_.hits.inc();
        llcHits.inc();
        const bool shared = anyOtherSharer(line, core);
        insertL1(core, line,
                 shared ? LineState::Shared : LineState::Exclusive);
        return {lat_.llcHit, AccessLevel::LLC, false};
    }
    llc_.misses.inc();

    memAccesses.inc();
    insertLlc(line);
    insertL1(core, line, LineState::Exclusive);
    return {lat_.memAccess, AccessLevel::Memory, false};
}

AccessResult
MemorySystem::write(CoreId core, Addr addr)
{
    hp_assert(core < l1s_.size(), "core id out of range");
    const Addr line = lineBase(addr);
    CacheArray &l1c = l1s_[core];
    const LineState myState = l1c.state(line);

    if (myState == LineState::Modified) {
        l1c.touch(line);
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }
    if (myState == LineState::Exclusive) {
        // Silent E->M upgrade; no bus transaction, so no snoop fires.
        l1c.setState(line, LineState::Modified);
        l1c.touch(line);
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }

    // From here on an ownership-granting transaction is required, which
    // the monitoring set observes.
    writeTransactions.inc();
    notifySnoopers(line, core);

    if (myState == LineState::Shared) {
        // Upgrade: invalidate other sharers via the directory.
        invalidateOthers(line, core);
        l1c.setState(line, LineState::Modified);
        l1c.touch(line);
        return {lat_.llcHit, AccessLevel::LLC, true};
    }

    l1c.misses.inc();
    const int owner = findOwner(line, core);
    if (owner >= 0) {
        l1s_[owner].invalidate(line);
        invalidations.inc();
        insertLlc(line);
        insertL1(core, line, LineState::Modified);
        remoteForwards.inc();
        return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
    }

    if (llc_.contains(line)) {
        llc_.touch(line);
        llc_.hits.inc();
        llcHits.inc();
        const bool hadSharers = invalidateOthers(line, core) > 0;
        insertL1(core, line, LineState::Modified);
        return {lat_.llcHit, AccessLevel::LLC, hadSharers};
    }
    llc_.misses.inc();

    memAccesses.inc();
    insertLlc(line);
    insertL1(core, line, LineState::Modified);
    return {lat_.memAccess, AccessLevel::Memory, false};
}

AccessResult
MemorySystem::atomicRmw(CoreId core, Addr addr)
{
    AccessResult r = write(core, addr);
    r.latency += lat_.atomicExtra;
    return r;
}

void
MemorySystem::deviceWrite(Addr addr)
{
    const Addr line = lineBase(addr);
    writeTransactions.inc();
    notifySnoopers(line, deviceWriter);
    // Invalidate every cached copy; DDIO-style allocation into the LLC.
    invalidateOthers(line, deviceWriter);
    insertLlc(line);
    llc_.touch(line);
}

void
MemorySystem::watchRange(Addr lo, Addr hi, Snooper *snooper)
{
    hp_assert(lo < hi, "empty watch range");
    hp_assert(snooper != nullptr, "null snooper");
    watches_.push_back({lo, hi, snooper});
}

void
MemorySystem::unwatch(Snooper *snooper)
{
    std::erase_if(watches_, [snooper](const WatchedRange &w) {
        return w.snooper == snooper;
    });
}

void
MemorySystem::notifySnoopers(Addr line, CoreId writer)
{
    for (const auto &w : watches_) {
        if (line >= w.lo && line < w.hi) {
            snoopHits.inc();
            if (HP_TRACE_ON(tracer_)) {
                tracer_->instant(trace::Stage::SnoopDeliver,
                                 trace::trackDevice, tracer_->now(),
                                 invalidQueueId, line);
            }
            if (interposer_ && interposer_(line, writer, w.snooper))
                continue; // interposer owns delivery (fault injection)
            w.snooper->onWriteTransaction(line, writer);
        }
    }
}

void
MemorySystem::flushAll()
{
    for (auto &c : l1s_)
        c.flush();
    llc_.flush();
}

} // namespace mem
} // namespace hyperplane
