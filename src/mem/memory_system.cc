#include "mem/memory_system.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"

namespace hyperplane {
namespace mem {

MemorySystem::MemorySystem(unsigned numCores, const CacheGeometry &l1Geom,
                           const CacheGeometry &llcGeom,
                           const MemLatencies &lat)
    : lat_(lat), llc_(llcGeom)
{
    hp_assert(numCores > 0, "need at least one core");
    hp_assert(numCores <= maxDirectoryCores,
              "directory sharer mask tracks at most %u cores",
              maxDirectoryCores);
    // invalidateAll() is "invalidate all but the device", and the
    // device-write path excludes deviceWriter from sharer queries; both
    // are correct only because the pseudo id can never name a real core.
    hp_assert(deviceWriter >= numCores,
              "deviceWriter pseudo id collides with a real core id");
    l1s_.reserve(numCores);
    for (unsigned i = 0; i < numCores; ++i)
        l1s_.emplace_back(l1Geom);
    // Directory occupancy is bounded by total L1 capacity (every
    // tracked entry has at least one sharer, and a sharer occupies an
    // L1 way); reserve for that once so the hot path never rehashes.
    dir_.reserve(numCores * l1s_.front().capacityLines());
}

const CacheArray &
MemorySystem::l1(CoreId core) const
{
    hp_assert(core < l1s_.size(), "core id out of range");
    return l1s_[core];
}

void
MemorySystem::dirTrack(Addr line, CoreId core, LineState st)
{
    const bool exclusive =
        st == LineState::Modified || st == LineState::Exclusive;
    dir_.trackSharer(dir_.findOrInsert(line), core, exclusive);
}

void
MemorySystem::dirUntrack(Addr line, CoreId core)
{
    const std::size_t s = dir_.find(line);
    if (s == DirectoryIndex::npos)
        return;
    dir_.untrackSharer(s, core);
}

int
MemorySystem::findOwner(Addr line, CoreId except) const
{
    dirLookups.inc();
    const std::size_t s = dir_.find(line);
    if (s == DirectoryIndex::npos)
        return -1;
    dirHits.inc();
    const int owner = dir_.ownerOf(s);
    if (owner < 0 || static_cast<CoreId>(owner) == except)
        return -1;
    return owner;
}

bool
MemorySystem::anyOtherSharer(Addr line, CoreId except) const
{
    dirLookups.inc();
    const std::size_t s = dir_.find(line);
    if (s == DirectoryIndex::npos)
        return false;
    dirHits.inc();
    return dir_.anyOtherSharer(s, except);
}

unsigned
MemorySystem::invalidateOthers(Addr line, CoreId except)
{
    dirLookups.inc();
    const std::size_t s = dir_.find(line);
    if (s == DirectoryIndex::npos)
        return 0;
    dirHits.inc();
    const unsigned n =
        dir_.removeOthers(s, except, [this, line](CoreId c) {
            const LineState prior = l1s_[c].invalidate(line);
            hp_assert(prior != LineState::Invalid,
                      "directory listed a non-resident sharer");
        });
    if (n > 0)
        invalidations.inc(n);
    return n;
}

unsigned
MemorySystem::invalidateAll(Addr line)
{
    // deviceWriter can never name a real core (asserted at
    // construction), so "all but the device" is exactly "all".
    return invalidateOthers(line, deviceWriter);
}

void
MemorySystem::insertLlc(Addr line)
{
    if (auto victim = llc_.insert(line, LineState::Shared)) {
        // Inclusive LLC: evicting a line removes it from all L1s too.
        invalidateAll(victim->first);
    }
}

void
MemorySystem::insertL1(CoreId core, Addr line, LineState st)
{
    if (auto victim = l1s_[core].insert(line, st)) {
        // A dirty victim is written back into the LLC; the LLC already
        // holds the tag (inclusive), so no further action is modelled.
        // The victim's directory slot is a cold random probe, while the
        // inserted line's slot is warm from the owner/sharer queries
        // that preceded the fill — so start the victim fetch, do the
        // warm track, then untrack (the two lines are independent, so
        // the order is immaterial to the directory's final state).
        dir_.prefetch(victim->first);
        dirTrack(line, core, st);
        dirUntrack(victim->first, core);
        return;
    }
    dirTrack(line, core, st);
}

void
MemorySystem::setL1State(CoreId core, Addr line, LineState st)
{
    CacheArray::WayRef way = l1s_[core].lookup(line);
    hp_assert(static_cast<bool>(way), "setL1State on non-resident line");
    way.setState(st);
    dirTrack(line, core, st);
}

AccessResult
MemorySystem::read(CoreId core, Addr addr)
{
    hp_assert(core < l1s_.size(), "core id out of range");
    const Addr line = lineBase(addr);
    CacheArray &l1c = l1s_[core];

    if (CacheArray::WayRef way = l1c.lookup(line)) {
        way.touch();
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }
    l1c.misses.inc();

    // Another core owns the line exclusively: cache-to-cache forward,
    // owner downgrades to Shared.
    const int owner = findOwner(line, core);
    if (owner >= 0) {
        setL1State(owner, line, LineState::Shared);
        insertLlc(line); // forwarded data also lands in the LLC
        insertL1(core, line, LineState::Shared);
        remoteForwards.inc();
        return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
    }

    if (CacheArray::WayRef llcWay = llc_.lookup(line)) {
        llcWay.touch();
        llc_.hits.inc();
        llcHits.inc();
        const bool shared = anyOtherSharer(line, core);
        insertL1(core, line,
                 shared ? LineState::Shared : LineState::Exclusive);
        return {lat_.llcHit, AccessLevel::LLC, false};
    }
    llc_.misses.inc();

    memAccesses.inc();
    insertLlc(line);
    insertL1(core, line, LineState::Exclusive);
    return {lat_.memAccess, AccessLevel::Memory, false};
}

AccessResult
MemorySystem::write(CoreId core, Addr addr)
{
    hp_assert(core < l1s_.size(), "core id out of range");
    const Addr line = lineBase(addr);
    CacheArray &l1c = l1s_[core];
    CacheArray::WayRef way = l1c.lookup(line);
    const LineState myState = way.state();

    if (myState == LineState::Modified) {
        way.touch();
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }
    if (myState == LineState::Exclusive) {
        // Silent E->M upgrade; no bus transaction, so no snoop fires.
        // The directory owner already names this core.
        way.setState(LineState::Modified);
        way.touch();
        l1c.hits.inc();
        l1Hits.inc();
        return {lat_.l1Hit, AccessLevel::L1, false};
    }

    // From here on an ownership-granting transaction is required, which
    // the monitoring set observes.
    writeTransactions.inc();
    notifySnoopers(line, core);

    if (myState == LineState::Shared) {
        // Upgrade: invalidate other sharers via the directory.
        invalidateOthers(line, core);
        way.setState(LineState::Modified);
        way.touch();
        dirTrack(line, core, LineState::Modified);
        return {lat_.llcHit, AccessLevel::LLC, true};
    }

    l1c.misses.inc();
    const int owner = findOwner(line, core);
    if (owner >= 0) {
        l1s_[owner].invalidate(line);
        dirUntrack(line, owner);
        invalidations.inc();
        insertLlc(line);
        insertL1(core, line, LineState::Modified);
        remoteForwards.inc();
        return {lat_.remoteL1Forward, AccessLevel::RemoteL1, true};
    }

    if (CacheArray::WayRef llcWay = llc_.lookup(line)) {
        llcWay.touch();
        llc_.hits.inc();
        llcHits.inc();
        const bool hadSharers = invalidateOthers(line, core) > 0;
        insertL1(core, line, LineState::Modified);
        return {lat_.llcHit, AccessLevel::LLC, hadSharers};
    }
    llc_.misses.inc();

    memAccesses.inc();
    insertLlc(line);
    insertL1(core, line, LineState::Modified);
    return {lat_.memAccess, AccessLevel::Memory, false};
}

AccessResult
MemorySystem::atomicRmw(CoreId core, Addr addr)
{
    AccessResult r = write(core, addr);
    r.latency += lat_.atomicExtra;
    return r;
}

void
MemorySystem::deviceWrite(Addr addr)
{
    const Addr line = lineBase(addr);
    writeTransactions.inc();
    notifySnoopers(line, deviceWriter);
    // Invalidate every cached copy; DDIO-style allocation into the LLC.
    invalidateAll(line);
    insertLlc(line);
    llc_.touch(line);
}

void
MemorySystem::watchRange(Addr lo, Addr hi, Snooper *snooper)
{
    hp_assert(lo < hi, "empty watch range");
    hp_assert(snooper != nullptr, "null snooper");
    watches_.push_back({lo, hi, snooper});
    rebuildWatchIndex();
}

void
MemorySystem::unwatch(Snooper *snooper)
{
    std::erase_if(watches_, [snooper](const WatchedRange &w) {
        return w.snooper == snooper;
    });
    rebuildWatchIndex();
}

void
MemorySystem::rebuildWatchIndex()
{
    sortedWatches_ = watches_;
    std::sort(sortedWatches_.begin(), sortedWatches_.end(),
              [](const WatchedRange &a, const WatchedRange &b) {
                  return a.lo < b.lo;
              });
    watchesOverlap_ = false;
    for (std::size_t i = 1; i < sortedWatches_.size(); ++i) {
        if (sortedWatches_[i].lo < sortedWatches_[i - 1].hi)
            watchesOverlap_ = true;
    }
}

void
MemorySystem::deliverSnoop(const WatchedRange &w, Addr line, CoreId writer)
{
    snoopHits.inc();
    if (HP_TRACE_ON(tracer_)) {
        tracer_->instant(trace::Stage::SnoopDeliver, trace::trackDevice,
                         tracer_->now(), invalidQueueId, line);
    }
    if (interposer_ && interposer_(line, writer, w.snooper))
        return; // interposer owns delivery (fault injection)
    w.snooper->onWriteTransaction(line, writer);
}

void
MemorySystem::notifySnoopers(Addr line, CoreId writer)
{
    // Nearly all SDP configurations register one doorbell range per
    // qwait unit, all disjoint; dispatch is a one-entry test or a
    // binary search instead of a scan over every registration.
    if (watches_.empty())
        return;
    if (watches_.size() == 1) {
        const WatchedRange &w = watches_.front();
        if (line >= w.lo && line < w.hi)
            deliverSnoop(w, line, writer);
        return;
    }
    if (!watchesOverlap_) {
        // Disjoint ranges: only the one with the greatest lo <= line
        // can contain it.
        auto it = std::upper_bound(
            sortedWatches_.begin(), sortedWatches_.end(), line,
            [](Addr a, const WatchedRange &w) { return a < w.lo; });
        if (it == sortedWatches_.begin())
            return;
        --it;
        if (line < it->hi)
            deliverSnoop(*it, line, writer);
        return;
    }
    // Overlapping registrations: preserve registration-order delivery.
    for (const auto &w : watches_) {
        if (line >= w.lo && line < w.hi)
            deliverSnoop(w, line, writer);
    }
}

void
MemorySystem::flushAll()
{
    for (auto &c : l1s_)
        c.flush();
    llc_.flush();
    dir_.clear();
}

void
MemorySystem::checkDirectoryConsistency() const
{
    // Cross-check every tracked directory entry against the tag
    // arrays...
    std::uint64_t entries = 0;
    dir_.forEach([this, &entries](Addr line, const DirEntry &e) {
        ++entries;
        int owner = -1;
        for (unsigned c = 0; c < l1s_.size(); ++c) {
            const LineState st = l1s_[c].state(line);
            const bool bit =
                (e.mask[c / 64] >> (c % 64)) & std::uint64_t{1};
            hp_assert(bit == (st != LineState::Invalid),
                      "directory sharer bit diverges from L1 %u", c);
            if (st == LineState::Modified || st == LineState::Exclusive) {
                hp_assert(owner < 0, "two M/E holders for one line");
                owner = static_cast<int>(c);
            }
        }
        hp_assert(e.owner == owner, "directory owner diverges");
    });
    hp_assert(entries == dir_.size(),
              "live-entry count diverges: %llu tracked, size() says %llu",
              static_cast<unsigned long long>(entries),
              static_cast<unsigned long long>(dir_.size()));
    // ...and make sure no resident L1 line is missing from the
    // directory: per-core resident counts must sum to the directory's
    // total sharer population.
    std::uint64_t resident = 0;
    for (const auto &l1c : l1s_)
        resident += l1c.residentLines();
    std::uint64_t tracked = 0;
    dir_.forEach([&tracked](Addr, const DirEntry &e) {
        for (const std::uint64_t w : e.mask)
            tracked += static_cast<std::uint64_t>(std::popcount(w));
    });
    hp_assert(tracked == resident,
              "directory tracks %llu sharers, L1s hold %llu lines",
              static_cast<unsigned long long>(tracked),
              static_cast<unsigned long long>(resident));
}

} // namespace mem
} // namespace hyperplane
