/**
 * @file
 * Set-associative cache tag array with LRU replacement.
 *
 * CacheArray models only tags and per-line coherence state; data values are
 * never simulated (timing and state are what the experiments need).  It is
 * used for both private L1s and the shared LLC by MemorySystem.
 */

#ifndef HYPERPLANE_MEM_CACHE_HH
#define HYPERPLANE_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace mem {

/** MESI line states (plus Invalid encoded as absence). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes;
    unsigned ways;
    unsigned lineBytes = cacheLineBytes;

    std::uint64_t sets() const { return sizeBytes / (ways * lineBytes); }
};

/**
 * LRU set-associative tag array.
 *
 * Addresses are line-aligned internally; callers may pass any byte address.
 */
class CacheArray
{
  public:
    explicit CacheArray(const CacheGeometry &geom);

    /** Line state, or Invalid if not present. */
    LineState state(Addr addr) const;

    /** True if the line is present in any valid state. */
    bool contains(Addr addr) const { return state(addr) != LineState::Invalid; }

    /** Update LRU on a hit. @pre contains(addr) */
    void touch(Addr addr);

    /** Change the state of a resident line. @pre contains(addr) */
    void setState(Addr addr, LineState st);

    /**
     * Insert a line (in the given state), evicting the LRU way if the set
     * is full.
     *
     * @return The victim line's (address, state) if one was evicted.
     */
    std::optional<std::pair<Addr, LineState>> insert(Addr addr,
                                                     LineState st);

    /** Remove a line if present. @return prior state. */
    LineState invalidate(Addr addr);

    /** Number of valid lines currently resident. */
    std::uint64_t residentLines() const { return resident_; }

    /** Total line capacity. */
    std::uint64_t capacityLines() const
    {
        return geom_.sets() * geom_.ways;
    }

    const CacheGeometry &geometry() const { return geom_; }

    /** Invalidate everything. */
    void flush();

    stats::Counter hits{"hits"};
    stats::Counter misses{"misses"};
    stats::Counter evictions{"evictions"};

  private:
    struct Way
    {
        Addr tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Way *find(Addr addr);
    const Way *find(Addr addr) const;

    CacheGeometry geom_;
    std::vector<Way> ways_; // sets() * ways, row-major by set
    std::uint64_t useClock_ = 0;
    std::uint64_t resident_ = 0;
};

} // namespace mem
} // namespace hyperplane

#endif // HYPERPLANE_MEM_CACHE_HH
