/**
 * @file
 * Set-associative cache tag array with LRU replacement.
 *
 * CacheArray models only tags and per-line coherence state; data values are
 * never simulated (timing and state are what the experiments need).  It is
 * used for both private L1s and the shared LLC by MemorySystem.
 */

#ifndef HYPERPLANE_MEM_CACHE_HH
#define HYPERPLANE_MEM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/huge_alloc.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace mem {

/** MESI line states (plus Invalid encoded as absence). */
enum class LineState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Geometry of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes;
    unsigned ways;
    unsigned lineBytes = cacheLineBytes;

    std::uint64_t sets() const { return sizeBytes / (ways * lineBytes); }
};

/**
 * LRU set-associative tag array.
 *
 * Addresses are line-aligned internally; callers may pass any byte address.
 */
class CacheArray
{
  private:
    /**
     * One tag-array way, packed to 16 bytes (four per host cache line):
     * meta holds (lastUse << 2) | state.  The LRU clock is monotonic
     * and unique, so ordering ways by the shifted clock is identical
     * to ordering by a full-width one — victim selection is unchanged.
     * A simulated machine carries cores x sets x ways of these, so the
     * per-way footprint is what decides whether the tag arrays stay
     * resident in the host's caches as core count grows.
     */
    struct Way
    {
        Addr tag = 0;
        std::uint64_t meta = 0; ///< zero == Invalid, never used

        LineState state() const
        {
            return static_cast<LineState>(meta & 3);
        }

        std::uint64_t lastUse() const { return meta >> 2; }

        void setState(LineState st)
        {
            meta = (meta & ~std::uint64_t{3}) |
                   static_cast<std::uint64_t>(st);
        }

        void stamp(LineState st, std::uint64_t clock)
        {
            meta = (clock << 2) | static_cast<std::uint64_t>(st);
        }
    };

  public:
    explicit CacheArray(const CacheGeometry &geom);

    /**
     * Mutable handle to one resident way, returned by lookup().  One
     * probe of the set resolves presence, state, LRU update, and state
     * change, where the legacy contains()/touch()/setState() chain
     * re-walked the tags once per call.  A handle is invalidated by any
     * subsequent insert(), invalidate(), or flush() on the array.
     */
    class WayRef
    {
      public:
        WayRef() = default;

        /** True if the probe hit a resident line. */
        explicit operator bool() const { return way_ != nullptr; }

        /** State of the resident line (Invalid when the probe missed). */
        LineState state() const
        {
            return way_ != nullptr ? way_->state() : LineState::Invalid;
        }

        /** Update LRU. @pre the probe hit */
        void touch() { way_->stamp(way_->state(), ++arr_->useClock_); }

        /** Change coherence state. @pre the probe hit; st != Invalid */
        void setState(LineState st) { way_->setState(st); }

      private:
        friend class CacheArray;
        WayRef(CacheArray *arr, Way *way) : arr_(arr), way_(way) {}

        CacheArray *arr_ = nullptr;
        Way *way_ = nullptr;
    };

    /** Single-probe lookup; the handle tests false on a miss. */
    WayRef lookup(Addr addr) { return WayRef(this, find(addr)); }

    /** Line state, or Invalid if not present. */
    LineState state(Addr addr) const;

    /** True if the line is present in any valid state. */
    bool contains(Addr addr) const { return state(addr) != LineState::Invalid; }

    /** Update LRU on a hit. @pre contains(addr) */
    void touch(Addr addr);

    /** Change the state of a resident line. @pre contains(addr) */
    void setState(Addr addr, LineState st);

    /**
     * Insert a line (in the given state), evicting the LRU way if the set
     * is full.
     *
     * @return The victim line's (address, state) if one was evicted.
     */
    std::optional<std::pair<Addr, LineState>> insert(Addr addr,
                                                     LineState st);

    /** Remove a line if present. @return prior state. */
    LineState invalidate(Addr addr);

    /** Number of valid lines currently resident. */
    std::uint64_t residentLines() const { return resident_; }

    /** Total line capacity. */
    std::uint64_t capacityLines() const
    {
        return geom_.sets() * geom_.ways;
    }

    const CacheGeometry &geometry() const { return geom_; }

    /** Invalidate everything. */
    void flush();

    stats::Counter hits{"hits"};
    stats::Counter misses{"misses"};
    stats::Counter evictions{"evictions"};

  private:
    std::uint64_t setIndex(Addr addr) const;
    Way *find(Addr addr);
    const Way *find(Addr addr) const;

    CacheGeometry geom_;
    // sets() * ways, row-major by set.  Huge-page-backed: the LLC array
    // alone is several MB and probed at random line addresses.
    std::vector<Way, HugePageAllocator<Way>> ways_;
    std::uint64_t useClock_ = 0;
    std::uint64_t resident_ = 0;
};

} // namespace mem
} // namespace hyperplane

#endif // HYPERPLANE_MEM_CACHE_HH
