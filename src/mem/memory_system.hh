/**
 * @file
 * Directory-based MESI memory-system timing model.
 *
 * MemorySystem owns a private L1 per core and one shared, inclusive LLC
 * (Table I: 32 KB 4-way L1s, 1 MB/core 16-way LLC, 64 B lines).  Every
 * access returns the latency it would incur and keeps all tag/state arrays
 * coherent, so queue-head ping-pong between spinning cores and the
 * capacity pressure of task data emerge naturally from the model.
 *
 * Coherence queries are served by an explicit directory: a per-line
 * {sharer bitmask, owner id} index colocated with the inclusive LLC and
 * maintained on every L1 insert/state-change/invalidate/evict.  The
 * directory is a simulator-side index over state the tag arrays already
 * hold — it changes no modelled latency and no simulated number, it only
 * turns the owner/sharer/invalidate sweeps over numCores tag arrays into
 * O(1) popcount/bit-scan work so per-event simulation cost stays flat as
 * core count grows (see docs/PERFORMANCE.md).
 *
 * Write transactions that grant exclusive ownership (GetM / upgrade) in a
 * watched address range are reported to registered Snooper objects.  This
 * is the hook HyperPlane's monitoring set uses: it behaves as part of the
 * directory and sees all relevant coherence traffic without being a sharer
 * (Section IV-A of the paper).
 */

#ifndef HYPERPLANE_MEM_MEMORY_SYSTEM_HH
#define HYPERPLANE_MEM_MEMORY_SYSTEM_HH

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/huge_alloc.hh"
#include "sim/logging.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace mem {

/** Where an access was ultimately serviced. */
enum class AccessLevel : std::uint8_t
{
    L1,
    LLC,
    RemoteL1, ///< cache-to-cache forward from another core's L1
    Memory,
};

/** Outcome of one memory access. */
struct AccessResult
{
    Tick latency = 0;
    AccessLevel servedBy = AccessLevel::L1;
    /** True if the miss was caused by coherence (line was elsewhere). */
    bool coherence = false;
};

/** Latency parameters, in core cycles. */
struct MemLatencies
{
    Tick l1Hit = 4;
    Tick llcHit = 40;
    Tick memAccess = 200;
    Tick remoteL1Forward = 60;
    Tick atomicExtra = 15;
};

/**
 * Observer of coherence write transactions in a watched address range.
 * Implemented by HyperPlane's monitoring set.
 */
class Snooper
{
  public:
    virtual ~Snooper() = default;

    /**
     * A GetM/upgrade transaction was observed.
     *
     * @param line   Line-aligned address being written.
     * @param writer Core performing the write, or deviceWriter for DMA.
     */
    virtual void onWriteTransaction(Addr line, CoreId writer) = 0;
};

/** Pseudo core-id used for device (DMA) writes. */
constexpr CoreId deviceWriter = ~CoreId{0};

/** Sharer-bitmask words per directory entry (64 cores each).  Sixteen
 *  words cover the 1024-core configurations of the tick-parallel
 *  backend.  Only the rare >=2-sharer overflow-pool records pay for the
 *  wider mask: the hash table itself stores 16-byte packed slots whose
 *  inline single-sharer form is independent of this constant, so the
 *  hottest structure in the simulator is unchanged. */
constexpr unsigned dirMaskWords = 16;

/** Largest core count the directory's inline sharer mask can track. */
constexpr unsigned maxDirectoryCores = dirMaskWords * 64;

/**
 * The full cache hierarchy + directory for one simulated CMP.
 */
class MemorySystem
{
  public:
    /**
     * @param numCores Number of cores with private L1s (at most
     *                 maxDirectoryCores).
     * @param l1Geom   Geometry of each private L1.
     * @param llcGeom  Geometry of the shared LLC.
     * @param lat      Latency parameters.
     */
    MemorySystem(unsigned numCores, const CacheGeometry &l1Geom,
                 const CacheGeometry &llcGeom,
                 const MemLatencies &lat = MemLatencies{});

    /** Load by @p core from @p addr. */
    AccessResult read(CoreId core, Addr addr);

    /** Store by @p core to @p addr (obtains M state). */
    AccessResult write(CoreId core, Addr addr);

    /** Atomic read-modify-write (e.g. doorbell counter update). */
    AccessResult atomicRmw(CoreId core, Addr addr);

    /**
     * Write performed by an I/O device / producer outside the modelled
     * cores (DMA / DDIO).  Invalidates all cached copies, installs the
     * line in the LLC, and fires snoopers.  No latency is charged to any
     * simulated core.
     */
    void deviceWrite(Addr addr);

    /**
     * Register a snooper over [lo, hi).  Multiple ranges may be
     * registered; overlaps fire every matching snooper.
     */
    void watchRange(Addr lo, Addr hi, Snooper *snooper);

    /** Drop a previously registered snooper (all its ranges). */
    void unwatch(Snooper *snooper);

    /**
     * Interposer on the snoop-delivery path (fault injection).  Called
     * once per (matching range, write transaction) before the snooper
     * would be notified; returning true means the interposer took
     * ownership of delivery (dropped it, delayed it, or delivered it
     * itself) and the memory system must not call the snooper.
     */
    using SnoopInterposer =
        std::function<bool(Addr line, CoreId writer, Snooper *target)>;

    /** Install (or clear, with an empty function) the interposer. */
    void setSnoopInterposer(SnoopInterposer interposer)
    {
        interposer_ = std::move(interposer);
    }

    /**
     * Attach a tracer: every snoop delivery in a watched range stamps a
     * snoop_deliver instant (null detaches).
     */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    unsigned numCores() const { return static_cast<unsigned>(l1s_.size()); }

    /**
     * Read-only L1 access.  All L1 mutations must flow through the
     * MemorySystem access methods so the coherence directory stays in
     * sync with the tag arrays — which is why no mutable reference is
     * exposed.
     */
    const CacheArray &l1(CoreId core) const;
    const CacheArray &llc() const { return llc_; }
    const MemLatencies &latencies() const { return lat_; }

    /** Invalidate all caches (between experiment phases). */
    void flushAll();

    /** Lines currently tracked by the coherence directory. */
    std::uint64_t directoryLines() const { return dir_.size(); }

    /**
     * Recompute sharers/owner from the L1 tag arrays and panic on any
     * divergence from the directory (test hook; O(cores x lines)).
     */
    void checkDirectoryConsistency() const;

    stats::Counter l1Hits{"l1_hits"};
    stats::Counter llcHits{"llc_hits"};
    stats::Counter remoteForwards{"remote_l1_forwards"};
    stats::Counter memAccesses{"memory_accesses"};
    stats::Counter invalidations{"invalidations_sent"};
    stats::Counter writeTransactions{"getm_transactions"};
    stats::Counter snoopHits{"snoop_matches"};
    /** Directory index probes (owner/sharer/invalidate queries). */
    mutable stats::Counter dirLookups{"directory_lookups"};
    /** Probes that found a tracked line. */
    mutable stats::Counter dirHits{"directory_hits"};

  private:
    struct WatchedRange
    {
        Addr lo;
        Addr hi;
        Snooper *snooper;
    };

    /**
     * One directory entry, materialized: which cores' L1s hold the
     * line, and which core (if any) holds it in M/E.  MESI guarantees
     * at most one M/E holder, so a single owner id suffices.  This is
     * the overflow-pool and consistency-check representation; the hash
     * table itself stores the packed form below.
     */
    struct DirEntry
    {
        std::array<std::uint64_t, dirMaskWords> mask{};
        int owner = -1;

        bool empty() const
        {
            for (const std::uint64_t w : mask) {
                if (w != 0)
                    return false;
            }
            return true;
        }

        unsigned popcount() const
        {
            unsigned n = 0;
            for (const std::uint64_t w : mask)
                n += static_cast<unsigned>(std::popcount(w));
            return n;
        }
    };

    /**
     * Flat open-addressing hash index of directory entries, keyed by
     * line address.  L1 tag churn drops and re-tracks entries on nearly
     * every miss, so the node-per-entry std::unordered_map costs a
     * malloc/free plus dependent cache misses per probe; this table
     * colocates key and entry in one 16-byte slot, so every probe and
     * nearly every entry update touches a single cache line.
     *
     * The 16-byte slot matters more than it looks: the directory for a
     * 128-core machine tracks ~64K lines, and with a mask-array entry
     * per slot the table outgrew the host's L2, which alone made
     * per-event simulation cost scale with core count.  MESI lets the
     * entry pack into one word instead: an M/E owner is always the
     * *sole* sharer, so the overwhelmingly common popcount<=1 entry is
     * {hasSharer, ownerValid, sharer id}, and only lines with two or
     * more sharers in S state spill into a small side pool of full
     * sharer-mask DirEntry records (freelist-recycled, a handful of
     * hot queue-head lines in practice).
     *
     * Deletion is backward-shift (no tombstones), so load factor never
     * degrades.  (Two designs were tried here and lost: a
     * locality-preserving identity-style hash — the address map's
     * dense regions alias mod the table size and linear probing
     * clusters — and no-erase stable slots, where dead slots
     * accumulate faster than probe chains recycle them and the table
     * doubles past its reserved footprint.)
     */
    class DirectoryIndex
    {
      public:
        static constexpr std::size_t npos = ~std::size_t{0};

        /** Size the table for @p entries lines; stays allocation-free
         *  until occupancy crosses half of the slot count. */
        void reserve(std::size_t entries)
        {
            grow(std::bit_ceil(std::max<std::size_t>(64, entries * 2)));
        }

        std::size_t find(Addr line) const
        {
            if (slots_.empty())
                return npos;
            const Addr tag = line | 1;
            std::size_t s = idealSlot(tag);
            while (slots_[s].key != 0) {
                if (slots_[s].key == tag)
                    return s;
                s = (s + 1) & mask_;
            }
            return npos;
        }

        /** Start pulling @p line's home slot toward the host caches;
         *  pairs with a find() a few dozen instructions later (L1
         *  eviction knows the victim before the victim's untrack). */
        void prefetch(Addr line) const
        {
            if (!slots_.empty())
                __builtin_prefetch(&slots_[idealSlot(line | 1)]);
        }

        std::size_t findOrInsert(Addr line)
        {
            if ((used_ + 1) * 2 > slots_.size())
                grow(std::max<std::size_t>(64, slots_.size() * 2));
            const Addr tag = line | 1;
            std::size_t s = idealSlot(tag);
            while (slots_[s].key != 0) {
                if (slots_[s].key == tag)
                    return s;
                s = (s + 1) & mask_;
            }
            slots_[s].key = tag;
            slots_[s].packed = 0;
            ++used_;
            return s;
        }

        /** Add @p core as a sharer of slot @p s; @p exclusive marks it
         *  the M/E owner (callers guarantee it is then the sole
         *  sharer). */
        void trackSharer(std::size_t s, CoreId core, bool exclusive)
        {
            std::uint64_t &p = slots_[s].packed;
            if ((p & kOverflow) == 0) {
                const CoreId id = inlineId(p);
                if ((p & kHasSharer) == 0) {
                    p = kHasSharer | (exclusive ? kOwned : 0) |
                        (std::uint64_t{core} << kIdShift);
                    return;
                }
                if (id == core) {
                    if (exclusive)
                        p |= kOwned;
                    else
                        p &= ~kOwned;
                    return;
                }
                // Second sharer: spill to a full mask entry.  An owner
                // would have been downgraded before another core could
                // join, so the spilled entry is ownerless.
                hp_assert(!exclusive && (p & kOwned) == 0,
                          "exclusive track with another sharer present");
                const std::uint32_t idx = allocPool();
                DirEntry &e = pool_[idx];
                e = DirEntry{};
                e.mask[id / 64] |= std::uint64_t{1} << (id % 64);
                e.mask[core / 64] |= std::uint64_t{1} << (core % 64);
                p = kOverflow | (std::uint64_t{idx} << 1);
                return;
            }
            DirEntry &e = pool_[p >> 1];
            hp_assert(!exclusive,
                      "exclusive track with multiple sharers present");
            e.mask[core / 64] |= std::uint64_t{1} << (core % 64);
        }

        /** Drop @p core as a sharer; erases the slot (invalidating
         *  slot indices) when the entry empties. */
        void untrackSharer(std::size_t s, CoreId core)
        {
            std::uint64_t &p = slots_[s].packed;
            if ((p & kOverflow) == 0) {
                if ((p & kHasSharer) != 0 && inlineId(p) == core)
                    eraseAt(s);
                return;
            }
            const std::uint32_t idx =
                static_cast<std::uint32_t>(p >> 1);
            DirEntry &e = pool_[idx];
            e.mask[core / 64] &= ~(std::uint64_t{1} << (core % 64));
            demoteIfSole(s, idx);
        }

        /** M/E holder of slot @p s, or -1. */
        int ownerOf(std::size_t s) const
        {
            const std::uint64_t p = slots_[s].packed;
            if ((p & kOverflow) == 0)
                return (p & kOwned) != 0 ? static_cast<int>(inlineId(p))
                                         : -1;
            return pool_[p >> 1].owner;
        }

        bool anyOtherSharer(std::size_t s, CoreId except) const
        {
            const std::uint64_t p = slots_[s].packed;
            if ((p & kOverflow) == 0)
                return (p & kHasSharer) != 0 && inlineId(p) != except;
            const DirEntry &e = pool_[p >> 1];
            for (unsigned w = 0; w < dirMaskWords; ++w) {
                std::uint64_t bits = e.mask[w];
                if (except / 64 == w)
                    bits &= ~(std::uint64_t{1} << (except % 64));
                if (bits != 0)
                    return true;
            }
            return false;
        }

        /**
         * Remove every sharer of slot @p s except @p except, calling
         * @p f(core) (ascending core order) for each removed one.
         * Erases the slot when the entry empties; returns the count.
         */
        template <typename F>
        unsigned removeOthers(std::size_t s, CoreId except, F &&f)
        {
            std::uint64_t &p = slots_[s].packed;
            if ((p & kOverflow) == 0) {
                if ((p & kHasSharer) == 0)
                    return 0;
                const CoreId id = inlineId(p);
                if (id == except)
                    return 0;
                f(id);
                eraseAt(s);
                return 1;
            }
            const std::uint32_t idx =
                static_cast<std::uint32_t>(p >> 1);
            DirEntry &e = pool_[idx];
            unsigned n = 0;
            for (unsigned w = 0; w < dirMaskWords; ++w) {
                std::uint64_t bits = e.mask[w];
                while (bits != 0) {
                    const unsigned b =
                        static_cast<unsigned>(std::countr_zero(bits));
                    bits &= bits - 1;
                    const CoreId c = w * 64 + b;
                    if (c == except)
                        continue;
                    f(c);
                    e.mask[w] &= ~(std::uint64_t{1} << b);
                    ++n;
                }
            }
            demoteIfSole(s, idx);
            return n;
        }

        /** Lines currently tracked. */
        std::size_t size() const { return used_; }

        void clear()
        {
            for (Slot &s : slots_)
                s.key = 0;
            used_ = 0;
            pool_.clear();
            poolFree_.clear();
        }

        /** Visit every tracked line with its materialized entry. */
        template <typename F>
        void forEach(F &&f) const
        {
            for (const Slot &s : slots_) {
                if (s.key != 0)
                    f(s.key & ~Addr{1}, materialize(s.packed));
            }
        }

      private:
        /** 16-byte table slot; packed is either an inline popcount<=1
         *  entry or an overflow-pool index (kOverflow set). */
        struct Slot
        {
            Addr key = 0; ///< line|1 when occupied, 0 when empty
            std::uint64_t packed = 0;
        };

        static constexpr std::uint64_t kOverflow = 1;  ///< bit 0
        static constexpr std::uint64_t kHasSharer = 2; ///< bit 1
        static constexpr std::uint64_t kOwned = 4;     ///< bit 2
        static constexpr unsigned kIdShift = 3; ///< sharer id bits 3..
        /** Inline sharer-id field width: holds maxDirectoryCores-1. */
        static constexpr std::uint64_t kIdMask = 0x7FF;
        static_assert(maxDirectoryCores - 1 <= kIdMask,
                      "inline sharer id field too narrow");

        static CoreId inlineId(std::uint64_t p)
        {
            return static_cast<CoreId>((p >> kIdShift) & kIdMask);
        }

        DirEntry materialize(std::uint64_t p) const
        {
            if ((p & kOverflow) != 0)
                return pool_[p >> 1];
            DirEntry e;
            if ((p & kHasSharer) != 0) {
                const CoreId id = inlineId(p);
                e.mask[id / 64] |= std::uint64_t{1} << (id % 64);
                if ((p & kOwned) != 0)
                    e.owner = static_cast<int>(id);
            }
            return e;
        }

        std::uint32_t allocPool()
        {
            if (!poolFree_.empty()) {
                const std::uint32_t idx = poolFree_.back();
                poolFree_.pop_back();
                return idx;
            }
            pool_.emplace_back();
            return static_cast<std::uint32_t>(pool_.size() - 1);
        }

        /** Collapse slot @p s's overflow entry back inline once it is
         *  down to one (or zero) sharers, recycling pool record
         *  @p idx; an emptied entry erases the slot. */
        void demoteIfSole(std::size_t s, std::uint32_t idx)
        {
            const DirEntry &e = pool_[idx];
            const unsigned pop = e.popcount();
            if (pop > 1)
                return;
            std::uint64_t repl = 0;
            if (pop == 1) {
                for (unsigned w = 0; w < dirMaskWords; ++w) {
                    if (e.mask[w] != 0) {
                        const std::uint64_t sole =
                            w * 64 + static_cast<unsigned>(
                                         std::countr_zero(e.mask[w]));
                        // Spilled entries are ownerless (see
                        // trackSharer); dirTrack re-grants ownership
                        // after an upgrade.
                        repl = kHasSharer | (sole << kIdShift);
                    }
                }
            }
            poolFree_.push_back(idx);
            slots_[s].packed = repl;
            if (repl == 0)
                eraseAt(s); // no sharers left: drop the slot
        }

        void eraseAt(std::size_t i)
        {
            --used_;
            std::size_t j = i;
            for (;;) {
                j = (j + 1) & mask_;
                if (slots_[j].key == 0)
                    break;
                const std::size_t k = idealSlot(slots_[j].key);
                // Move j's entry into the hole unless its home slot
                // lies cyclically inside (i, j] — then the hole does
                // not break j's probe chain.
                const bool move =
                    j > i ? (k <= i || k > j) : (k <= i && k > j);
                if (move) {
                    slots_[i] = slots_[j];
                    i = j;
                }
            }
            slots_[i].key = 0;
        }

        std::size_t idealSlot(Addr tag) const
        {
            // Fibonacci hashing: the multiply mixes the high bits best,
            // so shift the product down rather than masking its low
            // bits.
            return static_cast<std::size_t>(tag * 0x9e3779b97f4a7c15ull >>
                                            shift_) &
                   mask_;
        }

        void grow(std::size_t n)
        {
            const std::vector<Slot, HugePageAllocator<Slot>> old =
                std::move(slots_);
            slots_.assign(n, Slot{});
            mask_ = n - 1;
            shift_ = 64 - static_cast<unsigned>(std::bit_width(n) - 1);
            used_ = 0;
            for (const Slot &s : old) {
                if (s.key == 0)
                    continue;
                slots_[findOrInsert(s.key & ~Addr{1})].packed = s.packed;
            }
        }

        // Huge-page-backed: 2 MB of slots at 128 cores, probed at
        // hashed (random) indices on nearly every event.
        std::vector<Slot, HugePageAllocator<Slot>> slots_;
        std::size_t mask_ = 0;
        unsigned shift_ = 63;
        std::size_t used_ = 0;
        /** Full-mask records for lines with >= 2 sharers. */
        std::vector<DirEntry> pool_;
        std::vector<std::uint32_t> poolFree_;
    };

    /** Find the core (other than @p except) holding the line in M/E. */
    int findOwner(Addr line, CoreId except) const;

    /** True if any core other than @p except holds the line. */
    bool anyOtherSharer(Addr line, CoreId except) const;

    /** Invalidate the line in every L1 except @p except's. */
    unsigned invalidateOthers(Addr line, CoreId except);

    /** Invalidate the line in every L1 (inclusive back-invalidation). */
    unsigned invalidateAll(Addr line);

    /** Insert into LLC, back-invalidating L1 copies of any LLC victim. */
    void insertLlc(Addr line);

    /** Insert into a core's L1, spilling any dirty victim into the LLC. */
    void insertL1(CoreId core, Addr line, LineState st);

    /** Change a resident L1 line's state, keeping the directory true. */
    void setL1State(CoreId core, Addr line, LineState st);

    /** Directory bookkeeping for an L1 gaining/changing a line. */
    void dirTrack(Addr line, CoreId core, LineState st);

    /** Directory bookkeeping for an L1 dropping a line. */
    void dirUntrack(Addr line, CoreId core);

    /** Fire snoopers for a write transaction on @p line. */
    void notifySnoopers(Addr line, CoreId writer);

    /** Deliver one matching watched range (trace + interposer + call). */
    void deliverSnoop(const WatchedRange &w, Addr line, CoreId writer);

    /** Rebuild the sorted range index after (un)registration. */
    void rebuildWatchIndex();

    MemLatencies lat_;
    std::vector<CacheArray> l1s_;
    CacheArray llc_;
    std::vector<WatchedRange> watches_;
    /** watches_ sorted by lo; valid only while ranges are disjoint. */
    std::vector<WatchedRange> sortedWatches_;
    bool watchesOverlap_ = false;
    DirectoryIndex dir_;
    SnoopInterposer interposer_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace mem
} // namespace hyperplane

#endif // HYPERPLANE_MEM_MEMORY_SYSTEM_HH
