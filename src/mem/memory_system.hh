/**
 * @file
 * Directory-based MESI memory-system timing model.
 *
 * MemorySystem owns a private L1 per core and one shared, inclusive LLC
 * (Table I: 32 KB 4-way L1s, 1 MB/core 16-way LLC, 64 B lines).  Every
 * access returns the latency it would incur and keeps all tag/state arrays
 * coherent, so queue-head ping-pong between spinning cores and the
 * capacity pressure of task data emerge naturally from the model.
 *
 * Write transactions that grant exclusive ownership (GetM / upgrade) in a
 * watched address range are reported to registered Snooper objects.  This
 * is the hook HyperPlane's monitoring set uses: it behaves as part of the
 * directory and sees all relevant coherence traffic without being a sharer
 * (Section IV-A of the paper).
 */

#ifndef HYPERPLANE_MEM_MEMORY_SYSTEM_HH
#define HYPERPLANE_MEM_MEMORY_SYSTEM_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "sim/types.hh"
#include "stats/sampler.hh"
#include "trace/trace.hh"

namespace hyperplane {
namespace mem {

/** Where an access was ultimately serviced. */
enum class AccessLevel : std::uint8_t
{
    L1,
    LLC,
    RemoteL1, ///< cache-to-cache forward from another core's L1
    Memory,
};

/** Outcome of one memory access. */
struct AccessResult
{
    Tick latency = 0;
    AccessLevel servedBy = AccessLevel::L1;
    /** True if the miss was caused by coherence (line was elsewhere). */
    bool coherence = false;
};

/** Latency parameters, in core cycles. */
struct MemLatencies
{
    Tick l1Hit = 4;
    Tick llcHit = 40;
    Tick memAccess = 200;
    Tick remoteL1Forward = 60;
    Tick atomicExtra = 15;
};

/**
 * Observer of coherence write transactions in a watched address range.
 * Implemented by HyperPlane's monitoring set.
 */
class Snooper
{
  public:
    virtual ~Snooper() = default;

    /**
     * A GetM/upgrade transaction was observed.
     *
     * @param line   Line-aligned address being written.
     * @param writer Core performing the write, or deviceWriter for DMA.
     */
    virtual void onWriteTransaction(Addr line, CoreId writer) = 0;
};

/** Pseudo core-id used for device (DMA) writes. */
constexpr CoreId deviceWriter = ~CoreId{0};

/**
 * The full cache hierarchy + directory for one simulated CMP.
 */
class MemorySystem
{
  public:
    /**
     * @param numCores Number of cores with private L1s.
     * @param l1Geom   Geometry of each private L1.
     * @param llcGeom  Geometry of the shared LLC.
     * @param lat      Latency parameters.
     */
    MemorySystem(unsigned numCores, const CacheGeometry &l1Geom,
                 const CacheGeometry &llcGeom,
                 const MemLatencies &lat = MemLatencies{});

    /** Load by @p core from @p addr. */
    AccessResult read(CoreId core, Addr addr);

    /** Store by @p core to @p addr (obtains M state). */
    AccessResult write(CoreId core, Addr addr);

    /** Atomic read-modify-write (e.g. doorbell counter update). */
    AccessResult atomicRmw(CoreId core, Addr addr);

    /**
     * Write performed by an I/O device / producer outside the modelled
     * cores (DMA / DDIO).  Invalidates all cached copies, installs the
     * line in the LLC, and fires snoopers.  No latency is charged to any
     * simulated core.
     */
    void deviceWrite(Addr addr);

    /**
     * Register a snooper over [lo, hi).  Multiple ranges may be
     * registered; overlaps fire every matching snooper.
     */
    void watchRange(Addr lo, Addr hi, Snooper *snooper);

    /** Drop a previously registered snooper (all its ranges). */
    void unwatch(Snooper *snooper);

    /**
     * Interposer on the snoop-delivery path (fault injection).  Called
     * once per (matching range, write transaction) before the snooper
     * would be notified; returning true means the interposer took
     * ownership of delivery (dropped it, delayed it, or delivered it
     * itself) and the memory system must not call the snooper.
     */
    using SnoopInterposer =
        std::function<bool(Addr line, CoreId writer, Snooper *target)>;

    /** Install (or clear, with an empty function) the interposer. */
    void setSnoopInterposer(SnoopInterposer interposer)
    {
        interposer_ = std::move(interposer);
    }

    /**
     * Attach a tracer: every snoop delivery in a watched range stamps a
     * snoop_deliver instant (null detaches).
     */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    unsigned numCores() const { return static_cast<unsigned>(l1s_.size()); }
    CacheArray &l1(CoreId core);
    const CacheArray &l1(CoreId core) const;
    CacheArray &llc() { return llc_; }
    const MemLatencies &latencies() const { return lat_; }

    /** Invalidate all caches (between experiment phases). */
    void flushAll();

    stats::Counter l1Hits{"l1_hits"};
    stats::Counter llcHits{"llc_hits"};
    stats::Counter remoteForwards{"remote_l1_forwards"};
    stats::Counter memAccesses{"memory_accesses"};
    stats::Counter invalidations{"invalidations_sent"};
    stats::Counter writeTransactions{"getm_transactions"};
    stats::Counter snoopHits{"snoop_matches"};

  private:
    struct WatchedRange
    {
        Addr lo;
        Addr hi;
        Snooper *snooper;
    };

    /** Find the core (other than @p except) holding the line in M/E. */
    int findOwner(Addr line, CoreId except) const;

    /** True if any core other than @p except holds the line. */
    bool anyOtherSharer(Addr line, CoreId except) const;

    /** Invalidate the line in every L1 except @p except's. */
    unsigned invalidateOthers(Addr line, CoreId except);

    /** Insert into LLC, back-invalidating L1 copies of any LLC victim. */
    void insertLlc(Addr line);

    /** Insert into a core's L1, spilling any dirty victim into the LLC. */
    void insertL1(CoreId core, Addr line, LineState st);

    /** Fire snoopers for a write transaction on @p line. */
    void notifySnoopers(Addr line, CoreId writer);

    MemLatencies lat_;
    std::vector<CacheArray> l1s_;
    CacheArray llc_;
    std::vector<WatchedRange> watches_;
    SnoopInterposer interposer_;
    trace::Tracer *tracer_ = nullptr;
};

} // namespace mem
} // namespace hyperplane

#endif // HYPERPLANE_MEM_MEMORY_SYSTEM_HH
