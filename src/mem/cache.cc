#include "mem/cache.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace mem {

CacheArray::CacheArray(const CacheGeometry &geom)
    : geom_(geom), ways_(geom.sets() * geom.ways)
{
    hp_assert(geom.sizeBytes % (geom.ways * geom.lineBytes) == 0,
              "cache size must be a multiple of ways * line size");
    hp_assert((geom.sets() & (geom.sets() - 1)) == 0,
              "number of sets must be a power of two");
}

std::uint64_t
CacheArray::setIndex(Addr addr) const
{
    return (addr / geom_.lineBytes) & (geom_.sets() - 1);
}

CacheArray::Way *
CacheArray::find(Addr addr)
{
    const Addr tag = lineBase(addr);
    Way *base = &ways_[setIndex(addr) * geom_.ways];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (base[w].state() != LineState::Invalid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const CacheArray::Way *
CacheArray::find(Addr addr) const
{
    return const_cast<CacheArray *>(this)->find(addr);
}

LineState
CacheArray::state(Addr addr) const
{
    const Way *w = find(addr);
    return w ? w->state() : LineState::Invalid;
}

void
CacheArray::touch(Addr addr)
{
    WayRef w = lookup(addr);
    hp_assert(static_cast<bool>(w), "touch on non-resident line");
    w.touch();
}

void
CacheArray::setState(Addr addr, LineState st)
{
    WayRef w = lookup(addr);
    hp_assert(static_cast<bool>(w), "setState on non-resident line");
    hp_assert(st != LineState::Invalid, "use invalidate() to remove lines");
    w.setState(st);
}

std::optional<std::pair<Addr, LineState>>
CacheArray::insert(Addr addr, LineState st)
{
    hp_assert(st != LineState::Invalid, "cannot insert an Invalid line");
    if (Way *w = find(addr)) {
        // Already resident: treat as a state update + LRU touch.
        w->stamp(st, ++useClock_);
        return std::nullopt;
    }
    Way *base = &ways_[setIndex(addr) * geom_.ways];
    Way *victim = nullptr;
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (base[w].state() == LineState::Invalid) {
            victim = &base[w];
            break;
        }
        if (victim == nullptr || base[w].lastUse() < victim->lastUse())
            victim = &base[w];
    }
    std::optional<std::pair<Addr, LineState>> evicted;
    if (victim->state() != LineState::Invalid) {
        evicted = std::make_pair(victim->tag, victim->state());
        evictions.inc();
        --resident_;
    }
    victim->tag = lineBase(addr);
    victim->stamp(st, ++useClock_);
    ++resident_;
    return evicted;
}

LineState
CacheArray::invalidate(Addr addr)
{
    Way *w = find(addr);
    if (w == nullptr)
        return LineState::Invalid;
    const LineState prior = w->state();
    w->setState(LineState::Invalid);
    --resident_;
    return prior;
}

void
CacheArray::flush()
{
    for (auto &w : ways_)
        w.meta = 0;
    resident_ = 0;
}

} // namespace mem
} // namespace hyperplane
