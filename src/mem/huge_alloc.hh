/**
 * @file
 * Huge-page-backed allocator for large, randomly accessed host tables.
 *
 * The simulator's big flat arrays (directory hash slots, cache tag
 * arrays) are probed at random addresses on nearly every simulated
 * event.  Once the combined footprint exceeds the host's second-level
 * TLB reach (a few MB through 4 KiB pages), every probe risks a page
 * walk on top of the data-cache miss, and that cost grows with the
 * simulated core count even though the per-event *operation* count is
 * flat.  Backing allocations of 2 MiB or more with transparent huge
 * pages shrinks a multi-MB table to a handful of TLB entries.
 *
 * Allocation sizes below one huge page, and non-Linux hosts, fall back
 * to plain malloc.  This is a host-side optimisation only: it cannot
 * change any simulated number.
 */

#ifndef HYPERPLANE_MEM_HUGE_ALLOC_HH
#define HYPERPLANE_MEM_HUGE_ALLOC_HH

#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace hyperplane {
namespace mem {

/** Minimal stateless allocator; huge-page-aligned above 2 MiB. */
template <typename T>
struct HugePageAllocator
{
    using value_type = T;

    static constexpr std::size_t hugeBytes = std::size_t{2} << 20;

    HugePageAllocator() = default;

    template <typename U>
    HugePageAllocator(const HugePageAllocator<U> &)
    {
    }

    T *allocate(std::size_t n)
    {
        const std::size_t bytes = n * sizeof(T);
        void *p = nullptr;
        if (bytes >= hugeBytes) {
            const std::size_t rounded =
                (bytes + hugeBytes - 1) & ~(hugeBytes - 1);
            p = std::aligned_alloc(hugeBytes, rounded);
#if defined(__linux__) && defined(MADV_HUGEPAGE)
            if (p != nullptr)
                (void)::madvise(p, rounded, MADV_HUGEPAGE);
#endif
        }
        if (p == nullptr)
            p = std::malloc(bytes);
        if (p == nullptr)
            throw std::bad_alloc{};
        return static_cast<T *>(p);
    }

    void deallocate(T *p, std::size_t) { std::free(p); }
};

template <typename T, typename U>
bool
operator==(const HugePageAllocator<T> &, const HugePageAllocator<U> &)
{
    return true;
}

template <typename T, typename U>
bool
operator!=(const HugePageAllocator<T> &, const HugePageAllocator<U> &)
{
    return false;
}

} // namespace mem
} // namespace hyperplane

#endif // HYPERPLANE_MEM_HUGE_ALLOC_HH
