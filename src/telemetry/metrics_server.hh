/**
 * @file
 * Minimal metrics endpoint: a single-threaded HTTP/1.0 listener plus
 * a UDP one-shot responder on the same port number.
 *
 * The HTTP side answers GET requests (curl, Prometheus scrapers, the
 * hyperplane_top example) with handler-provided bodies.  The UDP side
 * exists for socketless-constrained CI: any datagram sent to the port
 * is treated as a path ("/metrics" if empty) and answered with the
 * same body chunked into <= 1200-byte datagrams followed by an empty
 * terminator, so a test can scrape metrics without a TCP stack.
 *
 * One background thread polls both sockets with a 100 ms timeout;
 * requests are served strictly serially, which is plenty for a scrape
 * endpoint and keeps the implementation trivial to reason about.
 */

#ifndef HYPERPLANE_TELEMETRY_METRICS_SERVER_HH
#define HYPERPLANE_TELEMETRY_METRICS_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace hyperplane {
namespace telemetry {

class MetricsServer
{
  public:
    /**
     * Maps a request path to a response body; sets @p contentType.
     * An empty return means 404.
     */
    using Handler = std::function<std::string(const std::string &path,
                                              std::string &contentType)>;

    MetricsServer() = default;
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind @p ip:@p port (TCP and UDP; port 0 picks an ephemeral port
     * used for both) and start the serving thread.
     * @return false if either socket could not be bound.
     */
    bool start(const std::string &ip, std::uint16_t port,
               Handler handler);

    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Bound port (valid after a successful start()). */
    std::uint16_t port() const { return port_; }

    /** HTTP + UDP requests answered. */
    std::uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** Max payload bytes per UDP response datagram. */
    static constexpr std::size_t kUdpChunk = 1200;

  private:
    void loop();
    void serveTcp();
    void serveUdp();

    Handler handler_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> served_{0};
    int tcpFd_ = -1;
    int udpFd_ = -1;
    std::uint16_t port_ = 0;
};

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_METRICS_SERVER_HH
