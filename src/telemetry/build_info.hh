/**
 * @file
 * Build provenance exposed on the metrics endpoint: git SHA, build
 * type, compiler, and whether trace stamp sites are compiled in.  The
 * values are baked in at compile time (the SHA via a CMake configure
 * step), so a scrape of a running server identifies exactly what
 * binary is serving.
 */

#ifndef HYPERPLANE_TELEMETRY_BUILD_INFO_HH
#define HYPERPLANE_TELEMETRY_BUILD_INFO_HH

namespace hyperplane {
namespace telemetry {

struct BuildInfo
{
    const char *gitSha;         ///< short commit hash or "unknown"
    const char *buildType;      ///< CMAKE_BUILD_TYPE or "unspecified"
    const char *compiler;       ///< compiler version string
    bool traceCompiledIn;       ///< HYPERPLANE_TRACE != 0
    const char *cpuFeatures;    ///< probed ISA set, e.g. "sse2,sse4.2,avx2"
    const char *simdChecksum;   ///< dispatched checksum variant name
    const char *simdCrc32c;     ///< dispatched crc32c variant name
    const char *simdHeaderCheck; ///< dispatched header-check variant name
    bool forcedScalar;          ///< HYPERPLANE_FORCE_SCALAR pinned the table
};

const BuildInfo &buildInfo();

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_BUILD_INFO_HH
