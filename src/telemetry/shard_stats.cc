#include "telemetry/shard_stats.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace hyperplane {
namespace telemetry {

const char *
toString(HotCounter c)
{
    switch (c) {
      case HotCounter::RxBatches:
        return "rx_batches";
      case HotCounter::RxPackets:
        return "rx_packets";
      case HotCounter::ParseErrors:
        return "parse_errors";
      case HotCounter::Served:
        return "served";
      case HotCounter::TxPackets:
        return "tx_packets";
    }
    return "?";
}

const char *
toString(ServerStage s)
{
    switch (s) {
      case ServerStage::RxAdmit:
        return "rx_admit";
      case ServerStage::AdmitDoorbell:
        return "admit_doorbell";
      case ServerStage::QwaitService:
        return "qwait_service";
      case ServerStage::ServiceTx:
        return "service_tx";
      case ServerStage::EndToEnd:
        return "e2e";
    }
    return "?";
}

CounterShards::CounterShards(unsigned shards)
{
    hp_assert(shards > 0, "CounterShards needs at least one shard");
    for (unsigned i = 0; i < shards; ++i)
        blocks_.emplace_back();
}

std::uint64_t
CounterShards::total(HotCounter c) const
{
    std::uint64_t sum = 0;
    for (const auto &b : blocks_)
        sum += b.cells[static_cast<unsigned>(c)].read();
    return sum;
}

HistogramShard::HistogramShard(double base, double growth,
                               unsigned bins)
    : base_(base), growth_(growth), logGrowth_(std::log(growth)),
      bins_(bins)
{
    hp_assert(base > 0.0, "HistogramShard base must be positive");
    hp_assert(growth > 1.0, "HistogramShard growth must exceed 1");
    hp_assert(bins > 0, "HistogramShard needs at least one bin");
}

unsigned
HistogramShard::binFor(double v) const
{
    if (v <= base_)
        return 0;
    auto idx = static_cast<long>(std::log(v / base_) / logGrowth_);
    if (idx < 0)
        idx = 0;
    if (idx >= static_cast<long>(bins_.size()))
        idx = static_cast<long>(bins_.size()) - 1;
    return static_cast<unsigned>(idx);
}

void
HistogramShard::record(double v)
{
    // Single writer: relaxed load+store updates, no RMW.  Readers may
    // observe the fields mid-update; snapshot() tolerates that.
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0) {
        min_.store(v, std::memory_order_relaxed);
        max_.store(v, std::memory_order_relaxed);
    } else {
        if (v < min_.load(std::memory_order_relaxed))
            min_.store(v, std::memory_order_relaxed);
        if (v > max_.load(std::memory_order_relaxed))
            max_.store(v, std::memory_order_relaxed);
    }
    sum_.store(sum_.load(std::memory_order_relaxed) + v,
               std::memory_order_relaxed);
    auto &bin = bins_[binFor(v)];
    bin.store(bin.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
    count_.store(n + 1, std::memory_order_relaxed);
}

stats::LogHistogram
HistogramShard::snapshot() const
{
    std::vector<std::uint64_t> bins(bins_.size());
    for (std::size_t i = 0; i < bins_.size(); ++i)
        bins[i] = bins_[i].load(std::memory_order_relaxed);
    // fromParts recomputes the count from the bins, so a record racing
    // this snapshot costs at most one sample of blur, never an
    // inconsistent histogram.
    return stats::LogHistogram::fromParts(
        base_, growth_, std::move(bins),
        sum_.load(std::memory_order_relaxed),
        min_.load(std::memory_order_relaxed),
        max_.load(std::memory_order_relaxed));
}

StageLatencyShards::StageLatencyShards(unsigned shards,
                                       unsigned tenants, double baseNs,
                                       double growth, unsigned bins)
    : shards_(shards), tenants_(std::max(1u, tenants)),
      baseNs_(baseNs), growth_(growth), bins_(bins)
{
    hp_assert(shards > 0, "StageLatencyShards needs >= 1 shard");
    const std::size_t cells = static_cast<std::size_t>(shards_) *
                              kNumServerStages * tenants_;
    for (std::size_t i = 0; i < cells; ++i)
        hists_.emplace_back(baseNs_, growth_, bins_);
}

stats::LogHistogram
StageLatencyShards::aggregate(ServerStage st, unsigned tenant) const
{
    stats::LogHistogram out(baseNs_, growth_, bins_);
    for (unsigned s = 0; s < shards_; ++s)
        out.merge(hists_[index(s, st, tenant)].snapshot());
    return out;
}

stats::LogHistogram
StageLatencyShards::aggregate(ServerStage st) const
{
    stats::LogHistogram out(baseNs_, growth_, bins_);
    for (unsigned s = 0; s < shards_; ++s) {
        for (unsigned t = 0; t < tenants_; ++t)
            out.merge(hists_[index(s, st, t)].snapshot());
    }
    return out;
}

std::uint64_t
StageLatencyShards::samples(ServerStage st) const
{
    std::uint64_t sum = 0;
    for (unsigned s = 0; s < shards_; ++s) {
        for (unsigned t = 0; t < tenants_; ++t)
            sum += hists_[index(s, st, t)].count();
    }
    return sum;
}

} // namespace telemetry
} // namespace hyperplane
