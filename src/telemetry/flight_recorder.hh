/**
 * @file
 * Always-on sampled flight recorder.
 *
 * Per-shard lock-free rings of packed trace events, cheap enough to
 * leave on in production: sampling is a deterministic modulus on the
 * request sequence number (seq % sampleEvery == 0), so a sampled
 * request receives *all* of its stage stamps and exports as a complete
 * span chain, while 1-in-N sampling keeps the stamp rate low.
 *
 * Each shard (RX thread, worker, TX thread, watchdog) is the single
 * writer of its own ring; stamp() is a handful of relaxed atomic
 * stores guarded by a per-slot seqlock.  snapshot() may run from any
 * thread at any time — including from a signal-triggered dump while
 * the server is under load — and simply discards slots it catches
 * mid-write.
 */

#ifndef HYPERPLANE_TELEMETRY_FLIGHT_RECORDER_HH
#define HYPERPLANE_TELEMETRY_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "trace/trace.hh"

namespace hyperplane {
namespace telemetry {

class FlightRecorder
{
  public:
    /**
     * @param shards     number of single-writer rings
     * @param capacity   events per ring (rounded up to >= 2)
     * @param sampleEvery trace requests with seq % sampleEvery == 0;
     *                    0 disables stamping entirely
     */
    FlightRecorder(unsigned shards, std::size_t capacity,
                   std::uint64_t sampleEvery);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool enabled() const { return every_ != 0; }
    std::uint64_t sampleEvery() const { return every_; }
    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }
    std::size_t capacity() const { return cap_; }

    /** True when request @p seq should be traced end to end. */
    bool sampled(std::uint64_t seq) const
    {
        // Power-of-two periods (the default) take the AND path — this
        // runs a few times per request on the data path, and a modulus
        // by a runtime divisor is a hardware divide.
        if (every_ == 0)
            return false;
        return pow2_ ? (seq & (every_ - 1)) == 0 : seq % every_ == 0;
    }

    /** Stamp an event from shard @p shard's owning thread. */
    void stamp(unsigned shard, trace::Stage stage, trace::Phase phase,
               std::uint32_t track, Tick ts,
               QueueId qid = invalidQueueId, std::uint64_t arg = 0);

    /** Total events ever stamped (all shards). */
    std::uint64_t recorded() const;

    /**
     * Merged copy of every ring, sorted by timestamp.  Slots caught
     * mid-write are dropped (at most one per shard per call).
     */
    std::vector<trace::TraceEvent> snapshot() const;

  private:
    struct Slot
    {
        // Seqlock: odd while the writer is inside, bumped to the next
        // even value when the slot is stable.
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> ts{0};
        std::atomic<std::uint64_t> arg{0};
        std::atomic<std::uint64_t> qidTrack{0}; ///< qid<<32 | track
        std::atomic<std::uint64_t> stagePhase{0};
    };

    struct alignas(64) Shard
    {
        std::unique_ptr<Slot[]> slots;
        std::atomic<std::uint64_t> next{0}; ///< monotonic write index
    };

    std::uint64_t every_;
    bool pow2_; ///< every_ is a power of two: sample with a mask
    std::size_t cap_;
    std::deque<Shard> shards_;
};

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_FLIGHT_RECORDER_HH
