/**
 * @file
 * Sharded hot-path statistics: single-writer counters and per-stage
 * latency histograms.
 *
 * The server's hottest counters used to be contended std::atomic
 * fetch_adds touched by every RX shard, worker, and TX thread.  Here
 * each stage thread owns a cache-line-aligned block of cells and bumps
 * them with a plain load+store (memory_order_relaxed, no RMW): with
 * exactly one writer per cell there is nothing to win a race against,
 * the store costs the same as an ordinary increment, and TSan stays
 * happy because the cell is still a std::atomic.  Readers aggregate
 * across shards on demand — a scrape-time cost, not a hot-path one.
 *
 * The same single-writer discipline extends to latency histograms:
 * each shard owns geometric bins mirroring stats::LogHistogram, and
 * aggregation lifts per-shard snapshots into LogHistogram values via
 * fromParts() and merge(), so quantiles come from the full population.
 */

#ifndef HYPERPLANE_TELEMETRY_SHARD_STATS_HH
#define HYPERPLANE_TELEMETRY_SHARD_STATS_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "stats/histogram.hh"

namespace hyperplane {
namespace telemetry {

/**
 * One 64-bit counter with a single designated writer.  add() performs
 * a relaxed load+store rather than a fetch_add: the cell never has two
 * writers, so the non-atomic update is race-free while the atomic type
 * guarantees readers never see a torn value.
 */
class WriterCell
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.store(v_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }

    std::uint64_t read() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Hot server counters that moved out of the global atomic block. */
enum class HotCounter : unsigned
{
    RxBatches,   ///< recvmmsg batches with >= 1 datagram
    RxPackets,   ///< datagrams received
    ParseErrors, ///< datagrams rejected by the wire codec
    Served,      ///< requests completed by a worker
    TxPackets,   ///< responses sent
};

constexpr unsigned kNumHotCounters = 5;

const char *toString(HotCounter c);

/**
 * Per-shard blocks of hot counters.  A "shard" is one stage thread
 * (RX shard, worker, or TX thread); each block is cache-line aligned
 * so two threads never share a line.
 */
class CounterShards
{
  public:
    explicit CounterShards(unsigned shards);

    unsigned numShards() const
    {
        return static_cast<unsigned>(blocks_.size());
    }

    /** Bump a counter from its owning shard thread. */
    void add(unsigned shard, HotCounter c, std::uint64_t n = 1)
    {
        blocks_[shard].cells[static_cast<unsigned>(c)].add(n);
    }

    /** Sum of one counter across all shards (any thread). */
    std::uint64_t total(HotCounter c) const;

    /** One shard's value of one counter (any thread). */
    std::uint64_t shardValue(unsigned shard, HotCounter c) const
    {
        return blocks_[shard].cells[static_cast<unsigned>(c)].read();
    }

  private:
    struct alignas(64) Block
    {
        WriterCell cells[kNumHotCounters];
    };

    std::deque<Block> blocks_;
};

/** Server pipeline stages with live latency histograms. */
enum class ServerStage : unsigned
{
    RxAdmit,      ///< datagram received -> admission verdict
    AdmitDoorbell,///< admission verdict -> doorbell ring
    QwaitService, ///< admission -> worker dequeues (queue + QWAIT)
    ServiceTx,    ///< worker done -> response on the wire
    EndToEnd,     ///< datagram received -> response on the wire
};

constexpr unsigned kNumServerStages = 5;

const char *toString(ServerStage s);

/**
 * Single-writer geometric histogram shard.  record() is owner-thread
 * only; snapshot() may run from any thread and lifts the bins into a
 * stats::LogHistogram.  A concurrent snapshot can catch a record
 * mid-flight (bin bumped, sum not yet) — the result is still a valid
 * histogram, merely one sample blurry, which is fine for operational
 * quantiles.
 */
class HistogramShard
{
  public:
    HistogramShard(double base, double growth, unsigned bins);

    HistogramShard(const HistogramShard &) = delete;
    HistogramShard &operator=(const HistogramShard &) = delete;

    /** Record a sample (owning thread only). */
    void record(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Consistent-enough copy as a LogHistogram (any thread). */
    stats::LogHistogram snapshot() const;

  private:
    unsigned binFor(double v) const;

    double base_;
    double growth_;
    double logGrowth_;
    std::vector<std::atomic<std::uint64_t>> bins_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * The full (shard x stage x tenant) histogram matrix.  Hot-path
 * writes index straight into the owning shard's histogram; aggregation
 * merges across shards (and optionally tenants) into a LogHistogram.
 */
class StageLatencyShards
{
  public:
    StageLatencyShards(unsigned shards, unsigned tenants,
                       double baseNs = 200.0, double growth = 1.05,
                       unsigned bins = 512);

    unsigned numShards() const { return shards_; }
    unsigned numTenants() const { return tenants_; }

    /** Record @p ns from shard @p shard's owning thread. */
    void record(unsigned shard, ServerStage st, unsigned tenant,
                double ns)
    {
        hists_[index(shard, st, tenant)].record(ns);
    }

    /** Merge one (stage, tenant) cell across all shards. */
    stats::LogHistogram aggregate(ServerStage st,
                                  unsigned tenant) const;

    /** Merge one stage across all shards and tenants. */
    stats::LogHistogram aggregate(ServerStage st) const;

    /** Total samples recorded for a stage (all shards, all tenants). */
    std::uint64_t samples(ServerStage st) const;

  private:
    std::size_t index(unsigned shard, ServerStage st,
                      unsigned tenant) const
    {
        return (static_cast<std::size_t>(shard) * kNumServerStages +
                static_cast<unsigned>(st)) *
                   tenants_ +
               tenant;
    }

    unsigned shards_;
    unsigned tenants_;
    double baseNs_;
    double growth_;
    unsigned bins_;
    std::deque<HistogramShard> hists_;
};

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_SHARD_STATS_HH
