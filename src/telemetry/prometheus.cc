#include "telemetry/prometheus.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/build_info.hh"

namespace hyperplane {
namespace telemetry {

std::string
sanitizeMetricName(std::string_view path)
{
    std::string out = "hyperplane_";
    out.reserve(out.size() + path.size());
    for (char c : path) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::string
escapeLabelValue(std::string_view v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out.push_back(c);
        }
    }
    return out;
}

namespace {

std::string
sampleValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    char buf[64];
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.12g", v);
    }
    return buf;
}

} // namespace

std::string
prometheusText(const stats::Registry &reg, double uptimeSec)
{
    std::ostringstream os;
    const BuildInfo &bi = buildInfo();
    os << "# HELP hyperplane_build_info Build provenance of the "
          "serving binary.\n"
          "# TYPE hyperplane_build_info gauge\n"
          "hyperplane_build_info{git_sha=\""
       << escapeLabelValue(bi.gitSha) << "\",build_type=\""
       << escapeLabelValue(bi.buildType) << "\",compiler=\""
       << escapeLabelValue(bi.compiler) << "\",trace_compiled_in=\""
       << (bi.traceCompiledIn ? "1" : "0") << "\",cpu_features=\""
       << escapeLabelValue(bi.cpuFeatures) << "\",simd_checksum=\""
       << escapeLabelValue(bi.simdChecksum) << "\",simd_crc32c=\""
       << escapeLabelValue(bi.simdCrc32c) << "\",simd_header_check=\""
       << escapeLabelValue(bi.simdHeaderCheck) << "\",force_scalar=\""
       << (bi.forcedScalar ? "1" : "0") << "\"} 1\n";
    os << "# HELP hyperplane_uptime_seconds Seconds since the server "
          "started.\n"
          "# TYPE hyperplane_uptime_seconds gauge\n"
          "hyperplane_uptime_seconds "
       << sampleValue(uptimeSec) << '\n';
    reg.forEach([&os](const std::string &path, double v) {
        os << sanitizeMetricName(path) << ' ' << sampleValue(v)
           << '\n';
    });
    return os.str();
}

} // namespace telemetry
} // namespace hyperplane
