#include "telemetry/build_info.hh"

#include "trace/trace.hh"

// CMake passes these as compile definitions on the hp_telemetry
// target; the fallbacks keep non-CMake builds (and IDE parses)
// working.
#ifndef HP_GIT_SHA
#define HP_GIT_SHA "unknown"
#endif
#ifndef HP_BUILD_TYPE
#define HP_BUILD_TYPE "unspecified"
#endif

namespace hyperplane {
namespace telemetry {

const BuildInfo &
buildInfo()
{
    static const BuildInfo info{
        HP_GIT_SHA,
        HP_BUILD_TYPE,
#if defined(__VERSION__)
        __VERSION__,
#else
        "unknown",
#endif
        trace::kCompiledIn,
    };
    return info;
}

} // namespace telemetry
} // namespace hyperplane
