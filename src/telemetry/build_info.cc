#include "telemetry/build_info.hh"

#include <string>

#include "net/simd/dispatch.hh"
#include "trace/trace.hh"

// CMake passes these as compile definitions on the hp_telemetry
// target; the fallbacks keep non-CMake builds (and IDE parses)
// working.
#ifndef HP_GIT_SHA
#define HP_GIT_SHA "unknown"
#endif
#ifndef HP_BUILD_TYPE
#define HP_BUILD_TYPE "unspecified"
#endif

namespace hyperplane {
namespace telemetry {

namespace {

// Probed at first use; the string outlives every BuildInfo consumer.
const char *
cpuFeatureList()
{
    static const std::string list = [] {
        const auto &f = net::simd::cpuFeatures();
        std::string s;
        if (f.sse2)
            s += "sse2,";
        if (f.sse42)
            s += "sse4.2,";
        if (f.avx2)
            s += "avx2,";
        if (s.empty())
            return std::string("none");
        s.pop_back();
        return s;
    }();
    return list.c_str();
}

} // namespace

const BuildInfo &
buildInfo()
{
    const auto &k = net::simd::kernels();
    static const BuildInfo info{
        HP_GIT_SHA,
        HP_BUILD_TYPE,
#if defined(__VERSION__)
        __VERSION__,
#else
        "unknown",
#endif
        trace::kCompiledIn,
        cpuFeatureList(),
        k.checksumName,
        k.crc32cName,
        k.headerCheckName,
        k.forcedScalar,
    };
    return info;
}

} // namespace telemetry
} // namespace hyperplane
