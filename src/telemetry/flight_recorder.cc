#include "telemetry/flight_recorder.hh"

#include <algorithm>

namespace hyperplane {
namespace telemetry {

FlightRecorder::FlightRecorder(unsigned shards, std::size_t capacity,
                               std::uint64_t sampleEvery)
    : every_(sampleEvery),
      pow2_(sampleEvery != 0 && (sampleEvery & (sampleEvery - 1)) == 0),
      cap_(std::max<std::size_t>(2, capacity))
{
    for (unsigned i = 0; i < std::max(1u, shards); ++i) {
        shards_.emplace_back();
        shards_.back().slots = std::make_unique<Slot[]>(cap_);
    }
}

void
FlightRecorder::stamp(unsigned shard, trace::Stage stage,
                      trace::Phase phase, std::uint32_t track, Tick ts,
                      QueueId qid, std::uint64_t arg)
{
    if (every_ == 0)
        return;
    Shard &sh = shards_[shard];
    const std::uint64_t idx = sh.next.load(std::memory_order_relaxed);
    Slot &s = sh.slots[idx % cap_];

    // Single writer per shard: open the seqlock (odd), fill, close
    // (even).  The release on close publishes the payload to readers
    // that observe the even value with an acquire load.
    const std::uint64_t open =
        s.seq.load(std::memory_order_relaxed) + 1;
    s.seq.store(open, std::memory_order_release);
    s.ts.store(ts, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.qidTrack.store((static_cast<std::uint64_t>(qid) << 32) | track,
                     std::memory_order_relaxed);
    s.stagePhase.store((static_cast<std::uint64_t>(stage) << 8) |
                           static_cast<std::uint64_t>(phase),
                       std::memory_order_relaxed);
    s.seq.store(open + 1, std::memory_order_release);
    sh.next.store(idx + 1, std::memory_order_release);
}

std::uint64_t
FlightRecorder::recorded() const
{
    std::uint64_t sum = 0;
    for (const auto &sh : shards_)
        sum += sh.next.load(std::memory_order_relaxed);
    return sum;
}

std::vector<trace::TraceEvent>
FlightRecorder::snapshot() const
{
    std::vector<trace::TraceEvent> out;
    for (const auto &sh : shards_) {
        const std::uint64_t next =
            sh.next.load(std::memory_order_acquire);
        const std::uint64_t first = next > cap_ ? next - cap_ : 0;
        for (std::uint64_t i = first; i < next; ++i) {
            const Slot &s = sh.slots[i % cap_];
            const std::uint64_t seq1 =
                s.seq.load(std::memory_order_acquire);
            if (seq1 & 1)
                continue; // writer inside
            trace::TraceEvent e;
            e.ts = s.ts.load(std::memory_order_relaxed);
            e.arg = s.arg.load(std::memory_order_relaxed);
            const std::uint64_t qt =
                s.qidTrack.load(std::memory_order_relaxed);
            e.qid = static_cast<QueueId>(qt >> 32);
            e.track = static_cast<std::uint32_t>(qt);
            const std::uint64_t sp =
                s.stagePhase.load(std::memory_order_relaxed);
            e.stage = static_cast<trace::Stage>(sp >> 8);
            e.phase = static_cast<trace::Phase>(sp & 0xFF);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (s.seq.load(std::memory_order_relaxed) != seq1)
                continue; // torn: writer lapped us mid-copy
            out.push_back(e);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const trace::TraceEvent &a,
                        const trace::TraceEvent &b) {
                         return a.ts < b.ts;
                     });
    return out;
}

} // namespace telemetry
} // namespace hyperplane
