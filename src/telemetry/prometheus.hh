/**
 * @file
 * Prometheus text-exposition rendering of a stats::Registry.
 *
 * Dotted registry paths ("server.tenant.bulk.shed") become sanitized
 * metric names ("hyperplane_server_tenant_bulk_shed"); the page leads
 * with a build-info gauge (git SHA, build type, compiler as labels)
 * and an uptime gauge so a scrape identifies the binary and its age.
 */

#ifndef HYPERPLANE_TELEMETRY_PROMETHEUS_HH
#define HYPERPLANE_TELEMETRY_PROMETHEUS_HH

#include <string>
#include <string_view>

#include "stats/registry.hh"

namespace hyperplane {
namespace telemetry {

/**
 * Map a dotted registry path to a legal Prometheus metric name:
 * every character outside [a-zA-Z0-9_] becomes '_', and the result is
 * prefixed with "hyperplane_" (plus a leading '_' guard if the path
 * starts with a digit after the prefix — which the prefix prevents).
 */
std::string sanitizeMetricName(std::string_view path);

/** Escape a label value per the exposition format (\\, \", \n). */
std::string escapeLabelValue(std::string_view v);

/**
 * Render the full exposition page: build info, uptime, then one
 * untyped sample per registry entry in path order.
 */
std::string prometheusText(const stats::Registry &reg,
                           double uptimeSec);

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_PROMETHEUS_HH
