/**
 * @file
 * Structured operational event log.
 *
 * A small mutex-guarded ring of typed events for the things an
 * operator greps logs for: watchdog demotions and promotions, storm
 * mutes, tenant shed-threshold crossings, ring-drop recoveries, and
 * flight-recorder dumps.  Writers are cold paths (the watchdog sweep,
 * admission threshold crossings), so a mutex is fine; the ring keeps
 * the most recent events and counts what it evicted.
 *
 * The log is served on the metrics endpoint as /events.json and its
 * entries are overlaid onto flight-recorder dumps as instant events on
 * the watchdog track, so a Perfetto view of an incident shows the
 * operational timeline next to the request spans.
 */

#ifndef HYPERPLANE_TELEMETRY_EVENT_LOG_HH
#define HYPERPLANE_TELEMETRY_EVENT_LOG_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hyperplane {
namespace telemetry {

enum class OpEventKind : std::uint8_t
{
    Startup,          ///< server started
    StormDemotion,    ///< watchdog muted + demoted a doorbell storm
    Demotion,         ///< queue demoted to software polling
    Promotion,        ///< queue promoted back to hardware monitoring
    ShedThreshold,    ///< tenant crossed its shed watermark
    ShedSpike,        ///< shed rate spiked past the configured bound
    RingDropRecovery, ///< watchdog recovered a lost doorbell
    FlightDump,       ///< flight recorder dumped to disk
};

const char *toString(OpEventKind k);

struct OpEventRecord
{
    std::uint64_t ns = 0;   ///< server monotonic clock
    OpEventKind kind = OpEventKind::Startup;
    std::uint32_t queue = ~0u; ///< queue id, or ~0u if n/a
    std::uint64_t value = 0;   ///< kind-specific magnitude
    std::string detail;        ///< free-form context ("tenant=bulk")
};

class EventLog
{
  public:
    explicit EventLog(std::size_t capacity = 256);

    void post(OpEventKind kind, std::uint64_t ns,
              std::uint32_t queue = ~0u, std::uint64_t value = 0,
              std::string detail = {});

    /** Buffered events, oldest first. */
    std::vector<OpEventRecord> snapshot() const;

    /** Events ever posted (buffered + evicted). */
    std::uint64_t posted() const;

    /** Events evicted by ring overflow. */
    std::uint64_t evicted() const;

    /** {"posted":N,"evicted":N,"events":[{...},...]} */
    std::string json() const;

  private:
    mutable std::mutex m_;
    std::vector<OpEventRecord> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t posted_ = 0;
    std::uint64_t evicted_ = 0;
};

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_EVENT_LOG_HH
