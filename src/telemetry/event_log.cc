#include "telemetry/event_log.hh"

#include <algorithm>
#include <sstream>

#include "stats/json.hh"

namespace hyperplane {
namespace telemetry {

const char *
toString(OpEventKind k)
{
    switch (k) {
      case OpEventKind::Startup:
        return "startup";
      case OpEventKind::StormDemotion:
        return "storm_demotion";
      case OpEventKind::Demotion:
        return "demotion";
      case OpEventKind::Promotion:
        return "promotion";
      case OpEventKind::ShedThreshold:
        return "shed_threshold";
      case OpEventKind::ShedSpike:
        return "shed_spike";
      case OpEventKind::RingDropRecovery:
        return "ring_drop_recovery";
      case OpEventKind::FlightDump:
        return "flight_dump";
    }
    return "?";
}

EventLog::EventLog(std::size_t capacity)
    : buf_(std::max<std::size_t>(1, capacity))
{
}

void
EventLog::post(OpEventKind kind, std::uint64_t ns, std::uint32_t queue,
               std::uint64_t value, std::string detail)
{
    std::lock_guard<std::mutex> lock(m_);
    ++posted_;
    OpEventRecord rec{ns, kind, queue, value, std::move(detail)};
    if (count_ < buf_.size()) {
        buf_[(head_ + count_) % buf_.size()] = std::move(rec);
        ++count_;
        return;
    }
    buf_[head_] = std::move(rec);
    head_ = (head_ + 1) % buf_.size();
    ++evicted_;
}

std::vector<OpEventRecord>
EventLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::vector<OpEventRecord> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i)
        out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
}

std::uint64_t
EventLog::posted() const
{
    std::lock_guard<std::mutex> lock(m_);
    return posted_;
}

std::uint64_t
EventLog::evicted() const
{
    std::lock_guard<std::mutex> lock(m_);
    return evicted_;
}

std::string
EventLog::json() const
{
    const auto events = snapshot();
    std::ostringstream os;
    os << "{\"posted\":" << posted() << ",\"evicted\":" << evicted()
       << ",\"events\":[";
    bool first = true;
    for (const auto &e : events) {
        if (!first)
            os << ',';
        first = false;
        os << "\n{\"ns\":" << e.ns << ",\"kind\":"
           << stats::jsonString(toString(e.kind));
        if (e.queue != ~0u)
            os << ",\"queue\":" << e.queue;
        os << ",\"value\":" << e.value
           << ",\"detail\":" << stats::jsonString(e.detail) << '}';
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace telemetry
} // namespace hyperplane
