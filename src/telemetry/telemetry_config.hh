/**
 * @file
 * Configuration for the live telemetry plane.
 *
 * Telemetry is *on by default* and sized so that leaving it enabled in
 * production costs under 5% of peak throughput (bench/
 * ext_telemetry_overhead gates this).  The knobs below trade fidelity
 * for memory: per-stage histograms are per-shard and per-tenant, and
 * the flight recorder keeps a fixed ring per shard.
 */

#ifndef HYPERPLANE_TELEMETRY_TELEMETRY_CONFIG_HH
#define HYPERPLANE_TELEMETRY_TELEMETRY_CONFIG_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace hyperplane {
namespace telemetry {

struct TelemetryConfig
{
    /**
     * Master switch for the sharded stage histograms and the flight
     * recorder.  Off turns every hot-path recording site into a single
     * predictable branch.
     */
    bool enabled = true;

    /**
     * Flight-recorder sampling period: request sequence numbers with
     * seq % sampleEvery == 0 are traced through every stage, so a
     * sampled request always yields a complete span chain.  0 disables
     * the recorder while keeping counters and histograms live.
     */
    std::uint64_t sampleEvery = 64;

    /** Flight-recorder ring capacity, events per shard. */
    std::size_t recorderCapacity = 4096;

    /**
     * Stage-histogram decimation: requests whose sequence number is a
     * multiple of this (rounded down to a power of two, so the test is
     * one AND + branch) contribute per-stage latency samples; the rest
     * skip the clock reads and histogram updates entirely.  1 records
     * every request.  Decimation is deterministic on the sequence
     * number, so a sampled request is sampled at *every* stage and the
     * per-stage quantiles stay mutually comparable.  At the rates
     * where the cost matters (100k+ req/s) the default still feeds
     * each stage thousands of samples per second.
     */
    std::uint64_t stageSampleEvery = 32;

    /** Structured operational event ring capacity. */
    std::size_t eventLogCapacity = 256;

    /**
     * TCP+UDP port for the metrics endpoint; < 0 disables the
     * listener (default: sandboxed test environments may lack
     * sockets), 0 binds an ephemeral port (see
     * UdpServer::metricsPort()).
     */
    int metricsPort = -1;

    /** Bind address for the metrics endpoint. */
    std::string metricsIp = "127.0.0.1";

    /**
     * Path prefix for automatic flight-recorder dumps; dump n writes
     * "<prefix>_<n>.json" (Perfetto trace-event JSON).
     */
    std::string flightDumpPrefix = "hyperplane_flight";

    /**
     * Sheds per watchdog sweep that count as a spike and trigger an
     * automatic flight dump (0 disables the trigger).
     */
    std::uint64_t shedSpikePerSweep = 0;

    /** Dump the flight recorder when the watchdog demotes a queue. */
    bool dumpOnDemotion = true;

    /** Minimum spacing between automatic flight dumps. */
    double minDumpIntervalSec = 1.0;

    /** Per-stage latency histogram geometry (nanoseconds). */
    double histBaseNs = 200.0;
    double histGrowth = 1.05;
    unsigned histBins = 512;
};

} // namespace telemetry
} // namespace hyperplane

#endif // HYPERPLANE_TELEMETRY_TELEMETRY_CONFIG_HH
