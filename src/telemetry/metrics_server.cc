#include "telemetry/metrics_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace hyperplane {
namespace telemetry {

namespace {

int
bindSocket(int type, const std::string &ip, std::uint16_t port)
{
    int fd = ::socket(AF_INET, type, 0);
    if (fd < 0)
        return -1;
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1 ||
        ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

std::uint16_t
boundPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        return 0;
    }
    return ntohs(addr.sin_port);
}

bool
writeAll(int fd, const char *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

MetricsServer::~MetricsServer()
{
    stop();
}

bool
MetricsServer::start(const std::string &ip, std::uint16_t port,
                     Handler handler)
{
    if (running())
        return false;
    tcpFd_ = bindSocket(SOCK_STREAM, ip, port);
    if (tcpFd_ < 0) {
        hp_warn("MetricsServer: cannot bind tcp %s:%u: %s", ip.c_str(),
                port, std::strerror(errno));
        return false;
    }
    if (::listen(tcpFd_, 8) != 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
        return false;
    }
    port_ = port != 0 ? port : boundPort(tcpFd_);
    udpFd_ = bindSocket(SOCK_DGRAM, ip, port_);
    if (udpFd_ < 0) {
        hp_warn("MetricsServer: cannot bind udp %s:%u: %s", ip.c_str(),
                port_, std::strerror(errno));
        ::close(tcpFd_);
        tcpFd_ = -1;
        return false;
    }
    handler_ = std::move(handler);
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
MetricsServer::stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    stopping_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    if (udpFd_ >= 0)
        ::close(udpFd_);
    tcpFd_ = udpFd_ = -1;
    running_.store(false, std::memory_order_release);
}

void
MetricsServer::loop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0] = {tcpFd_, POLLIN, 0};
        fds[1] = {udpFd_, POLLIN, 0};
        const int n = ::poll(fds, 2, 100);
        if (n <= 0)
            continue;
        if (fds[0].revents & POLLIN)
            serveTcp();
        if (fds[1].revents & POLLIN)
            serveUdp();
    }
}

void
MetricsServer::serveTcp()
{
    int fd = ::accept(tcpFd_, nullptr, nullptr);
    if (fd < 0)
        return;
    // Bound the time a stalled client can hold the serving thread.
    timeval tv{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    std::string req;
    char buf[2048];
    while (req.find("\r\n") == std::string::npos &&
           req.size() < 8192) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }

    std::string path = "/";
    std::istringstream line(req.substr(0, req.find("\r\n")));
    std::string method;
    line >> method >> path;

    std::string status = "200 OK";
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    if (method != "GET") {
        status = "405 Method Not Allowed";
        body = "method not allowed\n";
    } else {
        body = handler_(path, contentType);
        if (body.empty()) {
            status = "404 Not Found";
            body = "not found\n";
        }
    }

    std::ostringstream hdr;
    hdr << "HTTP/1.0 " << status << "\r\nContent-Type: " << contentType
        << "\r\nContent-Length: " << body.size()
        << "\r\nConnection: close\r\n\r\n";
    const std::string h = hdr.str();
    if (writeAll(fd, h.data(), h.size()))
        writeAll(fd, body.data(), body.size());
    ::close(fd);
    served_.fetch_add(1, std::memory_order_relaxed);
}

void
MetricsServer::serveUdp()
{
    char buf[512];
    sockaddr_in peer{};
    socklen_t peerLen = sizeof(peer);
    const ssize_t n =
        ::recvfrom(udpFd_, buf, sizeof(buf), 0,
                   reinterpret_cast<sockaddr *>(&peer), &peerLen);
    if (n < 0)
        return;
    std::string path(buf, static_cast<std::size_t>(n));
    // Trim whitespace/newlines so `echo /metrics | nc -u` works.
    while (!path.empty() &&
           (path.back() == '\n' || path.back() == '\r' ||
            path.back() == ' ')) {
        path.pop_back();
    }
    if (path.empty())
        path = "/metrics";

    std::string contentType;
    std::string body = handler_(path, contentType);
    if (body.empty())
        body = "not found\n";
    for (std::size_t off = 0; off < body.size(); off += kUdpChunk) {
        const std::size_t len =
            std::min(kUdpChunk, body.size() - off);
        ::sendto(udpFd_, body.data() + off, len, 0,
                 reinterpret_cast<sockaddr *>(&peer), peerLen);
    }
    // Empty terminator datagram marks end-of-body.
    ::sendto(udpFd_, "", 0, 0, reinterpret_cast<sockaddr *>(&peer),
             peerLen);
    served_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace telemetry
} // namespace hyperplane
