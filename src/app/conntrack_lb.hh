/**
 * @file
 * Connection-tracking NAT/load-balancer: per-connection state (5-tuple
 * -> backend, expected seqno, idle timestamp) sharded by the crc32c
 * flow hash so every connection's entry is owned by exactly one worker
 * core — the core-local sharding argument of arXiv 1703.05442.  Idle
 * entries expire both amortized in the data path and from the server's
 * watchdog sweep.
 *
 * Backend selection hashes the 5-tuple, so a connection that expires
 * and re-opens lands on the same backend (stable under churn).  Data
 * packets for unknown connections re-create the entry (UDP loss of the
 * Open is tolerated and counted as a miss, not a failure); sequence
 * gaps are counted as out-of-order, also non-fatal.
 */

#ifndef HYPERPLANE_APP_CONNTRACK_LB_HH
#define HYPERPLANE_APP_CONNTRACK_LB_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "app/app.hh"

namespace hyperplane {
namespace app {

/** The sharded connection-tracking load balancer. */
class ConntrackLbApp : public StatefulHandler
{
  public:
    explicit ConntrackLbApp(const AppConfig &cfg);

    AppKind kind() const override { return AppKind::ConntrackLb; }
    AppResult handle(unsigned shard, const AppRequest &req,
                     std::uint8_t *out, std::size_t outCap) override;
    void sweepIdle(std::uint64_t nowNs) override;
    void registerStats(stats::Registry &reg,
                       const std::string &prefix) override;

    /** Aggregated counters (sums across shards, under the locks). */
    std::uint64_t activeConnections() const;
    std::uint64_t opens() const;
    std::uint64_t closes() const;
    std::uint64_t expiries() const;
    std::uint64_t misses() const;
    std::uint64_t outOfOrder() const;

  private:
    struct Entry
    {
        std::uint32_t backend = 0;
        std::uint32_t expectedSeq = 0;
        std::uint64_t lastSeenNs = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::uint64_t, Entry> conns;
        std::uint64_t opens = 0;
        std::uint64_t closes = 0;
        std::uint64_t expiries = 0;
        std::uint64_t misses = 0;
        std::uint64_t outOfOrder = 0;
        std::uint64_t overflows = 0;
        std::uint64_t decodeErrors = 0;
        std::uint64_t lastSweepNs = 0;
    };

    static std::uint64_t connKey(const CtRequest &m);
    std::uint32_t pickBackend(const CtRequest &m) const;
    void sweepShard(Shard &s, std::uint64_t nowNs);

    AppConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace app
} // namespace hyperplane

#endif // HYPERPLANE_APP_CONNTRACK_LB_HH
