/**
 * @file
 * Passive RTT telemetry via QUIC-style spin-bit tracking (RFC 9000
 * §17.4; measurement methodology per arXiv 2112.02875).  Each flow
 * carries a one-bit "spin" signal that the client flips once per RTT;
 * the observer timestamps every edge (0->1 or 1->0 transition) and the
 * gap between consecutive edges is one end-to-end RTT sample — zero
 * extra packets, zero payload inspection beyond one bit.
 *
 * Per-flow state is a few words (last spin value, last edge time);
 * samples feed a shared per-shard log-scale histogram exported through
 * the registry, so the telemetry plane serves live RTT quantiles.
 */

#ifndef HYPERPLANE_APP_SPIN_RTT_HH
#define HYPERPLANE_APP_SPIN_RTT_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "app/app.hh"
#include "stats/histogram.hh"

namespace hyperplane {
namespace app {

/** The sharded spin-bit RTT observer. */
class SpinRttApp : public StatefulHandler
{
  public:
    explicit SpinRttApp(const AppConfig &cfg);

    AppKind kind() const override { return AppKind::SpinRtt; }
    AppResult handle(unsigned shard, const AppRequest &req,
                     std::uint8_t *out, std::size_t outCap) override;
    void sweepIdle(std::uint64_t nowNs) override;
    void registerStats(stats::Registry &reg,
                       const std::string &prefix) override;

    /** Aggregated counters (sums across shards, under the locks). */
    std::uint64_t trackedFlows() const;
    std::uint64_t edges() const;
    std::uint64_t samples() const;

    /** Merged RTT histogram across shards (cold path). */
    stats::LogHistogram rttHistogram() const;

  private:
    struct Flow
    {
        std::uint8_t lastSpin = 0;
        bool seen = false;            ///< first packet initializes
        std::uint64_t lastEdgeNs = 0; ///< 0 until the first edge
        std::uint32_t edges = 0;
        std::uint64_t lastRttNs = 0;
        std::uint64_t lastSeenNs = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::unordered_map<std::uint32_t, Flow> flows;
        stats::LogHistogram rttNs;
        std::uint64_t edges = 0;
        std::uint64_t samples = 0;
        std::uint64_t expiries = 0;
        std::uint64_t decodeErrors = 0;
        std::uint64_t lastSweepNs = 0;

        Shard(double base, double growth, unsigned bins)
            : rttNs(base, growth, bins)
        {
        }
    };

    void sweepShard(Shard &s, std::uint64_t nowNs);

    AppConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace app
} // namespace hyperplane

#endif // HYPERPLANE_APP_SPIN_RTT_HH
