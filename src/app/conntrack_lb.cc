#include "app/conntrack_lb.hh"

#include "net/checksum.hh"
#include "net/headers.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace app {

ConntrackLbApp::ConntrackLbApp(const AppConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.numShards > 0, "need at least one shard");
    hp_assert(cfg_.numBackends > 0, "need at least one backend");
    shards_.reserve(cfg_.numShards);
    for (unsigned s = 0; s < cfg_.numShards; ++s)
        shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t
ConntrackLbApp::connKey(const CtRequest &m)
{
    // srcIp dominates the high half; ports+dstIp fold into the low
    // half.  Collisions across distinct tuples are possible but
    // harmless (they just share an entry's backend/seq tracking).
    return (static_cast<std::uint64_t>(m.srcIp) << 32) ^
           (static_cast<std::uint64_t>(m.srcPort) << 48) ^
           (static_cast<std::uint64_t>(m.dstPort) << 16) ^ m.dstIp;
}

std::uint32_t
ConntrackLbApp::pickBackend(const CtRequest &m) const
{
    // Hash of the full tuple: a connection that expires and re-opens
    // deterministically returns to the same backend.
    std::uint8_t key[12];
    net::putBe32(key, m.srcIp);
    net::putBe32(key + 4, m.dstIp);
    net::putBe16(key + 8, m.srcPort);
    net::putBe16(key + 10, m.dstPort);
    return net::crc32c(key, sizeof(key)) % cfg_.numBackends;
}

AppResult
ConntrackLbApp::handle(unsigned shard, const AppRequest &req,
                       std::uint8_t *out, std::size_t outCap)
{
    Shard &s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);

    const auto m = decodeCtRequest(req.payload, req.payloadLen);
    if (!m) {
        ++s.decodeErrors;
        return AppResult{};
    }

    AppResult res;
    res.opCost = 1; // the table lookup
    const std::uint64_t key = connKey(*m);

    CtResponse resp;
    auto it = s.conns.find(key);
    switch (m->verb) {
      case CtVerb::Open: {
        if (it == s.conns.end()) {
            if (s.conns.size() >= cfg_.maxEntriesPerShard) {
                ++s.overflows;
                resp.backend = pickBackend(*m);
                resp.expectedSeq = m->seqNo + 1;
                resp.state = 0;
                break;
            }
            it = s.conns.emplace(key, Entry{}).first;
            it->second.backend = pickBackend(*m);
            ++s.opens;
            res.opCost += 2; // hash + insert
        }
        it->second.expectedSeq = m->seqNo + 1;
        it->second.lastSeenNs = req.nowNs;
        resp.backend = it->second.backend;
        resp.expectedSeq = it->second.expectedSeq;
        resp.state = 1;
        break;
      }
      case CtVerb::Data: {
        if (it == s.conns.end()) {
            // The Open was lost (UDP): recreate rather than drop.
            ++s.misses;
            it = s.conns.emplace(key, Entry{}).first;
            it->second.backend = pickBackend(*m);
            it->second.expectedSeq = m->seqNo;
            ++s.opens;
            res.opCost += 2;
        }
        if (m->seqNo != it->second.expectedSeq)
            ++s.outOfOrder;
        it->second.expectedSeq = m->seqNo + 1;
        it->second.lastSeenNs = req.nowNs;
        resp.backend = it->second.backend;
        resp.expectedSeq = it->second.expectedSeq;
        resp.state = 1;
        break;
      }
      case CtVerb::Close: {
        if (it == s.conns.end()) {
            ++s.misses;
            resp.backend = pickBackend(*m);
            resp.expectedSeq = m->seqNo + 1;
            resp.state = 0;
        } else {
            resp.backend = it->second.backend;
            resp.expectedSeq = m->seqNo + 1;
            resp.state = 0;
            s.conns.erase(it);
            ++s.closes;
            ++res.opCost;
        }
        break;
      }
    }

    // Amortized shard-local expiry keeps the table bounded even if the
    // watchdog never runs (the simulator has no watchdog).
    if (req.nowNs > s.lastSweepNs &&
        req.nowNs - s.lastSweepNs > cfg_.idleTimeoutNs) {
        sweepShard(s, req.nowNs);
    }

    res.payloadLen =
        static_cast<std::uint32_t>(encode(resp, out, outCap));
    res.ok = res.payloadLen != 0;
    return res;
}

void
ConntrackLbApp::sweepShard(Shard &s, std::uint64_t nowNs)
{
    s.lastSweepNs = nowNs;
    for (auto it = s.conns.begin(); it != s.conns.end();) {
        if (nowNs - it->second.lastSeenNs > cfg_.idleTimeoutNs) {
            it = s.conns.erase(it);
            ++s.expiries;
        } else {
            ++it;
        }
    }
}

void
ConntrackLbApp::sweepIdle(std::uint64_t nowNs)
{
    for (auto &sp : shards_) {
        Shard &s = *sp;
        std::lock_guard<std::mutex> lock(s.mu);
        sweepShard(s, nowNs);
    }
}

std::uint64_t
ConntrackLbApp::activeConnections() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->conns.size();
    }
    return n;
}

std::uint64_t
ConntrackLbApp::opens() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->opens;
    }
    return n;
}

std::uint64_t
ConntrackLbApp::closes() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->closes;
    }
    return n;
}

std::uint64_t
ConntrackLbApp::expiries() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->expiries;
    }
    return n;
}

std::uint64_t
ConntrackLbApp::misses() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->misses;
    }
    return n;
}

std::uint64_t
ConntrackLbApp::outOfOrder() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->outOfOrder;
    }
    return n;
}

void
ConntrackLbApp::registerStats(stats::Registry &reg,
                              const std::string &prefix)
{
    reg.addScalar(prefix + ".active", [this] {
        return static_cast<double>(activeConnections());
    });
    reg.addScalar(prefix + ".opens", [this] {
        return static_cast<double>(opens());
    });
    reg.addScalar(prefix + ".closes", [this] {
        return static_cast<double>(closes());
    });
    reg.addScalar(prefix + ".expiries", [this] {
        return static_cast<double>(expiries());
    });
    reg.addScalar(prefix + ".misses", [this] {
        return static_cast<double>(misses());
    });
    reg.addScalar(prefix + ".out_of_order", [this] {
        return static_cast<double>(outOfOrder());
    });
    reg.addScalar(prefix + ".overflows", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->overflows;
        }
        return static_cast<double>(n);
    });
    reg.addScalar(prefix + ".decode_errors", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->decodeErrors;
        }
        return static_cast<double>(n);
    });
}

} // namespace app
} // namespace hyperplane
