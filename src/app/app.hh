/**
 * @file
 * Stateful data-plane application suite: shared handler interface,
 * app-level payload codecs, and deterministic request synthesis.
 *
 * Three production-shaped applications run behind one interface:
 *
 *  - heavy-hitter detection: a count-min sketch + per-flow promotion
 *    table flags large aggregates in the data path ("Seek and Push",
 *    arXiv 1805.05993);
 *  - connection-tracking NAT/LB: per-flow 5-tuple state (backend,
 *    expected seqno, idle timestamp) with idle-entry expiry;
 *  - passive RTT telemetry: QUIC-style spin-bit edge detection feeding
 *    per-flow RTT histograms (arXiv 2112.02875).
 *
 * Every handler is *sharded*: state lives in numShards independent
 * partitions and a request's shard is its queue id, which the server
 * derives from the crc32c flow hash — so each flow's state is owned by
 * exactly one queue, and (in the simulator) by exactly one cluster.
 * That is the core-local state-consistency argument of "Relaxing
 * state-access constraints in stateful programmable data planes"
 * (arXiv 1703.05442): flow-sharded state needs no cross-core
 * coordination.  A per-shard mutex still guards each partition because
 * the emulated server's doorbells may over-advertise, letting two
 * workers drain one queue concurrently; in the simulator the lock is
 * uncontended by construction (queues are cluster-local).
 *
 * The same handler classes are registered in BOTH execution
 * environments: the UDP server's worker pool dispatches wire opcodes
 * 3..5 to them (src/server/server.cc), and the simulator wraps them as
 * workloads::Kind::{HeavyHitter,ConntrackLb,SpinRtt}
 * (src/workloads/stateful_app.hh), so sim and server run the same
 * state logic on the same synthesized request streams.
 *
 * App payload formats (inside the wire payload, all big-endian; decode
 * fails closed on any length or field-range mismatch):
 *
 *   heavy-hitter request  (8B):  key u32, weight u32
 *   heavy-hitter response (16B): estimate u64, hot u8, zero[7]
 *   conntrack request     (20B): verb u8 (0 open / 1 data / 2 close),
 *                                zero[3], srcIp u32, dstIp u32,
 *                                srcPort u16, dstPort u16, seqNo u32
 *   conntrack response    (12B): backend u32, expectedSeq u32,
 *                                state u8 (0 none / 1 established),
 *                                zero[3]
 *   spin-rtt request      (4B):  spin u8 (0/1), zero[3]
 *   spin-rtt response     (16B): spin u8 (reflected), zero[3],
 *                                edges u32, lastRttNs u64
 */

#ifndef HYPERPLANE_APP_APP_HH
#define HYPERPLANE_APP_APP_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "stats/registry.hh"

namespace hyperplane {
namespace app {

/** The three stateful applications, in wire-opcode order. */
enum class AppKind : std::uint8_t
{
    HeavyHitter = 0,
    ConntrackLb = 1,
    SpinRtt = 2,
};

constexpr unsigned numAppKinds = 3;

/** Human name ("heavy-hitter"). */
const char *toString(AppKind k);

/** Registry/metric name ("heavy_hitter"). */
const char *statName(AppKind k);

/** Transport-independent request context. */
struct AppRequest
{
    std::uint32_t flowId = 0;
    std::uint64_t seq = 0;
    /** Monotonic time (server: ns since start; sim: ns of arrival). */
    std::uint64_t nowNs = 0;
    const std::uint8_t *payload = nullptr;
    std::uint32_t payloadLen = 0;
};

/** Outcome of one handled request. */
struct AppResult
{
    /** False when the payload failed the app's own parser. */
    bool ok = false;
    /** Response bytes written into the caller's out buffer. */
    std::uint32_t payloadLen = 0;
    /**
     * State operations performed (sketch probes, table lookups,
     * inserts, expiries) — the simulator's timing model charges extra
     * cycles per operation.
     */
    std::uint32_t opCost = 0;
};

/**
 * One stateful application, sharded by queue id.
 *
 * handle() may write the response into a buffer that ALIASES
 * req.payload (the server's zero-copy frames build the response over
 * the request in place), so implementations decode the request fully
 * before writing a byte of output.
 */
class StatefulHandler
{
  public:
    virtual ~StatefulHandler() = default;

    virtual AppKind kind() const = 0;
    const char *name() const { return statName(kind()); }

    /**
     * Handle one request whose flow is owned by @p shard.  Thread-safe
     * per shard (internal per-shard mutex); concurrent calls on
     * distinct shards never contend.
     *
     * @return ok=false (and no output) when the payload fails to
     *         decode — the caller maps that to wire::statusBadPayload.
     */
    virtual AppResult handle(unsigned shard, const AppRequest &req,
                             std::uint8_t *out, std::size_t outCap) = 0;

    /**
     * Expire idle state across all shards — driven off the server's
     * watchdog sweep.  Handlers also expire amortized from handle()
     * (shard-locally, so the simulator stays deterministic without an
     * external sweeper).
     */
    virtual void sweepIdle(std::uint64_t nowNs) = 0;

    /** Register this app's counters under "<prefix>" (cold path;
     *  getters take the shard locks). */
    virtual void registerStats(stats::Registry &reg,
                               const std::string &prefix) = 0;
};

/** Tuning knobs for all three handlers (per-shard sizes). */
struct AppConfig
{
    /** State partitions; the server sets this to its queue count. */
    unsigned numShards = 16;

    // --- heavy hitter ------------------------------------------------
    /** Count-min sketch counters per row, per shard (power of two). */
    unsigned sketchWidth = 2048;
    /** Sketch rows (independent hash functions). */
    unsigned sketchDepth = 4;
    /** Estimated aggregate weight that promotes a key to the exact
     *  per-flow table. */
    std::uint64_t promoteThreshold = 4096;
    /** Promotion-table capacity per shard (smallest-count eviction). */
    std::size_t maxPromoted = 1024;

    // --- conntrack LB ------------------------------------------------
    /** Backend pool the load balancer spreads connections across. */
    unsigned numBackends = 64;
    /** Connection idle timeout before expiry. */
    std::uint64_t idleTimeoutNs = 2'000'000'000ULL;
    /** Connection-table capacity per shard. */
    std::size_t maxEntriesPerShard = 1u << 20;

    // --- spin-bit RTT ------------------------------------------------
    /** RTT histogram geometry (nanosecond samples). */
    double rttHistBaseNs = 1000.0;
    double rttHistGrowth = 1.05;
    unsigned rttHistBins = 512;
    /** Flow tracking idle timeout. */
    std::uint64_t flowTimeoutNs = 2'000'000'000ULL;

    std::uint64_t seed = 0x5eed5eedULL;
};

/** Factory: one sharded handler instance. */
std::unique_ptr<StatefulHandler> makeHandler(AppKind kind,
                                             const AppConfig &cfg);

// ---------------------------------------------------------------------
// App payload codecs (big-endian, fixed size, fail-closed decode).
// ---------------------------------------------------------------------

struct HhRequest
{
    static constexpr std::size_t wireSize = 8;
    std::uint32_t key = 0;
    std::uint32_t weight = 0;
};

struct HhResponse
{
    static constexpr std::size_t wireSize = 16;
    std::uint64_t estimate = 0;
    std::uint8_t hot = 0;
};

/** Conntrack request verbs (a plausible connection lifecycle). */
enum class CtVerb : std::uint8_t
{
    Open = 0,  ///< SYN-like: establish, pick a backend
    Data = 1,  ///< mid-connection segment, seqno-checked
    Close = 2, ///< FIN-like: tear the entry down
};

struct CtRequest
{
    static constexpr std::size_t wireSize = 20;
    CtVerb verb = CtVerb::Open;
    std::uint32_t srcIp = 0;
    std::uint32_t dstIp = 0;
    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint32_t seqNo = 0;
};

struct CtResponse
{
    static constexpr std::size_t wireSize = 12;
    std::uint32_t backend = 0;
    std::uint32_t expectedSeq = 0;
    std::uint8_t state = 0; ///< 0 none, 1 established
};

struct SpinRequest
{
    static constexpr std::size_t wireSize = 4;
    std::uint8_t spin = 0; ///< 0 or 1
};

struct SpinResponse
{
    static constexpr std::size_t wireSize = 16;
    std::uint8_t spin = 0; ///< request's spin, reflected
    std::uint32_t edges = 0;
    std::uint64_t lastRttNs = 0;
};

/** Encoders: @return bytes written, or 0 when @p cap is too small. */
std::size_t encode(const HhRequest &m, std::uint8_t *buf,
                   std::size_t cap);
std::size_t encode(const HhResponse &m, std::uint8_t *buf,
                   std::size_t cap);
std::size_t encode(const CtRequest &m, std::uint8_t *buf,
                   std::size_t cap);
std::size_t encode(const CtResponse &m, std::uint8_t *buf,
                   std::size_t cap);
std::size_t encode(const SpinRequest &m, std::uint8_t *buf,
                   std::size_t cap);
std::size_t encode(const SpinResponse &m, std::uint8_t *buf,
                   std::size_t cap);

/** Decoders: fail closed on exact-length or field-range mismatch. */
std::optional<HhRequest> decodeHhRequest(const std::uint8_t *data,
                                         std::size_t len);
std::optional<HhResponse> decodeHhResponse(const std::uint8_t *data,
                                           std::size_t len);
std::optional<CtRequest> decodeCtRequest(const std::uint8_t *data,
                                         std::size_t len);
std::optional<CtResponse> decodeCtResponse(const std::uint8_t *data,
                                           std::size_t len);
std::optional<SpinRequest> decodeSpinRequest(const std::uint8_t *data,
                                             std::size_t len);
std::optional<SpinResponse> decodeSpinResponse(const std::uint8_t *data,
                                               std::size_t len);

// ---------------------------------------------------------------------
// Deterministic request synthesis — shared by the load generator and
// the simulator's workload wrapper so both environments emit the same
// flow-coherent packet sequences.
// ---------------------------------------------------------------------

/** Packets per synthetic conntrack connection: flowSeq % length == 0
 *  opens, == length-1 closes, everything between is data. */
constexpr std::uint64_t ctConnectionLength = 64;

/** The verb a flow's @p flowSeq-th packet carries. */
constexpr CtVerb
ctVerbFor(std::uint64_t flowSeq)
{
    const std::uint64_t phase = flowSeq % ctConnectionLength;
    return phase == 0 ? CtVerb::Open
           : phase == ctConnectionLength - 1 ? CtVerb::Close
                                             : CtVerb::Data;
}

/** The simulator flips a flow's spin bit every this many packets. */
constexpr std::uint64_t spinFlipPeriod = 8;

/** The synthetic 5-tuple a flow's conntrack packets carry (stable per
 *  flowId, so a connection's packets always hash to one shard). */
CtRequest ctRequestFor(std::uint32_t flowId, std::uint64_t flowSeq);

/**
 * Synthesize the @p flowSeq-th request payload of flow @p flowId for
 * @p kind into @p out.  @p spin is the flow's current spin-bit value
 * (ignored by the other apps).  @return bytes written (0 if @p cap is
 * too small).
 */
std::size_t synthesizeRequest(AppKind kind, std::uint32_t flowId,
                              std::uint64_t flowSeq, std::uint8_t spin,
                              std::uint8_t *out, std::size_t cap);

} // namespace app
} // namespace hyperplane

#endif // HYPERPLANE_APP_APP_HH
