/**
 * @file
 * Heavy-hitter detection in the data path: a count-min sketch per
 * shard approximates every key's aggregate weight, and keys whose
 * estimate crosses a threshold are promoted to an exact per-flow table
 * (the sketch filters the long tail; only large aggregates pay for
 * exact state).  The in-dataplane sketch + promotion split follows
 * "Seek and Push" (arXiv 1805.05993).
 *
 * Guarantees of the sketch (the differential test gates both):
 *  - never underestimates: estimate(k) >= true count(k);
 *  - bounded overestimate: each row's error is at most the total
 *    weight landing in the key's counter from other keys, so the
 *    min over depth independent rows concentrates near the truth.
 */

#ifndef HYPERPLANE_APP_HEAVY_HITTER_HH
#define HYPERPLANE_APP_HEAVY_HITTER_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "app/app.hh"

namespace hyperplane {
namespace app {

/** Count-min sketch over u32 keys (single-writer; callers lock). */
class CountMinSketch
{
  public:
    CountMinSketch(unsigned width, unsigned depth, std::uint64_t seed);

    /** Add @p weight to @p key. @return the key's new estimate. */
    std::uint64_t update(std::uint32_t key, std::uint64_t weight);

    /** Min-over-rows estimate of the key's aggregate weight. */
    std::uint64_t estimate(std::uint32_t key) const;

    /** Total weight of every update. */
    std::uint64_t totalWeight() const { return total_; }

    unsigned width() const { return width_; }
    unsigned depth() const { return depth_; }

    void clear();

  private:
    std::size_t cell(unsigned row, std::uint32_t key) const;

    unsigned width_;
    unsigned depth_;
    std::vector<std::uint64_t> rows_;  ///< depth_ x width_ counters
    std::vector<std::uint64_t> seeds_; ///< per-row hash seeds
    std::uint64_t total_ = 0;
};

/** The sharded heavy-hitter handler. */
class HeavyHitterApp : public StatefulHandler
{
  public:
    explicit HeavyHitterApp(const AppConfig &cfg);

    AppKind kind() const override { return AppKind::HeavyHitter; }
    AppResult handle(unsigned shard, const AppRequest &req,
                     std::uint8_t *out, std::size_t outCap) override;
    void sweepIdle(std::uint64_t nowNs) override;
    void registerStats(stats::Registry &reg,
                       const std::string &prefix) override;

    /** Aggregated counters (sums across shards, under the locks). */
    std::uint64_t updates() const;
    std::uint64_t promotions() const;
    std::uint64_t hotFlows() const;
    std::uint64_t hotHits() const;

  private:
    struct Promoted
    {
        std::uint64_t weight = 0;
        std::uint64_t lastSeenNs = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        CountMinSketch sketch;
        std::unordered_map<std::uint32_t, Promoted> promoted;
        std::uint64_t updates = 0;
        std::uint64_t promotions = 0;
        std::uint64_t evictions = 0;
        std::uint64_t hotHits = 0;
        std::uint64_t decodeErrors = 0;
        std::uint64_t lastSweepNs = 0;

        Shard(unsigned width, unsigned depth, std::uint64_t seed)
            : sketch(width, depth, seed)
        {
        }
    };

    void sweepShard(Shard &s, std::uint64_t nowNs);

    AppConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace app
} // namespace hyperplane

#endif // HYPERPLANE_APP_HEAVY_HITTER_HH
