#include "app/spin_rtt.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace app {

SpinRttApp::SpinRttApp(const AppConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.numShards > 0, "need at least one shard");
    shards_.reserve(cfg_.numShards);
    for (unsigned s = 0; s < cfg_.numShards; ++s) {
        shards_.push_back(std::make_unique<Shard>(
            cfg_.rttHistBaseNs, cfg_.rttHistGrowth, cfg_.rttHistBins));
    }
}

AppResult
SpinRttApp::handle(unsigned shard, const AppRequest &req,
                   std::uint8_t *out, std::size_t outCap)
{
    Shard &s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);

    const auto m = decodeSpinRequest(req.payload, req.payloadLen);
    if (!m) {
        ++s.decodeErrors;
        return AppResult{};
    }

    AppResult res;
    res.opCost = 1; // the flow lookup
    Flow &f = s.flows[req.flowId];

    if (!f.seen) {
        // First packet of the flow: record the value, no edge yet.
        f.seen = true;
        f.lastSpin = m->spin;
        res.opCost += 1;
    } else if (m->spin != f.lastSpin) {
        // An edge.  The gap between consecutive edges is one RTT.
        f.lastSpin = m->spin;
        ++f.edges;
        ++s.edges;
        if (f.lastEdgeNs != 0 && req.nowNs > f.lastEdgeNs) {
            f.lastRttNs = req.nowNs - f.lastEdgeNs;
            s.rttNs.record(static_cast<double>(f.lastRttNs));
            ++s.samples;
            res.opCost += 1;
        }
        f.lastEdgeNs = req.nowNs;
    }
    f.lastSeenNs = req.nowNs;

    if (req.nowNs > s.lastSweepNs &&
        req.nowNs - s.lastSweepNs > cfg_.flowTimeoutNs) {
        sweepShard(s, req.nowNs);
    }

    SpinResponse resp;
    resp.spin = f.lastSpin;
    resp.edges = f.edges;
    resp.lastRttNs = f.lastRttNs;
    res.payloadLen =
        static_cast<std::uint32_t>(encode(resp, out, outCap));
    res.ok = res.payloadLen != 0;
    return res;
}

void
SpinRttApp::sweepShard(Shard &s, std::uint64_t nowNs)
{
    s.lastSweepNs = nowNs;
    for (auto it = s.flows.begin(); it != s.flows.end();) {
        if (nowNs - it->second.lastSeenNs > cfg_.flowTimeoutNs) {
            it = s.flows.erase(it);
            ++s.expiries;
        } else {
            ++it;
        }
    }
}

void
SpinRttApp::sweepIdle(std::uint64_t nowNs)
{
    for (auto &sp : shards_) {
        Shard &s = *sp;
        std::lock_guard<std::mutex> lock(s.mu);
        sweepShard(s, nowNs);
    }
}

std::uint64_t
SpinRttApp::trackedFlows() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->flows.size();
    }
    return n;
}

std::uint64_t
SpinRttApp::edges() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->edges;
    }
    return n;
}

std::uint64_t
SpinRttApp::samples() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->samples;
    }
    return n;
}

stats::LogHistogram
SpinRttApp::rttHistogram() const
{
    stats::LogHistogram merged(cfg_.rttHistBaseNs, cfg_.rttHistGrowth,
                               cfg_.rttHistBins);
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        merged.merge(sp->rttNs);
    }
    return merged;
}

void
SpinRttApp::registerStats(stats::Registry &reg,
                          const std::string &prefix)
{
    reg.addScalar(prefix + ".tracked_flows", [this] {
        return static_cast<double>(trackedFlows());
    });
    reg.addScalar(prefix + ".edges", [this] {
        return static_cast<double>(edges());
    });
    reg.addScalar(prefix + ".samples", [this] {
        return static_cast<double>(samples());
    });
    reg.addScalar(prefix + ".rtt_p50_ns", [this] {
        return rttHistogram().quantile(0.50);
    });
    reg.addScalar(prefix + ".rtt_p99_ns", [this] {
        return rttHistogram().quantile(0.99);
    });
    reg.addScalar(prefix + ".expiries", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->expiries;
        }
        return static_cast<double>(n);
    });
    reg.addScalar(prefix + ".decode_errors", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->decodeErrors;
        }
        return static_cast<double>(n);
    });
}

} // namespace app
} // namespace hyperplane
