#include "app/heavy_hitter.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hyperplane {
namespace app {

namespace {

/** splitmix64 finalizer: cheap, well-mixed per-row key hashing. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

CountMinSketch::CountMinSketch(unsigned width, unsigned depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth)
{
    hp_assert(width_ > 0 && depth_ > 0, "sketch needs width and depth");
    rows_.assign(static_cast<std::size_t>(width_) * depth_, 0);
    seeds_.reserve(depth_);
    for (unsigned d = 0; d < depth_; ++d)
        seeds_.push_back(mix64(seed ^ (0xabcd0000ULL + d)));
}

std::size_t
CountMinSketch::cell(unsigned row, std::uint32_t key) const
{
    const std::uint64_t h = mix64(seeds_[row] ^ key);
    return static_cast<std::size_t>(row) * width_ + (h % width_);
}

std::uint64_t
CountMinSketch::update(std::uint32_t key, std::uint64_t weight)
{
    std::uint64_t est = ~std::uint64_t{0};
    for (unsigned d = 0; d < depth_; ++d) {
        std::uint64_t &c = rows_[cell(d, key)];
        c += weight;
        est = std::min(est, c);
    }
    total_ += weight;
    return est;
}

std::uint64_t
CountMinSketch::estimate(std::uint32_t key) const
{
    std::uint64_t est = ~std::uint64_t{0};
    for (unsigned d = 0; d < depth_; ++d)
        est = std::min(est, rows_[cell(d, key)]);
    return est;
}

void
CountMinSketch::clear()
{
    std::fill(rows_.begin(), rows_.end(), 0);
    total_ = 0;
}

HeavyHitterApp::HeavyHitterApp(const AppConfig &cfg) : cfg_(cfg)
{
    hp_assert(cfg_.numShards > 0, "need at least one shard");
    shards_.reserve(cfg_.numShards);
    for (unsigned s = 0; s < cfg_.numShards; ++s) {
        shards_.push_back(std::make_unique<Shard>(
            cfg_.sketchWidth, cfg_.sketchDepth, cfg_.seed ^ (s * 131)));
    }
}

AppResult
HeavyHitterApp::handle(unsigned shard, const AppRequest &req,
                       std::uint8_t *out, std::size_t outCap)
{
    Shard &s = *shards_[shard % shards_.size()];
    std::lock_guard<std::mutex> lock(s.mu);

    const auto m = decodeHhRequest(req.payload, req.payloadLen);
    if (!m) {
        ++s.decodeErrors;
        return AppResult{};
    }

    AppResult res;
    res.opCost = cfg_.sketchDepth;
    const std::uint64_t est = s.sketch.update(m->key, m->weight);
    ++s.updates;

    HhResponse resp;
    resp.estimate = est;
    const auto it = s.promoted.find(m->key);
    if (it != s.promoted.end()) {
        // Already promoted: the exact table carries the key from here.
        it->second.weight += m->weight;
        it->second.lastSeenNs = req.nowNs;
        ++s.hotHits;
        resp.hot = 1;
        ++res.opCost;
    } else if (est >= cfg_.promoteThreshold) {
        if (s.promoted.size() >= cfg_.maxPromoted) {
            // Full table: evict the smallest aggregate, which a true
            // heavy hitter will immediately out-weigh.
            auto victim = s.promoted.begin();
            for (auto pit = s.promoted.begin(); pit != s.promoted.end();
                 ++pit) {
                if (pit->second.weight < victim->second.weight)
                    victim = pit;
            }
            s.promoted.erase(victim);
            ++s.evictions;
            res.opCost += 4;
        }
        s.promoted.emplace(m->key, Promoted{est, req.nowNs});
        ++s.promotions;
        resp.hot = 1;
        ++res.opCost;
    }

    // Amortized shard-local idle sweep (keeps the simulator
    // deterministic without an external sweeper thread).
    if (req.nowNs > s.lastSweepNs &&
        req.nowNs - s.lastSweepNs > cfg_.idleTimeoutNs) {
        sweepShard(s, req.nowNs);
    }

    res.payloadLen =
        static_cast<std::uint32_t>(encode(resp, out, outCap));
    res.ok = res.payloadLen != 0;
    return res;
}

void
HeavyHitterApp::sweepShard(Shard &s, std::uint64_t nowNs)
{
    s.lastSweepNs = nowNs;
    for (auto it = s.promoted.begin(); it != s.promoted.end();) {
        if (nowNs - it->second.lastSeenNs > cfg_.idleTimeoutNs) {
            it = s.promoted.erase(it);
            ++s.evictions;
        } else {
            ++it;
        }
    }
}

void
HeavyHitterApp::sweepIdle(std::uint64_t nowNs)
{
    for (auto &sp : shards_) {
        Shard &s = *sp;
        std::lock_guard<std::mutex> lock(s.mu);
        sweepShard(s, nowNs);
    }
}

std::uint64_t
HeavyHitterApp::updates() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->updates;
    }
    return n;
}

std::uint64_t
HeavyHitterApp::promotions() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->promotions;
    }
    return n;
}

std::uint64_t
HeavyHitterApp::hotFlows() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->promoted.size();
    }
    return n;
}

std::uint64_t
HeavyHitterApp::hotHits() const
{
    std::uint64_t n = 0;
    for (const auto &sp : shards_) {
        std::lock_guard<std::mutex> lock(sp->mu);
        n += sp->hotHits;
    }
    return n;
}

void
HeavyHitterApp::registerStats(stats::Registry &reg,
                              const std::string &prefix)
{
    reg.addScalar(prefix + ".updates", [this] {
        return static_cast<double>(updates());
    });
    reg.addScalar(prefix + ".promotions", [this] {
        return static_cast<double>(promotions());
    });
    reg.addScalar(prefix + ".hot_flows", [this] {
        return static_cast<double>(hotFlows());
    });
    reg.addScalar(prefix + ".hot_hits", [this] {
        return static_cast<double>(hotHits());
    });
    reg.addScalar(prefix + ".total_weight", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->sketch.totalWeight();
        }
        return static_cast<double>(n);
    });
    reg.addScalar(prefix + ".decode_errors", [this] {
        std::uint64_t n = 0;
        for (const auto &sp : shards_) {
            std::lock_guard<std::mutex> lock(sp->mu);
            n += sp->decodeErrors;
        }
        return static_cast<double>(n);
    });
}

} // namespace app
} // namespace hyperplane
