#include "app/app.hh"

#include "app/conntrack_lb.hh"
#include "app/heavy_hitter.hh"
#include "app/spin_rtt.hh"
#include "net/headers.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace app {

using net::getBe16;
using net::getBe32;
using net::putBe16;
using net::putBe32;

namespace {

void
putBe64(std::uint8_t *p, std::uint64_t v)
{
    putBe32(p, static_cast<std::uint32_t>(v >> 32));
    putBe32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint64_t
getBe64(const std::uint8_t *p)
{
    return (static_cast<std::uint64_t>(getBe32(p)) << 32) | getBe32(p + 4);
}

} // namespace

const char *
toString(AppKind k)
{
    switch (k) {
      case AppKind::HeavyHitter:
        return "heavy-hitter";
      case AppKind::ConntrackLb:
        return "conntrack-lb";
      case AppKind::SpinRtt:
        return "spin-rtt";
    }
    return "?";
}

const char *
statName(AppKind k)
{
    switch (k) {
      case AppKind::HeavyHitter:
        return "heavy_hitter";
      case AppKind::ConntrackLb:
        return "conntrack";
      case AppKind::SpinRtt:
        return "spin_rtt";
    }
    return "?";
}

std::unique_ptr<StatefulHandler>
makeHandler(AppKind kind, const AppConfig &cfg)
{
    switch (kind) {
      case AppKind::HeavyHitter:
        return std::make_unique<HeavyHitterApp>(cfg);
      case AppKind::ConntrackLb:
        return std::make_unique<ConntrackLbApp>(cfg);
      case AppKind::SpinRtt:
        return std::make_unique<SpinRttApp>(cfg);
    }
    hp_panic("unknown app kind");
}

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

std::size_t
encode(const HhRequest &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < HhRequest::wireSize)
        return 0;
    putBe32(buf, m.key);
    putBe32(buf + 4, m.weight);
    return HhRequest::wireSize;
}

std::size_t
encode(const HhResponse &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < HhResponse::wireSize)
        return 0;
    putBe64(buf, m.estimate);
    buf[8] = m.hot ? 1 : 0;
    for (int i = 9; i < 16; ++i)
        buf[i] = 0;
    return HhResponse::wireSize;
}

std::size_t
encode(const CtRequest &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < CtRequest::wireSize)
        return 0;
    buf[0] = static_cast<std::uint8_t>(m.verb);
    buf[1] = buf[2] = buf[3] = 0;
    putBe32(buf + 4, m.srcIp);
    putBe32(buf + 8, m.dstIp);
    putBe16(buf + 12, m.srcPort);
    putBe16(buf + 14, m.dstPort);
    putBe32(buf + 16, m.seqNo);
    return CtRequest::wireSize;
}

std::size_t
encode(const CtResponse &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < CtResponse::wireSize)
        return 0;
    putBe32(buf, m.backend);
    putBe32(buf + 4, m.expectedSeq);
    buf[8] = m.state;
    buf[9] = buf[10] = buf[11] = 0;
    return CtResponse::wireSize;
}

std::size_t
encode(const SpinRequest &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < SpinRequest::wireSize)
        return 0;
    buf[0] = m.spin ? 1 : 0;
    buf[1] = buf[2] = buf[3] = 0;
    return SpinRequest::wireSize;
}

std::size_t
encode(const SpinResponse &m, std::uint8_t *buf, std::size_t cap)
{
    if (cap < SpinResponse::wireSize)
        return 0;
    buf[0] = m.spin ? 1 : 0;
    buf[1] = buf[2] = buf[3] = 0;
    putBe32(buf + 4, m.edges);
    putBe64(buf + 8, m.lastRttNs);
    return SpinResponse::wireSize;
}

std::optional<HhRequest>
decodeHhRequest(const std::uint8_t *data, std::size_t len)
{
    if (len != HhRequest::wireSize)
        return std::nullopt;
    HhRequest m;
    m.key = getBe32(data);
    m.weight = getBe32(data + 4);
    return m;
}

std::optional<HhResponse>
decodeHhResponse(const std::uint8_t *data, std::size_t len)
{
    if (len != HhResponse::wireSize || data[8] > 1)
        return std::nullopt;
    HhResponse m;
    m.estimate = getBe64(data);
    m.hot = data[8];
    return m;
}

std::optional<CtRequest>
decodeCtRequest(const std::uint8_t *data, std::size_t len)
{
    if (len != CtRequest::wireSize ||
        data[0] > static_cast<std::uint8_t>(CtVerb::Close)) {
        return std::nullopt;
    }
    CtRequest m;
    m.verb = static_cast<CtVerb>(data[0]);
    m.srcIp = getBe32(data + 4);
    m.dstIp = getBe32(data + 8);
    m.srcPort = getBe16(data + 12);
    m.dstPort = getBe16(data + 14);
    m.seqNo = getBe32(data + 16);
    return m;
}

std::optional<CtResponse>
decodeCtResponse(const std::uint8_t *data, std::size_t len)
{
    if (len != CtResponse::wireSize || data[8] > 1)
        return std::nullopt;
    CtResponse m;
    m.backend = getBe32(data);
    m.expectedSeq = getBe32(data + 4);
    m.state = data[8];
    return m;
}

std::optional<SpinRequest>
decodeSpinRequest(const std::uint8_t *data, std::size_t len)
{
    if (len != SpinRequest::wireSize || data[0] > 1)
        return std::nullopt;
    SpinRequest m;
    m.spin = data[0];
    return m;
}

std::optional<SpinResponse>
decodeSpinResponse(const std::uint8_t *data, std::size_t len)
{
    if (len != SpinResponse::wireSize || data[0] > 1)
        return std::nullopt;
    SpinResponse m;
    m.spin = data[0];
    m.edges = getBe32(data + 4);
    m.lastRttNs = getBe64(data + 8);
    return m;
}

// ---------------------------------------------------------------------
// Synthesis
// ---------------------------------------------------------------------

CtRequest
ctRequestFor(std::uint32_t flowId, std::uint64_t flowSeq)
{
    CtRequest m;
    m.verb = ctVerbFor(flowSeq);
    // A stable synthetic 5-tuple per flow label: the flow's packets
    // always carry the same tuple, so its connection entry stays on
    // the shard its flowId steers to.
    const std::uint32_t mix = flowId * 0x9e3779b9u;
    m.srcIp = 0x0a000000u | (flowId & 0x00ffffffu);
    m.dstIp = 0xc0a80000u | (mix & 0x0000ffffu);
    m.srcPort = static_cast<std::uint16_t>(1024u + (mix >> 17));
    m.dstPort = 443;
    // Per-connection sequence numbers restart at every Open.
    m.seqNo = static_cast<std::uint32_t>(flowSeq % ctConnectionLength);
    return m;
}

std::size_t
synthesizeRequest(AppKind kind, std::uint32_t flowId,
                  std::uint64_t flowSeq, std::uint8_t spin,
                  std::uint8_t *out, std::size_t cap)
{
    switch (kind) {
      case AppKind::HeavyHitter: {
        HhRequest m;
        // The aggregate key is the flow label itself; weight models a
        // plausible per-packet byte count.
        m.key = flowId;
        m.weight = 64 + static_cast<std::uint32_t>(flowSeq % 23) * 60;
        return encode(m, out, cap);
      }
      case AppKind::ConntrackLb:
        return encode(ctRequestFor(flowId, flowSeq), out, cap);
      case AppKind::SpinRtt: {
        SpinRequest m;
        m.spin = spin ? 1 : 0;
        return encode(m, out, cap);
      }
    }
    return 0;
}

} // namespace app
} // namespace hyperplane
