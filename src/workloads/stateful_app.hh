/**
 * @file
 * The stateful application suite (src/app) wrapped as simulator
 * workloads, so the SDP simulation exercises the same handler code the
 * UDP server dispatches to.
 *
 * Per item, the wrapper synthesizes the flow's next request payload
 * with app::synthesizeRequest (the same generator the load generator
 * uses, so sim and server see identically-shaped streams), runs the
 * real handler, and charges the timing model a base cost plus
 * cyclesPerStateOp for every state operation the handler reports.
 *
 * Sharding: the item's queue id is the shard.  Under the tick-parallel
 * backend queues are cluster-local, so each shard's state — including
 * the wrapper's per-flow synthesis counters — is only ever touched from
 * one cluster's thread and the run stays deterministic.
 */

#ifndef HYPERPLANE_WORKLOADS_STATEFUL_APP_HH
#define HYPERPLANE_WORKLOADS_STATEFUL_APP_HH

#include <unordered_map>
#include <vector>

#include "app/app.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** One src/app handler behind the Workload interface. */
class StatefulApp : public Workload
{
  public:
    /** Extra service cycles charged per reported state operation. */
    static constexpr Tick cyclesPerStateOp = 350;

    StatefulApp(app::AppKind appKind, std::uint64_t seed,
                unsigned numShards);

    Kind kind() const override;
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    Tick onItem(const queueing::WorkItem &item) override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override;

    /** The wrapped handler (bench/tests read its counters). */
    app::StatefulHandler &handler() { return *handler_; }
    const app::StatefulHandler &handler() const { return *handler_; }

    /** Items processed / handled ok, summed across shards. */
    std::uint64_t processed() const;
    std::uint64_t handledOk() const;

  private:
    /** Per-flow request-synthesis state (packet counter, spin bit). */
    struct FlowSynth
    {
        std::uint64_t seq = 0;
        std::uint8_t spin = 0;
    };

    /** Shard-local synthesis state: shard == queue id, so no locking
     *  (counters included — summed only after the run). */
    struct ShardSynth
    {
        std::unordered_map<std::uint32_t, FlowSynth> flows;
        std::uint64_t processed = 0;
        std::uint64_t handledOk = 0;
    };

    app::AppKind appKind_;
    std::unique_ptr<app::StatefulHandler> handler_;
    std::vector<ShardSynth> synth_;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_STATEFUL_APP_HH
