/**
 * @file
 * Packet steering workload: redirect traffic by obtaining a session
 * affinity from a hash table (Section V-A; the RSS++-style work
 * distribution task).
 */

#ifndef HYPERPLANE_WORKLOADS_PACKET_STEERING_HH
#define HYPERPLANE_WORKLOADS_PACKET_STEERING_HH

#include <cstdint>
#include <unordered_map>

#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** Session-affinity packet steerer. */
class PacketSteering : public Workload
{
  public:
    /** Number of destination workers traffic is steered across. */
    static constexpr unsigned numDestinations = 64;

    explicit PacketSteering(std::uint64_t seed);

    Kind kind() const override { return Kind::PacketSteering; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /**
     * Steer one item: look up (or establish) the flow's session affinity.
     * @return The destination worker index in [0, numDestinations).
     */
    unsigned steer(const queueing::WorkItem &item);

    /** Number of distinct sessions currently tracked. */
    std::size_t sessionCount() const { return sessions_.size(); }

    std::uint64_t processed() const { return processed_; }

  private:
    std::uint64_t seed_;
    /** flow hash -> destination worker */
    std::unordered_map<std::uint32_t, std::uint32_t> sessions_;
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_PACKET_STEERING_HH
