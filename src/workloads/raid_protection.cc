#include "workloads/raid_protection.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

RaidProtection::RaidProtection(std::uint64_t seed)
    : raid_(stripeBlocks), seed_(seed)
{
}

std::vector<codes::Block>
RaidProtection::makeStripe(const queueing::WorkItem &item) const
{
    const std::size_t blockLen =
        (item.payloadBytes + stripeBlocks - 1) / stripeBlocks;
    std::vector<codes::Block> stripe(stripeBlocks,
                                     codes::Block(blockLen, 0));
    for (unsigned b = 0; b < stripeBlocks; ++b) {
        detail::fillDeterministic(stripe[b].data(), blockLen,
                                  seed_ ^ item.seq ^ (b * 0xabcdefULL));
    }
    return stripe;
}

std::pair<codes::Block, codes::Block>
RaidProtection::computeParity(const queueing::WorkItem &item) const
{
    return raid_.computePQ(makeStripe(item));
}

void
RaidProtection::execute(const queueing::WorkItem &item)
{
    const auto [p, q] = computeParity(item);
    hp_assert(!p.empty() && p.size() == q.size(),
              "parity blocks malformed");
    ++processed_;
}

Tick
RaidProtection::serviceCycles(const queueing::WorkItem &item) const
{
    // One XOR pass (P) + one GF multiply-accumulate pass (Q) over the
    // payload.  Calibrated to ~0.23 Mtasks/s at 1 KiB (Figure 8).
    return 1700 + static_cast<Tick>(11.0 * item.payloadBytes);
}

unsigned
RaidProtection::dataLines(const queueing::WorkItem &item) const
{
    // Payload read (twice logically, once after caching) + P and Q
    // blocks written (2/8 of payload).
    const unsigned payloadLines =
        (item.payloadBytes + cacheLineBytes - 1) / cacheLineBytes;
    return payloadLines + payloadLines / 4 + 2;
}

} // namespace workloads
} // namespace hyperplane
