/**
 * @file
 * Request dispatching workload: identify request types and prepare the
 * remote procedure calls dispatched between microservice tiers
 * (Section V-A; the OLDI dispatcher of [92]).
 */

#ifndef HYPERPLANE_WORKLOADS_REQUEST_DISPATCHING_HH
#define HYPERPLANE_WORKLOADS_REQUEST_DISPATCHING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** A prepared RPC ready for dispatch to a downstream tier. */
struct RpcDescriptor
{
    std::uint32_t requestType = 0;
    std::uint32_t tenantId = 0;
    std::uint32_t targetServer = 0;
    std::uint32_t payloadChecksum = 0;
    std::vector<std::uint8_t> header; ///< serialized wire header
};

/** Microservice request dispatcher. */
class RequestDispatching : public Workload
{
  public:
    /** Request types the dispatcher classifies. */
    static constexpr unsigned numRequestTypes = 16;
    /** Downstream servers per request type. */
    static constexpr unsigned serversPerType = 32;

    explicit RequestDispatching(std::uint64_t seed);

    Kind kind() const override { return Kind::RequestDispatching; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /** Classify + prepare the RPC for one item (for tests). */
    RpcDescriptor dispatch(const queueing::WorkItem &item) const;

    /** Per-type dispatch counts (for balance checks). */
    const std::array<std::uint64_t, numRequestTypes> &typeCounts() const
    {
        return typeCounts_;
    }

    std::uint64_t processed() const { return processed_; }

  private:
    std::uint64_t seed_;
    std::array<std::uint64_t, numRequestTypes> typeCounts_{};
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_REQUEST_DISPATCHING_HH
