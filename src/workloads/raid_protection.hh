/**
 * @file
 * RAID protection workload: P+Q redundancy parity computation over input
 * data blocks (Section V-A).
 */

#ifndef HYPERPLANE_WORKLOADS_RAID_PROTECTION_HH
#define HYPERPLANE_WORKLOADS_RAID_PROTECTION_HH

#include "codes/raid.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** RAID-6 P+Q parity over 8-block stripes. */
class RaidProtection : public Workload
{
  public:
    static constexpr unsigned stripeBlocks = 8;

    explicit RaidProtection(std::uint64_t seed);

    Kind kind() const override { return Kind::RaidProtection; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /** Build the stripe for an item (for tests). */
    std::vector<codes::Block> makeStripe(
        const queueing::WorkItem &item) const;

    /** Compute the (P, Q) parity blocks for an item's stripe. */
    std::pair<codes::Block, codes::Block> computeParity(
        const queueing::WorkItem &item) const;

    const codes::Raid6 &raid() const { return raid_; }

    std::uint64_t processed() const { return processed_; }

  private:
    codes::Raid6 raid_;
    std::uint64_t seed_;
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_RAID_PROTECTION_HH
