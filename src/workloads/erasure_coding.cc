#include "workloads/erasure_coding.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

ErasureCoding::ErasureCoding(std::uint64_t seed)
    : rs_(dataShards, parityShards), seed_(seed)
{
}

std::vector<codes::Shard>
ErasureCoding::makeShards(const queueing::WorkItem &item) const
{
    // Shard size: payload split k ways, rounded up.
    const std::size_t shardLen =
        (item.payloadBytes + dataShards - 1) / dataShards;
    std::vector<codes::Shard> data(dataShards,
                                   codes::Shard(shardLen, 0));
    for (unsigned s = 0; s < dataShards; ++s) {
        detail::fillDeterministic(data[s].data(), shardLen,
                                  seed_ ^ item.seq ^ (s * 0x1234567ULL));
    }
    return data;
}

std::vector<codes::Shard>
ErasureCoding::encode(const queueing::WorkItem &item) const
{
    return rs_.encode(makeShards(item));
}

void
ErasureCoding::execute(const queueing::WorkItem &item)
{
    const auto parity = encode(item);
    hp_assert(parity.size() == parityShards, "wrong parity shard count");
    ++processed_;
}

Tick
ErasureCoding::serviceCycles(const queueing::WorkItem &item) const
{
    // m GF-multiply-accumulate passes over the payload (table lookups
    // per byte).  Calibrated to ~0.11 Mtasks/s at 1 KiB (Figure 8).
    return 2700 + static_cast<Tick>(24.0 * item.payloadBytes);
}

unsigned
ErasureCoding::dataLines(const queueing::WorkItem &item) const
{
    // Data read once per parity pass; parity written (m/k of payload).
    const unsigned payloadLines =
        (item.payloadBytes + cacheLineBytes - 1) / cacheLineBytes;
    return payloadLines + payloadLines * parityShards / dataShards + 2;
}

} // namespace workloads
} // namespace hyperplane
