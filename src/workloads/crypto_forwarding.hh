/**
 * @file
 * Crypto forwarding workload: packets encrypted with AES-CBC-256 before
 * being forwarded (Section V-A, citing the AES-CBC IPsec usage of
 * RFC 3602).
 */

#ifndef HYPERPLANE_WORKLOADS_CRYPTO_FORWARDING_HH
#define HYPERPLANE_WORKLOADS_CRYPTO_FORWARDING_HH

#include <vector>

#include "crypto/aes.hh"
#include "crypto/cbc.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** AES-CBC-256 packet encryption. */
class CryptoForwarding : public Workload
{
  public:
    explicit CryptoForwarding(std::uint64_t seed);

    Kind kind() const override { return Kind::CryptoForwarding; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /** Encrypt an item's synthesized payload (exposed for tests). */
    std::vector<std::uint8_t> encrypt(const queueing::WorkItem &item) const;

    std::uint64_t processed() const { return processed_; }

  private:
    crypto::Aes aes_;
    std::uint64_t seed_;
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_CRYPTO_FORWARDING_HH
