#include "workloads/packet_steering.hh"

#include "net/checksum.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

PacketSteering::PacketSteering(std::uint64_t seed) : seed_(seed) {}

unsigned
PacketSteering::steer(const queueing::WorkItem &item)
{
    // Flow key: CRC32C over a synthetic 5-tuple derived from the flow id
    // (the hash RSS-style steering computes over real packet headers).
    std::uint8_t tuple[13];
    detail::fillDeterministic(tuple, sizeof(tuple),
                              seed_ ^ (std::uint64_t{item.flowId} << 16));
    const std::uint32_t key = net::crc32c(tuple, sizeof(tuple));

    auto [it, inserted] = sessions_.try_emplace(
        key, key % numDestinations);
    (void)inserted;
    return it->second;
}

void
PacketSteering::execute(const queueing::WorkItem &item)
{
    const unsigned dest = steer(item);
    hp_assert(dest < numDestinations, "steering destination out of range");
    ++processed_;
}

Tick
PacketSteering::serviceCycles(const queueing::WorkItem &item) const
{
    // Flow-hash computation + session-table probe (often a miss in a
    // large table) + header rewrite.  Calibrated to ~0.38 Mtasks/s at
    // 1 KiB (Figure 8).
    return 7000 + static_cast<Tick>(0.9 * item.payloadBytes);
}

unsigned
PacketSteering::dataLines(const queueing::WorkItem &item) const
{
    (void)item;
    // Headers + two session-table bucket lines; the payload is not
    // touched by a steerer.
    return 4;
}

} // namespace workloads
} // namespace hyperplane
