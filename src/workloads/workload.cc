#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/crypto_forwarding.hh"
#include "workloads/erasure_coding.hh"
#include "workloads/packet_encapsulation.hh"
#include "workloads/packet_steering.hh"
#include "workloads/raid_protection.hh"
#include "workloads/request_dispatching.hh"
#include "workloads/stateful_app.hh"

namespace hyperplane {
namespace workloads {

const char *
toString(Kind k)
{
    switch (k) {
      case Kind::PacketEncapsulation:
        return "packet-encapsulation";
      case Kind::CryptoForwarding:
        return "crypto-forwarding";
      case Kind::PacketSteering:
        return "packet-steering";
      case Kind::ErasureCoding:
        return "erasure-coding";
      case Kind::RaidProtection:
        return "raid-protection";
      case Kind::RequestDispatching:
        return "request-dispatching";
      case Kind::HeavyHitter:
        return "app-heavy-hitter";
      case Kind::ConntrackLb:
        return "app-conntrack-lb";
      case Kind::SpinRtt:
        return "app-spin-rtt";
    }
    return "?";
}

const std::vector<Kind> &
allKinds()
{
    static const std::vector<Kind> kinds = {
        Kind::PacketEncapsulation, Kind::CryptoForwarding,
        Kind::PacketSteering,      Kind::ErasureCoding,
        Kind::RaidProtection,      Kind::RequestDispatching,
    };
    return kinds;
}

const std::vector<Kind> &
appKinds()
{
    static const std::vector<Kind> kinds = {
        Kind::HeavyHitter,
        Kind::ConntrackLb,
        Kind::SpinRtt,
    };
    return kinds;
}

std::unique_ptr<Workload>
makeWorkload(Kind kind, std::uint64_t seed, unsigned numShards)
{
    switch (kind) {
      case Kind::PacketEncapsulation:
        return std::make_unique<PacketEncapsulation>(seed);
      case Kind::CryptoForwarding:
        return std::make_unique<CryptoForwarding>(seed);
      case Kind::PacketSteering:
        return std::make_unique<PacketSteering>(seed);
      case Kind::ErasureCoding:
        return std::make_unique<ErasureCoding>(seed);
      case Kind::RaidProtection:
        return std::make_unique<RaidProtection>(seed);
      case Kind::RequestDispatching:
        return std::make_unique<RequestDispatching>(seed);
      case Kind::HeavyHitter:
        return std::make_unique<StatefulApp>(app::AppKind::HeavyHitter,
                                             seed, numShards);
      case Kind::ConntrackLb:
        return std::make_unique<StatefulApp>(app::AppKind::ConntrackLb,
                                             seed, numShards);
      case Kind::SpinRtt:
        return std::make_unique<StatefulApp>(app::AppKind::SpinRtt, seed,
                                             numShards);
    }
    hp_panic("unknown workload kind");
}

namespace detail {

void
fillDeterministic(std::uint8_t *dst, std::size_t len, std::uint64_t seed)
{
    // splitmix64 stream: fast, reproducible input synthesis.
    std::uint64_t x = seed;
    std::size_t i = 0;
    while (i < len) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        z ^= z >> 31;
        for (int b = 0; b < 8 && i < len; ++b, ++i)
            dst[i] = static_cast<std::uint8_t>(z >> (8 * b));
    }
}

} // namespace detail

} // namespace workloads
} // namespace hyperplane
