#include "workloads/request_dispatching.hh"

#include <cstring>

#include "net/checksum.hh"
#include "net/headers.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

RequestDispatching::RequestDispatching(std::uint64_t seed) : seed_(seed) {}

RpcDescriptor
RequestDispatching::dispatch(const queueing::WorkItem &item) const
{
    // Synthesize the incoming request: 16-byte header + payload prefix.
    std::uint8_t request[48];
    detail::fillDeterministic(request, sizeof(request),
                              seed_ ^ item.seq);

    RpcDescriptor rpc;
    // Classify: the request type field is the first header byte.
    rpc.requestType = request[0] % numRequestTypes;
    rpc.tenantId = item.flowId;
    // Affinity-hash the tenant to a downstream server of that type.
    const std::uint32_t h =
        net::crc32c(request, 16, rpc.requestType * 0x9e37u);
    rpc.targetServer =
        rpc.requestType * serversPerType + (h % serversPerType);
    // Integrity tag over the payload prefix the RPC carries along.
    rpc.payloadChecksum = net::crc32c(request + 16, 32);

    // Serialize the wire header the downstream tier expects.
    rpc.header.resize(20);
    net::putBe32(rpc.header.data() + 0, rpc.requestType);
    net::putBe32(rpc.header.data() + 4, rpc.tenantId);
    net::putBe32(rpc.header.data() + 8, rpc.targetServer);
    net::putBe32(rpc.header.data() + 12, rpc.payloadChecksum);
    net::putBe32(rpc.header.data() + 16, item.payloadBytes);
    return rpc;
}

void
RequestDispatching::execute(const queueing::WorkItem &item)
{
    const RpcDescriptor rpc = dispatch(item);
    hp_assert(rpc.requestType < numRequestTypes, "bad request type");
    ++typeCounts_[rpc.requestType];
    ++processed_;
}

Tick
RequestDispatching::serviceCycles(const queueing::WorkItem &item) const
{
    // Parse + classify + serialize; mostly independent of payload size.
    // Calibrated to ~0.65 Mtasks/s at 1 KiB (Figure 8).
    return 4000 + static_cast<Tick>(0.6 * item.payloadBytes);
}

unsigned
RequestDispatching::dataLines(const queueing::WorkItem &item) const
{
    (void)item;
    // Request header + RPC descriptor + routing-table lines.
    return 5;
}

} // namespace workloads
} // namespace hyperplane
