/**
 * @file
 * Packet encapsulation workload: GRE tunneling of IPv4 packets inside
 * IPv6 (RFC 2784), the first evaluation task of Section V-A.
 */

#ifndef HYPERPLANE_WORKLOADS_PACKET_ENCAPSULATION_HH
#define HYPERPLANE_WORKLOADS_PACKET_ENCAPSULATION_HH

#include "net/headers.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** GRE IPv4-in-IPv6 encapsulation. */
class PacketEncapsulation : public Workload
{
  public:
    explicit PacketEncapsulation(std::uint64_t seed);

    Kind kind() const override { return Kind::PacketEncapsulation; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /**
     * Build the encapsulated packet for an item (the body of execute(),
     * returning the result for tests).
     */
    net::PacketBuffer encapsulate(const queueing::WorkItem &item) const;

    /** Work items processed so far. */
    std::uint64_t processed() const { return processed_; }

  private:
    net::Ipv6Header outer_;
    std::uint64_t seed_;
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_PACKET_ENCAPSULATION_HH
