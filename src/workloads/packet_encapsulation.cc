#include "workloads/packet_encapsulation.hh"

#include <cstring>

#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

PacketEncapsulation::PacketEncapsulation(std::uint64_t seed) : seed_(seed)
{
    // Tunnel endpoints derived from the seed so runs are reproducible.
    detail::fillDeterministic(outer_.src.data(), outer_.src.size(), seed);
    detail::fillDeterministic(outer_.dst.data(), outer_.dst.size(),
                              seed ^ 0xdeadbeefULL);
    outer_.hopLimit = 64;
}

net::PacketBuffer
PacketEncapsulation::encapsulate(const queueing::WorkItem &item) const
{
    // Synthesize the inner IPv4 packet: header + payload bytes.
    const std::uint32_t payload = item.payloadBytes;
    net::PacketBuffer pkt(net::Ipv4Header::wireSize + payload);
    net::Ipv4Header inner;
    inner.totalLength =
        static_cast<std::uint16_t>(net::Ipv4Header::wireSize + payload);
    inner.identification = static_cast<std::uint16_t>(item.seq);
    inner.protocol = net::protoUdp;
    inner.src = 0x0a000001u + item.flowId;
    inner.dst = 0x0a800001u + (item.flowId >> 4);
    inner.write(pkt.data());
    detail::fillDeterministic(pkt.data() + net::Ipv4Header::wireSize,
                              payload, seed_ ^ item.seq);

    const bool ok = net::greEncapsulate(pkt, outer_, item.flowId);
    hp_assert(ok, "synthesized IPv4 packet failed to encapsulate");
    return pkt;
}

void
PacketEncapsulation::execute(const queueing::WorkItem &item)
{
    net::PacketBuffer pkt = encapsulate(item);
    hp_assert(pkt.size() > net::Ipv6Header::wireSize,
              "encapsulated packet too short");
    ++processed_;
}

Tick
PacketEncapsulation::serviceCycles(const queueing::WorkItem &item) const
{
    // Header construction + GRE checksum over the payload.  Calibrated
    // to ~0.7 Mtasks/s at the 1 KiB default payload (Figure 8).
    return 1500 + static_cast<Tick>(2.7 * item.payloadBytes);
}

unsigned
PacketEncapsulation::dataLines(const queueing::WorkItem &item) const
{
    // Payload read once (checksum) + headers written.
    return (item.payloadBytes + cacheLineBytes - 1) / cacheLineBytes + 2;
}

} // namespace workloads
} // namespace hyperplane
