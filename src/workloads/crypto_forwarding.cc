#include "workloads/crypto_forwarding.hh"

#include <array>

#include "sim/logging.hh"

namespace hyperplane {
namespace workloads {

namespace {

std::array<std::uint8_t, 32>
deriveKey(std::uint64_t seed)
{
    std::array<std::uint8_t, 32> key{};
    detail::fillDeterministic(key.data(), key.size(), seed ^ 0xae5c0deULL);
    return key;
}

} // namespace

CryptoForwarding::CryptoForwarding(std::uint64_t seed)
    : aes_(deriveKey(seed).data(), 32), seed_(seed)
{
}

std::vector<std::uint8_t>
CryptoForwarding::encrypt(const queueing::WorkItem &item) const
{
    std::vector<std::uint8_t> plain(item.payloadBytes);
    detail::fillDeterministic(plain.data(), plain.size(),
                              seed_ ^ item.seq);
    crypto::Iv iv{};
    detail::fillDeterministic(iv.data(), iv.size(),
                              item.seq * 0x9e3779b9ULL);
    return crypto::cbcEncrypt(aes_, iv, plain.data(), plain.size());
}

void
CryptoForwarding::execute(const queueing::WorkItem &item)
{
    const auto cipher = encrypt(item);
    hp_assert(cipher.size() >= item.payloadBytes,
              "ciphertext shorter than plaintext");
    ++processed_;
}

Tick
CryptoForwarding::serviceCycles(const queueing::WorkItem &item) const
{
    // Software AES-256: ~19 cycles/byte plus key/IV setup.  Calibrated
    // to ~0.14 Mtasks/s at 1 KiB (Figure 8).
    return 2000 + static_cast<Tick>(19.0 * item.payloadBytes);
}

unsigned
CryptoForwarding::dataLines(const queueing::WorkItem &item) const
{
    // Plaintext read + ciphertext written.
    return 2 * ((item.payloadBytes + cacheLineBytes - 1) /
                cacheLineBytes) +
           2;
}

} // namespace workloads
} // namespace hyperplane
