#include "workloads/stateful_app.hh"

#include "sim/logging.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace workloads {

namespace {

/** Base service cost per app, before per-state-op charges. */
Tick
baseCycles(app::AppKind k)
{
    switch (k) {
      case app::AppKind::HeavyHitter:
        return 2600; // sketch row probes dominate
      case app::AppKind::ConntrackLb:
        return 2200; // one table lookup + tuple hash
      case app::AppKind::SpinRtt:
        return 1800; // one-bit inspection + flow record
    }
    return 2000;
}

} // namespace

StatefulApp::StatefulApp(app::AppKind appKind, std::uint64_t seed,
                         unsigned numShards)
    : appKind_(appKind)
{
    hp_assert(numShards > 0, "need at least one shard");
    app::AppConfig cfg;
    cfg.numShards = numShards;
    cfg.seed = seed;
    handler_ = app::makeHandler(appKind, cfg);
    synth_.resize(numShards);
}

Kind
StatefulApp::kind() const
{
    switch (appKind_) {
      case app::AppKind::HeavyHitter:
        return Kind::HeavyHitter;
      case app::AppKind::ConntrackLb:
        return Kind::ConntrackLb;
      case app::AppKind::SpinRtt:
        return Kind::SpinRtt;
    }
    hp_panic("unknown app kind");
}

Tick
StatefulApp::onItem(const queueing::WorkItem &item)
{
    ShardSynth &shard = synth_[item.qid % synth_.size()];
    FlowSynth &flow = shard.flows[item.flowId];

    std::uint8_t payload[64];
    const std::size_t payloadLen = app::synthesizeRequest(
        appKind_, item.flowId, flow.seq, flow.spin, payload,
        sizeof(payload));

    app::AppRequest req;
    req.flowId = item.flowId;
    req.seq = flow.seq;
    req.nowNs =
        static_cast<std::uint64_t>(item.arrivalTick / cyclesPerNs);
    req.payload = payload;
    req.payloadLen = static_cast<std::uint32_t>(payloadLen);

    std::uint8_t out[64];
    const app::AppResult res = handler_->handle(
        static_cast<unsigned>(item.qid % synth_.size()), req, out,
        sizeof(out));

    ++flow.seq;
    if (appKind_ == app::AppKind::SpinRtt &&
        flow.seq % app::spinFlipPeriod == 0) {
        flow.spin ^= 1;
    }
    ++shard.processed;
    if (res.ok)
        ++shard.handledOk;

    return baseCycles(appKind_) + res.opCost * cyclesPerStateOp;
}

void
StatefulApp::execute(const queueing::WorkItem &item)
{
    onItem(item);
}

Tick
StatefulApp::serviceCycles(const queueing::WorkItem &) const
{
    return baseCycles(appKind_);
}

unsigned
StatefulApp::dataLines(const queueing::WorkItem &) const
{
    switch (appKind_) {
      case app::AppKind::HeavyHitter:
        return 6; // depth sketch lines + promotion-table probe
      case app::AppKind::ConntrackLb:
        return 3; // one connection entry + bucket metadata
      case app::AppKind::SpinRtt:
        return 2; // flow record + histogram bin
    }
    return 2;
}

std::uint32_t
StatefulApp::defaultPayloadBytes() const
{
    switch (appKind_) {
      case app::AppKind::HeavyHitter:
        return app::HhRequest::wireSize;
      case app::AppKind::ConntrackLb:
        return app::CtRequest::wireSize;
      case app::AppKind::SpinRtt:
        return app::SpinRequest::wireSize;
    }
    return 0;
}

std::uint64_t
StatefulApp::processed() const
{
    std::uint64_t n = 0;
    for (const auto &s : synth_)
        n += s.processed;
    return n;
}

std::uint64_t
StatefulApp::handledOk() const
{
    std::uint64_t n = 0;
    for (const auto &s : synth_)
        n += s.handledOk;
    return n;
}

} // namespace workloads
} // namespace hyperplane
