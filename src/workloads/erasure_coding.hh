/**
 * @file
 * Erasure coding workload: Reed-Solomon encoding of data fragments with
 * a Cauchy matrix (Section V-A).
 */

#ifndef HYPERPLANE_WORKLOADS_ERASURE_CODING_HH
#define HYPERPLANE_WORKLOADS_ERASURE_CODING_HH

#include "codes/reed_solomon.hh"
#include "workloads/workload.hh"

namespace hyperplane {
namespace workloads {

/** RS(k=6, m=3) erasure encoder over item payloads. */
class ErasureCoding : public Workload
{
  public:
    static constexpr unsigned dataShards = 6;
    static constexpr unsigned parityShards = 3;

    explicit ErasureCoding(std::uint64_t seed);

    Kind kind() const override { return Kind::ErasureCoding; }
    void execute(const queueing::WorkItem &item) override;
    Tick serviceCycles(const queueing::WorkItem &item) const override;
    unsigned dataLines(const queueing::WorkItem &item) const override;
    std::uint32_t defaultPayloadBytes() const override { return 1024; }

    /** Split an item's payload into shards and encode parity. */
    std::vector<codes::Shard> encode(const queueing::WorkItem &item) const;

    /** Build the data shards for an item (for round-trip tests). */
    std::vector<codes::Shard> makeShards(
        const queueing::WorkItem &item) const;

    const codes::ReedSolomon &coder() const { return rs_; }

    std::uint64_t processed() const { return processed_; }

  private:
    codes::ReedSolomon rs_;
    std::uint64_t seed_;
    std::uint64_t processed_ = 0;
};

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_ERASURE_CODING_HH
