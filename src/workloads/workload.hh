/**
 * @file
 * The six data-plane tasks of the paper's evaluation (Section V-A).
 *
 * Each workload provides two faces:
 *
 *  1. execute(): the *real* computation (GRE encapsulation, AES-CBC-256,
 *     hash-table steering, Reed-Solomon/Cauchy coding, RAID P+Q parity,
 *     RPC dispatch preparation) on genuine bytes, used by the examples,
 *     the tests, and the micro-benchmarks.
 *
 *  2. serviceCycles() / dataLines(): the calibrated timing and
 *     cache-footprint model the discrete-event simulation charges per
 *     work item.  Constants are set so single-core task throughputs land
 *     in the ranges Figure 8 of the paper reports (all tasks take "a few
 *     microseconds").
 */

#ifndef HYPERPLANE_WORKLOADS_WORKLOAD_HH
#define HYPERPLANE_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "queueing/task_queue.hh"
#include "sim/types.hh"

namespace hyperplane {
namespace workloads {

/**
 * The six evaluation tasks of the paper, plus the three stateful
 * applications of src/app wrapped as simulator workloads.
 */
enum class Kind : std::uint8_t
{
    PacketEncapsulation,
    CryptoForwarding,
    PacketSteering,
    ErasureCoding,
    RaidProtection,
    RequestDispatching,
    // --- stateful app suite (src/app handlers behind Workload) -------
    HeavyHitter,
    ConntrackLb,
    SpinRtt,
};

const char *toString(Kind k);

/**
 * The six paper kinds, in the paper's presentation order.  The
 * stateful app kinds are deliberately NOT here: every figure
 * reproduction iterates this list, and its membership is part of the
 * golden-output contract.
 */
const std::vector<Kind> &allKinds();

/** The three stateful app kinds (bench/ext_app_path sweeps these). */
const std::vector<Kind> &appKinds();

/** A data-plane task. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual Kind kind() const = 0;
    std::string name() const { return toString(kind()); }

    /**
     * Perform the real computation for one work item.  Implementations
     * synthesize deterministic input bytes from the item's seq/flowId so
     * results are reproducible.
     */
    virtual void execute(const queueing::WorkItem &item) = 0;

    /** Compute cycles the timing model charges per item. */
    virtual Tick serviceCycles(const queueing::WorkItem &item) const = 0;

    /**
     * Simulation hook: process one item AND return its service cycles.
     * The default forwards to serviceCycles() — bit-identical timing
     * for the stateless paper workloads.  Stateful workloads override
     * it to mutate per-flow state and charge state-dependent cost.
     */
    virtual Tick onItem(const queueing::WorkItem &item)
    {
        return serviceCycles(item);
    }

    /**
     * Cache lines of task data touched per item (buffer reads/writes the
     * simulation issues against the memory system).
     */
    virtual unsigned dataLines(const queueing::WorkItem &item) const = 0;

    /** Typical payload size for the traffic generator, bytes. */
    virtual std::uint32_t defaultPayloadBytes() const = 0;
};

/**
 * Factory.
 * @param seed      Seeds any internal state (keys, tables).
 * @param numShards State partitions for the stateful app kinds; the
 *                  SDP system passes its queue count so shard == queue
 *                  id and state stays cluster-local.  Ignored by the
 *                  stateless paper workloads.
 */
std::unique_ptr<Workload> makeWorkload(Kind kind,
                                       std::uint64_t seed = 12345,
                                       unsigned numShards = 1024);

namespace detail {

/** Deterministic input-byte synthesis (splitmix64 stream). */
void fillDeterministic(std::uint8_t *dst, std::size_t len,
                       std::uint64_t seed);

} // namespace detail

} // namespace workloads
} // namespace hyperplane

#endif // HYPERPLANE_WORKLOADS_WORKLOAD_HH
