#include "emu/data_plane_pool.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace emu {

namespace {

thread_local int tlsWorkerIndex = -1;

} // namespace

DataPlanePool::DataPlanePool(EmuHyperPlane &hp, unsigned workers,
                             Handler handler, std::uint64_t maxBatch)
    : hp_(hp), numWorkers_(workers), handler_(std::move(handler)),
      maxBatch_(maxBatch)
{
    hp_assert(workers > 0, "pool needs at least one worker");
    hp_assert(maxBatch > 0, "batch must be at least one item");
    hp_assert(handler_ != nullptr, "pool needs a handler");
}

DataPlanePool::~DataPlanePool()
{
    stop();
}

void
DataPlanePool::start()
{
    if (running_.exchange(true))
        return;
    threads_.reserve(numWorkers_);
    for (unsigned i = 0; i < numWorkers_; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

void
DataPlanePool::stop()
{
    if (!running_.exchange(false))
        return;
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

bool
DataPlanePool::drain(std::chrono::nanoseconds deadline)
{
    using namespace std::chrono;
    const auto until = steady_clock::now() + deadline;
    bool drained = false;
    if (running_.load(std::memory_order_relaxed)) {
        // Workers keep serving; we only watch the doorbells empty out.
        while (steady_clock::now() < until) {
            if (hp_.totalPending() == 0) {
                drained = true;
                break;
            }
            std::this_thread::sleep_for(microseconds(200));
        }
        drained = drained || hp_.totalPending() == 0;
    }
    stop();
    return drained;
}

int
DataPlanePool::workerIndex()
{
    return tlsWorkerIndex;
}

void
DataPlanePool::workerLoop(unsigned index)
{
    using namespace std::chrono_literals;
    tlsWorkerIndex = static_cast<int>(index);
    while (running_.load(std::memory_order_relaxed)) {
        // A bounded wait keeps shutdown prompt: the timeout re-checks
        // running_ (the software stand-in for waking halted cores).
        const auto qid = hp_.qwait(5ms);
        if (!qid)
            continue;
        const std::uint64_t n = hp_.take(*qid, maxBatch_);
        if (n == 0)
            continue; // spurious grant
        handler_(*qid, n);
        processed_.fetch_add(n, std::memory_order_relaxed);
    }
    tlsWorkerIndex = -1;
}

} // namespace emu
} // namespace hyperplane
