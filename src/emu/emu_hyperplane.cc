#include "emu/emu_hyperplane.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace emu {

EmuHyperPlane::EmuHyperPlane(unsigned maxQueues,
                             core::ServicePolicy policy)
    : ready_(core::ReadySetConfig{maxQueues, policy,
                                  core::ArbiterKind::BrentKung, 1}),
      doorbells_(maxQueues, 0), registered_(maxQueues, false)
{
    hp_assert(maxQueues > 0, "need at least one queue slot");
}

std::optional<QueueId>
EmuHyperPlane::addQueue()
{
    std::lock_guard<std::mutex> lock(m_);
    if (numRegistered_ == registered_.size())
        return std::nullopt;
    for (QueueId q = 0; q < registered_.size(); ++q) {
        if (!registered_[q]) {
            registered_[q] = true;
            doorbells_[q] = 0;
            ready_.enable(q);
            ++numRegistered_;
            return q;
        }
    }
    return std::nullopt;
}

void
EmuHyperPlane::removeQueue(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < registered_.size(), "qid out of range");
    if (!registered_[qid])
        return;
    registered_[qid] = false;
    doorbells_[qid] = 0;
    ready_.deactivate(qid);
    --numRegistered_;
}

void
EmuHyperPlane::ring(QueueId qid, std::uint64_t n)
{
    {
        std::lock_guard<std::mutex> lock(m_);
        hp_assert(qid < registered_.size(), "qid out of range");
        hp_assert(registered_[qid], "ring on unregistered queue");
        doorbells_[qid] += n;
        // The monitoring-set disarm/activate: mark the queue ready.
        ready_.activate(qid);
    }
    cv_.notify_one();
}

std::optional<QueueId>
EmuHyperPlane::qwait(std::chrono::nanoseconds timeout)
{
    std::unique_lock<std::mutex> lock(m_);
    std::optional<QueueId> qid;
    const bool ok = cv_.wait_for(lock, timeout, [&] {
        qid = ready_.selectNext();
        return qid.has_value();
    });
    if (!ok)
        return std::nullopt;
    ++grants_;
    return qid;
}

std::optional<QueueId>
EmuHyperPlane::qwaitNonBlocking()
{
    std::lock_guard<std::mutex> lock(m_);
    auto qid = ready_.selectNext();
    if (qid)
        ++grants_;
    return qid;
}

std::uint64_t
EmuHyperPlane::take(QueueId qid, std::uint64_t maxItems)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < registered_.size(), "qid out of range");
    // QWAIT-VERIFY: a spurious grant claims nothing; the queue stays
    // armed (next ring() re-activates it).
    const std::uint64_t avail = doorbells_[qid];
    const std::uint64_t taken = std::min(avail, maxItems);
    doorbells_[qid] -= taken;
    // QWAIT-RECONSIDER: re-activate if items remain.
    if (doorbells_[qid] > 0)
        ready_.activate(qid);
    return taken;
}

void
EmuHyperPlane::enable(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    ready_.enable(qid);
    cv_.notify_all();
}

void
EmuHyperPlane::disable(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    ready_.disable(qid);
}

void
EmuHyperPlane::setWeight(QueueId qid, std::uint32_t weight)
{
    std::lock_guard<std::mutex> lock(m_);
    ready_.setWeight(qid, weight);
}

std::uint64_t
EmuHyperPlane::pendingItems(QueueId qid) const
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < doorbells_.size(), "qid out of range");
    return doorbells_[qid];
}

std::uint64_t
EmuHyperPlane::grants() const
{
    std::lock_guard<std::mutex> lock(m_);
    return grants_;
}

} // namespace emu
} // namespace hyperplane
