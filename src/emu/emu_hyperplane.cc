#include "emu/emu_hyperplane.hh"

#include "sim/logging.hh"

namespace hyperplane {
namespace emu {

EmuHyperPlane::EmuHyperPlane(unsigned maxQueues,
                             core::ServicePolicy policy)
    : ready_(core::ReadySetConfig{maxQueues, policy,
                                  core::ArbiterKind::BrentKung, 1}),
      doorbells_(maxQueues, 0), ringCalls_(maxQueues, 0),
      registered_(maxQueues, false), muted_(maxQueues, false)
{
    hp_assert(maxQueues > 0, "need at least one queue slot");
}

std::optional<QueueId>
EmuHyperPlane::addQueue()
{
    std::lock_guard<std::mutex> lock(m_);
    if (numRegistered_ == registered_.size())
        return std::nullopt;
    for (QueueId q = 0; q < registered_.size(); ++q) {
        if (!registered_[q]) {
            registered_[q] = true;
            doorbells_[q] = 0;
            ready_.enable(q);
            ++numRegistered_;
            return q;
        }
    }
    return std::nullopt;
}

void
EmuHyperPlane::removeQueue(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < registered_.size(), "qid out of range");
    if (!registered_[qid])
        return;
    registered_[qid] = false;
    doorbells_[qid] = 0;
    muted_[qid] = false;
    ready_.deactivate(qid);
    --numRegistered_;
}

bool
EmuHyperPlane::notifyIfNewlyGrantable(QueueId qid, bool wasGrantable)
{
    if (wasGrantable || !grantable(qid) || waiters_ == 0)
        return false;
    ++wakeups_;
    cv_.notify_one();
    return true;
}

void
EmuHyperPlane::ring(QueueId qid, std::uint64_t n)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < registered_.size(), "qid out of range");
    hp_assert(registered_[qid], "ring on unregistered queue");
    doorbells_[qid] += n;
    ++ringCalls_[qid];
    // Storm containment: a muted queue keeps its accounting (the items
    // stay advertised) but the notification side is severed — only the
    // watchdog's pollActivate() sweep moves it forward.
    if (muted_[qid]) {
        ++mutedRings_;
        return;
    }
    // The monitoring-set disarm/activate: mark the queue ready.  One
    // waiter per newly-grantable queue — a ring on an already-ready
    // queue wakes nobody (the pending state will be granted anyway).
    const bool wasGrantable = grantable(qid);
    ready_.activate(qid);
    notifyIfNewlyGrantable(qid, wasGrantable);
}

void
EmuHyperPlane::setMuted(QueueId qid, bool muted)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < muted_.size(), "qid out of range");
    muted_[qid] = muted;
    if (!muted && registered_[qid] && doorbells_[qid] > 0) {
        // Unmuting must not strand advertised work until the next ring.
        const bool wasGrantable = grantable(qid);
        ready_.activate(qid);
        notifyIfNewlyGrantable(qid, wasGrantable);
    }
}

bool
EmuHyperPlane::isMuted(QueueId qid) const
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < muted_.size(), "qid out of range");
    return muted_[qid];
}

bool
EmuHyperPlane::pollActivate(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < doorbells_.size(), "qid out of range");
    if (!registered_[qid] || doorbells_[qid] == 0)
        return false;
    const bool wasGrantable = grantable(qid);
    ready_.activate(qid);
    notifyIfNewlyGrantable(qid, wasGrantable);
    return true;
}

std::uint64_t
EmuHyperPlane::ringCalls(QueueId qid) const
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < ringCalls_.size(), "qid out of range");
    return ringCalls_[qid];
}

std::uint64_t
EmuHyperPlane::mutedRings() const
{
    std::lock_guard<std::mutex> lock(m_);
    return mutedRings_;
}

std::optional<QueueId>
EmuHyperPlane::qwait(std::chrono::nanoseconds timeout)
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::unique_lock<std::mutex> lock(m_);
    auto qid = ready_.selectNext();
    while (!qid) {
        ++waiters_;
        const auto status = cv_.wait_until(lock, deadline);
        --waiters_;
        qid = ready_.selectNext();
        if (qid)
            break;
        if (status == std::cv_status::timeout) {
            ++qwaitTimeouts_;
            return std::nullopt;
        }
        // Notified (or pthread-spurious) but nothing grantable: a racing
        // consumer claimed the queue first.
        ++spuriousWakes_;
    }
    ++grants_;
    return qid;
}

std::optional<QueueId>
EmuHyperPlane::qwaitNonBlocking()
{
    std::lock_guard<std::mutex> lock(m_);
    auto qid = ready_.selectNext();
    if (qid)
        ++grants_;
    return qid;
}

std::uint64_t
EmuHyperPlane::take(QueueId qid, std::uint64_t maxItems)
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < registered_.size(), "qid out of range");
    // QWAIT-VERIFY: a spurious grant claims nothing; the queue stays
    // armed (next ring() re-activates it).
    const std::uint64_t avail = doorbells_[qid];
    const std::uint64_t taken = std::min(avail, maxItems);
    doorbells_[qid] -= taken;
    // QWAIT-RECONSIDER: re-activate if items remain, and hand the
    // residual to another waiter instead of stranding it until the
    // next ring.
    if (doorbells_[qid] > 0) {
        const bool wasGrantable = grantable(qid);
        ready_.activate(qid);
        notifyIfNewlyGrantable(qid, wasGrantable);
    }
    return taken;
}

void
EmuHyperPlane::enable(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    const bool wasGrantable = grantable(qid);
    ready_.enable(qid);
    // Targeted: enabling makes at most this one queue newly grantable.
    notifyIfNewlyGrantable(qid, wasGrantable);
}

void
EmuHyperPlane::disable(QueueId qid)
{
    std::lock_guard<std::mutex> lock(m_);
    ready_.disable(qid);
}

void
EmuHyperPlane::setWeight(QueueId qid, std::uint32_t weight)
{
    std::lock_guard<std::mutex> lock(m_);
    ready_.setWeight(qid, weight);
}

std::uint64_t
EmuHyperPlane::pendingItems(QueueId qid) const
{
    std::lock_guard<std::mutex> lock(m_);
    hp_assert(qid < doorbells_.size(), "qid out of range");
    return doorbells_[qid];
}

std::uint64_t
EmuHyperPlane::totalPending() const
{
    std::lock_guard<std::mutex> lock(m_);
    std::uint64_t total = 0;
    for (QueueId q = 0; q < registered_.size(); ++q)
        if (registered_[q])
            total += doorbells_[q];
    return total;
}

std::uint64_t
EmuHyperPlane::grants() const
{
    std::lock_guard<std::mutex> lock(m_);
    return grants_;
}

std::uint64_t
EmuHyperPlane::wakeups() const
{
    std::lock_guard<std::mutex> lock(m_);
    return wakeups_;
}

std::uint64_t
EmuHyperPlane::spuriousWakes() const
{
    std::lock_guard<std::mutex> lock(m_);
    return spuriousWakes_;
}

std::uint64_t
EmuHyperPlane::qwaitTimeouts() const
{
    std::lock_guard<std::mutex> lock(m_);
    return qwaitTimeouts_;
}

void
EmuHyperPlane::registerStats(stats::Registry &reg,
                             const std::string &prefix) const
{
    reg.addScalar(prefix + ".grants",
                  [this] { return static_cast<double>(grants()); });
    reg.addScalar(prefix + ".wakeups",
                  [this] { return static_cast<double>(wakeups()); });
    reg.addScalar(prefix + ".spurious_wakes", [this] {
        return static_cast<double>(spuriousWakes());
    });
    reg.addScalar(prefix + ".qwait_timeouts", [this] {
        return static_cast<double>(qwaitTimeouts());
    });
    reg.addScalar(prefix + ".muted_rings", [this] {
        return static_cast<double>(mutedRings());
    });
}

} // namespace emu
} // namespace hyperplane
