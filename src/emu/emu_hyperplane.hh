/**
 * @file
 * Software emulation of the HyperPlane programming model.
 *
 * EmuHyperPlane gives real applications the Algorithm 1 API today, with
 * no hardware: producers ring per-queue doorbells from any thread, and
 * consumer (data-plane) threads block in qwait() until a queue is ready,
 * receiving QIDs in service-policy order from the same ReadySet logic
 * the simulated hardware uses.  Code written against this interface maps
 * 1:1 onto the accelerated instructions:
 *
 *   addQueue/removeQueue  <->  QWAIT-ADD / QWAIT-REMOVE
 *   qwait                 <->  QWAIT (halting wait)
 *   take                  <->  QWAIT-VERIFY + dequeue +
 *                              QWAIT-RECONSIDER (atomic)
 *   enable/disable        <->  QWAIT-ENABLE / QWAIT-DISABLE
 *
 * Synchronization uses one mutex + condition variable; this is the
 * *correctness* front-end, not a performance claim (the paper's point is
 * precisely that software implementations cannot match the hardware).
 *
 * Wakeups are *targeted*: a state change notifies one waiter per queue
 * that just became grantable (not-ready -> ready while enabled), never
 * a broadcast.  Under bursty producers (the UDP server's RX threads)
 * broadcast wakes turn every doorbell into a thundering herd where all
 * but one woken worker finds nothing; with targeted wakes the number of
 * notified waiters matches the number of newly-grantable queues.  The
 * residual wakes that still find nothing (a racing qwaitNonBlocking, a
 * pthread-level spurious return) are counted in spuriousWakes.
 */

#ifndef HYPERPLANE_EMU_EMU_HYPERPLANE_HH
#define HYPERPLANE_EMU_EMU_HYPERPLANE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/ready_set.hh"
#include "sim/types.hh"
#include "stats/registry.hh"
#include "stats/sampler.hh"

namespace hyperplane {
namespace emu {

/** Software QWAIT device shared by producer and consumer threads. */
class EmuHyperPlane
{
  public:
    /**
     * @param maxQueues Capacity of the notification structures.
     * @param policy    Service policy for QID selection.
     */
    explicit EmuHyperPlane(
        unsigned maxQueues,
        core::ServicePolicy policy = core::ServicePolicy::RoundRobin);

    // --- Control plane ------------------------------------------------

    /**
     * Register a queue (QWAIT-ADD).
     * @return The new QID, or std::nullopt if capacity is exhausted.
     */
    std::optional<QueueId> addQueue();

    /** Unregister a queue (QWAIT-REMOVE). */
    void removeQueue(QueueId qid);

    // --- Producer side ------------------------------------------------

    /**
     * Ring the doorbell: advertise @p n new items in @p qid and wake
     * one waiting consumer if the queue just became grantable.
     */
    void ring(QueueId qid, std::uint64_t n = 1);

    // --- Consumer (data-plane) side ------------------------------------

    /**
     * Block until some queue is ready (QWAIT).
     *
     * @param timeout Give up after this long.
     * @return The next ready QID per the service policy, or std::nullopt
     *         on timeout.
     */
    std::optional<QueueId> qwait(
        std::chrono::nanoseconds timeout = std::chrono::seconds(1));

    /** Non-blocking QWAIT variant (background-task pattern, Sec III-A). */
    std::optional<QueueId> qwaitNonBlocking();

    /**
     * Claim up to @p maxItems from @p qid — the VERIFY + dequeue +
     * RECONSIDER sequence, atomic with respect to ring().  If items
     * remain after the claim, the queue is re-activated and one more
     * waiter is notified so the residual is not stranded until the next
     * ring.
     *
     * @return Number of items claimed (0 on a spurious wake-up).
     */
    std::uint64_t take(QueueId qid, std::uint64_t maxItems = 1);

    /** QWAIT-ENABLE / QWAIT-DISABLE. */
    void enable(QueueId qid);
    void disable(QueueId qid);

    /** WRR weight control. */
    void setWeight(QueueId qid, std::uint32_t weight);

    // --- Doorbell-storm containment -----------------------------------
    //
    // A storming producer rings a doorbell far faster than work arrives,
    // turning every ring into a wakeup and every wakeup into a spurious
    // take() on some worker.  Muting a queue decouples accounting from
    // notification: ring() keeps advertising items (so nothing is lost)
    // but stops activating the ready set or waking anyone.  A muted
    // queue makes progress only through pollActivate() — the watchdog's
    // software-polled fallback path — until the storm subsides and the
    // watchdog unmutes it.

    /**
     * Mute/unmute @p qid.  Unmuting immediately re-activates the queue
     * if items are pending, so no advertised work is stranded.
     */
    void setMuted(QueueId qid, bool muted);

    bool isMuted(QueueId qid) const;

    /**
     * Software-poll a muted (or any) queue: if its doorbell advertises
     * items, activate it and wake one waiter.
     * @return true if the queue had pending items.
     */
    bool pollActivate(QueueId qid);

    /**
     * Monotonic count of ring() calls on @p qid (calls, not items) —
     * the watchdog diffs this across sweeps to detect doorbell storms.
     */
    std::uint64_t ringCalls(QueueId qid) const;

    /** ring() calls swallowed while their queue was muted. */
    std::uint64_t mutedRings() const;

    /** Doorbell value (advertised outstanding items). */
    std::uint64_t pendingItems(QueueId qid) const;

    /** Sum of doorbell values across every registered queue. */
    std::uint64_t totalPending() const;

    /** Total successful qwait() returns. */
    std::uint64_t grants() const;

    /** Condition-variable notifies issued (targeted wakeups). */
    std::uint64_t wakeups() const;

    /** Wakes that found no grantable queue (woken in vain). */
    std::uint64_t spuriousWakes() const;

    /** qwait() calls that returned std::nullopt on timeout. */
    std::uint64_t qwaitTimeouts() const;

    /**
     * Register the device counters (grants, wakeups, spurious_wakes,
     * qwait_timeouts) under @p prefix ("server.dev").
     */
    void registerStats(stats::Registry &reg,
                       const std::string &prefix) const;

  private:
    /**
     * Wake one waiter if @p qid just transitioned to grantable.
     * @pre m_ held.  @return true if a notify was issued.
     */
    bool notifyIfNewlyGrantable(QueueId qid, bool wasGrantable);

    /** @pre m_ held. */
    bool grantable(QueueId qid) const
    {
        return ready_.isReady(qid) && ready_.isEnabled(qid);
    }

    mutable std::mutex m_;
    std::condition_variable cv_;
    core::ReadySet ready_;
    std::vector<std::uint64_t> doorbells_;
    std::vector<std::uint64_t> ringCalls_;
    std::vector<bool> registered_;
    std::vector<bool> muted_;
    unsigned numRegistered_ = 0;
    unsigned waiters_ = 0;
    std::uint64_t grants_ = 0;
    std::uint64_t wakeups_ = 0;
    std::uint64_t spuriousWakes_ = 0;
    std::uint64_t qwaitTimeouts_ = 0;
    std::uint64_t mutedRings_ = 0;
};

} // namespace emu
} // namespace hyperplane

#endif // HYPERPLANE_EMU_EMU_HYPERPLANE_HH
