/**
 * @file
 * A worker pool running the QWAIT service loop on real threads.
 *
 * DataPlanePool is the scale-up organization of Section III-B for the
 * software front-end: N data-plane threads share one EmuHyperPlane (all
 * queues visible to all workers), each looping
 * QWAIT -> take -> handler.  Applications provide only the per-batch
 * handler; registration and producers use the EmuHyperPlane directly.
 *
 * Shutdown comes in two flavours the UDP server needs for SIGINT-safe
 * teardown: stop() halts after the in-flight batches finish, and
 * drain(deadline) first keeps serving until every doorbell reads zero
 * (or the deadline passes), so accepted work is answered before the
 * workers exit.  In both cases no handler runs after the call returns —
 * the workers are joined before control comes back.
 */

#ifndef HYPERPLANE_EMU_DATA_PLANE_POOL_HH
#define HYPERPLANE_EMU_DATA_PLANE_POOL_HH

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include "emu/emu_hyperplane.hh"

namespace hyperplane {
namespace emu {

/** Shared-queue worker pool over a software QWAIT device. */
class DataPlanePool
{
  public:
    /**
     * Called with (qid, claimed) for every non-empty take(); runs on a
     * worker thread and must be thread-safe across queues (per-queue
     * calls may still interleave unless the application serializes —
     * see the paper's in-order discussion).
     */
    using Handler = std::function<void(QueueId, std::uint64_t)>;

    /**
     * @param hp       The shared notification device.
     * @param workers  Data-plane threads to run.
     * @param handler  Batch handler.
     * @param maxBatch Items claimed per QWAIT grant.
     */
    DataPlanePool(EmuHyperPlane &hp, unsigned workers, Handler handler,
                  std::uint64_t maxBatch = 16);

    /** Stops and joins all workers. */
    ~DataPlanePool();

    DataPlanePool(const DataPlanePool &) = delete;
    DataPlanePool &operator=(const DataPlanePool &) = delete;

    /** Launch the workers. No-op if already running. */
    void start();

    /**
     * Signal and join the workers.  Idempotent.  In-flight batches
     * finish; pending doorbells may be left unserved.  When this
     * returns, the threads are joined and no handler will run again.
     */
    void stop();

    /**
     * Drain then stop: keep the workers serving until the device's
     * doorbells all read zero or @p deadline elapses, then stop().
     *
     * @return true if the device fully drained before the deadline.
     */
    bool drain(std::chrono::nanoseconds deadline);

    bool running() const { return running_; }
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Items handled across all workers so far. */
    std::uint64_t processed() const
    {
        return processed_.load(std::memory_order_relaxed);
    }

    /**
     * Index of the calling pool worker in [0, workers()), or -1 when
     * called from a thread that is not a pool worker.  Lets handlers
     * keep per-worker state (trace tracks, sharded counters) without
     * locking.
     */
    static int workerIndex();

  private:
    void workerLoop(unsigned index);

    EmuHyperPlane &hp_;
    unsigned numWorkers_;
    Handler handler_;
    std::uint64_t maxBatch_;
    std::atomic<bool> running_{false};
    std::atomic<std::uint64_t> processed_{0};
    std::vector<std::thread> threads_;
};

} // namespace emu
} // namespace hyperplane

#endif // HYPERPLANE_EMU_DATA_PLANE_POOL_HH
