#include "net/headers.hh"

#include <cstring>

#include "net/checksum.hh"
#include "sim/logging.hh"

namespace hyperplane {
namespace net {

void
putBe16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
putBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

std::uint16_t
getBe16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
getBe32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

void
EthernetHeader::write(std::uint8_t *p) const
{
    std::memcpy(p, dst.data(), 6);
    std::memcpy(p + 6, src.data(), 6);
    putBe16(p + 12, etherType);
}

EthernetHeader
EthernetHeader::parse(const std::uint8_t *p)
{
    EthernetHeader h;
    std::memcpy(h.dst.data(), p, 6);
    std::memcpy(h.src.data(), p + 6, 6);
    h.etherType = getBe16(p + 12);
    return h;
}

void
Ipv4Header::write(std::uint8_t *p) const
{
    p[0] = 0x45; // version 4, IHL 5
    p[1] = dscp << 2;
    putBe16(p + 2, totalLength);
    putBe16(p + 4, identification);
    putBe16(p + 6, 0); // flags/fragment offset: DF not modelled
    p[8] = ttl;
    p[9] = protocol;
    putBe16(p + 10, 0); // checksum placeholder
    putBe32(p + 12, src);
    putBe32(p + 16, dst);
    putBe16(p + 10, internetChecksum(p, wireSize));
}

std::optional<Ipv4Header>
Ipv4Header::parse(const std::uint8_t *p)
{
    if ((p[0] >> 4) != 4 || (p[0] & 0x0f) != 5)
        return std::nullopt;
    if (internetChecksum(p, wireSize) != 0)
        return std::nullopt;
    Ipv4Header h;
    h.dscp = p[1] >> 2;
    h.totalLength = getBe16(p + 2);
    h.identification = getBe16(p + 4);
    h.ttl = p[8];
    h.protocol = p[9];
    h.src = getBe32(p + 12);
    h.dst = getBe32(p + 16);
    return h;
}

void
Ipv6Header::write(std::uint8_t *p) const
{
    p[0] = static_cast<std::uint8_t>(0x60 | (trafficClass >> 4));
    p[1] = static_cast<std::uint8_t>((trafficClass << 4) |
                                     ((flowLabel >> 16) & 0x0f));
    p[2] = static_cast<std::uint8_t>(flowLabel >> 8);
    p[3] = static_cast<std::uint8_t>(flowLabel);
    putBe16(p + 4, payloadLength);
    p[6] = nextHeader;
    p[7] = hopLimit;
    std::memcpy(p + 8, src.data(), 16);
    std::memcpy(p + 24, dst.data(), 16);
}

std::optional<Ipv6Header>
Ipv6Header::parse(const std::uint8_t *p)
{
    if ((p[0] >> 4) != 6)
        return std::nullopt;
    Ipv6Header h;
    h.trafficClass =
        static_cast<std::uint8_t>(((p[0] & 0x0f) << 4) | (p[1] >> 4));
    h.flowLabel = (static_cast<std::uint32_t>(p[1] & 0x0f) << 16) |
                  (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
    h.payloadLength = getBe16(p + 4);
    h.nextHeader = p[6];
    h.hopLimit = p[7];
    std::memcpy(h.src.data(), p + 8, 16);
    std::memcpy(h.dst.data(), p + 24, 16);
    return h;
}

void
UdpHeader::write(std::uint8_t *p) const
{
    putBe16(p, srcPort);
    putBe16(p + 2, dstPort);
    putBe16(p + 4, length);
    putBe16(p + 6, checksum);
}

UdpHeader
UdpHeader::parse(const std::uint8_t *p)
{
    UdpHeader h;
    h.srcPort = getBe16(p);
    h.dstPort = getBe16(p + 2);
    h.length = getBe16(p + 4);
    h.checksum = getBe16(p + 6);
    return h;
}

void
GreHeader::write(std::uint8_t *p, const std::uint8_t *payload,
                 std::size_t payloadLen) const
{
    p[0] = static_cast<std::uint8_t>((checksumPresent ? 0x80 : 0) |
                                     (keyPresent ? 0x20 : 0));
    p[1] = 0; // version 0
    putBe16(p + 2, protocolType);
    std::size_t off = 4;
    std::uint8_t *csumField = nullptr;
    if (checksumPresent) {
        csumField = p + off;
        putBe32(p + off, 0); // checksum + reserved1, filled below
        off += 4;
    }
    if (keyPresent) {
        putBe32(p + off, key);
        off += 4;
    }
    if (checksumPresent) {
        std::uint32_t sum = checksumPartial(p, off, 0);
        if (payload != nullptr)
            sum = checksumPartial(payload, payloadLen, sum);
        putBe16(csumField, finishChecksum(sum));
    }
}

std::optional<GreHeader>
GreHeader::parse(const std::uint8_t *p, std::size_t len)
{
    if (len < 4)
        return std::nullopt;
    const std::uint8_t flags = p[0];
    // Reserved bits (routing-present and reserved0) and version must be 0.
    if ((flags & 0x5f) != 0 || (p[1] & 0x07) != 0)
        return std::nullopt;
    GreHeader h;
    h.checksumPresent = (flags & 0x80) != 0;
    h.keyPresent = (flags & 0x20) != 0;
    h.protocolType = getBe16(p + 2);
    if (len < h.wireSize())
        return std::nullopt;
    std::size_t off = 4;
    if (h.checksumPresent)
        off += 4; // verified by the caller over header+payload if desired
    if (h.keyPresent)
        h.key = getBe32(p + off);
    return h;
}

bool
greEncapsulate(PacketBuffer &pkt, const Ipv6Header &outer,
               std::uint32_t key)
{
    if (pkt.size() < Ipv4Header::wireSize)
        return false;
    if (!Ipv4Header::parse(pkt.data()))
        return false;

    GreHeader gre;
    gre.checksumPresent = true;
    gre.keyPresent = true;
    gre.protocolType = etherTypeIpv4;
    gre.key = key;

    const std::size_t innerLen = pkt.size();
    const std::size_t greLen = gre.wireSize();

    // Build GRE over the inner packet (payload still at the front).
    const std::uint8_t *inner = pkt.data();
    std::uint8_t greBytes[12];
    hp_assert(greLen <= sizeof(greBytes), "GRE header too large");
    gre.write(greBytes, inner, innerLen);

    std::uint8_t *p = pkt.prepend(greLen + Ipv6Header::wireSize);

    Ipv6Header v6 = outer;
    v6.nextHeader = protoGre;
    v6.payloadLength = static_cast<std::uint16_t>(greLen + innerLen);
    v6.write(p);
    std::memcpy(p + Ipv6Header::wireSize, greBytes, greLen);
    return true;
}

std::optional<std::uint32_t>
greDecapsulate(PacketBuffer &pkt)
{
    if (pkt.size() < Ipv6Header::wireSize + 4)
        return std::nullopt;
    const auto v6 = Ipv6Header::parse(pkt.data());
    if (!v6 || v6->nextHeader != protoGre)
        return std::nullopt;
    const std::uint8_t *greStart = pkt.data() + Ipv6Header::wireSize;
    const std::size_t greAvail = pkt.size() - Ipv6Header::wireSize;
    const auto gre = GreHeader::parse(greStart, greAvail);
    if (!gre || gre->protocolType != etherTypeIpv4)
        return std::nullopt;
    if (gre->checksumPresent) {
        // Checksum over GRE header + payload must verify to zero.
        if (internetChecksum(greStart, greAvail) != 0)
            return std::nullopt;
    }
    pkt.stripFront(Ipv6Header::wireSize + gre->wireSize());
    if (!Ipv4Header::parse(pkt.data()))
        return std::nullopt;
    return gre->keyPresent ? gre->key : 0;
}

} // namespace net
} // namespace hyperplane
