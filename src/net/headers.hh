/**
 * @file
 * Protocol header codecs: Ethernet, IPv4, IPv6, UDP, and GRE (RFC 2784).
 *
 * Each header type provides a plain struct in host byte order plus
 * write()/parse() functions that serialize to / deserialize from network
 * byte order.  The packet-encapsulation workload uses these to implement
 * GRE IPv4-in-IPv6 tunneling exactly as described in Section V-A of the
 * paper.
 */

#ifndef HYPERPLANE_NET_HEADERS_HH
#define HYPERPLANE_NET_HEADERS_HH

#include <array>
#include <cstdint>
#include <optional>

#include "net/packet.hh"

namespace hyperplane {
namespace net {

/** IP protocol / IPv6 next-header numbers used here. */
enum IpProto : std::uint8_t
{
    protoTcp = 6,
    protoUdp = 17,
    protoGre = 47,
    protoIpv4 = 4, ///< IPv4 encapsulated in IPv6 (GRE protocol field uses
                   ///< etherTypeIpv4 instead)
};

/** EtherType values. */
enum EtherType : std::uint16_t
{
    etherTypeIpv4 = 0x0800,
    etherTypeIpv6 = 0x86dd,
};

/** 16-bit big-endian store/load helpers. */
void putBe16(std::uint8_t *p, std::uint16_t v);
void putBe32(std::uint8_t *p, std::uint32_t v);
std::uint16_t getBe16(const std::uint8_t *p);
std::uint32_t getBe32(const std::uint8_t *p);

/** Ethernet II header (no VLAN). */
struct EthernetHeader
{
    static constexpr std::size_t wireSize = 14;

    std::array<std::uint8_t, 6> dst{};
    std::array<std::uint8_t, 6> src{};
    std::uint16_t etherType = 0;

    void write(std::uint8_t *p) const;
    static EthernetHeader parse(const std::uint8_t *p);
};

/** IPv4 header without options. */
struct Ipv4Header
{
    static constexpr std::size_t wireSize = 20;

    std::uint8_t dscp = 0;
    std::uint16_t totalLength = 0;
    std::uint16_t identification = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    /**
     * Serialize, computing the header checksum.
     * @param p Destination; must have wireSize bytes.
     */
    void write(std::uint8_t *p) const;

    /**
     * Parse and verify the checksum.
     * @return std::nullopt if the checksum is invalid or version != 4.
     */
    static std::optional<Ipv4Header> parse(const std::uint8_t *p);
};

/** IPv6 fixed header. */
struct Ipv6Header
{
    static constexpr std::size_t wireSize = 40;

    std::uint8_t trafficClass = 0;
    std::uint32_t flowLabel = 0;
    std::uint16_t payloadLength = 0;
    std::uint8_t nextHeader = 0;
    std::uint8_t hopLimit = 64;
    std::array<std::uint8_t, 16> src{};
    std::array<std::uint8_t, 16> dst{};

    void write(std::uint8_t *p) const;

    /** @return std::nullopt if version != 6. */
    static std::optional<Ipv6Header> parse(const std::uint8_t *p);
};

/** UDP header. */
struct UdpHeader
{
    static constexpr std::size_t wireSize = 8;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    std::uint16_t length = 0;
    std::uint16_t checksum = 0;

    void write(std::uint8_t *p) const;
    static UdpHeader parse(const std::uint8_t *p);
};

/**
 * GRE header, RFC 2784 (optionally with the RFC 2890 key field).
 * The checksum-present variant carries checksum + reserved1 words.
 */
struct GreHeader
{
    bool checksumPresent = false;
    bool keyPresent = false;
    std::uint16_t protocolType = 0; ///< EtherType of the payload
    std::uint32_t key = 0;

    std::size_t wireSize() const
    {
        return 4 + (checksumPresent ? 4 : 0) + (keyPresent ? 4 : 0);
    }

    /**
     * Serialize.  If checksumPresent, the checksum is computed over the
     * GRE header and @p payloadLen bytes at @p payload.
     */
    void write(std::uint8_t *p, const std::uint8_t *payload = nullptr,
               std::size_t payloadLen = 0) const;

    /**
     * Parse.  @return std::nullopt on reserved flag bits or version != 0.
     */
    static std::optional<GreHeader> parse(const std::uint8_t *p,
                                          std::size_t len);
};

/**
 * Encapsulate an IPv4 packet inside IPv6+GRE (the paper's packet
 * encapsulation task).  @p pkt must start with an IPv4 header; on return
 * it starts with the new IPv6 header.
 *
 * @param pkt  Packet to encapsulate, modified in place.
 * @param outer Template outer IPv6 header (src/dst/hop-limit); payload
 *              length and next-header are filled in.
 * @param key  GRE key identifying the tunnel.
 * @return false if @p pkt does not hold a valid IPv4 packet.
 */
bool greEncapsulate(PacketBuffer &pkt, const Ipv6Header &outer,
                    std::uint32_t key);

/**
 * Reverse of greEncapsulate: strip outer IPv6+GRE.
 * @return The GRE key, or std::nullopt if the packet is not a valid
 *         GRE-in-IPv6 encapsulation of IPv4.
 */
std::optional<std::uint32_t> greDecapsulate(PacketBuffer &pkt);

} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_HEADERS_HH
