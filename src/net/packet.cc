#include "net/packet.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace hyperplane {
namespace net {

PacketBuffer::PacketBuffer(std::size_t len, std::size_t headroom)
    : store_(headroom + len, 0), offset_(headroom)
{
}

PacketBuffer::PacketBuffer(const std::uint8_t *data, std::size_t len,
                           std::size_t headroom)
    : store_(headroom + len), offset_(headroom)
{
    std::fill(store_.begin(), store_.begin() + headroom, 0);
    if (len > 0)
        std::memcpy(store_.data() + headroom, data, len);
}

std::uint8_t *
PacketBuffer::prepend(std::size_t n)
{
    if (n > offset_) {
        // Out of headroom: reallocate with fresh default headroom.
        std::vector<std::uint8_t> grown(defaultHeadroom + n + size());
        std::fill(grown.begin(), grown.begin() + defaultHeadroom + n, 0);
        std::memcpy(grown.data() + defaultHeadroom + n, data(), size());
        store_ = std::move(grown);
        offset_ = defaultHeadroom + n;
    }
    offset_ -= n;
    std::memset(store_.data() + offset_, 0, n);
    return data();
}

void
PacketBuffer::stripFront(std::size_t n)
{
    hp_assert(n <= size(), "stripFront beyond packet length");
    offset_ += n;
}

std::uint8_t *
PacketBuffer::append(std::size_t n)
{
    const std::size_t old = store_.size();
    store_.resize(old + n, 0);
    return store_.data() + old;
}

void
PacketBuffer::truncate(std::size_t n)
{
    hp_assert(n <= size(), "truncate beyond packet length");
    store_.resize(offset_ + n);
}

bool
PacketBuffer::operator==(const PacketBuffer &other) const
{
    return size() == other.size() &&
           std::memcmp(data(), other.data(), size()) == 0;
}

} // namespace net
} // namespace hyperplane
