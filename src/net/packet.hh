/**
 * @file
 * Packet buffer abstraction used by the networking workloads.
 *
 * PacketBuffer models an mbuf-style buffer: payload bytes stored in a
 * contiguous vector with reserved headroom so headers can be prepended
 * without copying the payload (the operation GRE encapsulation needs).
 */

#ifndef HYPERPLANE_NET_PACKET_HH
#define HYPERPLANE_NET_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hyperplane {
namespace net {

/** An mbuf-like byte buffer with headroom for header prepends. */
class PacketBuffer
{
  public:
    /** Default headroom reserved in front of the payload, bytes. */
    static constexpr std::size_t defaultHeadroom = 128;

    PacketBuffer() : PacketBuffer(0) {}

    /** Create a packet with @p len zeroed payload bytes. */
    explicit PacketBuffer(std::size_t len,
                          std::size_t headroom = defaultHeadroom);

    /** Create a packet holding a copy of [data, data+len). */
    PacketBuffer(const std::uint8_t *data, std::size_t len,
                 std::size_t headroom = defaultHeadroom);

    /** Current packet length in bytes. */
    std::size_t size() const { return store_.size() - offset_; }

    bool empty() const { return size() == 0; }

    /** Remaining headroom available for prepends. */
    std::size_t headroom() const { return offset_; }

    std::uint8_t *data() { return store_.data() + offset_; }
    const std::uint8_t *data() const { return store_.data() + offset_; }

    std::uint8_t &operator[](std::size_t i) { return data()[i]; }
    const std::uint8_t &operator[](std::size_t i) const
    {
        return data()[i];
    }

    /**
     * Prepend @p n bytes (zeroed) and return a pointer to them.
     * Falls back to reallocating with fresh headroom if exhausted.
     */
    std::uint8_t *prepend(std::size_t n);

    /** Remove @p n bytes from the front. @pre n <= size() */
    void stripFront(std::size_t n);

    /** Append @p n zeroed bytes and return a pointer to them. */
    std::uint8_t *append(std::size_t n);

    /** Truncate to @p n bytes. @pre n <= size() */
    void truncate(std::size_t n);

    /** Byte-wise equality of packet contents. */
    bool operator==(const PacketBuffer &other) const;

  private:
    std::vector<std::uint8_t> store_;
    std::size_t offset_;
};

} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_PACKET_HH
