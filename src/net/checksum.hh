/**
 * @file
 * Internet checksum (RFC 1071) and CRC32C.
 *
 * The internet checksum covers IPv4 headers; CRC32C (Castagnoli) is used
 * by the packet-steering workload as a flow hash and by the storage
 * workloads for block integrity tags.
 */

#ifndef HYPERPLANE_NET_CHECKSUM_HH
#define HYPERPLANE_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace hyperplane {
namespace net {

/**
 * RFC 1071 internet checksum over @p len bytes.
 * @return The 16-bit one's-complement checksum, host byte order.
 */
std::uint16_t internetChecksum(const std::uint8_t *data, std::size_t len);

/**
 * Incremental form: fold @p len bytes into a running 32-bit sum.
 * Finish with finishChecksum().
 */
std::uint32_t checksumPartial(const std::uint8_t *data, std::size_t len,
                              std::uint32_t sum);

/** Fold a partial sum into the final 16-bit checksum. */
std::uint16_t finishChecksum(std::uint32_t sum);

/** CRC32C (Castagnoli polynomial 0x1EDC6F41), bit-reflected, init ~0. */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t len,
                     std::uint32_t seed = 0);

} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_CHECKSUM_HH
