/**
 * @file
 * Internet checksum (RFC 1071) and CRC32C.
 *
 * The internet checksum covers IPv4 headers; CRC32C (Castagnoli) is used
 * by the packet-steering workload as a flow hash and by the storage
 * workloads for block integrity tags.
 *
 * Both are runtime-dispatched to the fastest kernel the host CPU
 * supports (scalar / SSE2 / AVX2 checksum, table / SSE4.2 crc32c) —
 * see net/simd/dispatch.hh.  Every variant is bit-identical to the
 * scalar reference, including the raw checksumPartial running sum, and
 * HYPERPLANE_FORCE_SCALAR=1 pins everything to scalar.
 */

#ifndef HYPERPLANE_NET_CHECKSUM_HH
#define HYPERPLANE_NET_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace hyperplane {
namespace net {

/**
 * RFC 1071 internet checksum over @p len bytes.  An odd trailing byte
 * is treated as the high byte of a final zero-padded 16-bit word, per
 * the RFC.
 *
 * @return The 16-bit one's-complement checksum, host byte order.
 */
std::uint16_t internetChecksum(const std::uint8_t *data, std::size_t len);

/**
 * Incremental form: fold @p len bytes into a running 32-bit sum.
 * Finish with finishChecksum().
 *
 * @warning Only the *final* chunk of a chained computation may have odd
 * length.  An odd chunk is zero-padded to a 16-bit boundary, so an odd
 * intermediate chunk inserts a phantom pad byte mid-stream and yields
 * the checksum of a different message — odd + even chaining does NOT
 * equal the one-shot checksum of the concatenation.  Callers that
 * checksum a message around a hole (e.g. a zeroed checksum field) must
 * split at even offsets, as the server wire codec does.
 */
std::uint32_t checksumPartial(const std::uint8_t *data, std::size_t len,
                              std::uint32_t sum);

/** Fold a partial sum into the final 16-bit checksum. */
std::uint16_t finishChecksum(std::uint32_t sum);

/**
 * Checksum of a message containing a 2-byte hole (a zeroed checksum
 * field) at @p holeOff.  Encapsulates the even-offset split the
 * checksumPartial warning above exists for: the chunk before the hole
 * ends at an even offset, so both chunks keep the RFC 1071 16-bit
 * alignment and only the final chunk may be odd.
 *
 * @pre holeOff is even and holeOff + 2 <= len.
 */
std::uint16_t checksumSpliced(const std::uint8_t *data, std::size_t len,
                              std::size_t holeOff);

/** CRC32C (Castagnoli polynomial 0x1EDC6F41), bit-reflected, init ~0. */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t len,
                     std::uint32_t seed = 0);

} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_CHECKSUM_HH
