/**
 * @file
 * SSE2 kernels (baseline on x86-64, so this TU needs no extra -m flag).
 *
 * The checksum kernel must reproduce the scalar partial sum bit for
 * bit: byteswap the 16-bit lanes in-register (the scalar sum is over
 * big-endian words), zero-extend to 32-bit lanes, and accumulate with
 * paddd.  Each lane wraps mod 2^32 exactly like the scalar sum, and
 * addition mod 2^32 is commutative, so the horizontal fold equals the
 * scalar left-to-right sum for any input.
 */

#include "net/simd/kernels.hh"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(__i386__))
#define HP_SIMD_HAVE_SSE2 1
#include <emmintrin.h>
#include <cstring>
#endif

namespace hyperplane {
namespace net {
namespace simd {
namespace detail {

#if defined(HP_SIMD_HAVE_SSE2)

namespace {

std::uint32_t
checksumPartialSse2Kernel(const std::uint8_t *data, std::size_t len,
                          std::uint32_t sum)
{
    std::size_t i = 0;
    if (len >= 64) {
        const __m128i zero = _mm_setzero_si128();
        __m128i acc = zero;
        for (; i + 16 <= len; i += 16) {
            __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(data + i));
            // Big-endian 16-bit words: swap the bytes of each lane.
            const __m128i sw = _mm_or_si128(_mm_slli_epi16(v, 8),
                                            _mm_srli_epi16(v, 8));
            acc = _mm_add_epi32(acc, _mm_unpacklo_epi16(sw, zero));
            acc = _mm_add_epi32(acc, _mm_unpackhi_epi16(sw, zero));
        }
        alignas(16) std::uint32_t lanes[4];
        _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
        sum += lanes[0] + lanes[1] + lanes[2] + lanes[3];
    }
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    return sum;
}

void
headerCheckSse2Kernel(const std::uint8_t *const *pkts,
                      const std::uint32_t *lens, std::size_t n,
                      const std::uint8_t *prefix,
                      std::uint8_t opcodeLimit, std::uint32_t minLen,
                      std::uint8_t *ok)
{
    // Bytes 0..4 of each packet against the prefix; bytes 5..7 masked
    // out of the compare, with the opcode bound checked scalar.
    const __m128i mask = _mm_set_epi64x(0x000000ffffffffffLL,
                                        0x000000ffffffffffLL);
    __m128i pat = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(prefix));
    pat = _mm_and_si128(_mm_unpacklo_epi64(pat, pat), mask);

    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        if (lens[i] < minLen || lens[i + 1] < minLen) {
            headerCheckScalar(pkts + i, lens + i, 2, prefix,
                              opcodeLimit, minLen, ok + i);
            continue;
        }
        const __m128i a = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(pkts[i]));
        const __m128i b = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(pkts[i + 1]));
        const __m128i v =
            _mm_and_si128(_mm_unpacklo_epi64(a, b), mask);
        const int eq = _mm_movemask_epi8(_mm_cmpeq_epi8(v, pat));
        ok[i] = (eq & 0x00ff) == 0x00ff && pkts[i][5] < opcodeLimit;
        ok[i + 1] =
            (eq & 0xff00) == 0xff00 && pkts[i + 1][5] < opcodeLimit;
    }
    if (i < n) {
        headerCheckScalar(pkts + i, lens + i, n - i, prefix,
                          opcodeLimit, minLen, ok + i);
    }
}

} // namespace

ChecksumPartialFn
checksumPartialSse2Compiled()
{
    return &checksumPartialSse2Kernel;
}

HeaderCheckFn
headerCheckSse2Compiled()
{
    return &headerCheckSse2Kernel;
}

#else

ChecksumPartialFn
checksumPartialSse2Compiled()
{
    return nullptr;
}

HeaderCheckFn
headerCheckSse2Compiled()
{
    return nullptr;
}

#endif

} // namespace detail
} // namespace simd
} // namespace net
} // namespace hyperplane
