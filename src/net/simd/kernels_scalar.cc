/**
 * @file
 * Scalar reference kernels.  Every SIMD variant is differential-tested
 * against these byte for byte, so they are the specification: keep them
 * boring and obviously correct.
 */

#include "net/simd/kernels.hh"

#include <array>
#include <cstring>

namespace hyperplane {
namespace net {
namespace simd {
namespace detail {

std::uint32_t
checksumPartialScalar(const std::uint8_t *data, std::size_t len,
                      std::uint32_t sum)
{
    std::size_t i = 0;
    for (; i + 1 < len; i += 2)
        sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
    if (i < len)
        sum += static_cast<std::uint32_t>(data[i]) << 8;
    return sum;
}

namespace {

/** Build the byte-wise CRC32C table at static-init time. */
std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    // Reflected Castagnoli polynomial.
    constexpr std::uint32_t poly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
        table[i] = crc;
    }
    return table;
}

const std::array<std::uint32_t, 256> crcTable = makeCrc32cTable();

} // namespace

std::uint32_t
crc32cScalar(const std::uint8_t *data, std::size_t len,
             std::uint32_t seed)
{
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ crcTable[(crc ^ data[i]) & 0xff];
    return ~crc;
}

void
headerCheckScalar(const std::uint8_t *const *pkts,
                  const std::uint32_t *lens, std::size_t n,
                  const std::uint8_t *prefix, std::uint8_t opcodeLimit,
                  std::uint32_t minLen, std::uint8_t *ok)
{
    for (std::size_t i = 0; i < n; ++i) {
        ok[i] = lens[i] >= minLen &&
                std::memcmp(pkts[i], prefix, 5) == 0 &&
                pkts[i][5] < opcodeLimit;
    }
}

} // namespace detail
} // namespace simd
} // namespace net
} // namespace hyperplane
