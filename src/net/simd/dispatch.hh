/**
 * @file
 * Runtime ISA dispatch for the per-packet hot-path kernels.
 *
 * The three per-packet costs the UDP data plane pays on every datagram
 * — the RFC 1071 checksum, the CRC32C flow hash, and the wire-header
 * prefix validation — each exist in a scalar reference form plus SIMD
 * variants (SSE2 / SSE4.2 crc32 / AVX2).  A one-time cpuid probe picks
 * the fastest variant the host supports and publishes it through a
 * function-pointer table; callers go through net::checksumPartial /
 * net::crc32c / wire::precheckRequests and never see the variants.
 *
 * Every SIMD variant is bit-exact with its scalar reference — not just
 * the finished value but the *raw running sum* of checksumPartial, so
 * differential tests compare partial sums directly and chained
 * computations are variant-independent.  (The checksum kernels byteswap
 * 16-bit lanes in-register and accumulate into 32-bit lanes; addition
 * mod 2^32 is commutative, so any partition of the words matches the
 * scalar left-to-right sum.)
 *
 * `HYPERPLANE_FORCE_SCALAR=1` in the environment pins the table to the
 * scalar kernels — the differential-testing escape hatch CI's
 * forced-scalar leg uses.  The probe runs once on first use; tests that
 * toggle the variable call refreshDispatch() (not safe concurrently
 * with hot-path traffic).
 */

#ifndef HYPERPLANE_NET_SIMD_DISPATCH_HH
#define HYPERPLANE_NET_SIMD_DISPATCH_HH

#include <cstddef>
#include <cstdint>

namespace hyperplane {
namespace net {
namespace simd {

/** Host CPU capabilities relevant to the kernel layer (cpuid probe). */
struct CpuFeatures
{
    bool sse2 = false;
    bool sse42 = false;
    bool avx2 = false;
};

/** Probed once; constant for the process lifetime. */
const CpuFeatures &cpuFeatures();

/**
 * Raw RFC 1071 partial sum over @p len bytes folded into @p sum.
 * Identical contract (including the odd-final-chunk rule) and identical
 * result, bit for bit, across every variant.
 */
using ChecksumPartialFn = std::uint32_t (*)(const std::uint8_t *data,
                                            std::size_t len,
                                            std::uint32_t sum);

/** CRC32C (Castagnoli, reflected, init ~seed) — table or SSE4.2 crc32. */
using Crc32cFn = std::uint32_t (*)(const std::uint8_t *data,
                                   std::size_t len, std::uint32_t seed);

/**
 * Batched wire-header prefix validation.  For each packet i:
 *
 *   ok[i] = lens[i] >= minLen
 *           && pkts[i][0..4] == prefix[0..4]
 *           && pkts[i][5] < opcodeLimit
 *
 * @p prefix supplies 8 bytes (bytes 5..7 ignored).  @p minLen must be
 * >= 8 so a passing length guarantees an 8-byte load is in bounds.
 */
using HeaderCheckFn = void (*)(const std::uint8_t *const *pkts,
                               const std::uint32_t *lens, std::size_t n,
                               const std::uint8_t *prefix,
                               std::uint8_t opcodeLimit,
                               std::uint32_t minLen, std::uint8_t *ok);

/** The active kernel set plus its provenance for telemetry. */
struct KernelTable
{
    ChecksumPartialFn checksumPartial = nullptr;
    Crc32cFn crc32c = nullptr;
    HeaderCheckFn headerCheck = nullptr;

    /** Variant names ("scalar", "sse2", "avx2", "sse4.2"). */
    const char *checksumName = "scalar";
    const char *crc32cName = "scalar";
    const char *headerCheckName = "scalar";

    /** Numeric variant ids for metrics (0 scalar, 1 sse2/sse4.2, 2 avx2). */
    int checksumLevel = 0;
    int crc32cLevel = 0;
    int headerCheckLevel = 0;

    /** True when HYPERPLANE_FORCE_SCALAR pinned the table. */
    bool forcedScalar = false;
};

/** The dispatched table (probe + env override applied on first use). */
const KernelTable &kernels();

/** The scalar reference table (always available, never overridden). */
const KernelTable &scalarKernels();

/**
 * Re-run the probe + HYPERPLANE_FORCE_SCALAR read.  Test hook: NOT safe
 * while other threads are in the hot path.
 */
void refreshDispatch();

// Per-ISA kernel accessors for differential tests and micro-benches.
// Null when the build or the host CPU lacks the ISA; the dispatched
// table never points at a null variant.
ChecksumPartialFn checksumPartialSse2();
ChecksumPartialFn checksumPartialAvx2();
Crc32cFn crc32cSse42();
HeaderCheckFn headerCheckSse2();
HeaderCheckFn headerCheckAvx2();

} // namespace simd
} // namespace net
} // namespace hyperplane

#endif // HYPERPLANE_NET_SIMD_DISPATCH_HH
